/**
 * @file
 * Reproduction of the paper's Table 4: best configurations of the
 * three implementations on the 32-core machine (Xeon X7560, Intel
 * Manycore Testing Lab).
 *
 * Paper result: Implementation 1 45.9 s / 1.96x < Implementation 2
 * 36.4 s / 2.47x < Implementation 3 25.7 s / 3.50x. With warm page
 * cache and many cores, the index organization dominates: the single
 * lock serializes Implementation 1, the join costs Implementation 2
 * ~11 s, and Implementation 3 scales.
 */

#include "table_sweep.hh"

int
main()
{
    using namespace dsearch;
    TableBenchSpec spec{
        "Table 4",
        PlatformSpec::manyCore2010(),
        90.0,
        {
            {Implementation::SharedLocked, "(8, 4, 0)", 45.9, 1.96},
            {Implementation::ReplicatedJoin, "(8, 4, 1)", 36.4, 2.47},
            {Implementation::ReplicatedNoJoin, "(9, 4, 0)", 25.7,
             3.50},
        },
        12, // max x
        6,  // max y
        2,  // max z
    };
    runTableBench(spec);
    std::cout << "Expected shape: the implementation gap widens with "
                 "cores — Impl3 roughly\n1.8x faster than Impl1; "
                 "best x grows (8-10); Impl2 - Impl3 difference "
                 "is\nthe join cost (~11 s in the paper).\n";
    return 0;
}
