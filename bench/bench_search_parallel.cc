/**
 * @file
 * E11: parallel query evaluation — the paper's future work ("analyze
 * how to integrate the search query functionality and parallelize it
 * as well, for instance by using multiple indices").
 *
 * Measures boolean query throughput over:
 *   - the joined single index (Implementation 2's output);
 *   - the unjoined replica set (Implementation 3's output), evaluated
 *     serially and with one thread per replica.
 *
 * This quantifies Implementation 3's trade: it saves the join at
 * build time and pays (or gains) at query time.
 */

#include <iostream>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "pipeline/thread_pool.hh"
#include "search/multi_searcher.hh"
#include "search/searcher.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace {

using namespace dsearch;

/** A mixed batch of realistic query shapes over corpus vocabulary. */
std::vector<Query>
makeQueries()
{
    std::vector<Query> queries;
    const char *texts[] = {
        "ba",                     // very frequent term
        "zu",                     // rarer term
        "ba AND be",              // frequent intersection
        "ba AND NOT be",          // negation
        "(ba OR be) AND (bi OR bo)",
        "NOT ba",
        "cido OR cida OR cide",   // rare unions
        "ba be bi bo bu",         // deep intersection
    };
    for (const char *text : texts) {
        Query q = Query::parse(text);
        if (q.valid())
            queries.push_back(std::move(q));
    }
    return queries;
}

} // namespace

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const int rounds = 30;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.05))
                  .generateInMemory();

    // Implementation 3 output: replica segments (one per core) ...
    Engine::Result replicas =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(cores, cores)
            .build();
    const std::size_t doc_count = replicas.docs.docCount();

    // ... and Implementation 2 output: the joined index.
    Engine::Result joined =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(cores, cores, 1)
            .build();

    std::vector<Query> queries = makeQueries();

    Searcher single(joined.snapshot, doc_count);
    MultiSearcher multi(replicas.snapshot, doc_count);

    // Equivalence guard before timing anything.
    for (const Query &query : queries) {
        if (single.run(query) != multi.run(query, 1)) {
            std::cerr << "searchers disagree on "
                      << query.toString() << "\n";
            return 1;
        }
    }

    Table table("E11 — query evaluation (real runs, "
                + std::to_string(cores) + "-core host, "
                + std::to_string(doc_count) + " docs, "
                + std::to_string(replicas.snapshot.segmentCount())
                + " replicas, " + std::to_string(queries.size())
                + "-query batch x " + std::to_string(rounds)
                + " rounds)");
    table.setColumns({"engine", "batch time (ms)", "queries/s",
                      "vs joined"});

    auto measure = [&queries, rounds](auto &&run_batch) {
        RunningStat stat;
        for (int r = 0; r < rounds; ++r) {
            Timer timer;
            for (const Query &query : queries) {
                auto hits = run_batch(query);
                if (hits.size() == static_cast<std::size_t>(-1))
                    std::abort(); // defeat over-optimization
            }
            stat.push(timer.elapsedSec());
        }
        return stat.mean();
    };

    double joined_time =
        measure([&single](const Query &q) { return single.run(q); });
    double multi_serial =
        measure([&multi](const Query &q) { return multi.run(q, 1); });
    // runFreshPool: run(q, threads) now reuses a cached pool, so the
    // explicit fallback is what still measures per-query pool spawn.
    double multi_parallel = measure([&multi, cores](const Query &q) {
        return multi.runFreshPool(q, cores);
    });
    ThreadPool pool(cores);
    double multi_pooled = measure(
        [&multi, &pool](const Query &q) { return multi.run(q, pool); });

    auto row = [&](const char *label, double sec) {
        table.addRow(
            {label, formatDouble(sec * 1e3, 2),
             formatDouble(static_cast<double>(queries.size()) / sec,
                          0),
             formatDouble(percentDelta(sec, joined_time), 1) + "%"});
    };
    row("joined index (Impl 2 output)", joined_time);
    row("replica set, serial (Impl 3)", multi_serial);
    row("replica set, pool per query", multi_parallel);
    row("replica set, persistent pool", multi_pooled);

    table.render(std::cout);
    std::cout
        << "Expected shape: serial replica evaluation is competitive "
           "with the joined\nindex (smaller per-replica posting "
           "lists); spawning a pool per query is\nruinous at "
           "sub-millisecond latencies, while a persistent pool "
           "recovers most\nof it. Implementation 3's query side is "
           "viable — the paper's premise.\n";
    return 0;
}
