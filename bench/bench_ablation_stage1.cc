/**
 * @file
 * E6: pipelined Stage 1 ablation (§3 of the paper).
 *
 * "Running the filename generator concurrently with the term
 * extractors proved to be highly inefficient, because of a pair of
 * lock operations for every filename generated and consumed."
 * This bench measures exactly that: Stage 1 run to completion (the
 * paper's design) versus Stage 1 feeding a shared locked queue while
 * extraction runs.
 */

#include <iostream>
#include <thread>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned repeats = 5;

    // Two regimes: document-sized files (extraction work dominates)
    // and tiny files (per-filename overheads dominate — where the
    // paper's lock-pair observation lives).
    CorpusSpec documents = CorpusSpec::paperScaled(0.08);

    CorpusSpec tiny_files = CorpusSpec::paperScaled(0.08);
    tiny_files.file_count = 20000;
    tiny_files.total_bytes = 6 << 20;
    tiny_files.large_file_count = 0;
    tiny_files.large_file_share = 0.0;
    tiny_files.directory_count = 512;

    Table table("E6 — Stage 1 organization (real runs, "
                + std::to_string(cores) + "-core host, mean of "
                + std::to_string(repeats) + ")");
    table.setColumns({"corpus", "stage 1 organization",
                      "implementation", "time (s)", "stddev",
                      "delta"});

    struct Regime
    {
        const char *label;
        CorpusSpec spec;
    };
    for (const Regime &regime :
         {Regime{"documents", documents},
          Regime{"20k tiny files", tiny_files}}) {
        auto fs = CorpusGenerator(regime.spec).generateInMemory();
        for (Implementation impl : {Implementation::ReplicatedNoJoin,
                                    Implementation::SharedLocked}) {
            double baseline = 0.0;
            for (bool pipelined : {false, true}) {
                Config cfg;
                cfg.impl = impl;
                cfg.extractors = cores;
                cfg.updaters =
                    impl == Implementation::SharedLocked ? 1 : 0;
                cfg.pipelined_stage1 = pipelined;
                RunningStat stat;
                for (unsigned r = 0; r < repeats; ++r) {
                    IndexGenerator generator(*fs, "/", cfg);
                    stat.push(generator.build().times.total);
                }
                if (!pipelined)
                    baseline = stat.mean();
                table.addRow(
                    {regime.label,
                     pipelined ? "concurrent (locked queue)"
                               : "run-to-completion (paper)",
                     name(impl), formatDouble(stat.mean(), 3),
                     formatDouble(stat.stddev(), 3),
                     formatDouble(percentDelta(stat.mean(), baseline),
                                  1)
                         + "%"});
            }
            table.addSeparator();
        }
    }

    table.render(std::cout);
    std::cout
        << "Expected shape (paper §3): with many tiny files — where "
           "per-filename\ncosts dominate — the concurrent variant "
           "pays a lock pair per filename and\nloses clearly "
           "(reproduces the paper). With document-sized files on a\n"
           "memory-backed corpus the queue's dynamic balancing can "
           "win instead; the\npaper's disk-bound setting had nothing "
           "to gain from that. See EXPERIMENTS.md.\n";
    return 0;
}
