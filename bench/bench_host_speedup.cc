/**
 * @file
 * E9: ground-truth speed-ups of the real threaded generator on the
 * build host (scaled synthetic corpus, in-memory filesystem).
 *
 * This is the experiment the paper runs, at laptop scale: the same
 * three implementations, a small (x, y) sweep bounded by the host's
 * core count, five repetitions per configuration. With the corpus in
 * memory there is no disk bottleneck, so speed-ups track the CPU
 * parallelism available.
 */

#include <iostream>
#include <thread>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "tune/tuner.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const double scale = 0.05;
    const unsigned repeats = 3;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(scale))
                  .generateInMemory();

    // Sequential baseline.
    RunningStat seq_stat;
    for (unsigned r = 0; r < repeats; ++r) {
        IndexGenerator generator(*fs, "/", Config::sequential());
        seq_stat.push(generator.build().times.total);
    }
    double seq = seq_stat.mean();

    Table table("E9 — real speed-ups on the build host ("
                + std::to_string(cores) + " cores, "
                + formatBytes(fs->totalBytes())
                + " in-memory corpus, mean of "
                + std::to_string(repeats) + " runs)");
    table.setColumns({"implementation", "best config", "time (s)",
                      "speed-up", "vs Impl 1"});
    table.addRow({"Sequential", "-", formatDouble(seq, 3), "-", "-"});
    table.addSeparator();

    const unsigned max_x = cores + 1;
    const unsigned max_y = std::max(1u, cores / 2);

    double impl1_speedup = 0.0;
    for (Implementation impl :
         {Implementation::SharedLocked, Implementation::ReplicatedJoin,
          Implementation::ReplicatedNoJoin}) {
        ConfigSpace space = ConfigSpace::paperTable(
            impl, max_x, max_y,
            impl == Implementation::ReplicatedJoin ? 2 : 0);
        // Also allow y = 0 (extractors update directly) on the host:
        // the paper's tables keep y >= 1, but the host sweep is
        // cheap enough to widen.
        space.min_updaters = 0;

        RealCostEvaluator evaluator(*fs, "/", repeats);
        TuneResult best = ExhaustiveTuner().tune(evaluator, space);

        double s = speedup(seq, best.best_sec);
        if (impl == Implementation::SharedLocked)
            impl1_speedup = s;
        table.addRow({name(impl), best.best.tupleString(),
                      formatDouble(best.best_sec, 3),
                      formatDouble(s, 2),
                      formatDouble(percentDelta(s, impl1_speedup), 1)
                          + "%"});
    }

    table.render(std::cout);
    std::cout << "Expected shape: speed-up approaches the host core "
                 "count; replicated\nimplementations at least match "
                 "the shared locked index.\n";
    return 0;
}
