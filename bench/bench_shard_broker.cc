/**
 * @file
 * Sharded serving-tier benchmark: scatter-gather Broker over N
 * document-partitioned shards under an open-loop Zipf load.
 *
 * Two questions, matching the distributed-web-search architecture in
 * the related work:
 *
 *  1. Scaling curve — the same corpus is partitioned into 1, 2, 4
 *     (and 8, on wide hosts) shards, each served by a single-worker
 *     QueryServer standing in for one node, and an open-loop burst of
 *     Zipf-popular queries (real query logs are Zipfian) is pushed
 *     through the broker at every width. On a multi-core host the
 *     per-shard workers run in parallel and QPS scales with shard
 *     count; scripts/check_bench.py --shard gates
 *     QPS(4) >= 1.5x QPS(1) when the canary says the hardware is
 *     comparable AND the host actually has >= 4 cores (on a 1-core CI
 *     box the curve is flat by construction and reported as
 *     advisory).
 *
 *  2. Tail latency under skewed shard hotness — real document
 *     partitions develop hot shards. An antagonist floods one
 *     Zipf-chosen hot shard directly (bursts straight into its
 *     admission queue) while paced broker traffic runs; the hot
 *     shard's deadline + shed-oldest policy absorbs the excess, and
 *     the broker applies the same admission control to client
 *     queries, so the tier keeps answering: every submitted query
 *     resolves (zero lost), degraded replies come back partial
 *     instead of hanging, and the accepted tail is bounded by the
 *     two admission deadlines. The lossless/absorbed/degraded
 *     properties are machine-independent and gated by
 *     check_bench.py --shard; the p99 bound is gated only on
 *     comparable multi-core hardware.
 *
 * Results go to stdout as a table and to BENCH_shard.json in the
 * working directory; scripts/check_bench.py merges the JSON into the
 * BENCH_micro.json comparison.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "fs/corpus.hh"
#include "shard/broker.hh"
#include "shard/shard_planner.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"
#include "util/zipf.hh"

namespace {

using namespace dsearch;

/** One query of the served mix. */
struct Work
{
    Query query;
    bool ranked = false;
};

/** Mixed query shapes over corpus vocabulary, most popular first —
 *  rank order matters because the load generator draws Zipf over
 *  this list. */
std::vector<Work>
makeWork()
{
    struct Spec
    {
        const char *text;
        bool ranked;
    };
    const Spec specs[] = {
        {"ba", false},                   // the head query
        {"ba AND be", false},
        {"ba OR be", true},
        {"ba AND NOT be", false},
        {"(ba OR be) AND (bi OR bo)", false},
        {"zu", false},
        {"zu OR cido", true},
        {"ba be bi bo", false},
        {"cido OR cida OR cide", false}, // the long tail
        {"ba AND NOT bi", true},
    };
    std::vector<Work> work;
    for (const Spec &spec : specs) {
        Query query = Query::parse(spec.text);
        if (query.valid())
            work.push_back(Work{std::move(query), spec.ranked});
    }
    return work;
}

/** Defeat over-optimization without perturbing timings. */
std::atomic<std::uint64_t> g_sink{0};

/** One point of the shard-count scaling curve. */
struct ScalingPoint
{
    std::size_t shards = 0;
    double qps = 0.0;
    double p50_ms = 0.0;
    double p99_ms = 0.0;
};

/**
 * Open-loop burst: fire @p total Zipf-sampled queries up front
 * (broker admission back-pressure paces the submitter), then drain.
 * Measures the tier's service rate with queues that never run empty.
 */
ScalingPoint
runBrokerOpenLoop(Broker &broker, const std::vector<Work> &work,
                  const ZipfDistribution &popularity, Rng &rng,
                  std::size_t total)
{
    broker.resetStats();
    std::vector<std::future<BrokerResponse>> futures;
    futures.reserve(total);
    Timer timer;
    for (std::size_t i = 0; i < total; ++i) {
        const Work &item = work[popularity.sample(rng)];
        futures.push_back(item.ranked
                              ? broker.submitRanked(item.query, 10)
                              : broker.submit(item.query));
    }
    std::uint64_t local = 0;
    for (auto &future : futures) {
        BrokerResponse reply = future.get();
        local += reply.hits.size() + reply.ranked.size();
    }
    g_sink += local;
    double seconds = timer.elapsedSec();

    ScalingPoint point;
    point.shards = broker.shardCount();
    point.qps = static_cast<double>(total) / seconds;
    LatencySummary latency = broker.stats().latency;
    point.p50_ms = latency.p50 * 1e3;
    point.p99_ms = latency.p99 * 1e3;
    return point;
}

/** What the skewed-hotness scenario measured. */
struct SkewResult
{
    std::size_t shards = 0;
    double deadline_ms = 0.0;        ///< Per-shard deadline.
    double broker_deadline_ms = 0.0; ///< Broker admission deadline.
    double offered_qps = 0.0;        ///< Achieved paced rate.
    std::uint64_t submitted = 0;
    std::uint64_t answered = 0;      ///< Futures that resolved.
    std::uint64_t completed = 0;     ///< Resolved with ok = true.
    std::uint64_t refused = 0;       ///< Broker shed / timed out.
    std::uint64_t partial = 0;       ///< ok but missing >= 1 shard.
    double accepted_p99_ms = 0.0;    ///< p99 of completed queries.
    std::uint64_t hot_shed = 0;      ///< Hot shard's shed counter.
    std::uint64_t hot_timed_out = 0;
    std::uint64_t antagonist_queries = 0;
};

/**
 * Skewed-hotness scenario: two antagonist threads burst queries
 * straight into Zipf-chosen shards' own admission queues (rank 0 —
 * the hot shard — soaks most of it), while paced submitters drive
 * the broker at @p offered_qps. The hot shard's bounded queue +
 * deadline + shed-oldest policy turn the overload into counted
 * refusals; the broker's replies degrade to partial, never to hangs.
 */
SkewResult
runSkewedLoad(Broker &broker, const std::vector<Work> &work,
              double offered_qps, double deadline_ms,
              double broker_deadline_ms, std::size_t total)
{
    broker.resetStats();
    SkewResult result;
    result.shards = broker.shardCount();
    result.deadline_ms = deadline_ms;
    result.broker_deadline_ms = broker_deadline_ms;

    // Shard hotness is itself Zipfian: rank 0 gets the bulk.
    ZipfDistribution hotness(broker.shardCount(), /*s=*/1.2);
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> antagonist_count{0};
    std::vector<std::thread> antagonists;
    for (int a = 0; a < 2; ++a) {
        antagonists.emplace_back([&, a] {
            Rng rng(7000u + static_cast<std::uint64_t>(a));
            Query flood = Query::parse("(ba OR be) AND (bi OR bo)");
            std::vector<std::future<QueryResponse>> burst;
            while (!stop.load()) {
                QueryServer &target =
                    broker.shardServer(hotness.sample(rng));
                // An open-loop burst deeper than the shard queue:
                // guarantees the shed path actually runs.
                burst.clear();
                for (int i = 0; i < 128; ++i)
                    burst.push_back(target.submit(flood));
                std::uint64_t local = 0;
                for (auto &future : burst)
                    local += future.get().hits.size();
                g_sink += local;
                antagonist_count += burst.size();
            }
        });
    }

    // Paced broker traffic at a rate the (unflooded) tier can carry:
    // the overload under test is the skewed per-shard kind, not
    // broker-wide saturation.
    const std::size_t submitters = 2;
    const std::size_t per_thread = total / submitters;
    std::vector<std::vector<std::future<BrokerResponse>>> futures(
        submitters);
    std::vector<std::thread> threads;
    Timer timer;
    for (std::size_t s = 0; s < submitters; ++s) {
        threads.emplace_back([&, s] {
            Rng rng(9000u + static_cast<std::uint64_t>(s));
            ZipfDistribution popularity(work.size(), 1.0);
            const std::chrono::duration<double> interval(
                static_cast<double>(submitters) / offered_qps);
            std::vector<std::future<BrokerResponse>> &mine =
                futures[s];
            mine.reserve(per_thread);
            auto start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < per_thread; ++i) {
                std::this_thread::sleep_until(
                    start
                    + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(i)));
                const Work &item = work[popularity.sample(rng)];
                mine.push_back(
                    item.ranked
                        ? broker.submitRanked(item.query, 10)
                        : broker.submit(item.query));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    double seconds = timer.elapsedSec();

    // Drain: every submitted future must become ready — "zero lost
    // queries" is the property the gate checks. Queries the broker's
    // own admission control refused (shed, deadline) are counted,
    // resolved refusals, not losses.
    std::vector<double> accepted_latencies;
    for (auto &mine : futures) {
        for (auto &future : mine) {
            ++result.submitted;
            BrokerResponse reply = future.get();
            ++result.answered;
            if (reply.ok) {
                ++result.completed;
                accepted_latencies.push_back(reply.latency_sec);
                if (reply.partial)
                    ++result.partial;
            }
        }
    }
    stop.store(true);
    for (std::thread &t : antagonists)
        t.join();

    result.offered_qps =
        static_cast<double>(per_thread * submitters) / seconds;
    result.accepted_p99_ms =
        summarizeLatencies(std::move(accepted_latencies)).p99 * 1e3;
    result.antagonist_queries = antagonist_count.load();

    // Hot-shard drill-down from the stats rollup (rank 0 is the
    // hottest by construction).
    BrokerStats stats = broker.stats();
    result.refused = stats.shed + stats.timed_out;
    if (!stats.shards.empty()) {
        result.hot_shed = stats.shards[0].shed;
        result.hot_timed_out = stats.shards[0].timed_out;
    }
    return result;
}

} // namespace

int
main()
{
    using namespace dsearch;

    const std::size_t cores =
        std::max(1u, std::thread::hardware_concurrency());

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.02))
                  .generateInMemory();
    std::vector<Work> work = makeWork();
    ZipfDistribution popularity(work.size(), /*s=*/1.0);
    Rng rng(20260808);

    // Open-loop depth: long enough that each burst spans hundreds of
    // milliseconds, so QPS is not scheduler lottery.
    const std::size_t burst = 20000;

    std::vector<std::size_t> widths = {1, 2, 4};
    if (cores >= 8)
        widths.push_back(8);

    std::size_t doc_count = 0;
    std::vector<ScalingPoint> curve;
    for (std::size_t n : widths) {
        ShardPlanOptions plan;
        plan.shards = n;
        plan.placement = ShardPlacement::RoundRobin;
        BrokerOptions options;
        options.merge_workers = 2;
        // workers = 0 -> one per shard: each shard emulates one node
        // of the scatter-gather tier.
        options.shard_options.workers = 0;
        Broker broker(ShardPlanner::build(*fs, "/", plan), options);
        doc_count = broker.docCount();

        runBrokerOpenLoop(broker, work, popularity, rng,
                          burst / 10); // warm-up
        curve.push_back(
            runBrokerOpenLoop(broker, work, popularity, rng, burst));
        broker.shutdown();
    }

    Table table("shard broker — open-loop Zipf load ("
                + std::to_string(doc_count) + " docs, "
                + std::to_string(cores) + "-core host, burst "
                + std::to_string(burst) + ")");
    table.setColumns({"shards", "QPS", "p50 (ms)", "p99 (ms)"});
    for (const ScalingPoint &point : curve)
        table.addRow({std::to_string(point.shards),
                      formatDouble(point.qps, 0),
                      formatDouble(point.p50_ms, 3),
                      formatDouble(point.p99_ms, 3)});
    table.render(std::cout);

    double qps_1 = curve.front().qps;
    double qps_4 = 0.0;
    for (const ScalingPoint &point : curve)
        if (point.shards == 4)
            qps_4 = point.qps;
    double scaling_ratio = qps_1 > 0.0 ? qps_4 / qps_1 : 0.0;
    std::cout << "scaling: QPS(4 shards) / QPS(1 shard) = "
              << formatDouble(scaling_ratio, 2) << "x on " << cores
              << " cores\n";

    // Skewed hotness at the widest shard count: hot shard flooded,
    // broker traffic paced at half the measured tier capacity.
    // Admission control sits at BOTH layers — each shard bounds its
    // own queue with a deadline + shed-oldest, and the broker does
    // the same for client queries — so the accepted tail stays
    // bounded even when the whole box is saturated by the flood.
    const double deadline_ms = 20.0;
    const double broker_deadline_ms = 50.0;
    ShardPlanOptions plan;
    plan.shards = widths.back();
    plan.placement = ShardPlacement::RoundRobin;
    BrokerOptions skew_options;
    skew_options.merge_workers = 2;
    skew_options.queue_capacity = 256;
    skew_options.deadline_sec = broker_deadline_ms / 1e3;
    skew_options.overload_policy = OverloadPolicy::ShedOldest;
    skew_options.shard_options.workers = 0;
    skew_options.shard_options.queue_capacity = 64;
    skew_options.shard_options.deadline_sec = deadline_ms / 1e3;
    skew_options.shard_options.overload_policy =
        OverloadPolicy::ShedOldest;
    skew_options.shard_wait_sec = 0.25; // gather backstop
    Broker skew_broker(ShardPlanner::build(*fs, "/", plan),
                       skew_options);

    const double offered = std::max(curve.back().qps * 0.5, 500.0);
    const std::size_t skew_total = static_cast<std::size_t>(
        std::clamp(offered, 1e3, 2e5)); // ~1 s of paced load
    SkewResult skew =
        runSkewedLoad(skew_broker, work, offered, deadline_ms,
                      broker_deadline_ms, skew_total);
    skew_broker.shutdown();

    std::cout << "skewed hotness (" << skew.shards
              << " shards, hot shard flooded, offered "
              << formatDouble(skew.offered_qps, 0)
              << " QPS): answered " << skew.answered << "/"
              << skew.submitted << ", completed " << skew.completed
              << ", refused " << skew.refused << ", partial "
              << skew.partial << ", accepted p99 "
              << formatDouble(skew.accepted_p99_ms, 3)
              << " ms (deadlines " << formatDouble(deadline_ms, 0)
              << "/" << formatDouble(broker_deadline_ms, 0)
              << " ms shard/broker), hot shard shed " << skew.hot_shed
              << " / timed out " << skew.hot_timed_out
              << ", antagonist " << skew.antagonist_queries
              << " queries\n";

    std::ofstream json("BENCH_shard.json");
    json << "{\n"
         << "  \"bench\": \"shard_broker\",\n"
         << "  \"shard_broker\": {\n"
         << "    \"cores\": " << cores << ",\n"
         << "    \"docs\": " << doc_count << ",\n"
         << "    \"burst\": " << burst << ",\n"
         << "    \"scaling\": [\n";
    for (std::size_t i = 0; i < curve.size(); ++i)
        json << "      {\"shards\": " << curve[i].shards
             << ", \"qps\": " << curve[i].qps
             << ", \"p50_ms\": " << curve[i].p50_ms
             << ", \"p99_ms\": " << curve[i].p99_ms << "}"
             << (i + 1 < curve.size() ? "," : "") << "\n";
    json << "    ],\n"
         << "    \"qps_1\": " << qps_1 << ",\n"
         << "    \"qps_4\": " << qps_4 << ",\n"
         << "    \"scaling_ratio\": " << scaling_ratio << ",\n"
         << "    \"skew\": {\n"
         << "      \"shards\": " << skew.shards << ",\n"
         << "      \"zipf_s\": 1.2,\n"
         << "      \"deadline_ms\": " << skew.deadline_ms << ",\n"
         << "      \"broker_deadline_ms\": "
         << skew.broker_deadline_ms << ",\n"
         << "      \"offered_qps\": " << skew.offered_qps << ",\n"
         << "      \"submitted\": " << skew.submitted << ",\n"
         << "      \"answered\": " << skew.answered << ",\n"
         << "      \"lost\": " << (skew.submitted - skew.answered)
         << ",\n"
         << "      \"completed\": " << skew.completed << ",\n"
         << "      \"refused\": " << skew.refused << ",\n"
         << "      \"partial\": " << skew.partial << ",\n"
         << "      \"accepted_p99_ms\": " << skew.accepted_p99_ms
         << ",\n"
         << "      \"hot_shard_shed\": " << skew.hot_shed << ",\n"
         << "      \"hot_shard_timed_out\": " << skew.hot_timed_out
         << ",\n"
         << "      \"antagonist_queries\": "
         << skew.antagonist_queries << "\n"
         << "    }\n"
         << "  }\n"
         << "}\n";

    if (g_sink.load() == static_cast<std::uint64_t>(-1))
        std::abort(); // defeat over-optimization

    // Machine-independent properties (the --shard gate re-checks
    // them from the JSON): no query is ever lost, the flood was
    // absorbed as counted refusals, and degraded replies actually
    // happened instead of hangs. The scaling ratio is gated only on
    // comparable multi-core hardware.
    bool lossless = skew.answered == skew.submitted;
    bool absorbed = skew.hot_shed + skew.hot_timed_out > 0;
    bool degraded = skew.partial > 0 && skew.completed > 0;
    return lossless && absorbed && degraded ? 0 : 1;
}
