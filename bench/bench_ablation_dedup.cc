/**
 * @file
 * E7: duplicate-handling ablation (§2.2/§3 of the paper).
 *
 * The paper chose, by analysis rather than measurement, to eliminate
 * duplicates in the term extractors (private hash set per file,
 * en-bloc insertion) instead of inserting every occurrence into the
 * index and scanning posting lists for duplicates. This bench
 * measures both designs and quantifies what the analysis predicted:
 * the linear duplicate scan and the per-occurrence locking make
 * immediate insertion far slower.
 */

#include <iostream>
#include <thread>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned repeats = 3;

    // Small corpus: the immediate mode is intentionally the slow
    // design being demonstrated.
    CorpusSpec spec = CorpusSpec::paperScaled(0.015);
    auto fs = CorpusGenerator(spec).generateInMemory();

    Table table("E7 — duplicate handling (real runs, "
                + std::to_string(cores) + "-core host, "
                + formatBytes(fs->totalBytes()) + ", mean of "
                + std::to_string(repeats) + ")");
    table.setColumns({"duplicate handling", "implementation",
                      "time (s)", "slowdown"});

    for (Implementation impl : {Implementation::Sequential,
                                Implementation::SharedLocked}) {
        double en_bloc_time = 0.0;
        for (bool en_bloc : {true, false}) {
            Config cfg;
            cfg.impl = impl;
            cfg.extractors =
                impl == Implementation::Sequential ? 1 : cores;
            cfg.updaters =
                impl == Implementation::SharedLocked ? 1 : 0;
            cfg.en_bloc = en_bloc;
            RunningStat stat;
            for (unsigned r = 0; r < repeats; ++r) {
                IndexGenerator generator(*fs, "/", cfg);
                stat.push(generator.build().times.total);
            }
            if (en_bloc)
                en_bloc_time = stat.mean();
            table.addRow(
                {en_bloc ? "en-bloc, dedup in extractor (paper)"
                         : "immediate, dup scan in index",
                 name(impl), formatDouble(stat.mean(), 3),
                 en_bloc ? "1.00x"
                         : formatDouble(stat.mean() / en_bloc_time, 2)
                               + "x"});
        }
        table.addSeparator();
    }

    table.render(std::cout);
    std::cout << "Expected shape (paper §2.2 analysis): immediate "
                 "insertion is several\ntimes slower — every "
                 "occurrence pays a posting-list scan, and under\n"
                 "Implementation 1 also a lock acquisition.\n";
    return 0;
}
