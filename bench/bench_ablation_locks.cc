/**
 * @file
 * E10: lock-granularity ablation (extension of the paper's §2.3
 * question "Is synchronization the bottleneck?").
 *
 * The paper compares one global lock (Implementation 1) against no
 * locks at all (Implementations 2/3). The intermediate designs —
 * hash-sharded locks — are measured here on the real generator:
 * Implementation 1 with 1, 4, 16 and 64 lock shards against
 * Implementation 3 (private replicas, the lock-free end point).
 */

#include <iostream>
#include <thread>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned repeats = 5;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.05))
                  .generateInMemory();

    Table table("E10 — lock granularity under Implementation 1 "
                "(real runs, "
                + std::to_string(cores) + "-core host, "
                + formatBytes(fs->totalBytes()) + ", x = "
                + std::to_string(cores) + ", direct inserts, mean of "
                + std::to_string(repeats) + ")");
    table.setColumns({"index organization", "time (s)", "stddev",
                      "vs global lock"});

    double global_lock_time = 0.0;
    for (std::size_t shards : {1u, 4u, 16u, 64u}) {
        Config cfg = Config::sharedLocked(cores, 0);
        cfg.lock_shards = shards;
        RunningStat stat;
        for (unsigned r = 0; r < repeats; ++r) {
            IndexGenerator generator(*fs, "/", cfg);
            stat.push(generator.build().times.total);
        }
        if (shards == 1)
            global_lock_time = stat.mean();
        std::string label =
            shards == 1 ? "global lock (paper's Impl 1)"
                        : std::to_string(shards) + " lock shards";
        table.addRow({label, formatDouble(stat.mean(), 3),
                      formatDouble(stat.stddev(), 3),
                      formatDouble(percentDelta(stat.mean(),
                                                global_lock_time),
                                   1)
                          + "%"});
    }

    // The lock-free end point for reference.
    {
        Config cfg = Config::replicatedNoJoin(cores, 0);
        RunningStat stat;
        for (unsigned r = 0; r < repeats; ++r) {
            IndexGenerator generator(*fs, "/", cfg);
            stat.push(generator.build().times.total);
        }
        table.addSeparator();
        table.addRow({"private replicas (Impl 3, lock-free)",
                      formatDouble(stat.mean(), 3),
                      formatDouble(stat.stddev(), 3),
                      formatDouble(percentDelta(stat.mean(),
                                                global_lock_time),
                                   1)
                          + "%"});
    }

    table.render(std::cout);
    std::cout
        << "Expected shape: a few shards relieve the global lock "
           "part of the way\ntoward the lock-free design; very high "
           "shard counts regress (per-block\ngrouping overhead and "
           "cache dilution across many small hash maps), and\non "
           "few-core hosts contention is low enough that the global "
           "lock is\nalready close to the replicated design.\n";
    return 0;
}
