/**
 * @file
 * Query-serving benchmark: sustained QPS of the persistent
 * QueryServer against the naive per-query serving path.
 *
 * The deployment shape the ROADMAP asks for is a service under
 * multi-client load, not one query at a time. This bench drives a
 * mixed boolean/ranked query stream from 1..N closed-loop client
 * threads (each submits, waits, submits again) and one open-loop
 * burst, against:
 *
 *   - naive:  what serving looked like before the QueryServer — a
 *     fresh single-worker ThreadPool spawned per query (thread-per-
 *     request), torn down after the answer. Same searchers, same
 *     queries; the only difference is per-query thread spawn.
 *   - server: the persistent QueryServer (bounded admission queue,
 *     batched dispatch, long-lived pool and searchers), over both
 *     the unified snapshot and the replicated (MultiSearcher) one.
 *
 * A final overload scenario drives an open-loop stream paced at 2x
 * the measured service rate into a deadline + shed-oldest server and
 * records how the excess is absorbed: shed/timed-out counters soak
 * the overflow while the p99 of *accepted* queries stays bounded
 * near the deadline — the graceful-degradation property
 * check_bench.py --overload gates (machine-independent).
 *
 * A live-churn scenario then serves the same query mix from a
 * LiveIndex while a writer mutates the corpus: closed-loop QPS is
 * measured steady-state (no churn) and again during churn (writer +
 * background scanner/merger + snapshot hot-swaps racing the
 * queries), together with the update-visibility latency (write ->
 * first query hit) and swap count. check_bench.py --live gates the
 * machine-independent half: churn QPS >= 0.8x steady QPS, swaps
 * actually happened, and churn p99 stays bounded (hot-swaps pause
 * nothing).
 *
 * Results go to stdout as a table and to BENCH_server.json in the
 * working directory; scripts/check_bench.py merges the JSON into the
 * BENCH_micro.json comparison and gates server_qps / naive_qps >= 1
 * (machine-independent) plus the absolute QPS against the committed
 * baseline when the hardware is comparable.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "fs/mutable_memory_fs.hh"
#include "live/live_index.hh"
#include "pipeline/thread_pool.hh"
#include "search/query_server.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace {

using namespace dsearch;

/** One query of the served mix. */
struct Work
{
    Query query;
    bool ranked = false;
};

/** Mixed, realistic query shapes over corpus vocabulary. */
std::vector<Work>
makeWork(bool include_ranked)
{
    struct Spec
    {
        const char *text;
        bool ranked;
    };
    const Spec specs[] = {
        {"ba", false},                    // very frequent term
        {"zu", false},                    // rarer term
        {"ba AND be", false},             // frequent intersection
        {"ba AND NOT be", false},         // negation
        {"(ba OR be) AND (bi OR bo)", false},
        {"cido OR cida OR cide", false},  // rare unions
        {"ba be bi bo", false},           // deep intersection
        {"ba OR be", true},               // ranked: frequent union
        {"zu OR cido", true},             // ranked: rare union
        {"ba AND NOT bi", true},          // ranked: negation
    };
    std::vector<Work> work;
    for (const Spec &spec : specs) {
        if (spec.ranked && !include_ranked)
            continue;
        Query query = Query::parse(spec.text);
        if (query.valid())
            work.push_back(Work{std::move(query), spec.ranked});
    }
    return work;
}

/** Defeat over-optimization without perturbing timings. */
std::atomic<std::uint64_t> g_sink{0};

/**
 * The pre-server serving path: every query spawns a fresh
 * single-worker pool (thread-per-request), evaluates on it, tears it
 * down. @p clients closed-loop threads share the long-lived
 * searchers, so thread spawn is the only difference from the server.
 */
double
runNaive(const Searcher &searcher, const RankedSearcher &ranked,
         const std::vector<Work> &work, std::size_t clients,
         std::size_t per_client)
{
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&searcher, &ranked, &work, per_client] {
            std::uint64_t local = 0;
            for (std::size_t i = 0; i < per_client; ++i) {
                const Work &item = work[i % work.size()];
                ThreadPool pool(1); // the cost being measured
                pool.submit([&item, &searcher, &ranked, &local] {
                    if (item.ranked)
                        local += ranked.topK(item.query, 10).size();
                    else
                        local += searcher.run(item.query).size();
                });
                pool.wait();
            }
            g_sink += local;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double seconds = timer.elapsedSec();
    return static_cast<double>(clients * per_client) / seconds;
}

/** Closed-loop clients against a running QueryServer. */
double
runServerClosedLoop(QueryServer &server, const std::vector<Work> &work,
                    std::size_t clients, std::size_t per_client)
{
    server.resetStats();
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&server, &work, per_client] {
            std::uint64_t local = 0;
            for (std::size_t i = 0; i < per_client; ++i) {
                const Work &item = work[i % work.size()];
                QueryResponse reply =
                    item.ranked
                        ? server.submitRanked(item.query, 10).get()
                        : server.submit(item.query).get();
                local += reply.ok
                             ? reply.hits.size() + reply.ranked.size()
                             : 0;
            }
            g_sink += local;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double seconds = timer.elapsedSec();
    return static_cast<double>(clients * per_client) / seconds;
}

/**
 * Open-loop burst: fire every request up front (admission back-
 * pressure pacing the submitter), then drain. Measures the service
 * rate with a queue that never runs empty.
 */
double
runServerOpenLoop(QueryServer &server, const std::vector<Work> &work,
                  std::size_t total)
{
    server.resetStats();
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(total);
    Timer timer;
    for (std::size_t i = 0; i < total; ++i) {
        const Work &item = work[i % work.size()];
        futures.push_back(item.ranked
                              ? server.submitRanked(item.query, 10)
                              : server.submit(item.query));
    }
    std::uint64_t local = 0;
    for (auto &future : futures) {
        QueryResponse reply = future.get();
        local += reply.hits.size() + reply.ranked.size();
    }
    g_sink += local;
    double seconds = timer.elapsedSec();
    return static_cast<double>(total) / seconds;
}

/** What the overload scenario measured. */
struct OverloadResult
{
    double offered_qps = 0.0;  ///< Achieved submission rate.
    double deadline_ms = 0.0;
    ServerStats stats;         ///< Counters + accepted latency.
};

/**
 * Open-loop overload: submit @p total boolean queries paced at
 * @p offered_qps (from several submitter threads so pacing, not
 * submission cost, sets the rate) into a server configured with a
 * deadline and a shedding policy, then drain every future.
 */
OverloadResult
runServerOverload(QueryServer &server, const std::vector<Work> &work,
                  double offered_qps, double deadline_ms,
                  std::size_t total)
{
    server.resetStats();
    OverloadResult result;
    result.deadline_ms = deadline_ms;

    const std::size_t submitters = 4;
    const std::size_t per_thread = total / submitters;
    std::vector<std::vector<std::future<QueryResponse>>> futures(
        submitters);
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    Timer timer;
    for (std::size_t s = 0; s < submitters; ++s) {
        threads.emplace_back([&server, &work, offered_qps, per_thread,
                              submitters, &futures, s] {
            // Each submitter paces at its share of the offered rate.
            // Submission never blocks (shedding policy), so pacing,
            // not back-pressure, sets the arrival process.
            const std::chrono::duration<double> interval(
                static_cast<double>(submitters) / offered_qps);
            std::vector<std::future<QueryResponse>> &mine = futures[s];
            mine.reserve(per_thread);
            auto start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < per_thread; ++i) {
                std::this_thread::sleep_until(
                    start
                    + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(i)));
                const Work &item = work[i % work.size()];
                mine.push_back(server.submit(item.query));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    // The submission window ends here; the drain below only resolves
    // futures (served, shed or expired — the server answers all).
    double seconds = timer.elapsedSec();
    std::uint64_t local = 0;
    for (std::vector<std::future<QueryResponse>> &mine : futures)
        for (std::future<QueryResponse> &future : mine)
            local += future.get().hits.size();
    g_sink += local;
    result.offered_qps =
        static_cast<double>(per_thread * submitters) / seconds;
    result.stats = server.stats();
    return result;
}

/** What the live-churn scenario measured. */
struct LiveChurnResult
{
    std::size_t docs = 0;        ///< Corpus size served.
    double steady_qps = 0.0;     ///< Closed-loop QPS, no churn.
    double churn_qps = 0.0;      ///< Same load during churn.
    double steady_p99_ms = 0.0;
    double churn_p99_ms = 0.0;
    double visibility_ms_mean = 0.0; ///< Write -> first query hit.
    double visibility_ms_max = 0.0;
    std::uint64_t swaps = 0;     ///< Hot-swaps during the churn window.
    std::uint64_t merges = 0;    ///< Compactions completed overall.
    std::uint64_t writes = 0;    ///< Files rewritten during churn.
    double churn_sec = 0.0;      ///< Churn window length.
};

/**
 * Serve the query mix from a LiveIndex: measure closed-loop QPS
 * steady-state, then again while a writer rewrites the corpus and
 * the background scanner/merger hot-swap generations under the load;
 * between the two, probe the write -> visible-to-queries latency.
 */
LiveChurnResult
runLiveChurn(const std::vector<Work> &work, std::size_t clients,
             std::size_t per_client)
{
    LiveChurnResult result;

    // A corpus over the same vocabulary the query mix uses, in a
    // filesystem the writer can mutate while it is served.
    const char *vocab[] = {"ba", "be", "bi", "bo", "zu", "za",
                           "cido", "cida", "cide", "ma"};
    const std::size_t vocab_size = sizeof(vocab) / sizeof(vocab[0]);
    const std::size_t files = 120;
    MutableMemoryFs fs;
    auto body = [&](std::size_t file, std::size_t rev) {
        std::string text;
        for (std::size_t w = 0; w < 8; ++w) {
            text += vocab[(file + w * (1 + file % 3)) % vocab_size];
            text += ' ';
        }
        text += "rev" + std::to_string(rev);
        return text;
    };
    for (std::size_t f = 0; f < files; ++f)
        fs.addFile("/live/f" + std::to_string(f) + ".txt",
                   body(f, 0));

    QueryServer server(IndexSnapshot{}, DocTable{}, ServerOptions{});
    LiveIndexOptions options;
    options.scan_interval_sec = 0.02;
    options.merge_threshold = 4;
    LiveIndex live(fs, "/", server, nullptr, options);
    live.adopt(Engine::open(fs, "/").build());
    result.docs = live.stats().doc_count;

    // Steady state: corpus idle, background threads not yet running —
    // the unified serving shape the pipeline starts from. A
    // calibration run sizes both measurement windows to ~1 s at the
    // achieved rate (the tiny corpus serves very fast, and the
    // steady/churn ratio is only trustworthy over equal, long
    // windows), bounded for very slow hosts.
    runServerClosedLoop(server, work, clients, 50); // warm-up
    const double calibration_qps =
        runServerClosedLoop(server, work, clients, 4 * per_client);
    const std::size_t window_queries = std::clamp(
        static_cast<std::size_t>(calibration_qps / clients),
        4 * per_client, static_cast<std::size_t>(400000));
    result.steady_qps =
        runServerClosedLoop(server, work, clients, window_queries);
    result.steady_p99_ms = server.stats().latency.p99 * 1e3;

    live.start();

    // Update visibility: write a uniquely-marked file and poll until
    // a query serves it — the scan -> delta -> publish path end to
    // end, including the scan-interval wait.
    const int probes = 5;
    double vis_total = 0.0;
    for (int probe = 0; probe < probes; ++probe) {
        std::string marker = "visprobe" + std::to_string(probe);
        Query query = Query::parse(marker);
        Timer probe_timer;
        fs.addFile("/live/probe.txt", marker);
        while (server.submit(query).get().hits.empty()) {
            if (probe_timer.elapsedSec() > 5.0)
                break;
            std::this_thread::sleep_for(
                std::chrono::microseconds(200));
        }
        double ms = probe_timer.elapsedSec() * 1e3;
        vis_total += ms;
        result.visibility_ms_max =
            std::max(result.visibility_ms_max, ms);
    }
    result.visibility_ms_mean = vis_total / probes;

    // Churn window: the writer rewrites the corpus while the scanner
    // publishes deltas and the merger compacts, all under the same
    // closed-loop query load the steady window carried.
    const std::uint64_t swaps_before = server.stats().swaps;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> writes{0};
    std::thread writer([&] {
        std::size_t sequence = 0;
        while (!stop.load()) {
            std::size_t file = sequence % files;
            fs.addFile("/live/f" + std::to_string(file) + ".txt",
                       body(file, 1 + sequence / files));
            ++sequence;
            writes.store(sequence);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });
    Timer churn_timer;
    result.churn_qps =
        runServerClosedLoop(server, work, clients, window_queries);
    result.churn_sec = churn_timer.elapsedSec();
    result.churn_p99_ms = server.stats().latency.p99 * 1e3;
    stop.store(true);
    writer.join();
    live.stop();

    result.swaps = server.stats().swaps - swaps_before;
    result.writes = writes.load();
    result.merges = live.stats().merges;
    return result;
}

} // namespace

int
main()
{
    using namespace dsearch;

    const std::size_t cores =
        std::max(1u, std::thread::hardware_concurrency());
    // Enough queries that each timed window spans hundreds of
    // milliseconds — per-query costs are tens of microseconds, and
    // short windows make the QPS numbers scheduler lottery.
    const std::size_t per_client = 2000;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.02))
                  .generateInMemory();

    Engine::Result unified =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(static_cast<unsigned>(cores),
                     static_cast<unsigned>(cores), 1)
            .build();
    Engine::Result replicas =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(static_cast<unsigned>(cores),
                     static_cast<unsigned>(cores))
            .build();
    const std::size_t doc_count = unified.docs.docCount();

    // Long-lived searchers for the naive path (it shares them; only
    // thread spawn differs from the server).
    Searcher searcher(unified.snapshot, doc_count);
    RankedSearcher ranked(unified.snapshot, unified.docs);

    std::vector<Work> mixed = makeWork(/*include_ranked=*/true);
    std::vector<Work> boolean_only = makeWork(/*include_ranked=*/false);

    Table table("query serving — sustained QPS (" +
                std::to_string(doc_count) + " docs, " +
                std::to_string(cores) + "-core host, mixed " +
                std::to_string(mixed.size()) + "-query batch, " +
                std::to_string(per_client) + " queries/client)");
    table.setColumns({"path", "clients", "QPS", "p95 (ms)"});

    QueryServer server(unified.snapshot, unified.docs);
    QueryServer server_replicated(replicas.snapshot,
                                  std::move(replicas.docs));

    // Warm-up: fault in postings, fill the ranked term cache, let
    // the pools reach steady state.
    runServerClosedLoop(server, mixed, 2, 50);
    runServerClosedLoop(server_replicated, boolean_only, 2, 50);
    runNaive(searcher, ranked, mixed, 2, 25);

    // Closed-loop client sweep against the unified server: powers
    // of two up to the core count, which is always included last.
    std::vector<std::size_t> widths;
    for (std::size_t c = 1; c < cores; c *= 2)
        widths.push_back(c);
    widths.push_back(cores);

    double server_qps = 0.0;
    LatencySummary latency;
    for (std::size_t clients : widths) {
        double qps =
            runServerClosedLoop(server, mixed, clients, per_client);
        ServerStats stats = server.stats();
        table.addRow({"server (unified)", std::to_string(clients),
                      formatDouble(qps, 0),
                      formatDouble(stats.latency.p95 * 1e3, 3)});
        server_qps = qps;          // ends at the widest (cores)
        latency = stats.latency;
    }

    // Replicated snapshot at full width.
    double server_replicated_qps = runServerClosedLoop(
        server_replicated, boolean_only, cores, per_client);
    table.addRow({"server (replicated)", std::to_string(cores),
                  formatDouble(server_replicated_qps, 0),
                  formatDouble(
                      server_replicated.stats().latency.p95 * 1e3,
                      3)});

    // Open-loop burst at full depth.
    double open_loop_qps =
        runServerOpenLoop(server, mixed, cores * per_client);
    table.addRow({"server (open loop)", "1",
                  formatDouble(open_loop_qps, 0),
                  formatDouble(server.stats().latency.p95 * 1e3, 3)});

    // The naive path at full client width.
    double naive_qps =
        runNaive(searcher, ranked, mixed, cores, per_client);
    table.addRow({"naive (pool per query)", std::to_string(cores),
                  formatDouble(naive_qps, 0), "-"});

    // Overload: a fresh server with a per-query deadline and shed-
    // oldest admission, offered 2x the service rate just measured.
    // One second of overload, bounded for very fast hosts.
    const double overload_deadline_ms = 10.0;
    ServerOptions overload_options;
    overload_options.queue_capacity = 256;
    overload_options.deadline_sec = overload_deadline_ms / 1e3;
    overload_options.overload_policy = OverloadPolicy::ShedOldest;
    QueryServer overload_server(unified.snapshot, unified.docs,
                                overload_options);
    runServerOverload(overload_server, boolean_only, server_qps,
                      overload_deadline_ms, 2000); // warm-up
    const double offered_target = 2.0 * server_qps;
    const std::size_t overload_total = static_cast<std::size_t>(
        std::clamp(offered_target, 2e4, 2e6));
    OverloadResult overload =
        runServerOverload(overload_server, boolean_only,
                          offered_target, overload_deadline_ms,
                          overload_total);
    overload_server.shutdown();
    table.addRow({"server (2x overload)", "4",
                  formatDouble(
                      static_cast<double>(overload.stats.completed)
                          / overload.stats.elapsed_sec,
                      0),
                  formatDouble(overload.stats.latency.p95 * 1e3, 3)});

    // Live churn: the same mixed load served from a LiveIndex while
    // a writer mutates the corpus underneath it.
    LiveChurnResult churn = runLiveChurn(mixed, cores, per_client);
    table.addRow({"live (steady)", std::to_string(cores),
                  formatDouble(churn.steady_qps, 0),
                  formatDouble(churn.steady_p99_ms, 3)});
    table.addRow({"live (churn)", std::to_string(cores),
                  formatDouble(churn.churn_qps, 0),
                  formatDouble(churn.churn_p99_ms, 3)});

    table.render(std::cout);
    double churn_ratio = churn.steady_qps > 0.0
                             ? churn.churn_qps / churn.steady_qps
                             : 0.0;
    std::cout << "live churn (" << churn.docs << " docs, "
              << formatDouble(static_cast<double>(churn.writes)
                                  / std::max(churn.churn_sec, 1e-9),
                              0)
              << " writes/s): QPS ratio vs steady "
              << formatDouble(churn_ratio, 2) << "x, " << churn.swaps
              << " hot-swaps, " << churn.merges
              << " compactions, visibility "
              << formatDouble(churn.visibility_ms_mean, 1)
              << " ms mean / "
              << formatDouble(churn.visibility_ms_max, 1)
              << " ms max\n";
    std::cout << "overload (offered "
              << formatDouble(overload.offered_qps, 0) << " QPS, "
              << formatDouble(overload_deadline_ms, 0)
              << " ms deadline): completed "
              << overload.stats.completed << ", shed "
              << overload.stats.shed << ", timed out "
              << overload.stats.timed_out << ", accepted p99 "
              << formatDouble(overload.stats.latency.p99 * 1e3, 3)
              << " ms\n";
    double speedup_vs_naive =
        naive_qps > 0.0 ? server_qps / naive_qps : 0.0;
    std::cout << "persistent server vs naive per-query path: "
              << formatDouble(speedup_vs_naive, 2) << "x at " << cores
              << " clients\n";

    std::ofstream json("BENCH_server.json");
    json << "{\n"
         << "  \"bench\": \"search_server\",\n"
         << "  \"search_server\": {\n"
         << "    \"docs\": " << doc_count << ",\n"
         << "    \"clients\": " << cores << ",\n"
         << "    \"queries_per_client\": " << per_client << ",\n"
         << "    \"naive_qps\": " << naive_qps << ",\n"
         << "    \"server_qps\": " << server_qps << ",\n"
         << "    \"server_qps_replicated\": " << server_replicated_qps
         << ",\n"
         << "    \"open_loop_qps\": " << open_loop_qps << ",\n"
         << "    \"speedup_vs_naive\": " << speedup_vs_naive << ",\n"
         << "    \"p50_ms\": " << latency.p50 * 1e3 << ",\n"
         << "    \"p95_ms\": " << latency.p95 * 1e3 << ",\n"
         << "    \"p99_ms\": " << latency.p99 * 1e3 << ",\n"
         << "    \"live_index\": {\n"
         << "      \"docs\": " << churn.docs << ",\n"
         << "      \"steady_qps\": " << churn.steady_qps << ",\n"
         << "      \"churn_qps\": " << churn.churn_qps << ",\n"
         << "      \"churn_ratio\": " << churn_ratio << ",\n"
         << "      \"steady_p99_ms\": " << churn.steady_p99_ms
         << ",\n"
         << "      \"churn_p99_ms\": " << churn.churn_p99_ms << ",\n"
         << "      \"visibility_ms_mean\": "
         << churn.visibility_ms_mean << ",\n"
         << "      \"visibility_ms_max\": "
         << churn.visibility_ms_max << ",\n"
         << "      \"swaps\": " << churn.swaps << ",\n"
         << "      \"merges\": " << churn.merges << ",\n"
         << "      \"writes_per_sec\": "
         << (static_cast<double>(churn.writes)
             / std::max(churn.churn_sec, 1e-9))
         << "\n"
         << "    },\n"
         << "    \"overload\": {\n"
         << "      \"policy\": \"shed_oldest\",\n"
         << "      \"deadline_ms\": " << overload_deadline_ms << ",\n"
         << "      \"offered_qps\": " << overload.offered_qps << ",\n"
         << "      \"completed\": " << overload.stats.completed
         << ",\n"
         << "      \"shed\": " << overload.stats.shed << ",\n"
         << "      \"timed_out\": " << overload.stats.timed_out
         << ",\n"
         << "      \"accepted_p50_ms\": "
         << overload.stats.latency.p50 * 1e3 << ",\n"
         << "      \"accepted_p99_ms\": "
         << overload.stats.latency.p99 * 1e3 << "\n"
         << "    }\n"
         << "  }\n"
         << "}\n";

    if (g_sink.load() == static_cast<std::uint64_t>(-1))
        std::abort(); // defeat over-optimization
    // Both properties must hold: persistent serving beats thread-per-
    // query, and overload degrades gracefully (excess absorbed by
    // counted refusals while accepted queries still complete).
    bool overload_ok = overload.stats.completed > 0
                       && overload.stats.shed
                                  + overload.stats.timed_out
                              > 0;
    // Churn must have been measured against real hot-swapping (the
    // ratio itself is check_bench.py --live's gate).
    bool live_ok = churn.swaps > 0 && churn.churn_qps > 0.0;
    return speedup_vs_naive > 1.0 && overload_ok && live_ok ? 0 : 1;
}
