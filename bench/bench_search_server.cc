/**
 * @file
 * Query-serving benchmark: sustained QPS of the persistent
 * QueryServer against the naive per-query serving path.
 *
 * The deployment shape the ROADMAP asks for is a service under
 * multi-client load, not one query at a time. This bench drives a
 * mixed boolean/ranked query stream from 1..N closed-loop client
 * threads (each submits, waits, submits again) and one open-loop
 * burst, against:
 *
 *   - naive:  what serving looked like before the QueryServer — a
 *     fresh single-worker ThreadPool spawned per query (thread-per-
 *     request), torn down after the answer. Same searchers, same
 *     queries; the only difference is per-query thread spawn.
 *   - server: the persistent QueryServer (bounded admission queue,
 *     batched dispatch, long-lived pool and searchers), over both
 *     the unified snapshot and the replicated (MultiSearcher) one.
 *
 * A final overload scenario drives an open-loop stream paced at 2x
 * the measured service rate into a deadline + shed-oldest server and
 * records how the excess is absorbed: shed/timed-out counters soak
 * the overflow while the p99 of *accepted* queries stays bounded
 * near the deadline — the graceful-degradation property
 * check_bench.py --overload gates (machine-independent).
 *
 * Results go to stdout as a table and to BENCH_server.json in the
 * working directory; scripts/check_bench.py merges the JSON into the
 * BENCH_micro.json comparison and gates server_qps / naive_qps >= 1
 * (machine-independent) plus the absolute QPS against the committed
 * baseline when the hardware is comparable.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "pipeline/thread_pool.hh"
#include "search/query_server.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace {

using namespace dsearch;

/** One query of the served mix. */
struct Work
{
    Query query;
    bool ranked = false;
};

/** Mixed, realistic query shapes over corpus vocabulary. */
std::vector<Work>
makeWork(bool include_ranked)
{
    struct Spec
    {
        const char *text;
        bool ranked;
    };
    const Spec specs[] = {
        {"ba", false},                    // very frequent term
        {"zu", false},                    // rarer term
        {"ba AND be", false},             // frequent intersection
        {"ba AND NOT be", false},         // negation
        {"(ba OR be) AND (bi OR bo)", false},
        {"cido OR cida OR cide", false},  // rare unions
        {"ba be bi bo", false},           // deep intersection
        {"ba OR be", true},               // ranked: frequent union
        {"zu OR cido", true},             // ranked: rare union
        {"ba AND NOT bi", true},          // ranked: negation
    };
    std::vector<Work> work;
    for (const Spec &spec : specs) {
        if (spec.ranked && !include_ranked)
            continue;
        Query query = Query::parse(spec.text);
        if (query.valid())
            work.push_back(Work{std::move(query), spec.ranked});
    }
    return work;
}

/** Defeat over-optimization without perturbing timings. */
std::atomic<std::uint64_t> g_sink{0};

/**
 * The pre-server serving path: every query spawns a fresh
 * single-worker pool (thread-per-request), evaluates on it, tears it
 * down. @p clients closed-loop threads share the long-lived
 * searchers, so thread spawn is the only difference from the server.
 */
double
runNaive(const Searcher &searcher, const RankedSearcher &ranked,
         const std::vector<Work> &work, std::size_t clients,
         std::size_t per_client)
{
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&searcher, &ranked, &work, per_client] {
            std::uint64_t local = 0;
            for (std::size_t i = 0; i < per_client; ++i) {
                const Work &item = work[i % work.size()];
                ThreadPool pool(1); // the cost being measured
                pool.submit([&item, &searcher, &ranked, &local] {
                    if (item.ranked)
                        local += ranked.topK(item.query, 10).size();
                    else
                        local += searcher.run(item.query).size();
                });
                pool.wait();
            }
            g_sink += local;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double seconds = timer.elapsedSec();
    return static_cast<double>(clients * per_client) / seconds;
}

/** Closed-loop clients against a running QueryServer. */
double
runServerClosedLoop(QueryServer &server, const std::vector<Work> &work,
                    std::size_t clients, std::size_t per_client)
{
    server.resetStats();
    Timer timer;
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
        threads.emplace_back([&server, &work, per_client] {
            std::uint64_t local = 0;
            for (std::size_t i = 0; i < per_client; ++i) {
                const Work &item = work[i % work.size()];
                QueryResponse reply =
                    item.ranked
                        ? server.submitRanked(item.query, 10).get()
                        : server.submit(item.query).get();
                local += reply.ok
                             ? reply.hits.size() + reply.ranked.size()
                             : 0;
            }
            g_sink += local;
        });
    }
    for (std::thread &t : threads)
        t.join();
    double seconds = timer.elapsedSec();
    return static_cast<double>(clients * per_client) / seconds;
}

/**
 * Open-loop burst: fire every request up front (admission back-
 * pressure pacing the submitter), then drain. Measures the service
 * rate with a queue that never runs empty.
 */
double
runServerOpenLoop(QueryServer &server, const std::vector<Work> &work,
                  std::size_t total)
{
    server.resetStats();
    std::vector<std::future<QueryResponse>> futures;
    futures.reserve(total);
    Timer timer;
    for (std::size_t i = 0; i < total; ++i) {
        const Work &item = work[i % work.size()];
        futures.push_back(item.ranked
                              ? server.submitRanked(item.query, 10)
                              : server.submit(item.query));
    }
    std::uint64_t local = 0;
    for (auto &future : futures) {
        QueryResponse reply = future.get();
        local += reply.hits.size() + reply.ranked.size();
    }
    g_sink += local;
    double seconds = timer.elapsedSec();
    return static_cast<double>(total) / seconds;
}

/** What the overload scenario measured. */
struct OverloadResult
{
    double offered_qps = 0.0;  ///< Achieved submission rate.
    double deadline_ms = 0.0;
    ServerStats stats;         ///< Counters + accepted latency.
};

/**
 * Open-loop overload: submit @p total boolean queries paced at
 * @p offered_qps (from several submitter threads so pacing, not
 * submission cost, sets the rate) into a server configured with a
 * deadline and a shedding policy, then drain every future.
 */
OverloadResult
runServerOverload(QueryServer &server, const std::vector<Work> &work,
                  double offered_qps, double deadline_ms,
                  std::size_t total)
{
    server.resetStats();
    OverloadResult result;
    result.deadline_ms = deadline_ms;

    const std::size_t submitters = 4;
    const std::size_t per_thread = total / submitters;
    std::vector<std::vector<std::future<QueryResponse>>> futures(
        submitters);
    std::vector<std::thread> threads;
    threads.reserve(submitters);
    Timer timer;
    for (std::size_t s = 0; s < submitters; ++s) {
        threads.emplace_back([&server, &work, offered_qps, per_thread,
                              submitters, &futures, s] {
            // Each submitter paces at its share of the offered rate.
            // Submission never blocks (shedding policy), so pacing,
            // not back-pressure, sets the arrival process.
            const std::chrono::duration<double> interval(
                static_cast<double>(submitters) / offered_qps);
            std::vector<std::future<QueryResponse>> &mine = futures[s];
            mine.reserve(per_thread);
            auto start = std::chrono::steady_clock::now();
            for (std::size_t i = 0; i < per_thread; ++i) {
                std::this_thread::sleep_until(
                    start
                    + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        interval * static_cast<double>(i)));
                const Work &item = work[i % work.size()];
                mine.push_back(server.submit(item.query));
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    // The submission window ends here; the drain below only resolves
    // futures (served, shed or expired — the server answers all).
    double seconds = timer.elapsedSec();
    std::uint64_t local = 0;
    for (std::vector<std::future<QueryResponse>> &mine : futures)
        for (std::future<QueryResponse> &future : mine)
            local += future.get().hits.size();
    g_sink += local;
    result.offered_qps =
        static_cast<double>(per_thread * submitters) / seconds;
    result.stats = server.stats();
    return result;
}

} // namespace

int
main()
{
    using namespace dsearch;

    const std::size_t cores =
        std::max(1u, std::thread::hardware_concurrency());
    // Enough queries that each timed window spans hundreds of
    // milliseconds — per-query costs are tens of microseconds, and
    // short windows make the QPS numbers scheduler lottery.
    const std::size_t per_client = 2000;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.02))
                  .generateInMemory();

    Engine::Result unified =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(static_cast<unsigned>(cores),
                     static_cast<unsigned>(cores), 1)
            .build();
    Engine::Result replicas =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedNoJoin)
            .threads(static_cast<unsigned>(cores),
                     static_cast<unsigned>(cores))
            .build();
    const std::size_t doc_count = unified.docs.docCount();

    // Long-lived searchers for the naive path (it shares them; only
    // thread spawn differs from the server).
    Searcher searcher(unified.snapshot, doc_count);
    RankedSearcher ranked(unified.snapshot, unified.docs);

    std::vector<Work> mixed = makeWork(/*include_ranked=*/true);
    std::vector<Work> boolean_only = makeWork(/*include_ranked=*/false);

    Table table("query serving — sustained QPS (" +
                std::to_string(doc_count) + " docs, " +
                std::to_string(cores) + "-core host, mixed " +
                std::to_string(mixed.size()) + "-query batch, " +
                std::to_string(per_client) + " queries/client)");
    table.setColumns({"path", "clients", "QPS", "p95 (ms)"});

    QueryServer server(unified.snapshot, unified.docs);
    QueryServer server_replicated(replicas.snapshot,
                                  std::move(replicas.docs));

    // Warm-up: fault in postings, fill the ranked term cache, let
    // the pools reach steady state.
    runServerClosedLoop(server, mixed, 2, 50);
    runServerClosedLoop(server_replicated, boolean_only, 2, 50);
    runNaive(searcher, ranked, mixed, 2, 25);

    // Closed-loop client sweep against the unified server: powers
    // of two up to the core count, which is always included last.
    std::vector<std::size_t> widths;
    for (std::size_t c = 1; c < cores; c *= 2)
        widths.push_back(c);
    widths.push_back(cores);

    double server_qps = 0.0;
    LatencySummary latency;
    for (std::size_t clients : widths) {
        double qps =
            runServerClosedLoop(server, mixed, clients, per_client);
        ServerStats stats = server.stats();
        table.addRow({"server (unified)", std::to_string(clients),
                      formatDouble(qps, 0),
                      formatDouble(stats.latency.p95 * 1e3, 3)});
        server_qps = qps;          // ends at the widest (cores)
        latency = stats.latency;
    }

    // Replicated snapshot at full width.
    double server_replicated_qps = runServerClosedLoop(
        server_replicated, boolean_only, cores, per_client);
    table.addRow({"server (replicated)", std::to_string(cores),
                  formatDouble(server_replicated_qps, 0),
                  formatDouble(
                      server_replicated.stats().latency.p95 * 1e3,
                      3)});

    // Open-loop burst at full depth.
    double open_loop_qps =
        runServerOpenLoop(server, mixed, cores * per_client);
    table.addRow({"server (open loop)", "1",
                  formatDouble(open_loop_qps, 0),
                  formatDouble(server.stats().latency.p95 * 1e3, 3)});

    // The naive path at full client width.
    double naive_qps =
        runNaive(searcher, ranked, mixed, cores, per_client);
    table.addRow({"naive (pool per query)", std::to_string(cores),
                  formatDouble(naive_qps, 0), "-"});

    // Overload: a fresh server with a per-query deadline and shed-
    // oldest admission, offered 2x the service rate just measured.
    // One second of overload, bounded for very fast hosts.
    const double overload_deadline_ms = 10.0;
    ServerOptions overload_options;
    overload_options.queue_capacity = 256;
    overload_options.deadline_sec = overload_deadline_ms / 1e3;
    overload_options.overload_policy = OverloadPolicy::ShedOldest;
    QueryServer overload_server(unified.snapshot, unified.docs,
                                overload_options);
    runServerOverload(overload_server, boolean_only, server_qps,
                      overload_deadline_ms, 2000); // warm-up
    const double offered_target = 2.0 * server_qps;
    const std::size_t overload_total = static_cast<std::size_t>(
        std::clamp(offered_target, 2e4, 2e6));
    OverloadResult overload =
        runServerOverload(overload_server, boolean_only,
                          offered_target, overload_deadline_ms,
                          overload_total);
    overload_server.shutdown();
    table.addRow({"server (2x overload)", "4",
                  formatDouble(
                      static_cast<double>(overload.stats.completed)
                          / overload.stats.elapsed_sec,
                      0),
                  formatDouble(overload.stats.latency.p95 * 1e3, 3)});

    table.render(std::cout);
    std::cout << "overload (offered "
              << formatDouble(overload.offered_qps, 0) << " QPS, "
              << formatDouble(overload_deadline_ms, 0)
              << " ms deadline): completed "
              << overload.stats.completed << ", shed "
              << overload.stats.shed << ", timed out "
              << overload.stats.timed_out << ", accepted p99 "
              << formatDouble(overload.stats.latency.p99 * 1e3, 3)
              << " ms\n";
    double speedup_vs_naive =
        naive_qps > 0.0 ? server_qps / naive_qps : 0.0;
    std::cout << "persistent server vs naive per-query path: "
              << formatDouble(speedup_vs_naive, 2) << "x at " << cores
              << " clients\n";

    std::ofstream json("BENCH_server.json");
    json << "{\n"
         << "  \"bench\": \"search_server\",\n"
         << "  \"search_server\": {\n"
         << "    \"docs\": " << doc_count << ",\n"
         << "    \"clients\": " << cores << ",\n"
         << "    \"queries_per_client\": " << per_client << ",\n"
         << "    \"naive_qps\": " << naive_qps << ",\n"
         << "    \"server_qps\": " << server_qps << ",\n"
         << "    \"server_qps_replicated\": " << server_replicated_qps
         << ",\n"
         << "    \"open_loop_qps\": " << open_loop_qps << ",\n"
         << "    \"speedup_vs_naive\": " << speedup_vs_naive << ",\n"
         << "    \"p50_ms\": " << latency.p50 * 1e3 << ",\n"
         << "    \"p95_ms\": " << latency.p95 * 1e3 << ",\n"
         << "    \"p99_ms\": " << latency.p99 * 1e3 << ",\n"
         << "    \"overload\": {\n"
         << "      \"policy\": \"shed_oldest\",\n"
         << "      \"deadline_ms\": " << overload_deadline_ms << ",\n"
         << "      \"offered_qps\": " << overload.offered_qps << ",\n"
         << "      \"completed\": " << overload.stats.completed
         << ",\n"
         << "      \"shed\": " << overload.stats.shed << ",\n"
         << "      \"timed_out\": " << overload.stats.timed_out
         << ",\n"
         << "      \"accepted_p50_ms\": "
         << overload.stats.latency.p50 * 1e3 << ",\n"
         << "      \"accepted_p99_ms\": "
         << overload.stats.latency.p99 * 1e3 << "\n"
         << "    }\n"
         << "  }\n"
         << "}\n";

    if (g_sink.load() == static_cast<std::uint64_t>(-1))
        std::abort(); // defeat over-optimization
    // Both properties must hold: persistent serving beats thread-per-
    // query, and overload degrades gracefully (excess absorbed by
    // counted refusals while accepted queries still complete).
    bool overload_ok = overload.stats.completed > 0
                       && overload.stats.shed
                                  + overload.stats.timed_out
                              > 0;
    return speedup_vs_naive > 1.0 && overload_ok ? 0 : 1;
}
