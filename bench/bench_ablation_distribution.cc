/**
 * @file
 * E5: work-distribution ablation (§2.1/§3 of the paper).
 *
 * The paper tried size-aware distribution and found that "simply
 * assigning files round-robin was the fastest approach"; shared work
 * queues were expected to slow everything down. This bench measures
 * all four strategies implemented in pipeline/distribution.hh on the
 * real generator, over a corpus whose size skew (five large files)
 * is the interesting case for balancing.
 */

#include <iostream>
#include <thread>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned repeats = 5;

    // Heavier skew than the default so balancing matters: half the
    // bytes in the five large files.
    CorpusSpec spec = CorpusSpec::paperScaled(0.05);
    spec.large_file_share = 0.5;
    auto fs = CorpusGenerator(spec).generateInMemory();

    Table table("E5 — file-distribution strategies (real runs, "
                + std::to_string(cores) + "-core host, "
                + formatBytes(fs->totalBytes())
                + " skewed corpus, Implementation 3, x = "
                + std::to_string(cores) + ", mean of "
                + std::to_string(repeats) + ")");
    table.setColumns(
        {"strategy", "time (s)", "stddev", "vs round-robin"});

    double round_robin_time = 0.0;
    for (DistributionKind kind :
         {DistributionKind::RoundRobin, DistributionKind::SizeBalanced,
          DistributionKind::SharedQueue,
          DistributionKind::WorkStealing}) {
        Config cfg = Config::replicatedNoJoin(cores, 0);
        cfg.distribution = kind;
        RunningStat stat;
        for (unsigned r = 0; r < repeats; ++r) {
            IndexGenerator generator(*fs, "/", cfg);
            stat.push(generator.build().times.total);
        }
        if (kind == DistributionKind::RoundRobin)
            round_robin_time = stat.mean();
        table.addRow({name(kind), formatDouble(stat.mean(), 3),
                      formatDouble(stat.stddev(), 3),
                      formatDouble(percentDelta(stat.mean(),
                                                round_robin_time),
                                   1)
                          + "%"});
    }

    table.render(std::cout);
    std::cout << "Expected shape (paper §3): round-robin within noise "
                 "of the dynamic\nstrategies; nothing beats it enough "
                 "to justify synchronization. Large\nskew may favour "
                 "stealing/size-balance slightly.\n";
    return 0;
}
