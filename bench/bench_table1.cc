/**
 * @file
 * Reproduction of the paper's Table 1: execution times for sequential
 * index generation, decomposed into filename generation, reading,
 * reading + term extraction, and index update.
 *
 * The three paper platforms are simulated (calibrated cost models —
 * this host has neither the machines nor the 869 MB corpus); a fourth
 * row measures the real single-threaded pipeline on this host over a
 * scaled synthetic corpus served from memory, as ground truth for the
 * stage *ordering*.
 */

#include <iostream>

#include "core/engine.hh"
#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "sim/pipeline_sim.hh"
#include "util/string_util.hh"
#include "util/table.hh"

namespace {

using namespace dsearch;

struct PaperStageRow
{
    const char *label;
    PlatformSpec platform;
    double fname, read, read_extract, index, seq_total;
};

void
addComparisonRows(Table &table, const char *label,
                  const StageTimes &sim, double seq_sim,
                  const PaperStageRow &paper)
{
    table.addRow({std::string(label) + " (paper)",
                  formatDouble(paper.fname, 1),
                  formatDouble(paper.read, 1),
                  formatDouble(paper.read_extract, 1),
                  formatDouble(paper.index, 1),
                  formatDouble(paper.seq_total, 1)});
    table.addRow({std::string(label) + " (simulated)",
                  formatDouble(sim.filename_generation, 1),
                  formatDouble(sim.read_files, 1),
                  formatDouble(sim.read_and_extract, 1),
                  formatDouble(sim.index_update, 1),
                  formatDouble(seq_sim, 1)});
}

} // namespace

int
main()
{
    const PaperStageRow rows[] = {
        {"4-core", PlatformSpec::quadCore2010(), 5.0, 77.0, 88.0,
         22.0, 220.0},
        {"8-core", PlatformSpec::octCore2010(), 4.0, 47.0, 61.0, 29.0,
         105.0},
        {"32-core", PlatformSpec::manyCore2010(), 5.0, 73.0, 80.0,
         28.0, 90.0},
    };

    Table table(
        "Table 1 — execution times (s) for sequential index "
        "generation\n(read/read+extract/index measured as dedicated "
        "passes; 'seq total' is the interleaved sequential program)");
    table.setColumns({"platform", "filename gen", "read files",
                      "read+extract", "index update", "seq total"});

    WorkloadModel workload =
        WorkloadModel::fromCorpusSpec(CorpusSpec::paper());
    for (const PaperStageRow &row : rows) {
        PipelineSim sim(row.platform, workload);
        StageTimes stages = sim.measureStages();
        double seq = sim.run(Config::sequential()).total_sec;
        addComparisonRows(table, row.label, stages, seq, row);
        table.addSeparator();
    }

    // Host ground truth: real pipeline, scaled corpus, in-memory FS.
    const double scale = 0.05;
    auto fs = CorpusGenerator(CorpusSpec::paperScaled(scale))
                  .generateInMemory();
    StageTimes host = IndexGenerator::measureSequentialStages(*fs, "/");
    double host_seq = Engine::open(*fs, "/")
                          .organization(Implementation::Sequential)
                          .build()
                          .times.total;
    table.addRow({"host, real, " + formatBytes(fs->totalBytes())
                      + " in-memory corpus",
                  formatDouble(host.filename_generation, 2),
                  formatDouble(host.read_files, 2),
                  formatDouble(host.read_and_extract, 2),
                  formatDouble(host.index_update, 2),
                  formatDouble(host_seq, 2)});

    table.render(std::cout);
    std::cout
        << "Expected shape: read >> extract-only delta; index is a "
           "fraction of read;\nfilename generation is 2-5% of total; "
           "the interleaved sequential total exceeds\nthe sum of "
           "dedicated passes on disk-backed platforms (readahead "
           "loss).\n";
    return 0;
}
