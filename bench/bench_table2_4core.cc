/**
 * @file
 * Reproduction of the paper's Table 2: best configurations of the
 * three implementations on the 4-core machine (Q6600, Windows 7).
 *
 * Paper result: all three implementations tie at ~46.4-46.9 s with a
 * super-linear speed-up of ~4.7 over the 220 s sequential program —
 * the disk is the bottleneck, parallel reads beat the single-stream
 * scan, and index organization barely matters.
 */

#include "table_sweep.hh"

int
main()
{
    using namespace dsearch;
    TableBenchSpec spec{
        "Table 2",
        PlatformSpec::quadCore2010(),
        220.0,
        {
            {Implementation::SharedLocked, "(3, 1, 0)", 46.7, 4.71},
            {Implementation::ReplicatedJoin, "(3, 5, 1)", 46.9, 4.70},
            {Implementation::ReplicatedNoJoin, "(3, 2, 0)", 46.4,
             4.74},
        },
        8, // max x
        6, // max y
        2, // max z
    };
    runTableBench(spec);
    std::cout << "Expected shape: all three implementations within "
                 "~1-2%; speed-up > 4\n(super-linear: the sequential "
                 "baseline loses readahead, the parallel\nreaders "
                 "get elevator scheduling); best x around 3.\n";
    return 0;
}
