/**
 * @file
 * Substrate micro-benchmarks (google-benchmark): FNV hashing, the
 * open-addressing containers against their std counterparts, the
 * tokenizer, the Zipf sampler, the blocking queue, and en-bloc index
 * insertion. These locate the constants behind the cost model in
 * sim/platform.cc.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_map>
#include <vector>

#include "index/inverted_index.hh"
#include "pipeline/blocking_queue.hh"
#include "text/tokenizer.hh"
#include "util/fnv_hash.hh"
#include "util/hash_map.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace {

using namespace dsearch;

std::vector<std::string>
wordKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    Rng rng(42);
    ZipfDistribution zipf(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("word" + std::to_string(i));
    return keys;
}

void
BM_Fnv1a64(benchmark::State &state)
{
    std::string data(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state)
        benchmark::DoNotOptimize(fnv1a_64(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(8)->Arg(64)->Arg(4096);

void
BM_HashMapInsert(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        HashMap<std::string, int> map;
        for (const std::string &key : keys)
            map.insert(key, 1);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_HashMapInsert)->Arg(1000)->Arg(100000);

void
BM_StdUnorderedMapInsert(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::unordered_map<std::string, int> map;
        for (const std::string &key : keys)
            map.emplace(key, 1);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_StdUnorderedMapInsert)->Arg(1000)->Arg(100000);

void
BM_HashMapLookup(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    HashMap<std::string, int> map;
    for (const std::string &key : keys)
        map.insert(key, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashMapLookup)->Arg(100000);

void
BM_StdUnorderedMapLookup(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    std::unordered_map<std::string, int> map;
    for (const std::string &key : keys)
        map.emplace(key, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StdUnorderedMapLookup)->Arg(100000);

void
BM_TokenizerThroughput(benchmark::State &state)
{
    // Representative document text.
    Rng rng(7);
    ZipfDistribution zipf(20000, 1.0);
    std::string text;
    while (text.size() < static_cast<std::size_t>(state.range(0))) {
        text += "w" + std::to_string(zipf.sample(rng));
        text += ' ';
    }
    Tokenizer tokenizer;
    for (auto _ : state) {
        std::size_t count = 0;
        tokenizer.forEachToken(text,
                               [&count](std::string_view) { ++count; });
        benchmark::DoNotOptimize(count);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TokenizerThroughput)->Arg(1 << 14)->Arg(1 << 20);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)),
                          1.0);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(120000);

void
BM_BlockingQueuePingPong(benchmark::State &state)
{
    BlockingQueue<int> queue(64);
    for (auto _ : state) {
        queue.push(1);
        int out;
        queue.pop(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockingQueuePingPong);

void
BM_IndexAddBlock(benchmark::State &state)
{
    // Per-file en-bloc insertion: the Stage 3 unit of work.
    const std::size_t terms_per_block =
        static_cast<std::size_t>(state.range(0));
    TermBlock block;
    for (std::size_t t = 0; t < terms_per_block; ++t)
        block.terms.push_back("term" + std::to_string(t));
    DocId doc = 0;
    InvertedIndex index;
    for (auto _ : state) {
        block.doc = doc++;
        index.addBlock(block);
        benchmark::DoNotOptimize(index.postingCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(terms_per_block));
}
BENCHMARK(BM_IndexAddBlock)->Arg(64)->Arg(512);

void
BM_IndexMerge(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        InvertedIndex a, b;
        TermBlock block;
        for (int t = 0; t < 2000; ++t)
            block.terms.push_back("t" + std::to_string(t));
        block.doc = 0;
        a.addBlock(block);
        block.doc = 1;
        b.addBlock(block);
        state.ResumeTiming();
        a.merge(std::move(b));
        benchmark::DoNotOptimize(a.postingCount());
    }
}
BENCHMARK(BM_IndexMerge);

} // namespace

BENCHMARK_MAIN();
