/**
 * @file
 * Substrate micro-benchmarks (google-benchmark): FNV hashing, the
 * open-addressing containers against their std counterparts, the
 * tokenizer, the Zipf sampler, the blocking queue, and en-bloc index
 * insertion. These locate the constants behind the cost model in
 * sim/platform.cc.
 *
 * Before the google-benchmark suite runs, main() measures the full
 * Stage 2+3 pipeline (read + extract + index update) twice over the
 * same in-memory corpus — once through a faithful replica of the
 * seed's string-copying containers (per-token std::string, hash
 * recomputed on every probe and rehash) and once through the
 * zero-copy arena/hash-once path — and writes the comparison to
 * BENCH_micro.json (tokens/sec, postings/sec, bytes allocated per
 * block) so subsequent PRs can track the perf trajectory.
 *
 * A third section seals the zero-copy index and reports the
 * compressed posting storage: bytes per posting raw (one DocId each)
 * versus sealed (compressed blocks + skip entries), the resulting
 * compression ratio — gated >= 2x by scripts/check_bench.py — and
 * seal/decode throughput in postings per second.
 *
 * A fourth section benches the posting codecs head to head on
 * synthetic lists spanning the realistic delta widths: full-list
 * block-view decode through delta+varint versus bit-packed blocks
 * (SIMD tier reported via postingSimdLevel()), and a two-list AND
 * through the per-doc seekGE merge versus the bulk SIMD
 * intersectTermCursors() path. check_bench.py gates the
 * machine-independent ratios (packed >= varint decode, bulk >= merge
 * intersection) absolutely and the absolute packed postings/sec
 * against the baseline on comparable hosts.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"
#include "index/posting_block.hh"
#include "index/posting_cursor.hh"
#include "pipeline/blocking_queue.hh"
#include "search/plan.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "text/tokenizer.hh"
#include "util/fnv_hash.hh"
#include "util/hash_map.hh"
#include "util/rng.hh"
#include "util/timer.hh"
#include "util/zipf.hh"

// ----------------------------------------------------------------------
// Allocation instrumentation: every global new is counted so the
// Stage 2+3 comparison can report bytes allocated per block.
// ----------------------------------------------------------------------

namespace {

std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_alloc_calls{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace dsearch;

std::vector<std::string>
wordKeys(std::size_t n)
{
    std::vector<std::string> keys;
    keys.reserve(n);
    Rng rng(42);
    ZipfDistribution zipf(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        keys.push_back("word" + std::to_string(i));
    return keys;
}

void
BM_Fnv1a64(benchmark::State &state)
{
    std::string data(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state)
        benchmark::DoNotOptimize(fnv1a_64(data.data(), data.size()));
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_Fnv1a64)->Arg(8)->Arg(64)->Arg(4096);

void
BM_HashMapInsert(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        HashMap<std::string, int> map;
        for (const std::string &key : keys)
            map.insert(key, 1);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_HashMapInsert)->Arg(1000)->Arg(100000);

void
BM_StdUnorderedMapInsert(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::unordered_map<std::string, int> map;
        for (const std::string &key : keys)
            map.emplace(key, 1);
        benchmark::DoNotOptimize(map.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * state.range(0));
}
BENCHMARK(BM_StdUnorderedMapInsert)->Arg(1000)->Arg(100000);

void
BM_HashMapLookup(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    HashMap<std::string, int> map;
    for (const std::string &key : keys)
        map.insert(key, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashMapLookup)->Arg(100000);

void
BM_HashMapLookupHashed(benchmark::State &state)
{
    // The Stage-3 probe as the zero-copy pipeline issues it: a
    // string_view with its hash already in hand.
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    HashMap<std::string, int> map;
    std::vector<std::uint64_t> hashes;
    hashes.reserve(keys.size());
    for (const std::string &key : keys) {
        map.insert(key, 1);
        hashes.push_back(fnv1a_64(key));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.findHashed(
            hashes[i], std::string_view(keys[i])));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_HashMapLookupHashed)->Arg(100000);

void
BM_StdUnorderedMapLookup(benchmark::State &state)
{
    auto keys = wordKeys(static_cast<std::size_t>(state.range(0)));
    std::unordered_map<std::string, int> map;
    for (const std::string &key : keys)
        map.emplace(key, 1);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(map.find(keys[i]));
        i = (i + 1) % keys.size();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_StdUnorderedMapLookup)->Arg(100000);

void
BM_TokenizerThroughput(benchmark::State &state)
{
    // Representative document text.
    Rng rng(7);
    ZipfDistribution zipf(20000, 1.0);
    std::string text;
    while (text.size() < static_cast<std::size_t>(state.range(0))) {
        text += "w" + std::to_string(zipf.sample(rng));
        text += ' ';
    }
    Tokenizer tokenizer;
    for (auto _ : state) {
        std::size_t count = 0;
        tokenizer.forEachToken(text,
                               [&count](std::string_view) { ++count; });
        benchmark::DoNotOptimize(count);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_TokenizerThroughput)->Arg(1 << 14)->Arg(1 << 20);

void
BM_ZipfSample(benchmark::State &state)
{
    ZipfDistribution zipf(static_cast<std::size_t>(state.range(0)),
                          1.0);
    Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(zipf.sample(rng));
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(120000);

void
BM_BlockingQueuePingPong(benchmark::State &state)
{
    BlockingQueue<int> queue(64);
    for (auto _ : state) {
        queue.push(1);
        int out;
        queue.pop(out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BlockingQueuePingPong);

void
BM_IndexAddBlock(benchmark::State &state)
{
    // Per-file en-bloc insertion: the Stage 3 unit of work.
    const std::size_t terms_per_block =
        static_cast<std::size_t>(state.range(0));
    TermBlock block;
    for (std::size_t t = 0; t < terms_per_block; ++t)
        block.addTerm("term" + std::to_string(t));
    DocId doc = 0;
    InvertedIndex index;
    for (auto _ : state) {
        block.doc = doc++;
        index.addBlock(block);
        benchmark::DoNotOptimize(index.postingCount());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(terms_per_block));
}
BENCHMARK(BM_IndexAddBlock)->Arg(64)->Arg(512);

void
BM_IndexMerge(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        InvertedIndex a, b;
        TermBlock block;
        for (int t = 0; t < 2000; ++t)
            block.addTerm("t" + std::to_string(t));
        block.doc = 0;
        a.addBlock(block);
        block.doc = 1;
        b.addBlock(block);
        state.ResumeTiming();
        a.merge(std::move(b));
        benchmark::DoNotOptimize(a.postingCount());
    }
}
BENCHMARK(BM_IndexMerge);

// ----------------------------------------------------------------------
// Stage 2+3 comparison: seed-style string pipeline vs the zero-copy
// arena pipeline, over the same corpus. The legacy containers below
// faithfully replicate the seed's behaviour: no cached hashes (every
// probe and every rehash re-hashes the key), no heterogeneous lookup
// (every token becomes a std::string before dedup), and blocks as
// vector<std::string>.
// ----------------------------------------------------------------------

/** Seed-replica open-addressing map: string keys, hash-per-probe. */
template <typename Value>
class LegacyMap
{
  public:
    Value &
    operator[](const std::string &key)
    {
        growIfNeeded();
        std::size_t pos = probe(key);
        if (!_slots[pos].occupied) {
            _slots[pos].key = key;
            _slots[pos].occupied = true;
            ++_size;
        }
        return _slots[pos].value;
    }

    bool
    insert(const std::string &key)
    {
        growIfNeeded();
        std::size_t pos = probe(key);
        if (_slots[pos].occupied)
            return false;
        _slots[pos].key = key;
        _slots[pos].occupied = true;
        ++_size;
        return true;
    }

    void
    clear()
    {
        for (auto &slot : _slots)
            slot = Slot{};
        _size = 0;
    }

    std::size_t size() const { return _size; }

  private:
    struct Slot
    {
        std::string key{};
        Value value{};
        bool occupied = false;
    };

    std::size_t
    probe(const std::string &key) const
    {
        // The seed's probe: hash computed here, full string compares
        // along the chain.
        std::size_t mask = _slots.size() - 1;
        std::size_t pos = fnv1a_64(key) & mask;
        while (_slots[pos].occupied && !(_slots[pos].key == key))
            pos = (pos + 1) & mask;
        return pos;
    }

    void
    growIfNeeded()
    {
        if (_slots.empty()) {
            _slots.assign(16, Slot{});
            return;
        }
        if ((_size + 1) * 8 > _slots.size() * 5) {
            std::vector<Slot> old = std::move(_slots);
            _slots.assign(old.size() * 2, Slot{});
            for (Slot &slot : old) {
                if (slot.occupied) {
                    // Seed rehash: re-hashes every key.
                    std::size_t pos = probe(slot.key);
                    _slots[pos] = std::move(slot);
                }
            }
        }
    }

    std::vector<Slot> _slots;
    std::size_t _size = 0;
};

struct StageMetrics
{
    double seconds = 0;
    std::uint64_t tokens = 0;
    std::uint64_t postings = 0;
    std::uint64_t files = 0;
    std::uint64_t alloc_bytes = 0;
    std::uint64_t alloc_calls = 0;

    double tokensPerSec() const { return tokens / seconds; }
    double postingsPerSec() const { return postings / seconds; }
    double
    allocBytesPerBlock() const
    {
        return files ? static_cast<double>(alloc_bytes) / files : 0.0;
    }
    double
    allocsPerToken() const
    {
        return tokens ? static_cast<double>(alloc_calls) / tokens : 0.0;
    }
};

/** Seed-style Stage 2+3 over @p files: string dedup + string map. */
StageMetrics
runLegacy(const FileSystem &fs, const FileList &files)
{
    StageMetrics m;
    Tokenizer tokenizer;
    LegacyMap<char> seen;
    LegacyMap<PostingList> index;
    std::string content;
    std::uint64_t alloc_bytes0 = g_alloc_bytes.load();
    std::uint64_t alloc_calls0 = g_alloc_calls.load();
    Timer timer;
    for (const FileEntry &file : files) {
        if (!fs.readFile(file.path, content))
            continue;
        seen.clear();
        std::vector<std::string> terms;
        tokenizer.forEachToken(content, [&](std::string_view term) {
            ++m.tokens;
            std::string owned(term);
            if (seen.insert(owned))
                terms.push_back(std::move(owned));
        });
        for (const std::string &term : terms) {
            index[term].push_back(file.doc);
            ++m.postings;
        }
        ++m.files;
    }
    m.seconds = timer.elapsedSec();
    m.alloc_bytes = g_alloc_bytes.load() - alloc_bytes0;
    m.alloc_calls = g_alloc_calls.load() - alloc_calls0;
    benchmark::DoNotOptimize(index.size());
    return m;
}

/** Zero-copy Stage 2+3 over @p files: arena blocks + hashed inserts. */
StageMetrics
runZeroCopy(const FileSystem &fs, const FileList &files)
{
    StageMetrics m;
    TermExtractor extractor(fs);
    InvertedIndex index;
    TermBlock block;
    std::uint64_t alloc_bytes0 = g_alloc_bytes.load();
    std::uint64_t alloc_calls0 = g_alloc_calls.load();
    Timer timer;
    for (const FileEntry &file : files) {
        if (!extractor.extract(file, block))
            continue;
        index.addBlock(block);
    }
    m.seconds = timer.elapsedSec();
    m.tokens = extractor.stats().tokens;
    m.postings = index.postingCount();
    m.files = extractor.stats().files;
    m.alloc_bytes = g_alloc_bytes.load() - alloc_bytes0;
    m.alloc_calls = g_alloc_calls.load() - alloc_calls0;
    benchmark::DoNotOptimize(index.termCount());
    return m;
}

/** Sealed-segment storage + throughput metrics; see file comment. */
struct SealedMetrics
{
    std::uint64_t postings = 0;
    std::uint64_t raw_bytes = 0;        ///< postings * sizeof(DocId)
    std::uint64_t compressed_bytes = 0; ///< arena + skip entries
    double seal_seconds = 0;
    double decode_seconds = 0;

    double
    rawBytesPerPosting() const
    {
        return postings ? static_cast<double>(raw_bytes) / postings
                        : 0.0;
    }
    double
    compressedBytesPerPosting() const
    {
        return postings
                   ? static_cast<double>(compressed_bytes) / postings
                   : 0.0;
    }
    double
    compressionRatio() const
    {
        return compressed_bytes
                   ? static_cast<double>(raw_bytes) / compressed_bytes
                   : 0.0;
    }
    double sealPostingsPerSec() const
    {
        return postings / seal_seconds;
    }
    double decodePostingsPerSec() const
    {
        return postings / decode_seconds;
    }
};

/**
 * Build the index once more over @p files, then measure sealing
 * (sort + block-encode into the segment arena) and a full decode
 * (every term's cursor walked end to end).
 */
SealedMetrics
runSealedSegment(const FileSystem &fs, const FileList &files)
{
    TermExtractor extractor(fs);
    InvertedIndex index;
    TermBlock block;
    for (const FileEntry &file : files) {
        if (!extractor.extract(file, block))
            continue;
        index.addBlock(block);
    }

    SealedMetrics m;
    m.postings = index.postingCount();
    m.raw_bytes = m.postings * sizeof(DocId);

    Timer seal_timer;
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    m.seal_seconds = seal_timer.elapsedSec();
    m.compressed_bytes = snapshot.segment(0).sealed()->postingBytes();

    Timer decode_timer;
    std::uint64_t decoded = 0;
    DocId checksum = 0;
    snapshot.forEachTerm(
        [&decoded, &checksum](const std::string &, PostingCursor c) {
            for (; c.valid(); c.next()) {
                checksum ^= c.doc();
                ++decoded;
            }
        });
    m.decode_seconds = decode_timer.elapsedSec();
    benchmark::DoNotOptimize(checksum);
    if (decoded != m.postings)
        std::cerr << "bench_micro: decode mismatch: " << decoded
                  << " != " << m.postings << "\n";
    return m;
}

// ----------------------------------------------------------------------
// Posting-codec head-to-head: varint vs bit-packed decode, seekGE
// merge vs bulk SIMD intersection. Synthetic lists isolate the codec
// from corpus shape; the gap profiles cover the packed widths a real
// index produces (dense runs through sparse jumps).
// ----------------------------------------------------------------------

/** One synthetic posting list in both encodings. */
struct CodecList
{
    std::vector<DocId> docs;
    std::vector<std::uint8_t> varint_bytes;
    std::vector<SkipEntry> varint_skips;
    std::vector<std::uint8_t> packed_bytes;
    std::vector<SkipEntry> packed_skips;

    explicit CodecList(std::vector<DocId> d) : docs(std::move(d))
    {
        encodePostings(docs.data(), docs.size(), varint_bytes,
                       varint_skips);
        encodePostingsPacked(docs.data(), docs.size(), packed_bytes,
                             packed_skips);
    }

    PostingCursor
    cursor(PostingCodec codec) const
    {
        const bool packed = codec == PostingCodec::Packed;
        const auto &bytes = packed ? packed_bytes : varint_bytes;
        const auto &skips = packed ? packed_skips : varint_skips;
        return PostingCursor(
            bytes.data(), skips.empty() ? nullptr : skips.data(),
            static_cast<std::uint32_t>(skips.size()),
            static_cast<std::uint32_t>(docs.size()), codec);
    }
};

/** Sorted list of @p n docs with average gap @p mean_gap. */
std::vector<DocId>
syntheticDocs(Rng &rng, std::size_t n, DocId mean_gap)
{
    std::vector<DocId> docs;
    docs.reserve(n);
    DocId doc = 0;
    for (std::size_t i = 0; i < n; ++i) {
        doc += 1 + static_cast<DocId>(rng.nextU64() % (2 * mean_gap));
        docs.push_back(doc);
    }
    return docs;
}

struct CodecDecodeMetrics
{
    std::uint64_t postings = 0;
    double varint_seconds = 0;
    double packed_seconds = 0;

    double varintPostingsPerSec() const
    {
        return postings / varint_seconds;
    }
    double packedPostingsPerSec() const
    {
        return postings / packed_seconds;
    }
    /** Throughput ratio: > 1 means bit-packed decodes faster. */
    double packedVsVarint() const
    {
        return varint_seconds / packed_seconds;
    }
};

/** Best-of-passes block-view walk over every list in @p lists. */
double
timeDecodeWalk(const std::vector<CodecList> &lists, PostingCodec codec,
               int passes)
{
    double best = 0;
    for (int pass = 0; pass < passes; ++pass) {
        Timer timer;
        DocId checksum = 0;
        for (const CodecList &list : lists) {
            PostingCursor c = list.cursor(codec);
            while (c.valid()) {
                const DocId *p = c.blockDocs();
                const std::size_t n = c.blockRemaining();
                checksum ^= p[0] ^ p[n - 1];
                c.skipInBlock(n);
            }
        }
        const double seconds = timer.elapsedSec();
        benchmark::DoNotOptimize(checksum);
        if (pass == 0 || seconds < best)
            best = seconds;
    }
    return best;
}

CodecDecodeMetrics
runCodecDecode()
{
    // Four gap profiles -> packed widths ~2 through ~14 bits.
    Rng rng(0xdec0de);
    std::vector<CodecList> lists;
    const std::size_t per_list = 1 << 19;
    for (DocId mean_gap : {1, 4, 100, 5000})
        lists.emplace_back(syntheticDocs(rng, per_list, mean_gap));

    CodecDecodeMetrics m;
    for (const CodecList &list : lists)
        m.postings += list.docs.size();
    timeDecodeWalk(lists, PostingCodec::Varint, 1); // warm-up
    timeDecodeWalk(lists, PostingCodec::Packed, 1);
    m.varint_seconds = timeDecodeWalk(lists, PostingCodec::Varint, 5);
    m.packed_seconds = timeDecodeWalk(lists, PostingCodec::Packed, 5);
    return m;
}

struct IntersectMetrics
{
    std::uint64_t postings = 0; ///< Summed input list lengths.
    std::uint64_t matches = 0;
    double merge_seconds = 0; ///< Per-doc seekGE merge.
    double bulk_seconds = 0;  ///< Blockwise SIMD path.

    double mergePostingsPerSec() const
    {
        return postings / merge_seconds;
    }
    double bulkPostingsPerSec() const
    {
        return postings / bulk_seconds;
    }
    double speedup() const { return merge_seconds / bulk_seconds; }
};

/** The pre-SIMD AND loop: advance the behind cursor with seekGE. */
std::size_t
mergeIntersect(PostingCursor a, PostingCursor b)
{
    std::size_t matches = 0;
    DocId checksum = 0;
    while (a.valid() && b.valid()) {
        if (a.doc() == b.doc()) {
            checksum ^= a.doc();
            ++matches;
            a.next();
            b.next();
        } else if (a.doc() < b.doc()) {
            if (!a.seekGE(b.doc()))
                break;
        } else if (!b.seekGE(a.doc())) {
            break;
        }
    }
    benchmark::DoNotOptimize(checksum);
    return matches;
}

IntersectMetrics
runIntersection()
{
    // A dense 2M list against a 4:1 sparser one over the same doc
    // space: enough overlap that the kernel does real work, enough
    // skew that galloping matters.
    Rng rng(0xa17d);
    CodecList a(syntheticDocs(rng, 2 << 20, 2));
    CodecList b(syntheticDocs(rng, 1 << 19, 8));

    IntersectMetrics m;
    m.postings = a.docs.size() + b.docs.size();

    const int passes = 5;
    std::size_t merge_matches = 0;
    std::size_t bulk_matches = 0;
    for (int pass = -1; pass < passes; ++pass) { // pass -1 warms up
        Timer merge_timer;
        merge_matches = mergeIntersect(a.cursor(PostingCodec::Packed),
                                       b.cursor(PostingCodec::Packed));
        const double merge_s = merge_timer.elapsedSec();

        Timer bulk_timer;
        std::vector<PostingCursor> cursors;
        cursors.push_back(a.cursor(PostingCodec::Packed));
        cursors.push_back(b.cursor(PostingCodec::Packed));
        DocSet out = intersectTermCursors(std::move(cursors));
        const double bulk_s = bulk_timer.elapsedSec();
        bulk_matches = out.size();
        benchmark::DoNotOptimize(out.data());

        if (pass < 0)
            continue;
        if (pass == 0 || merge_s < m.merge_seconds)
            m.merge_seconds = merge_s;
        if (pass == 0 || bulk_s < m.bulk_seconds)
            m.bulk_seconds = bulk_s;
    }
    m.matches = bulk_matches;
    if (merge_matches != bulk_matches)
        std::cerr << "bench_micro: intersection mismatch: "
                  << merge_matches << " != " << bulk_matches << "\n";
    return m;
}

// ----------------------------------------------------------------------
// Query execution head-to-head: the legacy recursive AST walk
// (evalQueryNode + the inline ranked loop it used to feed) versus the
// planner/operator path every serving tier now runs (compile a
// QueryPlan per request, evaluate its operator tree). The plan side
// pays compilation per query — exactly the production shape — so the
// gated ratio proves the refactor costs nothing end to end.
// ----------------------------------------------------------------------

struct QueryExecMetrics
{
    std::uint64_t queries = 0; ///< Evaluations per timed pass.
    double legacy_seconds = 0;
    double plan_seconds = 0;

    double legacyQps() const { return queries / legacy_seconds; }
    double planQps() const { return queries / plan_seconds; }
    /** > 1 means the planner path answers faster than the AST walk. */
    double speedup() const { return legacy_seconds / plan_seconds; }
};

/** The pre-planner ranked loop, inlined as the legacy side. */
std::vector<ScoredHit>
legacyRankedTopK(const IndexSnapshot &snapshot, const DocTable &docs,
                 const DocSet &universe, const Query &query,
                 std::size_t k)
{
    DocSet matches =
        evalQueryNode(snapshot.segment(0), universe, query.root());
    if (matches.empty())
        return {};
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : positiveTerms(query.root())) {
        const std::size_t df = snapshot.termDocCount(term);
        if (df == 0)
            continue;
        accumulateCursor(matches, snapshot.cursor(term),
                         idfFromCounts(docs.docCount(), df), scores);
    }
    std::vector<ScoredHit> hits;
    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        double penalty = std::log(
            2.0 + static_cast<double>(docs.sizeBytes(matches[i])));
        hits.push_back(ScoredHit{matches[i], scores[i] / penalty});
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

QueryExecMetrics
runQueryExec()
{
    // A synthetic unified snapshot with Zipf-flavoured term densities:
    // t0 matches roughly half the corpus, t19 a sliver — the skew that
    // makes df-ordering and the bulk AND kernel matter.
    constexpr std::size_t vocab = 20;
    constexpr DocId doc_count = 100000;
    Rng rng(0x9e7a);
    InvertedIndex index;
    DocTable docs;
    for (DocId doc = 0; doc < doc_count; ++doc) {
        TermBlock block;
        block.doc = doc;
        bool any = false;
        for (std::size_t v = 0; v < vocab; ++v) {
            if (rng.bernoulli(0.5 / static_cast<double>(v + 1))) {
                block.addTerm("t" + std::to_string(v));
                any = true;
            }
        }
        if (any)
            index.addBlock(block);
        docs.add("/f" + std::to_string(doc),
                 100 + rng.uniform(0, 4000));
    }
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    Searcher searcher(snapshot, doc_count);
    RankedSearcher ranked(snapshot, docs);
    DocSet universe(doc_count);
    for (DocId doc = 0; doc < doc_count; ++doc)
        universe[doc] = doc;
    const SegmentReader segment = snapshot.segment(0);

    // The shapes every tier serves: plain ANDs wide and narrow, an
    // OR, NOT as a difference, a mixed tree, and a ranked top-10.
    struct Shape
    {
        Query query;
        bool is_ranked;
    };
    std::vector<Shape> shapes;
    for (const char *text :
         {"t0 AND t3", "t0 AND t1 AND t2 AND t5", "t4 OR t7 OR t9",
          "t0 AND NOT t2", "(t0 AND t1) OR (t3 AND NOT t4)"})
        shapes.push_back(Shape{Query::parse(text), false});
    shapes.push_back(Shape{Query::parse("t1 AND (t6 OR t8)"), true});

    constexpr int iterations = 30;
    QueryExecMetrics m;
    m.queries =
        static_cast<std::uint64_t>(shapes.size()) * iterations;

    // Cross-check once before timing: both paths must agree.
    for (const Shape &shape : shapes) {
        if (shape.is_ranked)
            continue;
        const DocSet plan_hits = searcher.run(shape.query);
        const DocSet legacy_hits =
            evalQueryNode(segment, universe, shape.query.root());
        if (plan_hits != legacy_hits)
            std::cerr << "bench_micro: query_exec mismatch: "
                      << shape.query.toString() << "\n";
    }

    const int passes = 5;
    for (int pass = -1; pass < passes; ++pass) { // pass -1 warms up
        Timer legacy_timer;
        std::size_t checksum = 0;
        for (int i = 0; i < iterations; ++i) {
            for (const Shape &shape : shapes) {
                if (shape.is_ranked)
                    checksum += legacyRankedTopK(snapshot, docs,
                                                 universe,
                                                 shape.query, 10)
                                    .size();
                else
                    checksum += evalQueryNode(segment, universe,
                                              shape.query.root())
                                    .size();
            }
        }
        const double legacy_s = legacy_timer.elapsedSec();
        benchmark::DoNotOptimize(checksum);

        Timer plan_timer;
        checksum = 0;
        for (int i = 0; i < iterations; ++i) {
            for (const Shape &shape : shapes) {
                if (shape.is_ranked)
                    checksum +=
                        ranked.topK(shape.query, 10).size();
                else
                    checksum += searcher.run(shape.query).size();
            }
        }
        const double plan_s = plan_timer.elapsedSec();
        benchmark::DoNotOptimize(checksum);

        if (pass < 0)
            continue;
        if (pass == 0 || legacy_s < m.legacy_seconds)
            m.legacy_seconds = legacy_s;
        if (pass == 0 || plan_s < m.plan_seconds)
            m.plan_seconds = plan_s;
    }
    return m;
}

void
writeJson(std::ostream &out, const StageMetrics &legacy,
          const StageMetrics &zero_copy, const SealedMetrics &sealed,
          const CodecDecodeMetrics &decode,
          const IntersectMetrics &intersect,
          const QueryExecMetrics &query_exec,
          std::size_t corpus_files, std::uint64_t corpus_bytes)
{
    auto section = [&out](const char *name, const StageMetrics &m,
                          const char *trailing) {
        out << "  \"" << name << "\": {\n"
            << "    \"seconds\": " << m.seconds << ",\n"
            << "    \"tokens_per_sec\": " << m.tokensPerSec() << ",\n"
            << "    \"postings_per_sec\": " << m.postingsPerSec()
            << ",\n"
            << "    \"alloc_bytes_per_block\": "
            << m.allocBytesPerBlock() << ",\n"
            << "    \"allocs_per_token\": " << m.allocsPerToken()
            << "\n  }" << trailing << "\n";
    };
    out << "{\n"
        << "  \"bench\": \"stage23_micro\",\n"
        << "  \"corpus\": {\"files\": " << corpus_files
        << ", \"bytes\": " << corpus_bytes << "},\n";
    section("legacy", legacy, ",");
    section("zero_copy", zero_copy, ",");
    out << "  \"sealed_segment\": {\n"
        << "    \"postings\": " << sealed.postings << ",\n"
        << "    \"raw_bytes_per_posting\": "
        << sealed.rawBytesPerPosting() << ",\n"
        << "    \"compressed_bytes_per_posting\": "
        << sealed.compressedBytesPerPosting() << ",\n"
        << "    \"compression_ratio\": " << sealed.compressionRatio()
        << ",\n"
        << "    \"seal_postings_per_sec\": "
        << sealed.sealPostingsPerSec() << ",\n"
        << "    \"decode_postings_per_sec\": "
        << sealed.decodePostingsPerSec() << "\n  },\n";
    out << "  \"posting_decode\": {\n"
        << "    \"postings\": " << decode.postings << ",\n"
        << "    \"simd_level\": \"" << postingSimdLevel() << "\",\n"
        << "    \"varint_postings_per_sec\": "
        << decode.varintPostingsPerSec() << ",\n"
        << "    \"packed_postings_per_sec\": "
        << decode.packedPostingsPerSec() << ",\n"
        << "    \"packed_vs_varint\": " << decode.packedVsVarint()
        << "\n  },\n";
    out << "  \"intersection\": {\n"
        << "    \"postings\": " << intersect.postings << ",\n"
        << "    \"matches\": " << intersect.matches << ",\n"
        << "    \"merge_postings_per_sec\": "
        << intersect.mergePostingsPerSec() << ",\n"
        << "    \"bulk_postings_per_sec\": "
        << intersect.bulkPostingsPerSec() << ",\n"
        << "    \"speedup\": " << intersect.speedup() << "\n  },\n";
    out << "  \"query_exec\": {\n"
        << "    \"queries\": " << query_exec.queries << ",\n"
        << "    \"legacy_qps\": " << query_exec.legacyQps() << ",\n"
        << "    \"plan_qps\": " << query_exec.planQps() << ",\n"
        << "    \"speedup\": " << query_exec.speedup() << "\n  },\n";
    out << "  \"speedup\": "
        << legacy.seconds / zero_copy.seconds << ",\n"
        << "  \"alloc_bytes_per_block_ratio\": "
        << (zero_copy.allocBytesPerBlock() > 0
                ? legacy.allocBytesPerBlock()
                      / zero_copy.allocBytesPerBlock()
                : 0.0)
        << "\n}\n";
}

/** Run the Stage 2+3 comparison and write BENCH_micro.json. */
void
runStage23Comparison()
{
    CorpusSpec spec = CorpusSpec::paperScaled(0.02);
    CorpusGenerator generator(spec);
    auto fs = generator.generateInMemory();
    FileList files = generateFilenames(*fs, spec.root);

    // Warm-up pass each, then best-of-three timed passes.
    StageMetrics legacy, zero_copy;
    SealedMetrics sealed;
    runLegacy(*fs, files);
    runZeroCopy(*fs, files);
    runSealedSegment(*fs, files);
    for (int pass = 0; pass < 3; ++pass) {
        StageMetrics l = runLegacy(*fs, files);
        StageMetrics z = runZeroCopy(*fs, files);
        SealedMetrics s = runSealedSegment(*fs, files);
        if (pass == 0 || l.seconds < legacy.seconds)
            legacy = l;
        if (pass == 0 || z.seconds < zero_copy.seconds)
            zero_copy = z;
        if (pass == 0 || s.seal_seconds < sealed.seal_seconds)
            sealed = s;
    }

    CodecDecodeMetrics decode = runCodecDecode();
    IntersectMetrics intersect = runIntersection();
    QueryExecMetrics query_exec = runQueryExec();

    std::uint64_t corpus_bytes = 0;
    for (const FileEntry &file : files)
        corpus_bytes += file.size;

    std::ofstream json("BENCH_micro.json");
    writeJson(json, legacy, zero_copy, sealed, decode, intersect,
              query_exec, files.size(), corpus_bytes);
    writeJson(std::cout, legacy, zero_copy, sealed, decode, intersect,
              query_exec, files.size(), corpus_bytes);
}

} // namespace

int
main(int argc, char **argv)
{
    runStage23Comparison();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
