/**
 * @file
 * Shared harness for the Table 2/3/4 reproductions.
 *
 * Each table bench describes its platform, the paper's published
 * numbers, and a sweep box; the harness sweeps every configuration of
 * every implementation through the platform simulator (averaging five
 * noisy runs per configuration, like the paper), picks the best per
 * implementation, and prints the paper's rows next to the simulated
 * ones.
 */

#ifndef DSEARCH_BENCH_TABLE_SWEEP_HH
#define DSEARCH_BENCH_TABLE_SWEEP_HH

#include <cstdio>
#include <iostream>
#include <string>

#include "fs/corpus.hh"
#include "sim/pipeline_sim.hh"
#include "tune/tuner.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

namespace dsearch {

/** Paper-published row for one implementation. */
struct PaperRow
{
    Implementation impl;
    const char *config;
    double exec_sec;
    double speedup;
};

/** Everything one table bench needs. */
struct TableBenchSpec
{
    const char *table_name;
    PlatformSpec platform;
    double paper_seq_sec;
    PaperRow rows[3];
    unsigned max_x;
    unsigned max_y;
    unsigned max_z;
};

/** Run the sweep and print the paper-vs-simulated table. */
inline void
runTableBench(const TableBenchSpec &spec)
{
    WorkloadModel workload =
        WorkloadModel::fromCorpusSpec(CorpusSpec::paper());
    workload.coarsen(6);
    PipelineSim sim(spec.platform, workload);

    double seq_sim = sim.run(Config::sequential()).total_sec;

    Table table(std::string(spec.table_name) + " — "
                + spec.platform.name
                + "\n(paper values vs. simulated platform; config = "
                  "(x, y, z) threads for extract/update/join; "
                  "best of exhaustive sweep, 5 noisy runs averaged)");
    table.setColumns({"implementation", "paper cfg", "sim cfg",
                      "paper t(s)", "sim t(s)", "paper S", "sim S",
                      "paper var", "sim var"});

    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1f", spec.paper_seq_sec);
    std::string paper_seq = buf;
    std::snprintf(buf, sizeof(buf), "%.1f", seq_sim);
    table.addRow({"Sequential", "-", "-", paper_seq, buf, "-", "-",
                  "-", "-"});
    table.addSeparator();

    double impl1_speedup_paper = 0.0;
    double impl1_speedup_sim = 0.0;
    std::size_t total_evals = 0;

    for (const PaperRow &row : spec.rows) {
        ConfigSpace space = ConfigSpace::paperTable(
            row.impl, spec.max_x, spec.max_y, spec.max_z);
        SimCostEvaluator evaluator(sim, 5, 0.01,
                                   0x5eed ^ spec.platform.cores);
        TuneResult best = ExhaustiveTuner().tune(evaluator, space);
        total_evals += best.evaluations;

        double sim_speedup = speedup(seq_sim, best.best_sec);
        if (row.impl == Implementation::SharedLocked) {
            impl1_speedup_paper = row.speedup;
            impl1_speedup_sim = sim_speedup;
        }
        double var_paper =
            percentDelta(row.speedup, impl1_speedup_paper);
        double var_sim =
            percentDelta(sim_speedup, impl1_speedup_sim);

        table.addRow({name(row.impl), row.config,
                      best.best.tupleString(),
                      formatDouble(row.exec_sec, 1),
                      formatDouble(best.best_sec, 1),
                      formatDouble(row.speedup, 2),
                      formatDouble(sim_speedup, 2),
                      formatDouble(var_paper, 1) + "%",
                      formatDouble(var_sim, 1) + "%"});
    }

    table.render(std::cout);
    std::cout << "swept " << total_evals
              << " configurations; workload: "
              << workload.fileCount() << " files, "
              << formatBytes(workload.totalBytes()) << ", "
              << workload.totalTerms() << " unique postings\n\n";
}

} // namespace dsearch

#endif // DSEARCH_BENCH_TABLE_SWEEP_HH
