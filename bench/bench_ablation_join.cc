/**
 * @file
 * E8: join ablation (§2.3 of the paper).
 *
 * "Would it be enough to join the indices with a single thread, or
 * should a parallel reduction setup with multiple joining processes
 * be used?" — measured here on the real "Join Forces" implementation.
 * Replica sets are built once per replica count and deep-copied for
 * each timed join, so the measurement isolates the join itself.
 * Note: with r = 2 there is exactly one merge pair, so z cannot help
 * by construction — differences there bound the measurement noise.
 */

#include <iostream>
#include <thread>
#include <vector>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "index/index_join.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace {

using namespace dsearch;

/** Deep copy of a replica set (join consumes its input). */
std::vector<InvertedIndex>
cloneReplicas(const std::vector<InvertedIndex> &replicas)
{
    std::vector<InvertedIndex> copies;
    copies.reserve(replicas.size());
    for (const InvertedIndex &replica : replicas)
        copies.push_back(replica.clone());
    return copies;
}

} // namespace

int
main()
{
    using namespace dsearch;

    const unsigned cores =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned repeats = 5;

    auto fs = CorpusGenerator(CorpusSpec::paperScaled(0.12))
                  .generateInMemory();

    Table table("E8 — joining r replicas with z threads (real runs, "
                + std::to_string(cores) + "-core host, "
                + formatBytes(fs->totalBytes()) + ", mean of "
                + std::to_string(repeats)
                + ", replicas built once and cloned per join)");
    table.setColumns({"replicas r", "postings", "z = 1 (s)",
                      "z = 2 (s)", "z = 4 (s)", "z=2 vs z=1"});

    for (unsigned r_count : {2u, 4u, 8u}) {
        Config build_cfg = Config::replicatedNoJoin(cores, r_count);
        IndexGenerator generator(*fs, "/", build_cfg);
        BuildResult result = generator.build();

        std::uint64_t postings = 0;
        for (const InvertedIndex &replica : result.indices)
            postings += replica.postingCount();

        // Warm-up clone+join (untimed) to stabilize the allocator.
        {
            InvertedIndex warm =
                joinParallel(cloneReplicas(result.indices), 2);
            if (warm.termCount() == 0)
                return 1;
        }

        RunningStat stats[3];
        const unsigned z_values[3] = {1, 2, 4};
        for (unsigned rep = 0; rep < repeats; ++rep) {
            // Interleave z values within each repetition so slow
            // drift (frequency scaling, heap growth) biases no cell.
            for (int zi = 0; zi < 3; ++zi) {
                auto copies = cloneReplicas(result.indices);
                Timer timer;
                InvertedIndex joined =
                    joinParallel(std::move(copies), z_values[zi]);
                stats[zi].push(timer.elapsedSec());
                if (joined.termCount() == 0)
                    return 1; // defeat over-optimization
            }
        }

        table.addRow({std::to_string(r_count),
                      std::to_string(postings),
                      formatDouble(stats[0].mean(), 3),
                      formatDouble(stats[1].mean(), 3),
                      formatDouble(stats[2].mean(), 3),
                      formatDouble(percentDelta(stats[1].mean(),
                                                stats[0].mean()),
                                   1)
                          + "%"});
    }

    table.render(std::cout);
    std::cout << "Expected shape (paper §2.3): one joiner suffices at "
                 "small replica counts\n(the paper's best Impl-2 "
                 "configs all use z = 1); parallel reduction "
                 "helps\nonly once several merge pairs exist (r >= 4) "
                 "and is bounded by the host's\ncore count. r = 2 "
                 "columns must agree — they run identical code.\n";
    return 0;
}
