/**
 * @file
 * Reproduction of the paper's Table 3: best configurations of the
 * three implementations on the 8-core machine (Xeon E5320, Ubuntu).
 *
 * Paper result: Implementation 1 (shared locked index) 59.5 s / 1.76x
 * < Implementation 2 (replicated + join) 57.7 s / 1.82x <
 * Implementation 3 (replicated, no join) 49.5 s / 2.12x. The shared
 * index's serialized, cache-cold updates become the bottleneck on
 * this FSB-based machine.
 */

#include "table_sweep.hh"

int
main()
{
    using namespace dsearch;
    TableBenchSpec spec{
        "Table 3",
        PlatformSpec::octCore2010(),
        105.0,
        {
            {Implementation::SharedLocked, "(3, 2, 0)", 59.5, 1.76},
            {Implementation::ReplicatedJoin, "(6, 2, 1)", 57.7, 1.82},
            {Implementation::ReplicatedNoJoin, "(6, 2, 0)", 49.5,
             2.12},
        },
        8, // max x
        6, // max y
        2, // max z
    };
    runTableBench(spec);
    std::cout << "Expected shape: Impl1 slowest (lock-serialized "
                 "cache-cold updates), Impl2\nin between (pays the "
                 "join), Impl3 fastest; modest speed-ups (~2x) — "
                 "the\nserver disk gains little from deeper queues.\n";
    return 0;
}
