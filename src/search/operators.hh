/**
 * @file
 * Cursor-operator algebra: the one executable form of a QueryPlan.
 *
 * A compiled plan (search/plan.hh) is a tree of set expressions; this
 * module turns it into a tree of **operators** that evaluate those
 * expressions over any segment. Evaluation is parameterized by an
 * OpContext — the segment to read postings from plus the universe the
 * caller owns — so the *same* operator tree answers:
 *
 *  - a sealed unified snapshot (Searcher: universe = [0, docs)),
 *  - each base/delta segment of a live index (LiveSearcher: universe
 *    = the segment's owned DocId range; tombstones are anti-joined
 *    afterwards with DiffOp::apply),
 *  - each replica of an unjoined build (MultiSearcher: universe =
 *    the documents that replica owns),
 *  - every shard of a document-partitioned tier (each shard's
 *    QueryServer evaluates the broker-shipped plan over its local
 *    universe).
 *
 * The algebra:
 *
 *  - TermOp    one posting list, clipped to the universe
 *              (seekGE-driven, skips rather than scans).
 *  - AllOp     the universe itself (the planner's `All` leaf; NOT-
 *              only queries difference against it).
 *  - AndOp     intersection. Term operands take the bulk path: the
 *              SIMD block-intersection kernel via
 *              intersectTermCursors(), smallest list driving, one
 *              universe clip at the end. Compound operands are
 *              evaluated (cheapest-first per the planner's df order)
 *              and merged in.
 *  - OrOp      union. Term operands run a k-way heap union directly
 *              over posting cursors — whole decoded block views are
 *              bulk-copied while they stay below every other
 *              cursor's head (uniteTermCursors()). Compound operands
 *              merge through the same k-way heap over DocSets.
 *  - DiffOp    difference: NOT after De Morgan push-down, and the
 *              live tier's tombstone anti-join (DiffOp::apply).
 *  - ScoreOp   ranked accumulation: streams a term cursor through
 *              the sorted match set via the shared accumulateCursor,
 *              crediting matches in ascending order so the
 *              floating-point sums are bit-identical across every
 *              tier that scores (the broker equivalence invariant).
 *
 * Operator trees are immutable after construction: eval() is const,
 * takes every mutable input through the context, and allocates only
 * its result — one tree is safely shared by any number of concurrent
 * queries and threads (check_tsan_query_plan exercises exactly
 * this). Build one with buildOperators(); QueryPlan::ops() holds the
 * tree built at compile().
 */

#ifndef DSEARCH_SEARCH_OPERATORS_HH
#define DSEARCH_SEARCH_OPERATORS_HH

#include <memory>
#include <string>
#include <vector>

#include "index/index_snapshot.hh"
#include "index/posting_cursor.hh"
#include "search/plan.hh"
#include "search/searcher.hh"

namespace dsearch {

/**
 * Everything one evaluation reads: the segment postings come from
 * and the sorted universe the caller owns (NOT complements against
 * it; term hits are clipped to it). Both are borrowed for the call.
 */
struct OpContext
{
    const SegmentReader &segment;
    const DocSet &universe;
};

/**
 * Base of the operator tree. eval() returns the sorted, duplicate-
 * free matches within ctx.universe; it is const and thread-safe
 * (see the file comment).
 */
class CursorOp
{
  public:
    virtual ~CursorOp() = default;

    /** @return Sorted matches of this subexpression in the context's
     *          universe. */
    virtual DocSet eval(const OpContext &ctx) const = 0;

  protected:
    CursorOp() = default;
    CursorOp(const CursorOp &) = delete;
    CursorOp &operator=(const CursorOp &) = delete;
};

/**
 * Union any number of term cursors: k-way heap merge keyed on each
 * cursor's current doc, bulk-copying whole decoded block views while
 * they stay strictly below every other cursor's head. Duplicates
 * across lists are emitted once. Exposed for tests and the
 * query_exec bench.
 */
DocSet uniteTermCursors(std::vector<PostingCursor> cursors);

/** One term's postings clipped to the universe. */
class TermOp final : public CursorOp
{
  public:
    explicit TermOp(std::string term) : _term(std::move(term)) {}

    DocSet eval(const OpContext &ctx) const override;

    const std::string &term() const { return _term; }

  private:
    std::string _term;
};

/** The universe itself (the planner's All leaf). */
class AllOp final : public CursorOp
{
  public:
    AllOp() = default;

    DocSet eval(const OpContext &ctx) const override;
};

/**
 * Intersection. Term operands are stored as terms (not TermOps) so
 * eval can hand their cursors to the blockwise SIMD kernel in one
 * call; compound operands evaluate in plan order (ascending df when
 * the plan was compiled with statistics) and merge in, cheapest
 * first, with early exit on an empty accumulator.
 */
class AndOp final : public CursorOp
{
  public:
    AndOp(std::vector<std::string> terms,
          std::vector<std::shared_ptr<const CursorOp>> rest)
        : _terms(std::move(terms)), _rest(std::move(rest))
    {
    }

    DocSet eval(const OpContext &ctx) const override;

  private:
    std::vector<std::string> _terms;
    std::vector<std::shared_ptr<const CursorOp>> _rest;
};

/**
 * Union. Term operands merge directly from their cursors
 * (uniteTermCursors, one universe clip at the end); compound operand
 * results join the same k-way heap merge.
 */
class OrOp final : public CursorOp
{
  public:
    OrOp(std::vector<std::string> terms,
         std::vector<std::shared_ptr<const CursorOp>> rest)
        : _terms(std::move(terms)), _rest(std::move(rest))
    {
    }

    DocSet eval(const OpContext &ctx) const override;

  private:
    std::vector<std::string> _terms;
    std::vector<std::shared_ptr<const CursorOp>> _rest;
};

/**
 * Difference: positive minus negative. The planner emits every NOT
 * as one of these (against a positive branch or AllOp); the live
 * tier reuses apply() as its tombstone anti-join.
 */
class DiffOp final : public CursorOp
{
  public:
    DiffOp(std::shared_ptr<const CursorOp> positive,
           std::shared_ptr<const CursorOp> negative)
        : _positive(std::move(positive)),
          _negative(std::move(negative))
    {
    }

    DocSet eval(const OpContext &ctx) const override;

    /** @p matches minus the sorted @p dead set — the anti-join
     *  itself, shared with tombstone filtering. */
    static DocSet apply(DocSet &&matches, const DocSet &dead);

  private:
    std::shared_ptr<const CursorOp> _positive;
    std::shared_ptr<const CursorOp> _negative;
};

/**
 * Ranked accumulation over a boolean result: add @p weight to
 * scores[i] for every matches[i] present in @p cursor. Delegates to
 * the shared accumulateCursor (ranked.hh) — blockwise SIMD
 * intersection, contributions credited in ascending match order, so
 * every tier that scores through here produces bit-identical sums
 * for the same (matches, term order, weights).
 */
class ScoreOp
{
  public:
    static void apply(const DocSet &matches, PostingCursor cursor,
                      double weight, std::vector<double> &scores);
};

/**
 * Compile @p root (a canonical plan tree) into its operator tree.
 * Pure function of the plan: no index or universe is bound until
 * eval(). The returned tree is immutable and shareable.
 */
std::shared_ptr<const CursorOp> buildOperators(const PlanNode &root);

} // namespace dsearch

#endif // DSEARCH_SEARCH_OPERATORS_HH
