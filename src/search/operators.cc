#include "search/operators.hh"

#include <algorithm>
#include <queue>
#include <utility>

#include "search/ranked.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/**
 * K-way union of sorted runs with duplicate elimination: the heap
 * holds each run's head, and the popped run bulk-copies its prefix
 * while it stays strictly below every other head. The same merge
 * shape uniteTermCursors() runs over cursors, applied to
 * already-materialized compound results.
 */
DocSet
uniteMany(std::vector<DocSet> parts)
{
    parts.erase(std::remove_if(parts.begin(), parts.end(),
                               [](const DocSet &part) {
                                   return part.empty();
                               }),
                parts.end());
    if (parts.empty())
        return {};
    if (parts.size() == 1)
        return std::move(parts.front());

    std::size_t total = 0;
    for (const DocSet &part : parts)
        total += part.size();
    DocSet out;
    out.reserve(total);

    struct Head
    {
        DocId doc;
        std::size_t run;
        std::size_t pos;
    };
    struct Later
    {
        bool
        operator()(const Head &a, const Head &b) const
        {
            return a.doc > b.doc; // min-heap on DocId
        }
    };
    std::priority_queue<Head, std::vector<Head>, Later> heap;
    for (std::size_t r = 0; r < parts.size(); ++r)
        heap.push(Head{parts[r][0], r, 0});

    while (!heap.empty()) {
        Head head = heap.top();
        heap.pop();
        const DocSet &run = parts[head.run];
        if (heap.empty()) {
            out.insert(out.end(),
                       run.begin()
                           + static_cast<std::ptrdiff_t>(head.pos),
                       run.end());
            break;
        }
        const DocId bound = heap.top().doc;
        std::size_t pos = head.pos;
        if (run[pos] == bound) {
            ++pos; // duplicate head: the other run emits it
        } else {
            const std::size_t stop = static_cast<std::size_t>(
                std::lower_bound(
                    run.begin() + static_cast<std::ptrdiff_t>(pos),
                    run.end(), bound)
                - run.begin());
            out.insert(out.end(),
                       run.begin() + static_cast<std::ptrdiff_t>(pos),
                       run.begin()
                           + static_cast<std::ptrdiff_t>(stop));
            pos = stop;
        }
        if (pos < run.size())
            heap.push(Head{run[pos], head.run, pos});
    }
    return out;
}

} // namespace

DocSet
uniteTermCursors(std::vector<PostingCursor> cursors)
{
    std::vector<PostingCursor> live;
    live.reserve(cursors.size());
    std::size_t total = 0;
    for (PostingCursor &cursor : cursors) {
        if (cursor.valid()) {
            total += cursor.remaining();
            live.push_back(std::move(cursor));
        }
    }
    if (live.empty())
        return {};
    if (live.size() == 1)
        return live.front().toDocSet();

    DocSet out;
    out.reserve(total);

    struct Head
    {
        DocId doc;
        std::size_t idx;
    };
    struct Later
    {
        bool
        operator()(const Head &a, const Head &b) const
        {
            return a.doc > b.doc; // min-heap on DocId
        }
    };
    std::priority_queue<Head, std::vector<Head>, Later> heap;
    for (std::size_t i = 0; i < live.size(); ++i)
        heap.push(Head{live[i].doc(), i});

    while (!heap.empty()) {
        const Head head = heap.top();
        heap.pop();
        PostingCursor &cursor = live[head.idx];
        if (heap.empty()) {
            // Last list standing: drain whole block views.
            while (cursor.valid()) {
                const DocId *docs = cursor.blockDocs();
                const std::size_t n = cursor.blockRemaining();
                out.insert(out.end(), docs, docs + n);
                cursor.skipInBlock(n);
            }
            break;
        }
        const DocId bound = heap.top().doc;
        if (cursor.doc() == bound) {
            // Duplicate of the next head: that list emits it.
            cursor.next();
        } else {
            // Bulk-copy decoded views strictly below the bound —
            // whole blocks while they fit, a binary-searched prefix
            // of the block that straddles it.
            while (cursor.valid()) {
                const DocId *docs = cursor.blockDocs();
                const std::size_t n = cursor.blockRemaining();
                if (docs[n - 1] < bound) {
                    out.insert(out.end(), docs, docs + n);
                    cursor.skipInBlock(n);
                    continue;
                }
                const std::size_t k = static_cast<std::size_t>(
                    std::lower_bound(docs, docs + n, bound) - docs);
                out.insert(out.end(), docs, docs + k);
                cursor.skipInBlock(k);
                break;
            }
        }
        if (cursor.valid())
            heap.push(Head{cursor.doc(), head.idx});
    }
    return out;
}

DocSet
TermOp::eval(const OpContext &ctx) const
{
    return intersectCursor(ctx.segment.cursor(_term), ctx.universe);
}

DocSet
AllOp::eval(const OpContext &ctx) const
{
    return ctx.universe;
}

DocSet
AndOp::eval(const OpContext &ctx) const
{
    DocSet acc;
    bool have = false;
    if (!_terms.empty()) {
        // The hottest shape — AND over plain terms — in one kernel
        // call: blockwise SIMD intersection, smallest list driving,
        // clipped to the universe once (intersection commutes).
        std::vector<PostingCursor> cursors;
        cursors.reserve(_terms.size());
        for (const std::string &term : _terms)
            cursors.push_back(ctx.segment.cursor(term));
        acc = clipToUniverse(intersectTermCursors(std::move(cursors)),
                             ctx.universe);
        have = true;
    }
    for (const std::shared_ptr<const CursorOp> &op : _rest) {
        if (have && acc.empty())
            return acc; // empty intersection: nothing can revive it
        DocSet part = op->eval(ctx);
        acc = have ? intersectSets(acc, part) : std::move(part);
        have = true;
    }
    return acc;
}

DocSet
OrOp::eval(const OpContext &ctx) const
{
    std::vector<DocSet> parts;
    parts.reserve(_rest.size() + 1);
    if (!_terms.empty()) {
        std::vector<PostingCursor> cursors;
        cursors.reserve(_terms.size());
        for (const std::string &term : _terms)
            cursors.push_back(ctx.segment.cursor(term));
        parts.push_back(
            clipToUniverse(uniteTermCursors(std::move(cursors)),
                           ctx.universe));
    }
    for (const std::shared_ptr<const CursorOp> &op : _rest)
        parts.push_back(op->eval(ctx));
    return uniteMany(std::move(parts));
}

DocSet
DiffOp::eval(const OpContext &ctx) const
{
    DocSet positive = _positive->eval(ctx);
    if (positive.empty())
        return positive;
    return apply(std::move(positive), _negative->eval(ctx));
}

DocSet
DiffOp::apply(DocSet &&matches, const DocSet &dead)
{
    if (matches.empty() || dead.empty())
        return std::move(matches);
    return subtractSets(matches, dead);
}

void
ScoreOp::apply(const DocSet &matches, PostingCursor cursor,
               double weight, std::vector<double> &scores)
{
    accumulateCursor(matches, std::move(cursor), weight, scores);
}

std::shared_ptr<const CursorOp>
buildOperators(const PlanNode &node)
{
    switch (node.kind) {
      case PlanNode::Kind::Term:
        return std::make_shared<TermOp>(node.term);
      case PlanNode::Kind::All:
        return std::make_shared<AllOp>();
      case PlanNode::Kind::And:
      case PlanNode::Kind::Or: {
        // Term leaves are kept as terms so eval can feed all their
        // cursors to one bulk kernel call; compound children keep
        // the plan's (df-ascending) order.
        std::vector<std::string> terms;
        std::vector<std::shared_ptr<const CursorOp>> rest;
        for (const PlanNode &child : node.children) {
            if (child.kind == PlanNode::Kind::Term)
                terms.push_back(child.term);
            else
                rest.push_back(buildOperators(child));
        }
        if (node.kind == PlanNode::Kind::And)
            return std::make_shared<AndOp>(std::move(terms),
                                           std::move(rest));
        return std::make_shared<OrOp>(std::move(terms),
                                      std::move(rest));
      }
      case PlanNode::Kind::Diff:
        return std::make_shared<DiffOp>(
            buildOperators(node.children[0]),
            buildOperators(node.children[1]));
    }
    panic("buildOperators: unknown plan node kind");
}

} // namespace dsearch
