#include "search/query_server.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/fault.hh"

namespace dsearch {

namespace {

/** Resolve the worker-count option (0 = one per hardware thread). */
std::size_t
resolveWorkers(std::size_t requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

QueryServer::QueryServer(IndexSnapshot snapshot, DocTable docs,
                         ServerOptions options)
    : _snapshot(std::move(snapshot)), _docs(std::move(docs)),
      _options(options), _queue(options.queue_capacity),
      _pool(resolveWorkers(options.workers)),
      _window_start(Clock::now())
{
    if (_options.batch_size == 0)
        _options.batch_size = 1;

    if (_snapshot.unified()) {
        _single = std::make_unique<Searcher>(_snapshot,
                                             _docs.docCount());
        _ranked = std::make_unique<RankedSearcher>(_snapshot, _docs);
    } else {
        _multi = std::make_unique<MultiSearcher>(_snapshot,
                                                 _docs.docCount());
    }

    _dispatcher = std::thread([this] { dispatchLoop(); });
}

QueryServer::QueryServer(Engine::Result &&built, ServerOptions options)
    : QueryServer(std::move(built.snapshot), std::move(built.docs),
                  options)
{
}

QueryServer::~QueryServer()
{
    shutdown();
}

void
QueryServer::shutdown()
{
    std::call_once(_shutdown_once, [this] {
        _queue.close();          // later submits are rejected
        if (_dispatcher.joinable())
            _dispatcher.join();  // queue drained into the pool
        _pool.wait();            // every admitted query answered
    });
}

std::future<QueryResponse>
QueryServer::submit(Query query)
{
    return enqueue(std::move(query), Kind::Boolean, 0, nullptr);
}

std::future<QueryResponse>
QueryServer::submit(Query query,
                    std::function<void(const QueryResponse &)> callback)
{
    return enqueue(std::move(query), Kind::Boolean, 0,
                   std::move(callback));
}

std::future<QueryResponse>
QueryServer::submitRanked(Query query, std::size_t k)
{
    return enqueue(std::move(query), Kind::Ranked, k, nullptr);
}

std::future<QueryResponse>
QueryServer::submitRanked(Query query, std::size_t k,
                          std::function<void(const QueryResponse &)>
                              callback)
{
    return enqueue(std::move(query), Kind::Ranked, k,
                   std::move(callback));
}

std::future<QueryResponse>
QueryServer::enqueue(Query query, Kind kind, std::size_t k,
                     std::function<void(const QueryResponse &)> callback)
{
    auto request = std::make_shared<Request>(std::move(query));
    request->kind = kind;
    request->k = k;
    request->callback = std::move(callback);
    request->admitted = Clock::now();
    std::future<QueryResponse> future = request->promise.get_future();

    if (!request->query.valid()) {
        std::string reason = request->query.error();
        reject(*request,
               reason.empty() ? "invalid query" : std::move(reason));
        return future;
    }
    if (kind == Kind::Ranked && _ranked == nullptr) {
        reject(*request,
               "ranked queries require a unified snapshot "
               "(replicated snapshots serve boolean queries only)");
        return future;
    }
    admit(std::move(request));
    return future;
}

void
QueryServer::admit(std::shared_ptr<Request> request)
{
    // The Block policy (and any unbounded queue) is the original
    // closed-loop path: push() blocks while the queue is full —
    // admission back-pressure. False means the server shut down
    // first; the queue drops its copy, so answer through ours.
    if (_options.overload_policy == OverloadPolicy::Block
        || _options.queue_capacity == 0) {
        std::shared_ptr<Request> kept = request;
        if (!_queue.push(std::move(request)))
            reject(*kept, "server has shut down");
        return;
    }

    // Load-shedding admission: never block the submitter. Each failed
    // tryPush either means shutdown, an immediate refusal, or (shed-
    // oldest) one victim popped — the loop makes net progress and
    // every dropped query gets an answered future.
    while (!_queue.tryPush(request)) {
        if (_queue.closed()) {
            reject(*request, "server has shut down");
            return;
        }
        if (_options.overload_policy == OverloadPolicy::RejectNewest) {
            reject(*request, "shed under overload", Refusal::Shed);
            return;
        }
        std::shared_ptr<Request> victim;
        if (_queue.tryPop(victim))
            reject(*victim, "shed under overload", Refusal::Shed);
    }
}

void
QueryServer::reject(Request &request, std::string reason,
                    Refusal refusal)
{
    QueryResponse response;
    response.ok = false;
    response.error = std::move(reason);
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    // Count before resolving: a client that has seen its future
    // ready must find itself in stats().
    {
        std::scoped_lock lock(_stats_mutex);
        switch (refusal) {
          case Refusal::Rejected: ++_rejected; break;
          case Refusal::TimedOut: ++_timed_out; break;
          case Refusal::Shed:     ++_shed; break;
        }
    }
    request.promise.set_value(response);
    if (request.callback)
        request.callback(response);
}

bool
QueryServer::expireIfPastDeadline(Request &request)
{
    if (_options.deadline_sec <= 0.0)
        return false;
    double waited =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    if (waited <= _options.deadline_sec)
        return false;
    reject(request, "deadline expired", Refusal::TimedOut);
    return true;
}

void
QueryServer::dispatchLoop()
{
    std::vector<std::shared_ptr<Request>> batch;
    while (_queue.popBatch(batch, _options.batch_size)) {
        for (std::shared_ptr<Request> &request : batch) {
            // Reject-on-expiry before dispatch: a query that already
            // overstayed its deadline in the admission queue never
            // costs a pool task.
            if (expireIfPastDeadline(*request))
                continue;
            _pool.submit([this, request = std::move(request)] {
                execute(*request);
            });
        }
    }
    // Queue closed and fully drained: every admitted request is now
    // in the pool; shutdown()'s pool.wait() sees them through.
}

void
QueryServer::execute(Request &request)
{
    // The pool queue added wait time on top of the admission queue;
    // re-check the budget at worker entry.
    if (expireIfPastDeadline(request))
        return;

    QueryResponse response;
    // Exception isolation: the pool's workers are noexcept by
    // contract, so anything a query evaluation throws must stop
    // here — one bad query becomes one failed response, never a
    // dead dispatcher or a torn-down process.
    try {
        if (faultFires("query_server.execute"))
            throw std::runtime_error("injected query fault");
        switch (request.kind) {
          case Kind::Boolean:
            // Replicated snapshots evaluate their segments serially
            // inside this one task: pool parallelism is spent across
            // concurrent queries, not nested within one (nesting on
            // the same pool would deadlock its wait()).
            response.hits = _single != nullptr
                                ? _single->run(request.query)
                                : _multi->run(request.query, 1);
            break;
          case Kind::Ranked:
            response.ranked = _ranked->topK(request.query, request.k);
            break;
        }
    } catch (const std::exception &e) {
        reject(request, std::string("query failed: ") + e.what());
        return;
    } catch (...) {
        reject(request, "query failed: unknown exception");
        return;
    }
    response.ok = true;
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();

    // Count before resolving: a client that has seen its future
    // ready must find itself in stats().
    {
        std::scoped_lock lock(_stats_mutex);
        _latencies.push_back(response.latency_sec);
        ++_completed;
    }
    request.promise.set_value(response);
    if (request.callback)
        request.callback(response);
}

ServerStats
QueryServer::stats() const
{
    std::vector<double> latencies;
    ServerStats digest;
    Clock::time_point start;
    {
        std::scoped_lock lock(_stats_mutex);
        latencies = _latencies;
        digest.completed = _completed;
        digest.rejected = _rejected;
        digest.timed_out = _timed_out;
        digest.shed = _shed;
        start = _window_start;
    }
    digest.elapsed_sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (digest.elapsed_sec > 0.0)
        digest.qps = static_cast<double>(digest.completed)
                     / digest.elapsed_sec;
    digest.latency = summarizeLatencies(std::move(latencies));
    return digest;
}

void
QueryServer::resetStats()
{
    std::scoped_lock lock(_stats_mutex);
    _latencies.clear();
    _completed = 0;
    _rejected = 0;
    _timed_out = 0;
    _shed = 0;
    _window_start = Clock::now();
}

} // namespace dsearch
