#include "search/query_server.hh"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/fault.hh"

namespace dsearch {

namespace {

/** Resolve the worker-count option (0 = one per hardware thread). */
std::size_t
resolveWorkers(std::size_t requested)
{
    if (requested != 0)
        return requested;
    return std::max(1u, std::thread::hardware_concurrency());
}

} // namespace

std::shared_ptr<const ServingState>
ServingState::make(ServingUpdate &&update)
{
    auto state = std::make_shared<ServingState>();
    // The table moves in first: RankedSearcher and LiveSearcher keep
    // a reference to it, and a shared_ptr-owned state gives it a
    // stable address for the generation's whole lifetime.
    state->docs = std::move(update.docs);
    state->snapshot = std::move(update.base);
    state->generation = update.generation;

    if (update.deltas.empty() && update.tombstones.empty()) {
        if (state->snapshot.unified()) {
            state->single = std::make_unique<Searcher>(
                state->snapshot, state->docs.docCount());
            state->ranked = std::make_unique<RankedSearcher>(
                state->snapshot, state->docs);
        } else {
            state->multi = std::make_unique<MultiSearcher>(
                state->snapshot, state->docs.docCount());
        }
    } else {
        state->live = std::make_unique<LiveSearcher>(
            state->snapshot, update.base_docs,
            std::move(update.deltas), std::move(update.tombstones),
            state->docs);
    }
    return state;
}

QueryServer::QueryServer(IndexSnapshot snapshot, DocTable docs,
                         ServerOptions options)
    : _options(options), _queue(options.queue_capacity),
      _pool(resolveWorkers(options.workers)),
      _window_start(Clock::now())
{
    if (_options.batch_size == 0)
        _options.batch_size = 1;

    ServingUpdate initial;
    initial.base = std::move(snapshot);
    initial.docs = std::move(docs);
    initial.base_docs = static_cast<DocId>(initial.docs.docCount());
    _serving = ServingState::make(std::move(initial));

    _dispatcher = std::thread([this] { dispatchLoop(); });
}

QueryServer::QueryServer(Engine::Result &&built, ServerOptions options)
    : QueryServer(std::move(built.snapshot), std::move(built.docs),
                  options)
{
}

QueryServer::~QueryServer()
{
    shutdown();
}

std::uint64_t
QueryServer::publish(ServingUpdate update)
{
    // Build the whole next generation off to the side — searcher
    // construction can be expensive (universe materialization) and
    // must not happen while holding anything a query waits on.
    std::shared_ptr<const ServingState> next =
        ServingState::make(std::move(update));
    {
        std::scoped_lock lock(_serving_mutex);
        _serving.swap(next);
    }
    // `next` now holds the outgoing generation; it is destroyed here
    // (or when the last in-flight query drops its copy), never while
    // readers wait on the slot's lock.
    return _swaps.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t
QueryServer::publish(IndexSnapshot snapshot, DocTable docs,
                     std::uint64_t generation)
{
    ServingUpdate update;
    update.base = std::move(snapshot);
    update.docs = std::move(docs);
    update.base_docs = static_cast<DocId>(update.docs.docCount());
    update.generation = generation;
    return publish(std::move(update));
}

void
QueryServer::shutdown()
{
    std::call_once(_shutdown_once, [this] {
        _queue.close();          // later submits are rejected
        if (_dispatcher.joinable())
            _dispatcher.join();  // queue drained into the pool
        _pool.wait();            // every admitted query answered
    });
}

std::future<QueryResponse>
QueryServer::submit(Query query)
{
    return enqueue(std::move(query), Kind::Boolean, 0, nullptr);
}

std::future<QueryResponse>
QueryServer::submitPlan(QueryPlan plan)
{
    return enqueue(std::move(plan), Kind::Boolean, 0, nullptr);
}

std::future<QueryResponse>
QueryServer::submit(Query query,
                    std::function<void(const QueryResponse &)> callback)
{
    return enqueue(std::move(query), Kind::Boolean, 0,
                   std::move(callback));
}

std::future<QueryResponse>
QueryServer::submitRanked(Query query, std::size_t k)
{
    return enqueue(std::move(query), Kind::Ranked, k, nullptr);
}

std::future<QueryResponse>
QueryServer::submitRanked(Query query, std::size_t k,
                          std::function<void(const QueryResponse &)>
                              callback)
{
    return enqueue(std::move(query), Kind::Ranked, k,
                   std::move(callback));
}

std::future<QueryResponse>
QueryServer::submitRankedWeighted(Query query, std::size_t k,
                                  std::shared_ptr<const TermWeights>
                                      weights)
{
    return enqueue(std::move(query), Kind::RankedWeighted, k, nullptr,
                   std::move(weights));
}

std::future<QueryResponse>
QueryServer::submitRankedWeighted(QueryPlan plan, std::size_t k,
                                  std::shared_ptr<const TermWeights>
                                      weights)
{
    return enqueue(std::move(plan), Kind::RankedWeighted, k, nullptr,
                   std::move(weights));
}

QueryPlan
QueryServer::compileForServing(const Query &query) const
{
    std::shared_ptr<const ServingState> state = serving();
    if (state->live != nullptr)
        return state->live->compilePlan(query);
    if (state->single != nullptr)
        return state->single->compilePlan(query);
    // Replicated: no one segment's df describes a term; the
    // structural order is already deterministic.
    return QueryPlan::compile(query);
}

std::future<QueryResponse>
QueryServer::enqueue(Query query, Kind kind, std::size_t k,
                     std::function<void(const QueryResponse &)> callback,
                     std::shared_ptr<const TermWeights> weights)
{
    if (!query.valid()) {
        // Keep the parser's message: reject through a plan-less
        // request so the client learns *why* the text was refused.
        auto request = std::make_shared<Request>(QueryPlan());
        request->kind = kind;
        request->k = k;
        request->callback = std::move(callback);
        request->admitted = Clock::now();
        std::future<QueryResponse> future =
            request->promise.get_future();
        std::string reason = query.error();
        reject(*request,
               reason.empty() ? "invalid query" : std::move(reason));
        return future;
    }
    return enqueue(compileForServing(query), kind, k,
                   std::move(callback), std::move(weights));
}

std::future<QueryResponse>
QueryServer::enqueue(QueryPlan plan, Kind kind, std::size_t k,
                     std::function<void(const QueryResponse &)> callback,
                     std::shared_ptr<const TermWeights> weights)
{
    auto request = std::make_shared<Request>(std::move(plan));
    request->kind = kind;
    request->k = k;
    request->weights = std::move(weights);
    request->callback = std::move(callback);
    request->admitted = Clock::now();
    std::future<QueryResponse> future = request->promise.get_future();

    if (!request->plan.valid()) {
        reject(*request, "invalid query plan");
        return future;
    }
    // Ranked-shape rejection happens in execute(), against the state
    // the query actually evaluates on — an admission-time check here
    // could disagree with the generation a concurrent publish()
    // swaps in before the worker runs.
    admit(std::move(request));
    return future;
}

void
QueryServer::admit(std::shared_ptr<Request> request)
{
    // The Block policy (and any unbounded queue) is the original
    // closed-loop path: push() blocks while the queue is full —
    // admission back-pressure. False means the server shut down
    // first; the queue drops its copy, so answer through ours.
    if (_options.overload_policy == OverloadPolicy::Block
        || _options.queue_capacity == 0) {
        std::shared_ptr<Request> kept = request;
        if (!_queue.push(std::move(request)))
            reject(*kept, "server has shut down");
        return;
    }

    // Load-shedding admission: never block the submitter. Each failed
    // tryPush either means shutdown, an immediate refusal, or (shed-
    // oldest) one victim popped — the loop makes net progress and
    // every dropped query gets an answered future.
    while (!_queue.tryPush(request)) {
        if (_queue.closed()) {
            reject(*request, "server has shut down");
            return;
        }
        if (_options.overload_policy == OverloadPolicy::RejectNewest) {
            reject(*request, "shed under overload", Refusal::Shed);
            return;
        }
        std::shared_ptr<Request> victim;
        if (_queue.tryPop(victim))
            reject(*victim, "shed under overload", Refusal::Shed);
    }
}

void
QueryServer::reject(Request &request, std::string reason,
                    Refusal refusal)
{
    QueryResponse response;
    response.ok = false;
    response.error = std::move(reason);
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    // Count before resolving: a client that has seen its future
    // ready must find itself in stats().
    {
        std::scoped_lock lock(_stats_mutex);
        switch (refusal) {
          case Refusal::Rejected: ++_rejected; break;
          case Refusal::TimedOut: ++_timed_out; break;
          case Refusal::Shed:     ++_shed; break;
        }
    }
    request.promise.set_value(response);
    if (request.callback)
        request.callback(response);
}

bool
QueryServer::expireIfPastDeadline(Request &request)
{
    if (_options.deadline_sec <= 0.0)
        return false;
    double waited =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    if (waited <= _options.deadline_sec)
        return false;
    reject(request, "deadline expired", Refusal::TimedOut);
    return true;
}

void
QueryServer::dispatchLoop()
{
    std::vector<std::shared_ptr<Request>> batch;
    while (_queue.popBatch(batch, _options.batch_size)) {
        for (std::shared_ptr<Request> &request : batch) {
            // Reject-on-expiry before dispatch: a query that already
            // overstayed its deadline in the admission queue never
            // costs a pool task.
            if (expireIfPastDeadline(*request))
                continue;
            _pool.submit([this, request = std::move(request)] {
                execute(*request);
            });
        }
    }
    // Queue closed and fully drained: every admitted request is now
    // in the pool; shutdown()'s pool.wait() sees them through.
}

void
QueryServer::execute(Request &request)
{
    // The pool queue added wait time on top of the admission queue;
    // re-check the budget at worker entry.
    if (expireIfPastDeadline(request))
        return;

    // One load, one state: every dereference below goes through this
    // shared_ptr, so the response is consistent with exactly one
    // generation even while publish() swaps concurrently — and the
    // generation cannot be destroyed under us.
    std::shared_ptr<const ServingState> state = serving();

    if (request.kind == Kind::Ranked && !state->rankedCapable()) {
        reject(request,
               "ranked queries require a unified snapshot "
               "(replicated snapshots serve boolean queries only)");
        return;
    }
    if (request.kind == Kind::RankedWeighted
        && (state->ranked == nullptr || request.weights == nullptr)) {
        reject(request,
               request.weights == nullptr
                   ? "weighted ranked query carries no weights"
                   : "weighted ranked queries require a plain "
                     "unified snapshot");
        return;
    }

    QueryResponse response;
    // Exception isolation: the pool's workers are noexcept by
    // contract, so anything a query evaluation throws must stop
    // here — one bad query becomes one failed response, never a
    // dead dispatcher or a torn-down process.
    try {
        if (faultFires("query_server.execute"))
            throw std::runtime_error("injected query fault");
        switch (request.kind) {
          case Kind::Boolean:
            // Replicated snapshots evaluate their segments serially
            // inside this one task: pool parallelism is spent across
            // concurrent queries, not nested within one (nesting on
            // the same pool would deadlock its wait()).
            if (state->live != nullptr)
                response.hits = state->live->run(request.plan);
            else if (state->single != nullptr)
                response.hits = state->single->run(request.plan);
            else
                response.hits = state->multi->run(request.plan, 1);
            break;
          case Kind::Ranked:
            response.ranked = state->live != nullptr
                ? state->live->topK(request.plan, request.k)
                : state->ranked->topK(request.plan, request.k);
            break;
          case Kind::RankedWeighted:
            response.ranked = state->ranked->topKWeighted(
                request.plan, request.k, *request.weights);
            break;
        }
    } catch (const std::exception &e) {
        reject(request, std::string("query failed: ") + e.what());
        return;
    } catch (...) {
        reject(request, "query failed: unknown exception");
        return;
    }
    response.ok = true;
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();

    // Count before resolving: a client that has seen its future
    // ready must find itself in stats().
    {
        std::scoped_lock lock(_stats_mutex);
        _latencies.push_back(response.latency_sec);
        _hist.record(response.latency_sec);
        ++_completed;
    }
    request.promise.set_value(response);
    if (request.callback)
        request.callback(response);
}

ServerStats
QueryServer::stats() const
{
    std::vector<double> latencies;
    ServerStats digest;
    Clock::time_point start;
    {
        std::scoped_lock lock(_stats_mutex);
        latencies = _latencies;
        digest.completed = _completed;
        digest.rejected = _rejected;
        digest.timed_out = _timed_out;
        digest.shed = _shed;
        start = _window_start;
    }
    digest.swaps = _swaps.load(std::memory_order_relaxed);
    digest.generation = serving()->generation;
    digest.elapsed_sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (digest.elapsed_sec > 0.0)
        digest.qps = static_cast<double>(digest.completed)
                     / digest.elapsed_sec;
    digest.latency = summarizeLatencies(std::move(latencies));
    return digest;
}

LatencyHistogram
QueryServer::latencyHistogram() const
{
    std::scoped_lock lock(_stats_mutex);
    return _hist;
}

void
QueryServer::resetStats()
{
    std::scoped_lock lock(_stats_mutex);
    _latencies.clear();
    _hist.clear();
    _completed = 0;
    _rejected = 0;
    _timed_out = 0;
    _shed = 0;
    _window_start = Clock::now();
}

} // namespace dsearch
