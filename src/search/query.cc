#include "search/query.hh"

#include "util/logging.hh"
#include "util/string_util.hh"

namespace dsearch {

namespace {

/** Lexer token. */
struct Token
{
    enum class Kind { Term, And, Or, Not, LParen, RParen, End };
    Kind kind = Kind::End;
    std::string text;
};

/** Lex a query string into terms, operators and parentheses. */
std::vector<Token>
lex(const std::string &text)
{
    std::vector<Token> tokens;
    std::size_t i = 0;
    while (i < text.size()) {
        char c = text[i];
        if (c == '(') {
            tokens.push_back({Token::Kind::LParen, "("});
            ++i;
        } else if (c == ')') {
            tokens.push_back({Token::Kind::RParen, ")"});
            ++i;
        } else if (isAsciiAlpha(c) || isAsciiDigit(c)) {
            std::size_t start = i;
            while (i < text.size()
                   && (isAsciiAlpha(text[i]) || isAsciiDigit(text[i])))
                ++i;
            std::string word =
                toLowerAscii(text.substr(start, i - start));
            if (word == "and")
                tokens.push_back({Token::Kind::And, word});
            else if (word == "or")
                tokens.push_back({Token::Kind::Or, word});
            else if (word == "not")
                tokens.push_back({Token::Kind::Not, word});
            else
                tokens.push_back({Token::Kind::Term, word});
        } else {
            ++i; // separators and punctuation
        }
    }
    tokens.push_back({Token::Kind::End, ""});
    return tokens;
}

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : _tokens(std::move(tokens))
    {
    }

    /** @return True on success; false with error() set. */
    bool
    parse(QueryNode &out)
    {
        if (!parseOr(out))
            return false;
        if (peek().kind != Token::Kind::End) {
            _error = "unexpected '" + peek().text + "'";
            return false;
        }
        return true;
    }

    const std::string &error() const { return _error; }

  private:
    const Token &peek() const { return _tokens[_pos]; }
    void advance() { ++_pos; }

    bool
    parseOr(QueryNode &out)
    {
        QueryNode first;
        if (!parseAnd(first))
            return false;
        if (peek().kind != Token::Kind::Or) {
            out = std::move(first);
            return true;
        }
        out.kind = QueryNode::Kind::Or;
        out.children.push_back(std::move(first));
        while (peek().kind == Token::Kind::Or) {
            advance();
            QueryNode next;
            if (!parseAnd(next))
                return false;
            out.children.push_back(std::move(next));
        }
        return true;
    }

    bool
    startsUnary() const
    {
        switch (peek().kind) {
          case Token::Kind::Term:
          case Token::Kind::Not:
          case Token::Kind::LParen:
            return true;
          default:
            return false;
        }
    }

    bool
    parseAnd(QueryNode &out)
    {
        QueryNode first;
        if (!parseUnary(first))
            return false;
        bool explicit_and = peek().kind == Token::Kind::And;
        if (!explicit_and && !startsUnary()) {
            out = std::move(first);
            return true;
        }
        out.kind = QueryNode::Kind::And;
        out.children.push_back(std::move(first));
        while (true) {
            if (peek().kind == Token::Kind::And)
                advance();
            else if (!startsUnary())
                break;
            QueryNode next;
            if (!parseUnary(next))
                return false;
            out.children.push_back(std::move(next));
        }
        return true;
    }

    bool
    parseUnary(QueryNode &out)
    {
        switch (peek().kind) {
          case Token::Kind::Not: {
            advance();
            QueryNode child;
            if (!parseUnary(child))
                return false;
            out.kind = QueryNode::Kind::Not;
            out.children.push_back(std::move(child));
            return true;
          }
          case Token::Kind::LParen: {
            advance();
            if (!parseOr(out))
                return false;
            if (peek().kind != Token::Kind::RParen) {
                _error = "missing ')'";
                return false;
            }
            advance();
            return true;
          }
          case Token::Kind::Term:
            out.kind = QueryNode::Kind::Term;
            out.term = peek().text;
            advance();
            return true;
          default:
            _error = peek().kind == Token::Kind::End
                         ? "unexpected end of query"
                         : "unexpected '" + peek().text + "'";
            return false;
        }
    }

    std::vector<Token> _tokens;
    std::size_t _pos = 0;
    std::string _error;
};

/** Structural equality of two query subtrees. */
bool
sameNode(const QueryNode &a, const QueryNode &b)
{
    if (a.kind != b.kind || a.term != b.term
        || a.children.size() != b.children.size())
        return false;
    for (std::size_t i = 0; i < a.children.size(); ++i)
        if (!sameNode(a.children[i], b.children[i]))
            return false;
    return true;
}

/**
 * Canonicalize a parsed tree in place so toString() is a stable
 * canonical form:
 *
 *  - nested same-kind And/Or children are flattened into their parent
 *    (`a AND (b AND c)` == `a AND b AND c` by associativity);
 *  - duplicate operands of an And/Or are dropped, keeping the first
 *    appearance (`a AND a` == `a` by idempotence);
 *  - an And/Or left with a single operand collapses to that operand.
 *
 * NOT is left untouched (`NOT NOT a` keeps its shape here): the AST
 * stays faithful to what the user wrote modulo associativity and
 * idempotence; negation normalization is the planner's job
 * (plan.hh), which needs the universe to express it.
 */
void
canonicalize(QueryNode &node)
{
    for (QueryNode &child : node.children)
        canonicalize(child);
    if (node.kind != QueryNode::Kind::And
        && node.kind != QueryNode::Kind::Or)
        return;

    // Flatten: splice same-kind children into this level. Children
    // are already canonical, so one pass suffices.
    std::vector<QueryNode> flat;
    flat.reserve(node.children.size());
    for (QueryNode &child : node.children) {
        if (child.kind == node.kind) {
            for (QueryNode &grand : child.children)
                flat.push_back(std::move(grand));
        } else {
            flat.push_back(std::move(child));
        }
    }

    // Dedupe: drop operands structurally equal to an earlier one.
    std::vector<QueryNode> unique;
    unique.reserve(flat.size());
    for (QueryNode &child : flat) {
        bool seen = false;
        for (const QueryNode &kept : unique)
            if (sameNode(kept, child)) {
                seen = true;
                break;
            }
        if (!seen)
            unique.push_back(std::move(child));
    }

    if (unique.size() == 1) {
        QueryNode only = std::move(unique.front());
        node = std::move(only);
        return;
    }
    node.children = std::move(unique);
}

void
render(const QueryNode &node, std::string &out)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        out += node.term;
        return;
      case QueryNode::Kind::Not:
        out += "(NOT ";
        render(node.children.front(), out);
        out += ')';
        return;
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or: {
        const char *op =
            node.kind == QueryNode::Kind::And ? " AND " : " OR ";
        out += '(';
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i > 0)
                out += op;
            render(node.children[i], out);
        }
        out += ')';
        return;
      }
    }
}

} // namespace

Query
Query::parse(const std::string &text)
{
    Query query;
    std::vector<Token> tokens = lex(text);
    if (tokens.size() == 1) { // only End
        query._error = "empty query";
        return query;
    }
    Parser parser(std::move(tokens));
    if (!parser.parse(query._root)) {
        query._error = parser.error();
        return query;
    }
    canonicalize(query._root);
    query._valid = true;
    return query;
}

const QueryNode &
Query::root() const
{
    if (!_valid)
        panic("Query::root on invalid query");
    return _root;
}

std::string
Query::toString() const
{
    if (!_valid)
        return "<invalid: " + _error + ">";
    std::string out;
    render(_root, out);
    return out;
}

} // namespace dsearch
