#include "search/live_searcher.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "search/operators.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/** The contiguous range [first, end) as a sorted DocSet. */
DocSet
rangeUniverse(DocId first, DocId end)
{
    DocSet universe;
    if (end <= first)
        return universe;
    universe.resize(end - first);
    std::iota(universe.begin(), universe.end(), first);
    return universe;
}

/** How many of the (sorted) tombstones fall inside [first, end). */
std::size_t
deadInRange(DocId first, DocId end, const DocSet &tombstones)
{
    auto lo = std::lower_bound(tombstones.begin(), tombstones.end(),
                               first);
    auto hi = std::lower_bound(lo, tombstones.end(), end);
    return static_cast<std::size_t>(hi - lo);
}

} // namespace

LiveSearcher::LiveSearcher(IndexSnapshot base, DocId base_docs,
                           std::vector<DeltaSegment> deltas,
                           DocSet tombstones, const DocTable &docs)
    : _tombstones(std::move(tombstones)), _docs(docs)
{
    if (!base.unified())
        panic("LiveSearcher: base snapshot must be unified");
    for (std::size_t i = 1; i < _tombstones.size(); ++i) {
        if (_tombstones[i - 1] >= _tombstones[i])
            panic("LiveSearcher: tombstones must be sorted and "
                  "duplicate-free");
    }

    // Deltas arrive in publish order, which is DocId order; sort
    // defensively so segment results concatenate sorted.
    std::sort(deltas.begin(), deltas.end(),
              [](const DeltaSegment &a, const DeltaSegment &b) {
                  return a.first_doc < b.first_doc;
              });

    // Segment universes are the *full* owned ranges; one tombstone
    // anti-join per query (DiffOp::apply in run()) replaces the old
    // per-segment universe punching — see the file comment for why
    // the two are equivalent.
    _segments.reserve(deltas.size() + 1);
    Segment base_segment;
    base_segment.index = std::move(base);
    base_segment.universe = rangeUniverse(0, base_docs);
    _segments.push_back(std::move(base_segment));
    _alive += base_docs - deadInRange(0, base_docs, _tombstones);

    DocId prev_end = base_docs;
    for (DeltaSegment &delta : deltas) {
        if (!delta.index.unified())
            panic("LiveSearcher: delta snapshot must be unified");
        if (delta.first_doc < prev_end
            || delta.end_doc < delta.first_doc
            || delta.end_doc > _docs.docCount()) {
            panic("LiveSearcher: delta DocId ranges must be "
                  "disjoint, ascending and inside the doc table");
        }
        prev_end = delta.end_doc;
        Segment segment;
        segment.index = std::move(delta.index);
        segment.universe =
            rangeUniverse(delta.first_doc, delta.end_doc);
        _alive += (delta.end_doc - delta.first_doc)
                  - deadInRange(delta.first_doc, delta.end_doc,
                                _tombstones);
        _segments.push_back(std::move(segment));
    }
}

QueryPlan
LiveSearcher::compilePlan(const Query &query) const
{
    return QueryPlan::compile(query,
                              [this](const std::string &term) {
                                  return dfAcross(term);
                              });
}

DocSet
LiveSearcher::run(const Query &query) const
{
    if (!query.valid())
        return {};
    return run(compilePlan(query));
}

DocSet
LiveSearcher::run(const QueryPlan &plan) const
{
    DocSet hits;
    if (!plan.valid())
        return hits;
    for (const Segment &segment : _segments) {
        if (segment.universe.empty())
            continue;
        SegmentReader reader = segment.index.segmentCount() == 0
            ? SegmentReader()
            : segment.index.segment(0);
        DocSet part = plan.ops().eval(
            OpContext{reader, segment.universe});
        // Segments own ascending disjoint ranges: append, stay sorted.
        hits.insert(hits.end(), part.begin(), part.end());
    }
    // One anti-join removes every tombstoned document — including
    // those NOT-dominated plans matched through their All leaf.
    return DiffOp::apply(std::move(hits), _tombstones);
}

std::size_t
LiveSearcher::dfAcross(std::string_view term) const
{
    std::size_t df = 0;
    for (const Segment &segment : _segments) {
        // Header probe only — a df aggregation across many segments
        // must not decode a posting block per (term, segment).
        if (segment.index.segmentCount() != 0)
            df += segment.index.segment(0).termDocCount(term);
    }
    return df;
}

std::vector<ScoredHit>
LiveSearcher::topK(const Query &query, std::size_t k) const
{
    if (!query.valid() || k == 0)
        return {};
    return topK(compilePlan(query), k);
}

std::vector<ScoredHit>
LiveSearcher::topK(const QueryPlan &plan, std::size_t k) const
{
    std::vector<ScoredHit> hits;
    if (!plan.valid() || k == 0)
        return hits;

    DocSet matches = run(plan);
    if (matches.empty())
        return hits;

    // RankedSearcher's scoring, generalized: df sums across segments
    // (a term's postings for one document live in exactly one
    // segment, so the sum never double-counts a document) and N is
    // the alive universe. Each segment's cursor is then streamed
    // through the sorted match set exactly as the unified path does —
    // a cursor only yields DocIds its segment owns, so per-segment
    // streaming scores each match at most once per term.
    const double n = static_cast<double>(_alive);
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : plan.scoreTerms()) {
        const std::size_t df = dfAcross(term);
        if (df == 0)
            continue;
        const double weight =
            std::log(1.0 + n / static_cast<double>(df));
        for (const Segment &segment : _segments) {
            if (segment.index.segmentCount() == 0)
                continue;
            SegmentReader reader = segment.index.segment(0);
            if (reader.termDocCount(term) == 0)
                continue;
            ScoreOp::apply(matches, reader.cursor(term), weight,
                           scores);
        }
    }

    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const DocId doc = matches[i];
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, scores[i] / penalty});
    }

    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

} // namespace dsearch
