#include "search/live_searcher.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dsearch {

namespace {

/** [first, end) minus the (sorted) tombstones, as a sorted DocSet. */
DocSet
ownedUniverse(DocId first, DocId end, const DocSet &tombstones)
{
    DocSet universe;
    if (end <= first)
        return universe;
    auto dead = std::lower_bound(tombstones.begin(), tombstones.end(),
                                 first);
    universe.reserve(end - first);
    for (DocId doc = first; doc < end; ++doc) {
        if (dead != tombstones.end() && *dead == doc) {
            ++dead;
            continue;
        }
        universe.push_back(doc);
    }
    return universe;
}

} // namespace

LiveSearcher::LiveSearcher(IndexSnapshot base, DocId base_docs,
                           std::vector<DeltaSegment> deltas,
                           DocSet tombstones, const DocTable &docs)
    : _tombstones(std::move(tombstones)), _docs(docs)
{
    if (!base.unified())
        panic("LiveSearcher: base snapshot must be unified");
    for (std::size_t i = 1; i < _tombstones.size(); ++i) {
        if (_tombstones[i - 1] >= _tombstones[i])
            panic("LiveSearcher: tombstones must be sorted and "
                  "duplicate-free");
    }

    // Deltas arrive in publish order, which is DocId order; sort
    // defensively so segment results concatenate sorted.
    std::sort(deltas.begin(), deltas.end(),
              [](const DeltaSegment &a, const DeltaSegment &b) {
                  return a.first_doc < b.first_doc;
              });

    _segments.reserve(deltas.size() + 1);
    Segment base_segment;
    base_segment.index = std::move(base);
    base_segment.universe =
        ownedUniverse(0, base_docs, _tombstones);
    _segments.push_back(std::move(base_segment));

    DocId prev_end = base_docs;
    for (DeltaSegment &delta : deltas) {
        if (!delta.index.unified())
            panic("LiveSearcher: delta snapshot must be unified");
        if (delta.first_doc < prev_end
            || delta.end_doc < delta.first_doc
            || delta.end_doc > _docs.docCount()) {
            panic("LiveSearcher: delta DocId ranges must be "
                  "disjoint, ascending and inside the doc table");
        }
        prev_end = delta.end_doc;
        Segment segment;
        segment.index = std::move(delta.index);
        segment.universe = ownedUniverse(delta.first_doc,
                                         delta.end_doc, _tombstones);
        _segments.push_back(std::move(segment));
    }

    for (const Segment &segment : _segments)
        _alive += segment.universe.size();
}

DocSet
LiveSearcher::run(const Query &query) const
{
    DocSet hits;
    if (!query.valid())
        return hits;
    for (const Segment &segment : _segments) {
        if (segment.universe.empty())
            continue;
        SegmentReader reader = segment.index.segmentCount() == 0
            ? SegmentReader()
            : segment.index.segment(0);
        DocSet part =
            evalQueryNode(reader, segment.universe, query.root());
        // Segments own ascending disjoint ranges: append, stay sorted.
        hits.insert(hits.end(), part.begin(), part.end());
    }
    return hits;
}

std::size_t
LiveSearcher::dfAcross(std::string_view term) const
{
    std::size_t df = 0;
    for (const Segment &segment : _segments) {
        // Header probe only — a df aggregation across many segments
        // must not decode a posting block per (term, segment).
        if (segment.index.segmentCount() != 0)
            df += segment.index.segment(0).termDocCount(term);
    }
    return df;
}

std::vector<ScoredHit>
LiveSearcher::topK(const Query &query, std::size_t k) const
{
    std::vector<ScoredHit> hits;
    if (!query.valid() || k == 0)
        return hits;

    DocSet matches = run(query);
    if (matches.empty())
        return hits;

    // RankedSearcher's scoring, generalized: df sums across segments
    // (a term's postings for one document live in exactly one
    // segment, so the sum never double-counts a document) and N is
    // the alive universe. Each segment's cursor is then streamed
    // through the sorted match set exactly as the unified path does —
    // a cursor only yields DocIds its segment owns, so per-segment
    // streaming scores each match at most once per term.
    const double n = static_cast<double>(_alive);
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : positiveTerms(query.root())) {
        const std::size_t df = dfAcross(term);
        if (df == 0)
            continue;
        const double weight =
            std::log(1.0 + n / static_cast<double>(df));
        for (const Segment &segment : _segments) {
            if (segment.index.segmentCount() == 0)
                continue;
            SegmentReader reader = segment.index.segment(0);
            if (reader.termDocCount(term) == 0)
                continue;
            accumulateCursor(matches, reader.cursor(term), weight,
                             scores);
        }
    }

    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const DocId doc = matches[i];
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, scores[i] / penalty});
    }

    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

} // namespace dsearch
