#include "search/plan.hh"

#include <algorithm>
#include <limits>
#include <utility>

#include "search/operators.hh"
#include "search/ranked.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/** Fixed rank per kind for the canonical total order. */
int
kindRank(PlanNode::Kind kind)
{
    switch (kind) {
      case PlanNode::Kind::Term: return 0;
      case PlanNode::Kind::All:  return 1;
      case PlanNode::Kind::And:  return 2;
      case PlanNode::Kind::Or:   return 3;
      case PlanNode::Kind::Diff: return 4;
    }
    return 5;
}

/** Total structural order: kind rank, term, then children. */
bool
planLess(const PlanNode &a, const PlanNode &b)
{
    if (a.kind != b.kind)
        return kindRank(a.kind) < kindRank(b.kind);
    if (a.term != b.term)
        return a.term < b.term;
    const std::size_t n =
        std::min(a.children.size(), b.children.size());
    for (std::size_t i = 0; i < n; ++i) {
        if (planLess(a.children[i], b.children[i]))
            return true;
        if (planLess(b.children[i], a.children[i]))
            return false;
    }
    return a.children.size() < b.children.size();
}

/** Structural equality under the same total order. */
bool
planEqual(const PlanNode &a, const PlanNode &b)
{
    return !planLess(a, b) && !planLess(b, a);
}

/** Sort children canonically and drop structural duplicates. */
void
sortDedupe(std::vector<PlanNode> &children)
{
    std::sort(children.begin(), children.end(), planLess);
    children.erase(std::unique(children.begin(), children.end(),
                               planEqual),
                   children.end());
}

PlanNode
makeAll()
{
    PlanNode node;
    node.kind = PlanNode::Kind::All;
    return node;
}

/** Wrap @p children as And/Or, collapsing empties and singletons. */
PlanNode
makeNary(PlanNode::Kind kind, std::vector<PlanNode> children)
{
    if (children.empty())
        return makeAll(); // only reachable for And: empty product
    if (children.size() == 1)
        return std::move(children.front());
    PlanNode node;
    node.kind = kind;
    node.children = std::move(children);
    return node;
}

PlanNode conjunction(std::vector<PlanNode> operands);
PlanNode disjunction(std::vector<PlanNode> operands);

/**
 * De Morgan normalization: compile @p node under a negation parity.
 * NOT never survives as a node — a negated subtree either flips into
 * its dual connective (De Morgan), cancels (double negation), or
 * bottoms out as Diff(All, term).
 */
PlanNode
normalize(const QueryNode &node, bool negated)
{
    switch (node.kind) {
      case QueryNode::Kind::Term: {
        PlanNode term;
        term.kind = PlanNode::Kind::Term;
        term.term = node.term;
        if (!negated)
            return term;
        PlanNode diff;
        diff.kind = PlanNode::Kind::Diff;
        diff.children.push_back(makeAll());
        diff.children.push_back(std::move(term));
        return diff;
      }
      case QueryNode::Kind::Not:
        return normalize(node.children.front(), !negated);
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or: {
        std::vector<PlanNode> operands;
        operands.reserve(node.children.size());
        for (const QueryNode &child : node.children)
            operands.push_back(normalize(child, negated));
        const bool conjunctive =
            (node.kind == QueryNode::Kind::And) != negated;
        return conjunctive ? conjunction(std::move(operands))
                           : disjunction(std::move(operands));
      }
    }
    panic("QueryPlan: unknown query node kind");
}

/**
 * Build the canonical conjunction of @p operands: flatten nested
 * Ands, hoist every negative branch into one difference —
 * And(a, Diff(p, n), Diff(All, m)) == Diff(And(a, p), Or(n, m)) —
 * then sort + dedupe both sides. The result is either a pure
 * positive node or a single Diff whose negative side is evaluated
 * exactly once.
 */
PlanNode
conjunction(std::vector<PlanNode> operands)
{
    std::vector<PlanNode> positives;
    std::vector<PlanNode> negatives;
    for (PlanNode &operand : operands) {
        PlanNode *positive = &operand;
        if (operand.kind == PlanNode::Kind::Diff) {
            PlanNode &neg = operand.children[1];
            if (neg.kind == PlanNode::Kind::Or) {
                for (PlanNode &grand : neg.children)
                    negatives.push_back(std::move(grand));
            } else {
                negatives.push_back(std::move(neg));
            }
            positive = &operand.children[0];
        }
        if (positive->kind == PlanNode::Kind::All)
            continue; // intersection identity
        if (positive->kind == PlanNode::Kind::And) {
            for (PlanNode &grand : positive->children)
                positives.push_back(std::move(grand));
        } else {
            positives.push_back(std::move(*positive));
        }
    }
    sortDedupe(positives);
    PlanNode positive = makeNary(PlanNode::Kind::And,
                                 std::move(positives));
    if (negatives.empty())
        return positive;
    sortDedupe(negatives);
    PlanNode diff;
    diff.kind = PlanNode::Kind::Diff;
    diff.children.push_back(std::move(positive));
    diff.children.push_back(
        makeNary(PlanNode::Kind::Or, std::move(negatives)));
    return diff;
}

/**
 * Build the canonical disjunction of @p operands: flatten nested
 * Ors, absorb into All when any operand is the universe, then sort +
 * dedupe. Diff operands stay as-is — negation inside a union is
 * already in its allowed form (a difference operand).
 */
PlanNode
disjunction(std::vector<PlanNode> operands)
{
    std::vector<PlanNode> flat;
    flat.reserve(operands.size());
    for (PlanNode &operand : operands) {
        if (operand.kind == PlanNode::Kind::All)
            return makeAll(); // union identity: x OR * == *
        if (operand.kind == PlanNode::Kind::Or) {
            for (PlanNode &grand : operand.children)
                flat.push_back(std::move(grand));
        } else {
            flat.push_back(std::move(operand));
        }
    }
    sortDedupe(flat);
    return makeNary(PlanNode::Kind::Or, std::move(flat));
}

/** FNV-1a over the canonical structure; see fingerprint(). */
std::uint64_t
mixByte(std::uint64_t hash, unsigned char byte)
{
    hash ^= byte;
    return hash * 0x100000001b3ull;
}

std::uint64_t
mixU64(std::uint64_t hash, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        hash = mixByte(hash,
                       static_cast<unsigned char>(value >> (i * 8)));
    return hash;
}

std::uint64_t
structuralHash(const PlanNode &node)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    hash = mixByte(hash,
                   static_cast<unsigned char>(kindRank(node.kind) + 1));
    for (char c : node.term)
        hash = mixByte(hash, static_cast<unsigned char>(c));
    hash = mixByte(hash, 0xff); // terminator: "ab"+"" != "a"+"b"
    for (const PlanNode &child : node.children)
        hash = mixU64(hash, structuralHash(child));
    return hash;
}

/** Does the plan match a document containing no terms at all? */
bool
emptyDocMatches(const PlanNode &node)
{
    switch (node.kind) {
      case PlanNode::Kind::Term:
        return false;
      case PlanNode::Kind::All:
        return true;
      case PlanNode::Kind::And:
        return std::all_of(node.children.begin(), node.children.end(),
                           emptyDocMatches);
      case PlanNode::Kind::Or:
        return std::any_of(node.children.begin(), node.children.end(),
                           emptyDocMatches);
      case PlanNode::Kind::Diff:
        return emptyDocMatches(node.children[0])
               && !emptyDocMatches(node.children[1]);
    }
    panic("QueryPlan: unknown plan node kind");
}

/**
 * Estimated result size for execution ordering: a term is its df,
 * And is bounded by its smallest child, Or by the (saturating) sum,
 * Diff by its positive branch, All by everything.
 */
std::size_t
dfEstimate(const PlanNode &node, const DfLookup &df)
{
    switch (node.kind) {
      case PlanNode::Kind::Term:
        return df(node.term);
      case PlanNode::Kind::All:
        return std::numeric_limits<std::size_t>::max();
      case PlanNode::Kind::And: {
        std::size_t best = std::numeric_limits<std::size_t>::max();
        for (const PlanNode &child : node.children)
            best = std::min(best, dfEstimate(child, df));
        return best;
      }
      case PlanNode::Kind::Or: {
        std::size_t sum = 0;
        for (const PlanNode &child : node.children) {
            const std::size_t part = dfEstimate(child, df);
            if (part > std::numeric_limits<std::size_t>::max() - sum)
                return std::numeric_limits<std::size_t>::max();
            sum += part;
        }
        return sum;
      }
      case PlanNode::Kind::Diff:
        return dfEstimate(node.children[0], df);
    }
    panic("QueryPlan: unknown plan node kind");
}

/**
 * Stably reorder every And's children by ascending estimated df —
 * cheapest operand first bounds every later intersection. Runs after
 * the fingerprint is taken, so equal queries keep equal fingerprints
 * whatever index they are bound to.
 */
void
orderByDf(PlanNode &node, const DfLookup &df)
{
    for (PlanNode &child : node.children)
        orderByDf(child, df);
    if (node.kind != PlanNode::Kind::And)
        return;
    std::vector<std::pair<std::size_t, std::size_t>> keyed;
    keyed.reserve(node.children.size());
    for (std::size_t i = 0; i < node.children.size(); ++i)
        keyed.emplace_back(dfEstimate(node.children[i], df), i);
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<PlanNode> ordered;
    ordered.reserve(node.children.size());
    for (const auto &[estimate, index] : keyed)
        ordered.push_back(std::move(node.children[index]));
    node.children = std::move(ordered);
}

void
renderPlan(const PlanNode &node, std::string &out)
{
    switch (node.kind) {
      case PlanNode::Kind::Term:
        out += node.term;
        return;
      case PlanNode::Kind::All:
        out += '*';
        return;
      case PlanNode::Kind::Diff:
        out += '(';
        renderPlan(node.children[0], out);
        out += " \\ ";
        renderPlan(node.children[1], out);
        out += ')';
        return;
      case PlanNode::Kind::And:
      case PlanNode::Kind::Or: {
        const char *op =
            node.kind == PlanNode::Kind::And ? " AND " : " OR ";
        out += '(';
        for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i > 0)
                out += op;
            renderPlan(node.children[i], out);
        }
        out += ')';
        return;
      }
    }
}

} // namespace

QueryPlan
QueryPlan::compile(const Query &query)
{
    static const DfLookup no_df;
    return compile(query, no_df);
}

QueryPlan
QueryPlan::compile(const Query &query, const DfLookup &df)
{
    if (!query.valid())
        return QueryPlan();
    auto impl = std::make_shared<Impl>();
    impl->root = normalize(query.root(), false);
    impl->fingerprint = structuralHash(impl->root);
    impl->score_terms = positiveTerms(query.root());
    impl->matches_empty = emptyDocMatches(impl->root);
    if (df)
        orderByDf(impl->root, df);
    impl->ops = buildOperators(impl->root);
    return QueryPlan(std::move(impl));
}

const PlanNode &
QueryPlan::root() const
{
    if (_impl == nullptr)
        panic("QueryPlan::root on an invalid plan");
    return _impl->root;
}

std::uint64_t
QueryPlan::fingerprint() const
{
    return _impl == nullptr ? 0 : _impl->fingerprint;
}

const std::vector<std::string> &
QueryPlan::scoreTerms() const
{
    static const std::vector<std::string> empty;
    return _impl == nullptr ? empty : _impl->score_terms;
}

bool
QueryPlan::matchesEmpty() const
{
    return _impl != nullptr && _impl->matches_empty;
}

const CursorOp &
QueryPlan::ops() const
{
    if (_impl == nullptr)
        panic("QueryPlan::ops on an invalid plan");
    return *_impl->ops;
}

std::string
QueryPlan::toString() const
{
    if (_impl == nullptr)
        return "<invalid plan>";
    std::string out;
    renderPlan(_impl->root, out);
    return out;
}

} // namespace dsearch
