/**
 * @file
 * Ranked retrieval on top of the boolean engine.
 *
 * The paper's future work names integrating and parallelizing search;
 * plain boolean answers are unordered, but desktop-search users
 * expect the best files first. This module scores the boolean match
 * set:
 *
 *   score(d) = sum over positive query terms t present in d of
 *              idf(t) / lengthPenalty(d)
 *
 * where idf(t) = ln(1 + N / df(t)) rewards rare terms and the length
 * penalty ln(2 + bytes(d)) keeps huge files from matching everything.
 * The index stores document sets (not frequencies) — exactly what the
 * paper's generator produces — so scoring is coordinate-level: it
 * counts which query terms match, not how often.
 *
 * Terms under an odd number of NOTs do not contribute score (their
 * absence is required, not rewarded).
 */

#ifndef DSEARCH_SEARCH_RANKED_HH
#define DSEARCH_SEARCH_RANKED_HH

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "search/query.hh"
#include "search/searcher.hh"
#include "util/hash_map.hh"

namespace dsearch {

/** One scored result. */
struct ScoredHit
{
    DocId doc = invalid_doc;
    double score = 0.0;
};

/**
 * Collect the query's positive-context terms (those not under an odd
 * number of NOTs), deduplicated, in first-appearance order. Exposed
 * for tests.
 */
std::vector<std::string> positiveTerms(const QueryNode &root);

/**
 * The scoring formula's idf, computable away from any one index:
 * ln(1 + doc_count / df); 0 when df is 0. RankedSearcher uses it
 * with its own (doc_count, df); the sharded serving tier's broker
 * uses it with the *global* document count and the per-shard df sum,
 * so scores computed inside a shard are bit-identical to what the
 * unsharded searcher would produce (the classic document-partitioned
 * ranking pitfall: per-shard idf makes scores incomparable across
 * shards).
 */
double idfFromCounts(std::size_t doc_count, std::size_t df);

/**
 * Externally supplied per-term score weights for topKWeighted():
 * (term, weight) in the order contributions should accumulate.
 * Matching positiveTerms() order with weight = idf reproduces topK()
 * exactly.
 */
using TermWeights = std::vector<std::pair<std::string, double>>;

/**
 * Stream @p cursor through the sorted @p matches, adding @p weight to
 * each matched position of @p scores. Works blockwise: the SIMD
 * intersection kernel (posting_block.hh) runs over each decoded block
 * view and the skip index gallops across blocks no match can touch.
 * Contributions land in ascending match order, so callers that issue
 * terms in a fixed order get bit-identical floating-point sums — the
 * invariant the sharded broker's merged ranking depends on. Shared by
 * RankedSearcher and LiveSearcher so the paths cannot drift apart
 * arithmetically.
 */
void accumulateCursor(const DocSet &matches, PostingCursor cursor,
                      double weight, std::vector<double> &scores);

/** Ranked query engine over one unified snapshot. */
class RankedSearcher
{
  public:
    /**
     * @param snapshot Unified snapshot to query (kept by value).
     * @param docs     Document table for length normalization (kept
     *                 by reference; doc count defines the universe).
     */
    RankedSearcher(IndexSnapshot snapshot, const DocTable &docs);

    /**
     * Run a query and return the best @p k hits, highest score
     * first; ties break toward lower document IDs (deterministic).
     * Compiles the query (topK(const QueryPlan &, k) is the serving
     * path) and evaluates through the shared operator layer.
     *
     * @return At most @p k scored hits; empty for invalid queries.
     */
    std::vector<ScoredHit> topK(const Query &query,
                                std::size_t k) const;

    /**
     * topK() over a precompiled plan. Boolean matches come from the
     * plan's operator tree; scoring accumulates one ScoreOp pass per
     * plan scoreTerm, in the plan's source-order term list — the
     * fixed order that keeps floating-point sums bit-identical
     * across the unsharded, live and broker paths.
     */
    std::vector<ScoredHit> topK(const QueryPlan &plan,
                                std::size_t k) const;

    /**
     * topK() with the per-term weights dictated from outside instead
     * of derived from this index's own df. The broker of a
     * document-partitioned shard set aggregates df across shards,
     * turns it into global idf (idfFromCounts) and passes the same
     * weights to every shard — each shard then scores its local
     * matches on the global scale, and the merged ranking equals the
     * unsharded one bit for bit (contributions accumulate in the
     * given order, so the floating-point sums match too). Terms
     * absent from this index contribute nothing, exactly as in
     * topK().
     */
    std::vector<ScoredHit> topKWeighted(const Query &query,
                                        std::size_t k,
                                        const TermWeights &weights)
        const;

    /** topKWeighted() over a precompiled plan (the broker ships one
     *  plan plus one weight vector to every shard). */
    std::vector<ScoredHit> topKWeighted(const QueryPlan &plan,
                                        std::size_t k,
                                        const TermWeights &weights)
        const;

    /** Compile @p query ordered by this index's df statistics
     *  (delegates to the boolean engine's compilePlan()). */
    QueryPlan compilePlan(const Query &query) const;

    /** Inverse document frequency of @p term in this index. */
    double idf(const std::string &term) const;

    /** Document frequency of @p term (cached like idf). */
    std::size_t df(const std::string &term) const;

    /**
     * @return Distinct terms currently held by the term-statistics
     *         cache (regression observable: a repeated query stream
     *         must not grow it past its vocabulary).
     */
    std::size_t cachedTermCount() const;

  private:
    /** Cached per-term statistics; valid while the snapshot lives. */
    struct TermStats
    {
        std::size_t df = 0;  ///< Document frequency.
        double idf = 0.0;    ///< idfFromDf(df), precomputed.
    };

    /**
     * term -> TermStats cache. The snapshot is sealed and immutable,
     * so an entry never goes stale; the cache is shared by every
     * query this searcher serves (a server issues the same popular
     * terms over and over). Boxed so the searcher stays movable;
     * reader/writer locked so concurrent topK() calls from a server
     * pool race neither the map nor each other.
     */
    struct TermCache
    {
        mutable std::shared_mutex mutex;
        HashMap<std::string, TermStats> map;
    };

    /** idf from a known document frequency (no term lookup). */
    double idfFromDf(std::size_t df) const;

    /**
     * Look @p term up in the cache, filling it on a miss.
     *
     * When @p cursor_out is non-null and the term has postings, it
     * receives a cursor over them — built from the one snapshot
     * probe either path performs, so scoring never constructs a
     * second cursor for the same term. Metadata-only calls
     * (cursor_out == nullptr, e.g. df()/idf()) fill misses from the
     * term header via IndexSnapshot::termDocCount() and never decode
     * a posting block.
     */
    TermStats termStats(const std::string &term,
                        PostingCursor *cursor_out = nullptr) const;

    /** Length-penalize, sort (score desc, doc asc), truncate to k. */
    std::vector<ScoredHit> finishRanking(const DocSet &matches,
                                         const std::vector<double>
                                             &scores,
                                         std::size_t k) const;

    IndexSnapshot _snapshot;
    const DocTable &_docs;
    Searcher _boolean;
    std::unique_ptr<TermCache> _cache;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_RANKED_HH
