/**
 * @file
 * Ranked retrieval on top of the boolean engine.
 *
 * The paper's future work names integrating and parallelizing search;
 * plain boolean answers are unordered, but desktop-search users
 * expect the best files first. This module scores the boolean match
 * set:
 *
 *   score(d) = sum over positive query terms t present in d of
 *              idf(t) / lengthPenalty(d)
 *
 * where idf(t) = ln(1 + N / df(t)) rewards rare terms and the length
 * penalty ln(2 + bytes(d)) keeps huge files from matching everything.
 * The index stores document sets (not frequencies) — exactly what the
 * paper's generator produces — so scoring is coordinate-level: it
 * counts which query terms match, not how often.
 *
 * Terms under an odd number of NOTs do not contribute score (their
 * absence is required, not rewarded).
 */

#ifndef DSEARCH_SEARCH_RANKED_HH
#define DSEARCH_SEARCH_RANKED_HH

#include <cstddef>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "search/query.hh"
#include "search/searcher.hh"
#include "util/hash_map.hh"

namespace dsearch {

/** One scored result. */
struct ScoredHit
{
    DocId doc = invalid_doc;
    double score = 0.0;
};

/**
 * Collect the query's positive-context terms (those not under an odd
 * number of NOTs), deduplicated, in first-appearance order. Exposed
 * for tests.
 */
std::vector<std::string> positiveTerms(const QueryNode &root);

/** Ranked query engine over one unified snapshot. */
class RankedSearcher
{
  public:
    /**
     * @param snapshot Unified snapshot to query (kept by value).
     * @param docs     Document table for length normalization (kept
     *                 by reference; doc count defines the universe).
     */
    RankedSearcher(IndexSnapshot snapshot, const DocTable &docs);

    /**
     * Run a query and return the best @p k hits, highest score
     * first; ties break toward lower document IDs (deterministic).
     *
     * @return At most @p k scored hits; empty for invalid queries.
     */
    std::vector<ScoredHit> topK(const Query &query,
                                std::size_t k) const;

    /** Inverse document frequency of @p term in this index. */
    double idf(const std::string &term) const;

    /**
     * @return Distinct terms currently held by the term-statistics
     *         cache (regression observable: a repeated query stream
     *         must not grow it past its vocabulary).
     */
    std::size_t cachedTermCount() const;

  private:
    /** Cached per-term statistics; valid while the snapshot lives. */
    struct TermStats
    {
        std::size_t df = 0;  ///< Document frequency.
        double idf = 0.0;    ///< idfFromDf(df), precomputed.
    };

    /**
     * term -> TermStats cache. The snapshot is sealed and immutable,
     * so an entry never goes stale; the cache is shared by every
     * query this searcher serves (a server issues the same popular
     * terms over and over). Boxed so the searcher stays movable;
     * reader/writer locked so concurrent topK() calls from a server
     * pool race neither the map nor each other.
     */
    struct TermCache
    {
        mutable std::shared_mutex mutex;
        HashMap<std::string, TermStats> map;
    };

    /** idf from a known document frequency (no term lookup). */
    double idfFromDf(std::size_t df) const;

    /**
     * Look @p term up in the cache, filling it on a miss.
     *
     * When @p cursor_out is non-null and the term has postings, it
     * receives a cursor over them — built from the one snapshot
     * probe either path performs, so scoring never constructs a
     * second cursor for the same term.
     */
    TermStats termStats(const std::string &term,
                        PostingCursor *cursor_out = nullptr) const;

    IndexSnapshot _snapshot;
    const DocTable &_docs;
    Searcher _boolean;
    std::unique_ptr<TermCache> _cache;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_RANKED_HH
