#include "search/searcher.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace dsearch {

DocSet
intersectSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

DocSet
uniteSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

DocSet
subtractSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size());
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
}

DocSet
intersectCursor(PostingCursor cursor, const DocSet &universe)
{
    DocSet out;
    out.reserve(std::min(cursor.remaining(), universe.size()));
    auto it = universe.begin();
    while (it != universe.end() && cursor.seekGE(*it)) {
        const DocId doc = cursor.doc();
        it = std::lower_bound(it, universe.end(), doc);
        if (it == universe.end())
            break;
        if (*it == doc) {
            out.push_back(doc);
            ++it;
            cursor.next();
        }
    }
    return out;
}

DocSet
evalQueryNode(const SegmentReader &segment, const DocSet &universe,
              const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        // Terms outside the universe (e.g. a replica's slice) are
        // clipped so NOT/AND algebra stays consistent.
        return intersectCursor(segment.cursor(node.term), universe);
      case QueryNode::Kind::And: {
        if (node.children.empty())
            panic("evalQueryNode: AND without operands");
        DocSet acc =
            evalQueryNode(segment, universe, node.children.front());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
            if (acc.empty())
                break;
            acc = intersectSets(
                acc,
                evalQueryNode(segment, universe, node.children[i]));
        }
        return acc;
      }
      case QueryNode::Kind::Or: {
        if (node.children.empty())
            panic("evalQueryNode: OR without operands");
        DocSet acc;
        for (const QueryNode &child : node.children)
            acc = uniteSets(acc,
                            evalQueryNode(segment, universe, child));
        return acc;
      }
      case QueryNode::Kind::Not:
        if (node.children.size() != 1)
            panic("evalQueryNode: NOT needs exactly one operand");
        return subtractSets(
            universe,
            evalQueryNode(segment, universe, node.children.front()));
    }
    panic("evalQueryNode: unknown node kind");
}

bool
matchesEmptyDocument(const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        return false;
      case QueryNode::Kind::And:
        for (const QueryNode &child : node.children)
            if (!matchesEmptyDocument(child))
                return false;
        return true;
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            if (matchesEmptyDocument(child))
                return true;
        return false;
      case QueryNode::Kind::Not:
        return !matchesEmptyDocument(node.children.front());
    }
    panic("matchesEmptyDocument: unknown node kind");
}

Searcher::Searcher(IndexSnapshot snapshot, std::size_t doc_count)
    : _snapshot(std::move(snapshot)), _universe(doc_count)
{
    if (!_snapshot.unified())
        panic("Searcher: multi-segment snapshot; use MultiSearcher");
    std::iota(_universe.begin(), _universe.end(), 0);
}

Searcher::Searcher(IndexSnapshot snapshot, DocSet universe)
    : _snapshot(std::move(snapshot)), _universe(std::move(universe))
{
    if (!_snapshot.unified())
        panic("Searcher: multi-segment snapshot; use MultiSearcher");
    if (!std::is_sorted(_universe.begin(), _universe.end()))
        panic("Searcher: universe must be sorted and duplicate-free");
    if (std::adjacent_find(_universe.begin(), _universe.end())
        != _universe.end())
        panic("Searcher: universe contains duplicates");
}

DocSet
Searcher::run(const Query &query) const
{
    if (!query.valid())
        return {};
    const SegmentReader segment = _snapshot.segmentCount() == 0
                                      ? SegmentReader()
                                      : _snapshot.segment(0);
    return evalQueryNode(segment, _universe, query.root());
}

} // namespace dsearch
