#include "search/searcher.hh"

#include <algorithm>
#include <numeric>

#include "search/operators.hh"
#include "util/logging.hh"

namespace dsearch {

DocSet
intersectSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

DocSet
uniteSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

DocSet
subtractSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size());
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
}

namespace {

/**
 * Intersect two term cursors blockwise: the SIMD kernel runs over
 * the overlap of the two decoded block views, and seekGE() (skip
 * index + prefetch) jumps across block ranges that cannot overlap.
 */
DocSet
intersectCursorPair(PostingCursor a, PostingCursor b)
{
    DocSet out;
    out.reserve(std::min(a.remaining(), b.remaining()));
    while (a.valid() && b.valid()) {
        const DocId *ap = a.blockDocs();
        std::size_t an = a.blockRemaining();
        const DocId *bp = b.blockDocs();
        std::size_t bn = b.blockRemaining();
        const DocId alast = ap[an - 1];
        const DocId blast = bp[bn - 1];
        // Disjoint views: gallop the trailing cursor forward.
        if (ap[0] > blast) {
            if (!b.seekGE(ap[0]))
                break;
            continue;
        }
        if (bp[0] > alast) {
            if (!a.seekGE(bp[0]))
                break;
            continue;
        }
        // Consume in full the view that ends first, and the other's
        // prefix up to that bound — docs beyond it may still match
        // the next block.
        if (alast <= blast)
            bn = static_cast<std::size_t>(
                std::upper_bound(bp, bp + bn, alast) - bp);
        else
            an = static_cast<std::size_t>(
                std::upper_bound(ap, ap + an, blast) - ap);
        const std::size_t base = out.size();
        out.resize(base + std::min(an, bn));
        const std::size_t k =
            intersectU32(ap, an, bp, bn, out.data() + base);
        out.resize(base + k);
        a.skipInBlock(an);
        b.skipInBlock(bn);
    }
    return out;
}

/** @p acc ∩ @p cursor, blockwise (see intersectCursorPair). */
DocSet
intersectDocsCursor(const DocSet &acc, PostingCursor cursor)
{
    DocSet out;
    out.reserve(std::min(acc.size(), cursor.remaining()));
    std::size_t i = 0;
    while (i < acc.size() && cursor.valid()) {
        const DocId *cp = cursor.blockDocs();
        const std::size_t cn = cursor.blockRemaining();
        const DocId clast = cp[cn - 1];
        if (acc[i] > clast) {
            if (!cursor.seekGE(acc[i]))
                break;
            continue;
        }
        const std::size_t an = static_cast<std::size_t>(
            std::upper_bound(acc.begin() + static_cast<std::ptrdiff_t>(i),
                             acc.end(), clast)
            - (acc.begin() + static_cast<std::ptrdiff_t>(i)));
        const std::size_t base = out.size();
        out.resize(base + std::min(an, cn));
        const std::size_t k =
            intersectU32(&acc[i], an, cp, cn, out.data() + base);
        out.resize(base + k);
        i += an;
        cursor.skipInBlock(cn);
    }
    return out;
}

} // namespace

DocSet
clipToUniverse(DocSet &&docs, const DocSet &universe)
{
    if (docs.empty() || universe.empty())
        return {};
    if (universe.back() - universe.front()
        == static_cast<DocId>(universe.size() - 1)) {
        auto lo = std::lower_bound(docs.begin(), docs.end(),
                                   universe.front());
        auto hi = std::upper_bound(lo, docs.end(), universe.back());
        docs.erase(hi, docs.end());
        docs.erase(docs.begin(), lo);
        return std::move(docs);
    }
    DocSet out;
    out.reserve(std::min(docs.size(), universe.size()));
    auto it = universe.begin();
    for (DocId doc : docs) {
        it = std::lower_bound(it, universe.end(), doc);
        if (it == universe.end())
            break;
        if (*it == doc)
            out.push_back(doc);
    }
    return out;
}

DocSet
intersectTermCursors(std::vector<PostingCursor> cursors)
{
    if (cursors.empty())
        return {};
    // Smallest list first: it bounds every later intersection.
    std::sort(cursors.begin(), cursors.end(),
              [](const PostingCursor &a, const PostingCursor &b) {
                  return a.count() < b.count();
              });
    if (cursors.front().count() == 0)
        return {};
    if (cursors.size() == 1)
        return cursors.front().toDocSet();
    DocSet acc = intersectCursorPair(std::move(cursors[0]),
                                     std::move(cursors[1]));
    for (std::size_t i = 2; i < cursors.size() && !acc.empty(); ++i)
        acc = intersectDocsCursor(acc, std::move(cursors[i]));
    return acc;
}

DocSet
intersectCursor(PostingCursor cursor, const DocSet &universe)
{
    DocSet out;
    out.reserve(std::min(cursor.remaining(), universe.size()));
    auto it = universe.begin();
    while (it != universe.end() && cursor.seekGE(*it)) {
        const DocId doc = cursor.doc();
        it = std::lower_bound(it, universe.end(), doc);
        if (it == universe.end())
            break;
        if (*it == doc) {
            out.push_back(doc);
            ++it;
            cursor.next();
        }
    }
    return out;
}

DocSet
evalQueryNode(const SegmentReader &segment, const DocSet &universe,
              const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        // Terms outside the universe (e.g. a replica's slice) are
        // clipped so NOT/AND algebra stays consistent.
        return intersectCursor(segment.cursor(node.term), universe);
      case QueryNode::Kind::And: {
        if (node.children.empty())
            panic("evalQueryNode: AND without operands");
        // AND over plain terms — the hottest query shape — takes the
        // blockwise SIMD path; clipping to the universe afterwards is
        // equivalent to clipping every leaf (intersection commutes).
        if (std::all_of(node.children.begin(), node.children.end(),
                        [](const QueryNode &child) {
                            return child.kind == QueryNode::Kind::Term;
                        })) {
            std::vector<PostingCursor> cursors;
            cursors.reserve(node.children.size());
            for (const QueryNode &child : node.children)
                cursors.push_back(segment.cursor(child.term));
            return clipToUniverse(
                intersectTermCursors(std::move(cursors)), universe);
        }
        DocSet acc =
            evalQueryNode(segment, universe, node.children.front());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
            if (acc.empty())
                break;
            acc = intersectSets(
                acc,
                evalQueryNode(segment, universe, node.children[i]));
        }
        return acc;
      }
      case QueryNode::Kind::Or: {
        if (node.children.empty())
            panic("evalQueryNode: OR without operands");
        DocSet acc;
        for (const QueryNode &child : node.children)
            acc = uniteSets(acc,
                            evalQueryNode(segment, universe, child));
        return acc;
      }
      case QueryNode::Kind::Not:
        if (node.children.size() != 1)
            panic("evalQueryNode: NOT needs exactly one operand");
        return subtractSets(
            universe,
            evalQueryNode(segment, universe, node.children.front()));
    }
    panic("evalQueryNode: unknown node kind");
}

bool
matchesEmptyDocument(const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        return false;
      case QueryNode::Kind::And:
        for (const QueryNode &child : node.children)
            if (!matchesEmptyDocument(child))
                return false;
        return true;
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            if (matchesEmptyDocument(child))
                return true;
        return false;
      case QueryNode::Kind::Not:
        return !matchesEmptyDocument(node.children.front());
    }
    panic("matchesEmptyDocument: unknown node kind");
}

Searcher::Searcher(IndexSnapshot snapshot, std::size_t doc_count)
    : _snapshot(std::move(snapshot)), _universe(doc_count)
{
    if (!_snapshot.unified())
        panic("Searcher: multi-segment snapshot; use MultiSearcher");
    std::iota(_universe.begin(), _universe.end(), 0);
}

Searcher::Searcher(IndexSnapshot snapshot, DocSet universe)
    : _snapshot(std::move(snapshot)), _universe(std::move(universe))
{
    if (!_snapshot.unified())
        panic("Searcher: multi-segment snapshot; use MultiSearcher");
    if (!std::is_sorted(_universe.begin(), _universe.end()))
        panic("Searcher: universe must be sorted and duplicate-free");
    if (std::adjacent_find(_universe.begin(), _universe.end())
        != _universe.end())
        panic("Searcher: universe contains duplicates");
}

QueryPlan
Searcher::compilePlan(const Query &query) const
{
    if (_snapshot.segmentCount() == 0)
        return QueryPlan::compile(query);
    // df from term headers only: ordering a plan must never decode
    // a posting block.
    return QueryPlan::compile(query,
                              [this](const std::string &term) {
                                  return _snapshot.termDocCount(term);
                              });
}

DocSet
Searcher::run(const Query &query) const
{
    if (!query.valid())
        return {};
    return run(compilePlan(query));
}

DocSet
Searcher::run(const QueryPlan &plan) const
{
    if (!plan.valid())
        return {};
    const SegmentReader segment = _snapshot.segmentCount() == 0
                                      ? SegmentReader()
                                      : _snapshot.segment(0);
    return plan.ops().eval(OpContext{segment, _universe});
}

} // namespace dsearch
