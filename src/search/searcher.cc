#include "search/searcher.hh"

#include <algorithm>
#include <numeric>

#include "util/logging.hh"

namespace dsearch {

DocSet
intersectSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(std::min(a.size(), b.size()));
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out));
    return out;
}

DocSet
uniteSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

DocSet
subtractSets(const DocSet &a, const DocSet &b)
{
    DocSet out;
    out.reserve(a.size());
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
}

namespace {

/** Sorted, deduplicated copy of a term's posting list. */
DocSet
termDocs(const InvertedIndex &index, const std::string &term)
{
    const PostingList *postings = index.postings(term);
    if (postings == nullptr)
        return {};
    DocSet docs(postings->begin(), postings->end());
    std::sort(docs.begin(), docs.end());
    docs.erase(std::unique(docs.begin(), docs.end()), docs.end());
    return docs;
}

} // namespace

DocSet
evalQueryNode(const InvertedIndex &index, const DocSet &universe,
              const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        // Terms outside the universe (e.g. a replica's slice) are
        // clipped so NOT/AND algebra stays consistent.
        return intersectSets(termDocs(index, node.term), universe);
      case QueryNode::Kind::And: {
        if (node.children.empty())
            panic("evalQueryNode: AND without operands");
        DocSet acc =
            evalQueryNode(index, universe, node.children.front());
        for (std::size_t i = 1; i < node.children.size(); ++i) {
            if (acc.empty())
                break;
            acc = intersectSets(
                acc, evalQueryNode(index, universe, node.children[i]));
        }
        return acc;
      }
      case QueryNode::Kind::Or: {
        if (node.children.empty())
            panic("evalQueryNode: OR without operands");
        DocSet acc;
        for (const QueryNode &child : node.children)
            acc = uniteSets(acc, evalQueryNode(index, universe, child));
        return acc;
      }
      case QueryNode::Kind::Not:
        if (node.children.size() != 1)
            panic("evalQueryNode: NOT needs exactly one operand");
        return subtractSets(
            universe,
            evalQueryNode(index, universe, node.children.front()));
    }
    panic("evalQueryNode: unknown node kind");
}

bool
matchesEmptyDocument(const QueryNode &node)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        return false;
      case QueryNode::Kind::And:
        for (const QueryNode &child : node.children)
            if (!matchesEmptyDocument(child))
                return false;
        return true;
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            if (matchesEmptyDocument(child))
                return true;
        return false;
      case QueryNode::Kind::Not:
        return !matchesEmptyDocument(node.children.front());
    }
    panic("matchesEmptyDocument: unknown node kind");
}

Searcher::Searcher(const InvertedIndex &index, std::size_t doc_count)
    : _index(index), _universe(doc_count)
{
    std::iota(_universe.begin(), _universe.end(), 0);
}

Searcher::Searcher(const InvertedIndex &index, DocSet universe)
    : _index(index), _universe(std::move(universe))
{
    if (!std::is_sorted(_universe.begin(), _universe.end())
        || std::adjacent_find(_universe.begin(), _universe.end())
               != _universe.end()) {
        panic("Searcher: universe must be sorted and duplicate-free");
    }
}

DocSet
Searcher::run(const Query &query) const
{
    if (!query.valid())
        return {};
    return evalQueryNode(_index, _universe, query.root());
}

} // namespace dsearch
