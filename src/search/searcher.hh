/**
 * @file
 * Boolean query evaluation over a single inverted index.
 *
 * Evaluation works on sorted document sets: a term resolves to its
 * (sorted, deduplicated) posting list; AND intersects, OR unites, and
 * NOT complements against the document universe. All set operations
 * are linear merges.
 */

#ifndef DSEARCH_SEARCH_SEARCHER_HH
#define DSEARCH_SEARCH_SEARCHER_HH

#include <cstddef>
#include <vector>

#include "index/inverted_index.hh"
#include "search/query.hh"

namespace dsearch {

/** Sorted, duplicate-free set of matching documents. */
using DocSet = std::vector<DocId>;

/** Sorted-merge intersection of two DocSets. */
DocSet intersectSets(const DocSet &a, const DocSet &b);

/** Sorted-merge union of two DocSets. */
DocSet uniteSets(const DocSet &a, const DocSet &b);

/** Sorted-merge difference a \ b. */
DocSet subtractSets(const DocSet &a, const DocSet &b);

/**
 * Evaluate @p node against @p index with NOT complemented against
 * @p universe (a sorted DocSet).
 *
 * Shared by the single-index and multi-index searchers; exposed for
 * tests.
 */
DocSet evalQueryNode(const InvertedIndex &index, const DocSet &universe,
                     const QueryNode &node);

/**
 * Does the query match a document containing no terms at all? Needed
 * by the multi-index searcher for documents that appear in no replica
 * (empty files), and true only for NOT-dominated queries.
 */
bool matchesEmptyDocument(const QueryNode &node);

/** Query engine over one index. */
class Searcher
{
  public:
    /**
     * @param index     Index to query (kept by reference; must
     *                  outlive the searcher).
     * @param doc_count Document universe size; NOT complements
     *                  against [0, doc_count).
     */
    Searcher(const InvertedIndex &index, std::size_t doc_count);

    /**
     * Construct with an explicit universe (sorted, duplicate-free),
     * e.g. the alive documents of an incrementally maintained index:
     * NOT then complements against exactly that set, and term hits
     * are clipped to it.
     */
    Searcher(const InvertedIndex &index, DocSet universe);

    /**
     * Run a query.
     *
     * @return Sorted matching document IDs; empty for invalid
     *         queries.
     */
    DocSet run(const Query &query) const;

  private:
    const InvertedIndex &_index;
    DocSet _universe;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_SEARCHER_HH
