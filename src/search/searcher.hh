/**
 * @file
 * Boolean query evaluation over a sealed index snapshot.
 *
 * Evaluation works on sorted document sets: a term resolves through a
 * PostingCursor (sorted, duplicate-free by sealing); AND intersects,
 * OR unites, and NOT complements against the document universe. Set
 * operations are linear merges; the term leaf intersects its cursor
 * against the universe with seekGE(), so skewed posting lists are
 * skipped rather than scanned.
 *
 * The hottest shape — AND over plain terms — takes a bulk path
 * instead: intersectTermCursors() runs the SIMD block-intersection
 * kernel (posting_block.hh) over whole decoded blocks, galloping via
 * the skip index only between blocks, and the result is clipped to
 * the universe once at the end (set algebra makes the two orders
 * equivalent). Mixed AND/OR/NOT trees keep the general merge path.
 *
 * Searchers hold their snapshot by value — snapshots are two pointer
 * copies and keep the underlying segments alive — so there is no
 * "index must outlive the searcher" contract to get wrong.
 *
 * Since the planner refactor, Searcher evaluates through the shared
 * QueryPlan/operator layer (search/plan.hh, search/operators.hh):
 * run(Query) compiles a plan against this snapshot's statistics and
 * evaluates its operator tree; run(QueryPlan) evaluates a plan
 * compiled elsewhere (the serving tiers ship one plan everywhere).
 * The set kernels below (intersect/unite/subtract, cursor
 * intersection) are the primitives the operator layer is built on;
 * evalQueryNode() survives only as the legacy reference oracle.
 */

#ifndef DSEARCH_SEARCH_SEARCHER_HH
#define DSEARCH_SEARCH_SEARCHER_HH

#include <cstddef>
#include <vector>

#include "index/index_snapshot.hh"
#include "search/plan.hh"
#include "search/query.hh"

namespace dsearch {

/** Sorted, duplicate-free set of matching documents. */
using DocSet = std::vector<DocId>;

/** Sorted-merge intersection of two DocSets. */
DocSet intersectSets(const DocSet &a, const DocSet &b);

/** Sorted-merge union of two DocSets. */
DocSet uniteSets(const DocSet &a, const DocSet &b);

/** Sorted-merge difference a \ b. */
DocSet subtractSets(const DocSet &a, const DocSet &b);

/**
 * Intersect a posting cursor with a sorted DocSet (seekGE-driven:
 * O(|universe| log skip) rather than materialize-then-merge).
 */
DocSet intersectCursor(PostingCursor cursor, const DocSet &universe);

/**
 * AND together any number of term cursors blockwise: the smallest
 * list drives, whole decoded blocks are intersected branch-free with
 * the SIMD kernel (intersectU32), and the skip index gallops across
 * non-overlapping block ranges. An empty vector or any exhausted
 * cursor yields the empty set. Exposed for tests and the
 * intersection bench.
 */
DocSet intersectTermCursors(std::vector<PostingCursor> cursors);

/**
 * Intersect @p docs with @p universe: a range trim when the universe
 * is contiguous (the common full-corpus case), a galloping merge
 * otherwise (live/replica subset universes). Shared by the operator
 * layer (operators.hh); intersection commutes, so clipping a
 * composite result once equals clipping every leaf.
 */
DocSet clipToUniverse(DocSet &&docs, const DocSet &universe);

/**
 * Evaluate @p node against one segment with NOT complemented against
 * @p universe (a sorted DocSet).
 *
 * This is the **legacy reference evaluator**: a direct recursive walk
 * of the Query AST. Production tiers no longer call it — they compile
 * a QueryPlan (search/plan.hh) and evaluate the shared operator tree
 * (search/operators.hh) instead. It is kept as the independent oracle
 * the plan-vs-legacy equivalence fuzz and the query_exec bench
 * compare against; it must keep producing exactly the sets the
 * planner path produces.
 */
DocSet evalQueryNode(const SegmentReader &segment,
                     const DocSet &universe, const QueryNode &node);

/**
 * Does the query match a document containing no terms at all? Needed
 * by the multi-index searcher for documents that appear in no replica
 * (empty files), and true only for NOT-dominated queries.
 */
bool matchesEmptyDocument(const QueryNode &node);

/** Query engine over one unified snapshot. */
class Searcher
{
  public:
    /**
     * @param snapshot  Unified snapshot to query (kept by value;
     *                  panics when multi-segment — use MultiSearcher
     *                  for unjoined replicas).
     * @param doc_count Document universe size; NOT complements
     *                  against [0, doc_count).
     */
    Searcher(IndexSnapshot snapshot, std::size_t doc_count);

    /**
     * Construct with an explicit universe (sorted, duplicate-free),
     * e.g. the alive documents of an incrementally maintained index:
     * NOT then complements against exactly that set, and term hits
     * are clipped to it.
     */
    Searcher(IndexSnapshot snapshot, DocSet universe);

    /**
     * Run a query: compiles it into a QueryPlan — ordered by this
     * snapshot's term statistics — and evaluates the plan's operator
     * tree. One-shot convenience over run(const QueryPlan &).
     *
     * @return Sorted matching document IDs; empty for invalid
     *         queries.
     */
    DocSet run(const Query &query) const;

    /**
     * Evaluate a compiled plan (the serving path: QueryServer and
     * the broker compile once and reuse the plan across workers,
     * generations and shards).
     *
     * @return Sorted matching document IDs; empty for invalid plans.
     */
    DocSet run(const QueryPlan &plan) const;

    /** Compile @p query ordered by this snapshot's df statistics
     *  (header probes only). */
    QueryPlan compilePlan(const Query &query) const;

  private:
    IndexSnapshot _snapshot;
    DocSet _universe;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_SEARCHER_HH
