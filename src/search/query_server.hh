/**
 * @file
 * QueryServer: the persistent query-serving loop over a sealed index.
 *
 * Everything below Engine::build() produces one-shot answers: a
 * searcher is constructed, a query is evaluated, results returned.
 * The deployment shape the ROADMAP's north star demands — and the
 * broker/worker search engines in the related work run as — is a
 * *service*: an index that stays resident and answers an open-ended
 * stream of queries from many clients at once.
 *
 * The server owns the sealed state (snapshot + document table) and
 * long-lived searcher instances, so per-query work is evaluation
 * only:
 *
 *   clients --submit()--> BlockingQueue --dispatcher--> ThreadPool
 *      ^                  (bounded:                     (persistent
 *      |                   back-pressure)                workers)
 *      +---- future / callback with QueryResponse <-----+
 *
 *  - Admission is a bounded BlockingQueue: when clients outrun the
 *    workers the queue fills and submit() blocks — closed-loop
 *    back-pressure instead of unbounded memory growth.
 *  - A dispatcher thread drains the queue in batches (popBatch, one
 *    lock round per batch) and fans requests out to a shared
 *    ThreadPool sized to the machine. Threads are created once, at
 *    server start; a query never pays thread spawn (the fatal cost
 *    bench_search_server quantifies against the naive path).
 *  - Results come back through a std::future, an optional callback,
 *    or both. Every admitted query is answered, even on shutdown:
 *    close() semantics drain the queue before the server stops.
 *  - Per-query latency (admission to completion) feeds a latency log
 *    digested on demand into throughput and p50/p95/p99 (util/stats).
 *
 * A query is compiled **once**, at admission: enqueue() turns the
 * Query into a QueryPlan (search/plan.hh) ordered by the serving
 * state's term statistics, and that immutable plan is what travels
 * through the queue and what every worker evaluates — workers never
 * re-walk query text, and a plan compiled elsewhere (the sharded
 * tier's broker compiles one per request and fans it out) enters
 * directly through submitPlan() / the plan-taking
 * submitRankedWeighted(). Plans are shareable: the same object may
 * be evaluated concurrently by many workers and many servers.
 *
 * Unified snapshots are served by Searcher (boolean) and
 * RankedSearcher (topK; its term-stats cache is shared across the
 * stream). A replicated snapshot — Implementation 3's unjoined
 * output — is served by MultiSearcher, each query evaluating its
 * segments serially inside one worker task so the pool's parallelism
 * is spent across in-flight queries rather than nested inside one.
 * A live (base + delta + tombstone) generation is served by
 * LiveSearcher. Ranked queries require a unified or live snapshot
 * and are rejected (ok = false) on replicated ones — checked at
 * evaluation against the state the query actually runs on, so the
 * answer is consistent under concurrent publishes.
 *
 * Snapshot hot-swap — the server is no longer married to the index
 * it was born with. Everything a query touches (snapshot, document
 * table, searcher instances) lives in one immutable ServingState
 * behind a shared_ptr slot whose lock covers only the pointer
 * copy/swap. publish() builds the next generation's state off to
 * the side and swaps the pointer:
 *
 *  - Zero downtime: admission never pauses; a query admitted before
 *    the swap and still in flight finishes on the state it loaded
 *    (its shared_ptr copy keeps the old generation alive), while
 *    every evaluation that starts after the swap sees the new one.
 *    No lock is held across evaluation or state construction, so a
 *    publish never waits on queries (nor queries on a publish)
 *    beyond one pointer exchange.
 *  - Zero tearing: a worker loads the state pointer exactly once per
 *    query and resolves snapshot, universe, document table and term
 *    statistics from that one object — a result is entirely
 *    pre-swap or entirely post-swap, never a mix.
 *  - Shutdown-vs-swap: shutdown() closes admission and drains; a
 *    publish racing it merely swaps which consistent state the
 *    drained queries evaluate against. The swapped-out state is
 *    destroyed when its last in-flight query drops it, so there is
 *    no window where a drained query touches moved-from members.
 *
 * stats().swaps counts publishes; generation() names the serving
 * generation (LiveIndex feeds it the SnapshotStore generation, so
 * staleness is observable end to end).
 *
 * Failure handling — what is detected, what is shed, what survives:
 *
 *  - Overload: with an admission policy other than Block, a full
 *    queue no longer blocks the client. RejectNewest refuses the
 *    incoming query; ShedOldest drops the longest-queued one to admit
 *    it (freshest-first service under sustained saturation). Either
 *    way the victim's future resolves ok = false with error
 *    "shed under overload", and stats().shed counts it — overload is
 *    absorbed by explicit, counted refusals, not by unbounded queues
 *    or client stalls.
 *  - Deadlines: options.deadline_sec > 0 gives every query a budget
 *    from admission. Expired queries are rejected *before* dispatch
 *    (dispatcher and worker both check, so expiry in the pool queue
 *    is caught too) with error "deadline expired", counted in
 *    stats().timed_out; worker time is never spent on an answer the
 *    client has given up on. Accepted-query latency therefore stays
 *    bounded near the deadline even under overload — the property
 *    bench_search_server's overload scenario gates.
 *  - Poisoned queries: an exception thrown during evaluation (or
 *    injected via the "query_server.execute" fault point) is caught
 *    in the worker and converted into an ok = false response carrying
 *    the exception text. The dispatcher, the pool and every other
 *    in-flight query are unaffected; the failure is one client's bad
 *    answer, not a dead server.
 */

#ifndef DSEARCH_SEARCH_QUERY_SERVER_HH
#define DSEARCH_SEARCH_QUERY_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "pipeline/blocking_queue.hh"
#include "pipeline/thread_pool.hh"
#include "search/live_searcher.hh"
#include "search/multi_searcher.hh"
#include "search/plan.hh"
#include "search/query.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "util/stats.hh"

namespace dsearch {

/** What submit() does when the bounded admission queue is full. */
enum class OverloadPolicy {
    /** Block the client until a slot frees (closed-loop default). */
    Block,
    /** Refuse the incoming query immediately (counted as shed). */
    RejectNewest,
    /** Drop the longest-queued query to admit the incoming one. */
    ShedOldest,
};

/** Sizing knobs for a QueryServer. */
struct ServerOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t workers = 0;

    /**
     * Admission queue bound (back-pressure depth). 0 means
     * unbounded — submit() then never blocks, memory is the limit.
     */
    std::size_t queue_capacity = 1024;

    /** Requests the dispatcher drains per queue round (>= 1). */
    std::size_t batch_size = 8;

    /**
     * Per-query budget from admission, seconds; expired queries are
     * rejected before evaluation (stats().timed_out). 0 = none.
     */
    double deadline_sec = 0.0;

    /**
     * Admission behaviour at a full queue; ignored when the queue is
     * unbounded. Non-Block policies make submit() non-blocking (the
     * open-loop serving shape; see the file comment).
     */
    OverloadPolicy overload_policy = OverloadPolicy::Block;
};

/** The answer to one served query. */
struct QueryResponse
{
    /** False when the query was rejected (error says why). */
    bool ok = false;

    /** Rejection reason (empty when ok). */
    std::string error;

    /** Boolean matches (boolean queries only; sorted DocIds). */
    DocSet hits;

    /** Scored hits, best first (ranked queries only). */
    std::vector<ScoredHit> ranked;

    /** Admission-to-completion latency, seconds. */
    double latency_sec = 0.0;
};

/** A served-traffic digest; see QueryServer::stats(). */
struct ServerStats
{
    std::uint64_t completed = 0; ///< Queries answered ok.
    std::uint64_t rejected = 0;  ///< Invalid / refused / shut down / threw.
    std::uint64_t timed_out = 0; ///< Deadline expired before dispatch.
    std::uint64_t shed = 0;      ///< Dropped by the overload policy.
    std::uint64_t swaps = 0;     ///< publish() hot-swaps so far.
    std::uint64_t generation = 0; ///< Serving generation (publisher's).
    double elapsed_sec = 0.0;    ///< Since start or resetStats().
    double qps = 0.0;            ///< completed / elapsed.
    LatencySummary latency;      ///< p50/p95/p99 etc. of *completed*
                                 ///< queries, seconds.
};

/**
 * Everything one published generation serves with: the payload of a
 * QueryServer::publish() call. deltas/tombstones empty = a plain
 * (unified or replicated) snapshot; otherwise base must be unified
 * and the live (base + delta + tombstone) engine serves it.
 */
struct ServingUpdate
{
    IndexSnapshot base;   ///< Base snapshot (compacted generation).
    DocTable docs;        ///< Table covering base *and* deltas.
    DocId base_docs = 0;  ///< DocIds the base owns: [0, base_docs).
    std::vector<DeltaSegment> deltas; ///< Uncompacted increments.
    DocSet tombstones;    ///< Sorted dead DocIds.
    std::uint64_t generation = 0;     ///< Publisher's name for this.
};

/**
 * One immutable serving generation: the snapshot, its document
 * table, and the searcher instances bound to them. Built off to the
 * side by publish(), swapped in atomically, destroyed when the last
 * in-flight query releases it. Exactly one engine group is non-null:
 * single [+ ranked], multi, or live.
 */
struct ServingState
{
    DocTable docs;
    IndexSnapshot snapshot; ///< The base snapshot.
    std::uint64_t generation = 0;
    std::unique_ptr<Searcher> single;
    std::unique_ptr<RankedSearcher> ranked;
    std::unique_ptr<MultiSearcher> multi;
    std::unique_ptr<LiveSearcher> live;

    /** Build a state (and its searchers) from an update. */
    static std::shared_ptr<const ServingState>
    make(ServingUpdate &&update);

    /** @return True when topK queries can be served. */
    bool
    rankedCapable() const
    {
        return ranked != nullptr || live != nullptr;
    }
};

/** Persistent query service; see the file comment. */
class QueryServer
{
  public:
    /**
     * Serve @p snapshot, using @p docs for ranking and the universe
     * size. Both are owned by the server (snapshots share segments,
     * so "owning" a snapshot is two pointer copies). Threads start
     * immediately; the server accepts queries as soon as the
     * constructor returns.
     */
    QueryServer(IndexSnapshot snapshot, DocTable docs,
                ServerOptions options = {});

    /**
     * Serve a finished build directly — the Engine facade's hand-off:
     *
     *     QueryServer server(Engine::open(fs, "/").build());
     *
     * Takes the snapshot and document table out of @p built; the rest
     * of the result (config, timings) is left intact.
     */
    explicit QueryServer(Engine::Result &&built,
                         ServerOptions options = {});

    /** Shuts down (draining admitted queries) if still running. */
    ~QueryServer();

    QueryServer(const QueryServer &) = delete;
    QueryServer &operator=(const QueryServer &) = delete;

    /**
     * Submit a boolean query.
     *
     * Blocks only when the admission queue is full (back-pressure).
     * The future always becomes ready — with ok = false for invalid
     * queries or a server that has shut down.
     */
    std::future<QueryResponse> submit(Query query);

    /**
     * Submit a boolean query as an already-compiled plan — the
     * sharded tier's path: the broker compiles one plan per request
     * and fans the same immutable object out to every shard, so no
     * shard ever re-parses or re-plans query text.
     */
    std::future<QueryResponse> submitPlan(QueryPlan plan);

    /** Submit a boolean query with a completion callback in addition
     *  to the returned future. Served queries invoke it on a worker
     *  thread; rejected ones (invalid, refused, shut down) invoke it
     *  inline on the submitting thread before submit() returns. */
    std::future<QueryResponse>
    submit(Query query, std::function<void(const QueryResponse &)> callback);

    /**
     * Submit a ranked query for the best @p k hits. Requires a
     * unified snapshot; rejected (ok = false) on replicated ones.
     */
    std::future<QueryResponse> submitRanked(Query query, std::size_t k);

    /** Ranked submission with a completion callback (same threading
     *  contract as the boolean callback overload). */
    std::future<QueryResponse>
    submitRanked(Query query, std::size_t k,
                 std::function<void(const QueryResponse &)> callback);

    /**
     * Submit a ranked query scored with externally supplied term
     * weights (RankedSearcher::topKWeighted) instead of this index's
     * own idf. The sharded serving tier's broker computes *global*
     * idf from aggregated per-shard df and sends the same weights to
     * every shard, making shard-local scores globally comparable.
     * Requires a plain unified snapshot (rejected on replicated and
     * live states — a shard is always a sealed unified build).
     *
     * @p weights is shared, not copied: the broker fans one weight
     * vector out to N shards.
     */
    std::future<QueryResponse>
    submitRankedWeighted(Query query, std::size_t k,
                         std::shared_ptr<const TermWeights> weights);

    /** Weighted ranked submission of an already-compiled plan (the
     *  broker ships one plan + one weight vector to every shard). */
    std::future<QueryResponse>
    submitRankedWeighted(QueryPlan plan, std::size_t k,
                         std::shared_ptr<const TermWeights> weights);

    /**
     * Hot-swap the served state: build the next generation's
     * searchers off to the side, then atomically publish them. Never
     * blocks queries and is never blocked by them; safe to call from
     * a background merger thread, concurrently with shutdown().
     * Queries already evaluating finish on the state they loaded.
     *
     * @return The swap ordinal (1 for the first publish).
     */
    std::uint64_t publish(ServingUpdate update);

    /** publish() a plain snapshot (no deltas, no tombstones). */
    std::uint64_t publish(IndexSnapshot snapshot, DocTable docs,
                          std::uint64_t generation = 0);

    /**
     * Stop the server: close admission (later submits are rejected
     * immediately), drain and answer every query already admitted,
     * then park the workers. Idempotent; the destructor calls it.
     */
    void shutdown();

    /** @return True while submit() can still admit queries. */
    bool accepting() const { return !_queue.closed(); }

    /** @return True when serving unjoined replicas (MultiSearcher). */
    bool
    replicated() const
    {
        return serving()->multi != nullptr;
    }

    /** @return Worker threads executing queries. */
    std::size_t workerCount() const { return _pool.workerCount(); }

    /** @return Documents in the served universe. */
    std::size_t
    docCount() const
    {
        return serving()->docs.docCount();
    }

    /**
     * @return The state queries are being admitted against right
     *         now. The returned shared_ptr keeps that generation
     *         alive — the handle to use when a publisher may swap
     *         concurrently.
     */
    std::shared_ptr<const ServingState>
    serving() const
    {
        std::scoped_lock lock(_serving_mutex);
        return _serving;
    }

    /** @return The serving generation's publisher-assigned number. */
    std::uint64_t generation() const { return serving()->generation; }

    /**
     * @return The served document table (paths for result display).
     *         The reference is valid while the current generation
     *         stays published; callers racing a publisher should
     *         hold serving() instead.
     */
    const DocTable &docs() const { return serving()->docs; }

    /**
     * Digest of traffic served so far: counts, throughput, latency
     * percentiles. Safe to call at any time, including while under
     * load (the latency log is copied out under its lock).
     */
    ServerStats stats() const;

    /** Restart the stats window (after warm-up, between load phases). */
    void resetStats();

    /**
     * Mergeable digest of completed-query latencies (the same
     * observations stats() summarizes exactly). A broker folds N of
     * these together for its rollup without concatenating raw
     * sample vectors; see util/stats LatencyHistogram.
     */
    LatencyHistogram latencyHistogram() const;

  private:
    using Clock = std::chrono::steady_clock;

    /** What a query needs: boolean matches, a ranked topK, or a
     *  ranked topK under broker-supplied global weights. */
    enum class Kind { Boolean, Ranked, RankedWeighted };

    /** One admitted query in flight: the compiled plan is all a
     *  worker evaluates — query text never crosses the queue. */
    struct Request
    {
        explicit Request(QueryPlan p) : plan(std::move(p)) {}

        QueryPlan plan;
        Kind kind = Kind::Boolean;
        std::size_t k = 0;
        std::shared_ptr<const TermWeights> weights; ///< RankedWeighted.
        std::promise<QueryResponse> promise;
        std::function<void(const QueryResponse &)> callback;
        Clock::time_point admitted;
    };

    /** Compile @p query against the state queries are currently
     *  admitted against (df ordering is a hint — a plan stays
     *  correct on whatever generation later serves it). */
    QueryPlan compileForServing(const Query &query) const;

    /** Shared enqueue path behind the Query-taking submits: compile
     *  once, then hand the plan to the plan enqueue. */
    std::future<QueryResponse>
    enqueue(Query query, Kind kind, std::size_t k,
            std::function<void(const QueryResponse &)> callback,
            std::shared_ptr<const TermWeights> weights = nullptr);

    /** Shared enqueue path behind every submit overload. */
    std::future<QueryResponse>
    enqueue(QueryPlan plan, Kind kind, std::size_t k,
            std::function<void(const QueryResponse &)> callback,
            std::shared_ptr<const TermWeights> weights = nullptr);

    /** How a non-completed query is classified in stats(). */
    enum class Refusal { Rejected, TimedOut, Shed };

    /** Resolve @p request as refused with @p reason, count it. */
    void reject(Request &request, std::string reason,
                Refusal refusal = Refusal::Rejected);

    /** Admit @p request through the configured overload policy. */
    void admit(std::shared_ptr<Request> request);

    /**
     * @return True (resolving the request as timed out) when the
     *         deadline passed; called before dispatch and again at
     *         worker entry.
     */
    bool expireIfPastDeadline(Request &request);

    /** Dispatcher thread body: popBatch -> pool until drained. */
    void dispatchLoop();

    /** Worker-side evaluation of one request. */
    void execute(Request &request);

    ServerOptions _options;

    // The serving state: swapped whole by publish(), loaded once per
    // query evaluation. Everything a query dereferences hangs off
    // the one object this pointer names — the no-tearing invariant.
    // A dedicated mutex guards the slot instead of
    // std::atomic<std::shared_ptr>: the critical section is a bare
    // pointer copy/swap, and libstdc++ 12's _Sp_atomic unlocks its
    // load() with a relaxed RMW, leaving no happens-before edge to
    // the next store — a formal data race TSan reports.
    mutable std::mutex _serving_mutex;
    std::shared_ptr<const ServingState> _serving;
    std::atomic<std::uint64_t> _swaps{0};

    BlockingQueue<std::shared_ptr<Request>> _queue;
    ThreadPool _pool;
    std::thread _dispatcher;
    std::once_flag _shutdown_once;

    // Latency log + counters, one lock (stats are off the hot lock:
    // workers append one double per query).
    mutable std::mutex _stats_mutex;
    std::vector<double> _latencies;
    LatencyHistogram _hist;
    std::uint64_t _completed = 0;
    std::uint64_t _rejected = 0;
    std::uint64_t _timed_out = 0;
    std::uint64_t _shed = 0;
    Clock::time_point _window_start;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_QUERY_SERVER_HH
