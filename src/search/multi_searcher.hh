/**
 * @file
 * Parallel query evaluation over unjoined index replicas.
 *
 * This is what makes Implementation 3 a complete design rather than an
 * unfinished Implementation 2: the paper keeps the replicas separate
 * "because the search can work with multiple indices in parallel".
 *
 * Correctness rests on a structural invariant of the generator: every
 * document is processed by exactly one thread, so all of a document's
 * postings live in exactly one replica. A boolean query can therefore
 * be evaluated independently per replica — restricted to the documents
 * that replica owns — and the per-replica results unioned. Documents
 * owned by no replica (files with no terms at all) match exactly when
 * the query matches an empty document (NOT-dominated queries).
 */

#ifndef DSEARCH_SEARCH_MULTI_SEARCHER_HH
#define DSEARCH_SEARCH_MULTI_SEARCHER_HH

#include <cstddef>
#include <vector>

#include "index/inverted_index.hh"
#include "search/query.hh"
#include "search/searcher.hh"

namespace dsearch {

class ThreadPool;

/** Query engine over a replica set; see the file comment. */
class MultiSearcher
{
  public:
    /**
     * @param replicas  Unjoined replicas from Implementation 3 (kept
     *                  by reference; must outlive the searcher).
     * @param doc_count Global document universe size.
     */
    MultiSearcher(const std::vector<InvertedIndex> &replicas,
                  std::size_t doc_count);

    /**
     * Run a query across all replicas.
     *
     * @param query   Query to evaluate.
     * @param threads Worker threads (1 = evaluate serially; > 1
     *                spawns a fresh pool — convenient, but for query
     *                streams prefer the pool overload below).
     * @return Sorted matching document IDs; empty for invalid queries.
     */
    DocSet run(const Query &query, std::size_t threads = 1) const;

    /**
     * Run a query using an existing thread pool, amortizing thread
     * creation across a query stream (the deployment shape the
     * paper's future-work section points at).
     */
    DocSet run(const Query &query, ThreadPool &pool) const;

    /** @return Documents owned by replica @p i (sorted). */
    const DocSet &ownedDocs(std::size_t i) const;

    /** @return Documents owned by no replica (sorted). */
    const DocSet &orphanDocs() const { return _orphans; }

  private:
    /** Union partial results and add orphan matches. */
    DocSet combine(const Query &query,
                   std::vector<DocSet> partial) const;

    const std::vector<InvertedIndex> &_replicas;
    std::vector<DocSet> _owned;  ///< Per-replica universes.
    DocSet _orphans;             ///< Docs with no postings anywhere.
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_MULTI_SEARCHER_HH
