/**
 * @file
 * Parallel query evaluation over unjoined index replicas.
 *
 * This is what makes Implementation 3 a complete design rather than an
 * unfinished Implementation 2: the paper keeps the replicas separate
 * "because the search can work with multiple indices in parallel".
 * Replicas arrive as the segments of a multi-segment IndexSnapshot
 * (what a ReplicatedNoJoin build seals to).
 *
 * Correctness rests on a structural invariant of the generator: every
 * document is processed by exactly one thread, so all of a document's
 * postings live in exactly one segment. A boolean query can therefore
 * be evaluated independently per segment — restricted to the documents
 * that segment owns — and the per-segment results unioned. Documents
 * owned by no segment (files with no terms at all) match exactly when
 * the query matches an empty document (NOT-dominated queries).
 */

#ifndef DSEARCH_SEARCH_MULTI_SEARCHER_HH
#define DSEARCH_SEARCH_MULTI_SEARCHER_HH

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "index/index_snapshot.hh"
#include "pipeline/thread_pool.hh"
#include "search/plan.hh"
#include "search/query.hh"
#include "search/searcher.hh"

namespace dsearch {

/** Query engine over a replica-set snapshot; see the file comment. */
class MultiSearcher
{
  public:
    /**
     * @param snapshot  Snapshot whose segments are the unjoined
     *                  replicas (kept by value; a unified snapshot
     *                  works too and degenerates to serial search).
     * @param doc_count Global document universe size.
     */
    MultiSearcher(IndexSnapshot snapshot, std::size_t doc_count);

    /**
     * Run a query across all segments.
     *
     * Compiles the query once into a QueryPlan; the same immutable
     * operator tree then evaluates against every segment (serially
     * or from pool workers — sharing it is safe, eval() is const).
     *
     * @param query   Query to evaluate.
     * @param threads Worker threads (1 = evaluate serially; > 1 runs
     *                on a pool cached inside this searcher — created
     *                on the first parallel query, reused by every
     *                later one, so a query stream never pays
     *                per-query thread spawn).
     * @return Sorted matching document IDs; empty for invalid queries.
     */
    DocSet run(const Query &query, std::size_t threads = 1) const;

    /** run() over a precompiled plan. */
    DocSet run(const QueryPlan &plan, std::size_t threads = 1) const;

    /**
     * Run a query using an existing thread pool, amortizing thread
     * creation across a query stream (the deployment shape the
     * paper's future-work section points at).
     */
    DocSet run(const Query &query, ThreadPool &pool) const;

    /** run() over a precompiled plan on an existing pool: one plan,
     *  one task per segment, every worker evaluating the same tree. */
    DocSet run(const QueryPlan &plan, ThreadPool &pool) const;

    /**
     * Run a query on a freshly spawned pool that is torn down before
     * returning. This is the pre-server behaviour of
     * run(query, threads), kept as an explicit fallback (isolation
     * benchmarks, one-shot queries where no pool should linger); for
     * anything resembling a query stream use run() — per-query thread
     * spawn is what bench_search_server measures as the naive path.
     */
    DocSet runFreshPool(const Query &query, std::size_t threads) const;

    /**
     * @return Cached pools created so far (0 before the first
     *         parallel run(query, threads); 1 after, for the rest of
     *         the searcher's life). Regression observable: a query
     *         stream must not spawn a pool per query.
     */
    std::size_t poolsCreated() const;

    /** @return Number of segments queried in parallel. */
    std::size_t segmentCount() const
    {
        return _snapshot.segmentCount();
    }

    /** @return Documents owned by segment @p i (sorted). */
    const DocSet &ownedDocs(std::size_t i) const;

    /** @return Documents owned by no segment (sorted). */
    const DocSet &orphanDocs() const { return _orphans; }

  private:
    /**
     * Lazily created shared pool state. Boxed so the searcher stays
     * movable (std::mutex is not); allocated once in the constructor,
     * the pool itself on the first parallel query.
     */
    struct PoolState
    {
        std::mutex mutex;
        std::unique_ptr<ThreadPool> pool;
        std::size_t created = 0;
    };

    /** Union partial results and add orphan matches (documents in no
     *  segment match exactly when the plan matches empty docs). */
    DocSet combine(const QueryPlan &plan,
                   std::vector<DocSet> partial) const;

    /**
     * The cached pool, created on first use with @p threads workers.
     * Later calls reuse it whatever they ask for (parallelism is
     * capped at the first request's width; segments bound it anyway).
     */
    ThreadPool &cachedPool(std::size_t threads) const;

    IndexSnapshot _snapshot;
    std::vector<DocSet> _owned;  ///< Per-segment universes.
    DocSet _orphans;             ///< Docs with no postings anywhere.
    std::unique_ptr<PoolState> _pool_state;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_MULTI_SEARCHER_HH
