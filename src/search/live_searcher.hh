/**
 * @file
 * Query evaluation over a live (base + delta) index.
 *
 * The live pipeline serves one sealed *base* segment plus a short
 * chain of sealed *delta* segments, with deletions expressed as a
 * tombstone set. Existing engines cover neither shape: Searcher and
 * RankedSearcher require one unified segment, and MultiSearcher's
 * replicas partition a document's postings *by term* across segments.
 * Live segments instead partition *by document*: Stage-1 DocIds are
 * dense and never reused, so the base owns [0, base_docs) and each
 * delta owns the contiguous range assigned while it was built. Every
 * alive document's postings live in exactly one segment.
 *
 * That ownership makes per-segment evaluation exact:
 *
 *  - Boolean: evaluate the query against each segment with the
 *    segment's *owned universe* (its DocId range minus tombstones) —
 *    NOT complements per segment, and the union over disjoint
 *    ascending ranges is a concatenation, already sorted. A document
 *    superseded by a re-index or delete is tombstoned, so its stale
 *    postings in the old segment are clipped out and NOT-dominated
 *    queries do not resurrect it.
 *
 *  - Ranked: identical scoring model to RankedSearcher — score(d) =
 *    sum of idf(t) over matching positive terms, divided by
 *    ln(2 + bytes(d)) — with df(t) summed across segments and N the
 *    alive document count. On a base-only, tombstone-free live index
 *    topK() therefore returns exactly what RankedSearcher would.
 *
 * A LiveSearcher is immutable and belongs to one published
 * generation; publishing a new generation builds a new searcher
 * (hot-swap is the shared_ptr flip in QueryServer, not mutation
 * here). Term statistics are computed per query rather than cached:
 * the searcher's lifetime is one publish interval, too short for a
 * cache to amortize.
 */

#ifndef DSEARCH_SEARCH_LIVE_SEARCHER_HH
#define DSEARCH_SEARCH_LIVE_SEARCHER_HH

#include <cstddef>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "search/query.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"

namespace dsearch {

/**
 * One delta increment: a sealed snapshot of the files indexed in one
 * live cycle, plus the dense DocId range Stage 1 assigned to them.
 */
struct DeltaSegment
{
    IndexSnapshot index; ///< Unified snapshot of the delta's postings.
    DocId first_doc = 0; ///< First DocId this delta owns.
    DocId end_doc = 0;   ///< One past the last owned DocId.
};

/** Base + delta + tombstone query engine; see the file comment. */
class LiveSearcher
{
  public:
    /**
     * @param base       Unified base snapshot (panics otherwise).
     * @param base_docs  Documents the base owns: DocIds [0, base_docs).
     * @param deltas     Delta chain; ranges must be disjoint and lie
     *                   in [base_docs, docs.docCount()).
     * @param tombstones Sorted, duplicate-free dead DocIds (deleted
     *                   or superseded documents; panics when
     *                   unsorted).
     * @param docs       Document table covering base and deltas (kept
     *                   by reference, must outlive the searcher).
     */
    LiveSearcher(IndexSnapshot base, DocId base_docs,
                 std::vector<DeltaSegment> deltas, DocSet tombstones,
                 const DocTable &docs);

    /** Boolean query; sorted alive matches (see the file comment). */
    DocSet run(const Query &query) const;

    /**
     * Ranked query: best @p k alive hits, highest score first, ties
     * toward lower DocIds — RankedSearcher's contract.
     */
    std::vector<ScoredHit> topK(const Query &query,
                                std::size_t k) const;

    /** @return Alive documents (doc count minus tombstones). */
    std::size_t aliveCount() const { return _alive; }

    /** @return The tombstone set (sorted). */
    const DocSet &tombstones() const { return _tombstones; }

    /** @return Number of segments evaluated per query (base counts
     *          when non-empty; observability for compaction tests). */
    std::size_t segmentCount() const { return _segments.size(); }

  private:
    /** One evaluation unit: a reader plus the universe it owns. */
    struct Segment
    {
        IndexSnapshot index;  ///< Keeps the segment storage alive.
        DocSet universe;      ///< Owned range minus tombstones.
    };

    /** Document frequency of @p term summed across segments. */
    std::size_t dfAcross(std::string_view term) const;

    std::vector<Segment> _segments; ///< Ascending disjoint ranges.
    DocSet _tombstones;
    const DocTable &_docs;
    std::size_t _alive = 0;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_LIVE_SEARCHER_HH
