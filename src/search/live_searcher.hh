/**
 * @file
 * Query evaluation over a live (base + delta) index.
 *
 * The live pipeline serves one sealed *base* segment plus a short
 * chain of sealed *delta* segments, with deletions expressed as a
 * tombstone set. Existing engines cover neither shape: Searcher and
 * RankedSearcher require one unified segment, and MultiSearcher's
 * replicas partition a document's postings *by term* across segments.
 * Live segments instead partition *by document*: Stage-1 DocIds are
 * dense and never reused, so the base owns [0, base_docs) and each
 * delta owns the contiguous range assigned while it was built. Every
 * alive document's postings live in exactly one segment.
 *
 * That ownership makes per-segment evaluation exact:
 *
 *  - Boolean: compile the query once into a QueryPlan and evaluate
 *    the *same* operator tree (search/operators.hh) against each
 *    segment with the segment's full owned DocId range as the
 *    universe — NOT complements per segment, and the union over
 *    disjoint ascending ranges is a concatenation, already sorted.
 *    Tombstones are then removed once, by a single DiffOp::apply()
 *    anti-join over the concatenated result: because every leaf is
 *    clipped to the universe and the plan algebra is built from
 *    ∩, ∪ and \, evaluating over the full range and subtracting the
 *    dead set afterwards equals evaluating over the alive universe
 *    directly (Q(U) \ T == Q(U \ T), by induction over the
 *    operators). A document superseded by a re-index or delete is
 *    therefore clipped out, and NOT-dominated queries do not
 *    resurrect it.
 *
 *  - Ranked: identical scoring model to RankedSearcher — score(d) =
 *    sum of idf(t) over matching positive terms, divided by
 *    ln(2 + bytes(d)) — with df(t) summed across segments and N the
 *    alive document count. On a base-only, tombstone-free live index
 *    topK() therefore returns exactly what RankedSearcher would.
 *
 * A LiveSearcher is immutable and belongs to one published
 * generation; publishing a new generation builds a new searcher
 * (hot-swap is the shared_ptr flip in QueryServer, not mutation
 * here). Term statistics are computed per query rather than cached:
 * the searcher's lifetime is one publish interval, too short for a
 * cache to amortize.
 */

#ifndef DSEARCH_SEARCH_LIVE_SEARCHER_HH
#define DSEARCH_SEARCH_LIVE_SEARCHER_HH

#include <cstddef>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "search/plan.hh"
#include "search/query.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"

namespace dsearch {

/**
 * One delta increment: a sealed snapshot of the files indexed in one
 * live cycle, plus the dense DocId range Stage 1 assigned to them.
 */
struct DeltaSegment
{
    IndexSnapshot index; ///< Unified snapshot of the delta's postings.
    DocId first_doc = 0; ///< First DocId this delta owns.
    DocId end_doc = 0;   ///< One past the last owned DocId.
};

/** Base + delta + tombstone query engine; see the file comment. */
class LiveSearcher
{
  public:
    /**
     * @param base       Unified base snapshot (panics otherwise).
     * @param base_docs  Documents the base owns: DocIds [0, base_docs).
     * @param deltas     Delta chain; ranges must be disjoint and lie
     *                   in [base_docs, docs.docCount()).
     * @param tombstones Sorted, duplicate-free dead DocIds (deleted
     *                   or superseded documents; panics when
     *                   unsorted).
     * @param docs       Document table covering base and deltas (kept
     *                   by reference, must outlive the searcher).
     */
    LiveSearcher(IndexSnapshot base, DocId base_docs,
                 std::vector<DeltaSegment> deltas, DocSet tombstones,
                 const DocTable &docs);

    /** Boolean query; sorted alive matches (see the file comment).
     *  Compiles once via compilePlan() and delegates. */
    DocSet run(const Query &query) const;

    /** run() over a precompiled plan: the one operator tree
     *  evaluates against every base/delta segment, and tombstones
     *  are anti-joined once at the end (DiffOp::apply). */
    DocSet run(const QueryPlan &plan) const;

    /**
     * Ranked query: best @p k alive hits, highest score first, ties
     * toward lower DocIds — RankedSearcher's contract. Compiles once
     * via compilePlan() and delegates.
     */
    std::vector<ScoredHit> topK(const Query &query,
                                std::size_t k) const;

    /** topK() over a precompiled plan; scoring iterates the plan's
     *  scoreTerms() in source order (bit-identical sums). */
    std::vector<ScoredHit> topK(const QueryPlan &plan,
                                std::size_t k) const;

    /** Compile @p query with AND operands ordered by df summed
     *  across this generation's segments (header probes only). */
    QueryPlan compilePlan(const Query &query) const;

    /** @return Alive documents (doc count minus tombstones). */
    std::size_t aliveCount() const { return _alive; }

    /** @return The tombstone set (sorted). */
    const DocSet &tombstones() const { return _tombstones; }

    /** @return Number of segments evaluated per query (base counts
     *          when non-empty; observability for compaction tests). */
    std::size_t segmentCount() const { return _segments.size(); }

  private:
    /** One evaluation unit: a reader plus the universe it owns. */
    struct Segment
    {
        IndexSnapshot index;  ///< Keeps the segment storage alive.
        DocSet universe;      ///< Full owned DocId range (tombstones
                              ///< included; filtered once per query).
    };

    /** Document frequency of @p term summed across segments. */
    std::size_t dfAcross(std::string_view term) const;

    std::vector<Segment> _segments; ///< Ascending disjoint ranges.
    DocSet _tombstones;
    const DocTable &_docs;
    std::size_t _alive = 0;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_LIVE_SEARCHER_HH
