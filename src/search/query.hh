/**
 * @file
 * Boolean query language for desktop search.
 *
 * The paper's future-work section names integrating and parallelizing
 * the search-query side; this module provides it. Grammar:
 *
 *   query := or
 *   or    := and ("OR" and)*
 *   and   := unary ("AND"? unary)*        (adjacency = implicit AND)
 *   unary := "NOT" unary | "(" or ")" | TERM
 *
 * Terms are lexed with the same rules as the indexer (ASCII letters
 * and digits, case-folded), so a query term always matches the index's
 * vocabulary form. The words "and", "or", "not" are reserved
 * operators and cannot be searched for.
 *
 * Parsed trees are canonicalized: nested same-kind And/Or groups are
 * flattened and duplicate operands dropped (first appearance wins),
 * so `a AND a AND (b AND c)` parses to the same tree — and the same
 * toString() — as `a AND b AND c`. toString() is therefore a stable
 * canonical text form for trees that are equal modulo associativity
 * and idempotence. Deeper normalization (De Morgan, double negation)
 * belongs to the query planner (search/plan.hh), which compiles this
 * AST into the form the execution tiers share.
 */

#ifndef DSEARCH_SEARCH_QUERY_HH
#define DSEARCH_SEARCH_QUERY_HH

#include <memory>
#include <string>
#include <vector>

namespace dsearch {

/** One node of a parsed query tree. */
struct QueryNode
{
    enum class Kind { Term, And, Or, Not };

    Kind kind = Kind::Term;

    /** The search term (Kind::Term only). */
    std::string term;

    /** Operands: 2+ for And/Or, exactly 1 for Not. */
    std::vector<QueryNode> children;
};

/**
 * A parsed boolean query.
 *
 * Parsing never throws: an unparsable string yields an invalid Query
 * carrying an error message (bad queries are user input, not bugs).
 */
class Query
{
  public:
    /**
     * Parse @p text.
     *
     * @return A valid query, or an invalid one with error() set.
     */
    static Query parse(const std::string &text);

    /** @return True when the query parsed and is non-empty. */
    bool valid() const { return _valid; }

    /** @return Parse error description (empty when valid). */
    const std::string &error() const { return _error; }

    /** @return Root node; panics on invalid queries. */
    const QueryNode &root() const;

    /** @return Canonical text form, fully parenthesized. */
    std::string toString() const;

  private:
    Query() = default;

    QueryNode _root;
    bool _valid = false;
    std::string _error;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_QUERY_HH
