/**
 * @file
 * QueryPlan: the canonical, executable form of a parsed query.
 *
 * Every serving tier used to walk the raw Query AST itself —
 * Searcher, RankedSearcher, LiveSearcher, MultiSearcher and the
 * sharded Broker each re-implemented boolean traversal with subtly
 * different NOT/universe handling. The planner replaces all of that
 * with one compilation step and one executable form:
 *
 *     Query::parse(text)                 user syntax -> AST
 *           |
 *     QueryPlan::compile(query[, df])    AST -> canonical plan
 *           |
 *     operators.hh (AndOp/OrOp/DiffOp)   plan -> DocSet per segment
 *
 * Canonicalization performs, in order:
 *
 *  1. **De Morgan push-down.** NOT is eliminated as a node kind
 *     entirely: `NOT (a OR b)` becomes `And(Diff(All,a),
 *     Diff(All,b))` and so on, recursively, with double negation
 *     cancelling on the way down. Negation survives only as a
 *     `Diff` (set difference) node — against a positive branch
 *     (`a AND NOT b` -> `Diff(a, b)`) or against the universe
 *     (`NOT a` -> `Diff(All, a)`). Every tier therefore resolves
 *     NOT against *its* universe the same way: by evaluating the
 *     same Diff node, not by ad-hoc complement logic.
 *
 *  2. **Conjunction hoisting.** Inside an And, negative operands are
 *     factored into one difference: `a AND NOT b AND NOT c` ->
 *     `Diff(a, Or(b, c))` — one anti-join instead of two universe
 *     complements, and the shape tombstone filtering reuses.
 *
 *  3. **Flatten + dedupe + canonical order.** Nested same-kind
 *     And/Or children are spliced flat, structurally equal operands
 *     are deduplicated, and children are sorted by a total
 *     structural order (terms alphabetically, compounds after).
 *     `b AND a`, `a AND b` and `a AND (b AND a)` all compile to the
 *     identical plan.
 *
 *  4. **Fingerprint.** A stable 64-bit structural hash (FNV-1a over
 *     the canonical tree; no pointers, seeds or machine state) is
 *     derived from the canonical form. Equal-modulo-canonicalization
 *     queries get equal fingerprints across processes and machines —
 *     the cache key the ROADMAP's query-result-cache item needs.
 *
 *  5. **df ordering (optional).** When compiled with a DfLookup, And
 *     children are stably reordered by ascending estimated document
 *     frequency so the cheapest operand runs (and bounds the
 *     intersection) first. The reorder happens *after* the
 *     fingerprint is taken: the fingerprint names the query, not the
 *     index it happens to run against.
 *
 * The plan also precomputes what the ranked tiers need:
 * scoreTerms() — the positive-context terms in first-appearance
 * *query* order (NOT under canonical order: scoring accumulates
 * floating-point contributions term by term, and keeping the
 * original order keeps ranked scores bit-identical across the
 * unsharded, live and broker paths) — and matchesEmpty(), whether a
 * document with no terms at all satisfies the query (the
 * NOT-dominated case MultiSearcher's orphan documents hang on).
 *
 * A QueryPlan is immutable after compile() and holds its state in
 * one shared heap object: copying a plan is a shared_ptr copy, and
 * one plan may be evaluated concurrently from any number of threads
 * (QueryServer workers, broker shards) without synchronization —
 * the property check_tsan_query_plan verifies.
 */

#ifndef DSEARCH_SEARCH_PLAN_HH
#define DSEARCH_SEARCH_PLAN_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "search/query.hh"

namespace dsearch {

class CursorOp; // operators.hh; plans own their compiled operator tree

/**
 * One node of a canonical plan. Unlike QueryNode there is no Not
 * kind: negation appears only as Diff (see the file comment).
 */
struct PlanNode
{
    enum class Kind {
        Term, ///< One vocabulary term; `term` holds it.
        And,  ///< Intersection of 2+ children.
        Or,   ///< Union of 2+ children.
        Diff, ///< children[0] minus children[1] (exactly 2).
        All,  ///< The evaluation universe (leaf).
    };

    Kind kind = Kind::Term;

    /** The search term (Kind::Term only). */
    std::string term;

    /** Operands: 2+ for And/Or, exactly [positive, negative] for
     *  Diff, none for Term/All. */
    std::vector<PlanNode> children;
};

/**
 * Estimated document frequency of a term, supplied by whoever owns
 * index statistics (snapshot header probes — never a block decode).
 */
using DfLookup = std::function<std::size_t(const std::string &)>;

/** Canonical compiled query; see the file comment. */
class QueryPlan
{
  public:
    /** An invalid (empty) plan; valid() is false, evaluation of it
     *  is a caller bug. */
    QueryPlan() = default;

    /**
     * Compile @p query into canonical form (invalid queries yield an
     * invalid plan). Deterministic: one query text always produces
     * one plan and one fingerprint, on every machine.
     */
    static QueryPlan compile(const Query &query);

    /**
     * compile(), then stably reorder every And's children by
     * ascending estimated df from @p df (Term: df(term); And: min
     * over children; Or: sum; Diff: the positive branch; All:
     * unbounded). The fingerprint is taken before the reorder and is
     * identical to the plain compile()'s.
     */
    static QueryPlan compile(const Query &query, const DfLookup &df);

    /** @return True when compiled from a valid query. */
    bool valid() const { return _impl != nullptr; }

    /** @return Canonical root; panics on an invalid plan. */
    const PlanNode &root() const;

    /**
     * @return Stable 64-bit structural hash of the canonical form
     *         (0 for an invalid plan). Canonically equal queries
     *         collide on purpose; it is the future result-cache key.
     */
    std::uint64_t fingerprint() const;

    /**
     * @return Positive-context terms (not under an odd number of
     *         NOTs in the source query), deduplicated, in
     *         first-appearance source order — the exact order ranked
     *         scoring must accumulate in for bit-identical sums.
     *         Empty for an invalid plan.
     */
    const std::vector<std::string> &scoreTerms() const;

    /** @return Whether a document containing no terms matches
     *          (NOT-dominated queries); false for invalid plans. */
    bool matchesEmpty() const;

    /**
     * @return The compiled operator tree (operators.hh), built once
     *         at compile() and immutable after — safe to evaluate
     *         from any number of threads. Panics on invalid plans.
     */
    const CursorOp &ops() const;

    /** @return Canonical text rendering of the plan (debugging and
     *          tests; All renders as `*`, Diff as infix `\`). */
    std::string toString() const;

  private:
    /** Everything a plan owns, immutable after compile(). */
    struct Impl
    {
        PlanNode root;
        std::uint64_t fingerprint = 0;
        std::vector<std::string> score_terms;
        bool matches_empty = false;
        std::shared_ptr<const CursorOp> ops;
    };

    explicit QueryPlan(std::shared_ptr<const Impl> impl)
        : _impl(std::move(impl))
    {
    }

    std::shared_ptr<const Impl> _impl;
};

} // namespace dsearch

#endif // DSEARCH_SEARCH_PLAN_HH
