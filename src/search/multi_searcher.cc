#include "search/multi_searcher.hh"

#include <algorithm>
#include <numeric>

#include "pipeline/thread_pool.hh"
#include "util/logging.hh"

namespace dsearch {

MultiSearcher::MultiSearcher(const std::vector<InvertedIndex> &replicas,
                             std::size_t doc_count)
    : _replicas(replicas)
{
    _owned.reserve(replicas.size());
    for (const InvertedIndex &replica : replicas) {
        DocSet owned;
        replica.forEachTerm(
            [&owned](const std::string &, const PostingList &postings) {
                owned.insert(owned.end(), postings.begin(),
                             postings.end());
            });
        std::sort(owned.begin(), owned.end());
        owned.erase(std::unique(owned.begin(), owned.end()),
                    owned.end());
        _owned.push_back(std::move(owned));
    }

    // Orphans: the global universe minus every replica's docs.
    DocSet universe(doc_count);
    std::iota(universe.begin(), universe.end(), 0);
    DocSet all_owned;
    for (const DocSet &owned : _owned)
        all_owned = uniteSets(all_owned, owned);
    _orphans = subtractSets(universe, all_owned);
}

const DocSet &
MultiSearcher::ownedDocs(std::size_t i) const
{
    if (i >= _owned.size())
        panic("MultiSearcher::ownedDocs: replica index out of range");
    return _owned[i];
}

DocSet
MultiSearcher::combine(const Query &query,
                       std::vector<DocSet> partial) const
{
    DocSet result;
    for (DocSet &set : partial)
        result = uniteSets(result, set);

    // Documents that appear in no replica match NOT-style queries.
    if (!_orphans.empty() && matchesEmptyDocument(query.root()))
        result = uniteSets(result, _orphans);
    return result;
}

DocSet
MultiSearcher::run(const Query &query, std::size_t threads) const
{
    if (!query.valid())
        return {};

    if (threads <= 1 || _replicas.size() <= 1) {
        std::vector<DocSet> partial(_replicas.size());
        for (std::size_t i = 0; i < _replicas.size(); ++i)
            partial[i] =
                evalQueryNode(_replicas[i], _owned[i], query.root());
        return combine(query, std::move(partial));
    }
    ThreadPool pool(std::min(threads, _replicas.size()));
    return run(query, pool);
}

DocSet
MultiSearcher::run(const Query &query, ThreadPool &pool) const
{
    if (!query.valid())
        return {};

    // One task per replica; partial[i] is written by exactly one
    // task, so no synchronization beyond the pool's own is needed.
    std::vector<DocSet> partial(_replicas.size());
    for (std::size_t i = 0; i < _replicas.size(); ++i) {
        pool.submit([this, &partial, &query, i] {
            partial[i] =
                evalQueryNode(_replicas[i], _owned[i], query.root());
        });
    }
    pool.wait();
    return combine(query, std::move(partial));
}

} // namespace dsearch
