#include "search/multi_searcher.hh"

#include <algorithm>
#include <numeric>

#include "pipeline/thread_pool.hh"
#include "search/operators.hh"
#include "util/logging.hh"

namespace dsearch {

MultiSearcher::MultiSearcher(IndexSnapshot snapshot,
                             std::size_t doc_count)
    : _snapshot(std::move(snapshot)),
      _pool_state(std::make_unique<PoolState>())
{
    _owned.reserve(_snapshot.segmentCount());
    for (std::size_t i = 0; i < _snapshot.segmentCount(); ++i) {
        DocSet owned;
        _snapshot.segment(i).forEachTerm(
            [&owned](const std::string &, PostingCursor cursor) {
                for (; cursor.valid(); cursor.next())
                    owned.push_back(cursor.doc());
            });
        std::sort(owned.begin(), owned.end());
        owned.erase(std::unique(owned.begin(), owned.end()),
                    owned.end());
        _owned.push_back(std::move(owned));
    }

    // Orphans: the global universe minus every segment's docs.
    DocSet universe(doc_count);
    std::iota(universe.begin(), universe.end(), 0);
    DocSet all_owned;
    for (const DocSet &owned : _owned)
        all_owned = uniteSets(all_owned, owned);
    _orphans = subtractSets(universe, all_owned);
}

const DocSet &
MultiSearcher::ownedDocs(std::size_t i) const
{
    if (i >= _owned.size())
        panic("MultiSearcher::ownedDocs: segment index out of range");
    return _owned[i];
}

DocSet
MultiSearcher::combine(const QueryPlan &plan,
                       std::vector<DocSet> partial) const
{
    DocSet result;
    for (DocSet &set : partial)
        result = uniteSets(result, set);

    // Documents that appear in no segment match NOT-style queries.
    if (!_orphans.empty() && plan.matchesEmpty())
        result = uniteSets(result, _orphans);
    return result;
}

ThreadPool &
MultiSearcher::cachedPool(std::size_t threads) const
{
    PoolState &state = *_pool_state;
    std::scoped_lock lock(state.mutex);
    if (state.pool == nullptr) {
        state.pool = std::make_unique<ThreadPool>(threads);
        ++state.created;
    }
    return *state.pool;
}

std::size_t
MultiSearcher::poolsCreated() const
{
    std::scoped_lock lock(_pool_state->mutex);
    return _pool_state->created;
}

DocSet
MultiSearcher::run(const Query &query, std::size_t threads) const
{
    if (!query.valid())
        return {};
    // Replicas partition a document's postings by *term*, so no one
    // segment's header df describes the query term: compile without
    // statistics (the structural order is already deterministic).
    return run(QueryPlan::compile(query), threads);
}

DocSet
MultiSearcher::run(const QueryPlan &plan, std::size_t threads) const
{
    if (!plan.valid())
        return {};

    const std::size_t segments = _snapshot.segmentCount();
    if (threads <= 1 || segments <= 1) {
        std::vector<DocSet> partial(segments);
        for (std::size_t i = 0; i < segments; ++i)
            partial[i] = plan.ops().eval(
                OpContext{_snapshot.segment(i), _owned[i]});
        return combine(plan, std::move(partial));
    }
    return run(plan, cachedPool(std::min(threads, segments)));
}

DocSet
MultiSearcher::runFreshPool(const Query &query,
                            std::size_t threads) const
{
    if (!query.valid())
        return {};

    const std::size_t segments = _snapshot.segmentCount();
    if (threads <= 1 || segments <= 1)
        return run(query, 1);
    ThreadPool pool(std::min(threads, segments));
    return run(query, pool);
}

DocSet
MultiSearcher::run(const Query &query, ThreadPool &pool) const
{
    if (!query.valid())
        return {};
    return run(QueryPlan::compile(query), pool);
}

DocSet
MultiSearcher::run(const QueryPlan &plan, ThreadPool &pool) const
{
    if (!plan.valid())
        return {};

    // One task per segment; partial[i] is written by exactly one
    // task, so no synchronization beyond the pool's own is needed.
    // Every worker evaluates the same immutable operator tree.
    std::vector<DocSet> partial(_snapshot.segmentCount());
    for (std::size_t i = 0; i < partial.size(); ++i) {
        pool.submit([this, &partial, &plan, i] {
            partial[i] = plan.ops().eval(
                OpContext{_snapshot.segment(i), _owned[i]});
        });
    }
    pool.wait();
    return combine(plan, std::move(partial));
}

} // namespace dsearch
