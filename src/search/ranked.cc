#include "search/ranked.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "search/operators.hh"
#include "util/hash_set.hh"

namespace dsearch {

namespace {

void
collect(const QueryNode &node, bool positive,
        std::vector<std::string> &out, HashSet<std::string> &seen)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        if (positive && seen.insert(node.term))
            out.push_back(node.term);
        return;
      case QueryNode::Kind::Not:
        collect(node.children.front(), !positive, out, seen);
        return;
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            collect(child, positive, out, seen);
        return;
    }
}

} // namespace

std::vector<std::string>
positiveTerms(const QueryNode &root)
{
    std::vector<std::string> terms;
    HashSet<std::string> seen;
    collect(root, true, terms, seen);
    return terms;
}

double
idfFromCounts(std::size_t doc_count, std::size_t df)
{
    if (df == 0)
        return 0.0;
    double n = static_cast<double>(doc_count);
    return std::log(1.0 + n / static_cast<double>(df));
}

RankedSearcher::RankedSearcher(IndexSnapshot snapshot,
                               const DocTable &docs)
    : _snapshot(std::move(snapshot)), _docs(docs),
      _boolean(_snapshot, docs.docCount()),
      _cache(std::make_unique<TermCache>())
{
}

double
RankedSearcher::idfFromDf(std::size_t df) const
{
    return idfFromCounts(_docs.docCount(), df);
}

RankedSearcher::TermStats
RankedSearcher::termStats(const std::string &term,
                          PostingCursor *cursor_out) const
{
    {
        std::shared_lock lock(_cache->mutex);
        if (const TermStats *hit = _cache->map.find(term)) {
            if (cursor_out != nullptr && hit->df != 0)
                *cursor_out = _snapshot.cursor(term);
            return *hit;
        }
    }

    // Miss: one snapshot probe, shared with the caller's scoring
    // pass via cursor_out. Metadata-only callers read df straight
    // from the term header — no cursor, no block decode.
    TermStats stats;
    if (cursor_out == nullptr) {
        stats.df = _snapshot.termDocCount(term);
    } else {
        PostingCursor cursor = _snapshot.cursor(term);
        stats.df = cursor.count();
        if (stats.df != 0)
            *cursor_out = cursor;
    }
    stats.idf = idfFromDf(stats.df);

    std::unique_lock lock(_cache->mutex);
    _cache->map.insert(term, stats); // a racing filler won
    return stats;
}

std::size_t
RankedSearcher::cachedTermCount() const
{
    std::shared_lock lock(_cache->mutex);
    return _cache->map.size();
}

double
RankedSearcher::idf(const std::string &term) const
{
    return termStats(term).idf;
}

std::size_t
RankedSearcher::df(const std::string &term) const
{
    return termStats(term).df;
}

void
accumulateCursor(const DocSet &matches, PostingCursor cursor,
                 double weight, std::vector<double> &scores)
{
    // Blockwise streaming: intersect each decoded block view with
    // the match prefix it can cover, then credit the matched
    // positions in ascending order (the order the scalar streaming
    // loop used, so floating-point sums are unchanged).
    DocId tmp[posting_block_docs];
    std::size_t i = 0;
    while (i < matches.size() && cursor.valid()) {
        const DocId *cp = cursor.blockDocs();
        // Cap the consumed view at one block so `tmp` bounds the
        // kernel output (raw cursors expose the whole list as one
        // view).
        const std::size_t cn =
            std::min(cursor.blockRemaining(), posting_block_docs);
        const DocId clast = cp[cn - 1];
        if (matches[i] > clast) {
            if (!cursor.seekGE(matches[i]))
                break;
            continue;
        }
        const std::size_t an = static_cast<std::size_t>(
            std::upper_bound(matches.begin()
                                 + static_cast<std::ptrdiff_t>(i),
                             matches.end(), clast)
            - (matches.begin() + static_cast<std::ptrdiff_t>(i)));
        const std::size_t k =
            intersectU32(&matches[i], an, cp, cn, tmp);
        std::size_t m = i;
        for (std::size_t t = 0; t < k; ++t) {
            while (matches[m] != tmp[t])
                ++m;
            scores[m] += weight;
            ++m;
        }
        i += an;
        cursor.skipInBlock(cn);
    }
}

std::vector<ScoredHit>
RankedSearcher::finishRanking(const DocSet &matches,
                              const std::vector<double> &scores,
                              std::size_t k) const
{
    std::vector<ScoredHit> hits;
    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const DocId doc = matches[i];
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, scores[i] / penalty});
    }

    // Highest score first; ties toward lower doc ids (stable,
    // deterministic output).
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

QueryPlan
RankedSearcher::compilePlan(const Query &query) const
{
    return _boolean.compilePlan(query);
}

std::vector<ScoredHit>
RankedSearcher::topK(const Query &query, std::size_t k) const
{
    if (!query.valid() || k == 0)
        return {};
    return topK(compilePlan(query), k);
}

std::vector<ScoredHit>
RankedSearcher::topK(const QueryPlan &plan, std::size_t k) const
{
    if (!plan.valid() || k == 0)
        return {};

    DocSet matches = _boolean.run(plan);
    if (matches.empty())
        return {};

    // The only scoring allocation is the score accumulator, parallel
    // to `matches`. scoreTerms() preserves the query's source term
    // order, so the accumulation (and its floating-point sums) is
    // exactly what the legacy positiveTerms() loop produced.
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : plan.scoreTerms()) {
        PostingCursor cursor;
        const TermStats stats = termStats(term, &cursor);
        if (stats.df == 0)
            continue; // cache hit spares the cursor rebuild entirely
        ScoreOp::apply(matches, std::move(cursor), stats.idf, scores);
    }
    return finishRanking(matches, scores, k);
}

std::vector<ScoredHit>
RankedSearcher::topKWeighted(const Query &query, std::size_t k,
                             const TermWeights &weights) const
{
    if (!query.valid() || k == 0)
        return {};
    return topKWeighted(compilePlan(query), k, weights);
}

std::vector<ScoredHit>
RankedSearcher::topKWeighted(const QueryPlan &plan, std::size_t k,
                             const TermWeights &weights) const
{
    if (!plan.valid() || k == 0)
        return {};

    DocSet matches = _boolean.run(plan);
    if (matches.empty())
        return {};

    std::vector<double> scores(matches.size(), 0.0);
    for (const auto &[term, weight] : weights) {
        if (weight == 0.0)
            continue; // globally unknown term: no contribution
        if (_snapshot.termDocCount(term) == 0)
            continue; // term lives in other shards only (header
                      // probe: no block decode for absent terms)
        ScoreOp::apply(matches, _snapshot.cursor(term), weight,
                       scores);
    }
    return finishRanking(matches, scores, k);
}

} // namespace dsearch
