#include "search/ranked.hh"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <shared_mutex>

#include "util/hash_set.hh"

namespace dsearch {

namespace {

void
collect(const QueryNode &node, bool positive,
        std::vector<std::string> &out, HashSet<std::string> &seen)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        if (positive && seen.insert(node.term))
            out.push_back(node.term);
        return;
      case QueryNode::Kind::Not:
        collect(node.children.front(), !positive, out, seen);
        return;
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            collect(child, positive, out, seen);
        return;
    }
}

} // namespace

std::vector<std::string>
positiveTerms(const QueryNode &root)
{
    std::vector<std::string> terms;
    HashSet<std::string> seen;
    collect(root, true, terms, seen);
    return terms;
}

double
idfFromCounts(std::size_t doc_count, std::size_t df)
{
    if (df == 0)
        return 0.0;
    double n = static_cast<double>(doc_count);
    return std::log(1.0 + n / static_cast<double>(df));
}

RankedSearcher::RankedSearcher(IndexSnapshot snapshot,
                               const DocTable &docs)
    : _snapshot(std::move(snapshot)), _docs(docs),
      _boolean(_snapshot, docs.docCount()),
      _cache(std::make_unique<TermCache>())
{
}

double
RankedSearcher::idfFromDf(std::size_t df) const
{
    return idfFromCounts(_docs.docCount(), df);
}

RankedSearcher::TermStats
RankedSearcher::termStats(const std::string &term,
                          PostingCursor *cursor_out) const
{
    {
        std::shared_lock lock(_cache->mutex);
        if (const TermStats *hit = _cache->map.find(term)) {
            if (cursor_out != nullptr && hit->df != 0)
                *cursor_out = _snapshot.cursor(term);
            return *hit;
        }
    }

    // Miss: one snapshot probe (cursor construction decodes the
    // first block — the cost the cache exists to amortize), shared
    // with the caller's scoring pass via cursor_out.
    PostingCursor cursor = _snapshot.cursor(term);
    TermStats stats;
    stats.df = cursor.count();
    stats.idf = idfFromDf(stats.df);
    if (cursor_out != nullptr && stats.df != 0)
        *cursor_out = cursor;

    std::unique_lock lock(_cache->mutex);
    _cache->map.insert(term, stats); // a racing filler won
    return stats;
}

std::size_t
RankedSearcher::cachedTermCount() const
{
    std::shared_lock lock(_cache->mutex);
    return _cache->map.size();
}

double
RankedSearcher::idf(const std::string &term) const
{
    return termStats(term).idf;
}

std::size_t
RankedSearcher::df(const std::string &term) const
{
    return termStats(term).df;
}

void
RankedSearcher::accumulate(const DocSet &matches, PostingCursor cursor,
                           double weight, std::vector<double> &scores)
{
    // Stream the cursor through the sorted match set — both ascend,
    // so one seekGE-driven pass scores every match without
    // materializing a per-term DocId vector.
    std::size_t i = 0;
    while (i < matches.size() && cursor.seekGE(matches[i])) {
        const DocId doc = cursor.doc();
        i = static_cast<std::size_t>(
            std::lower_bound(matches.begin()
                                 + static_cast<std::ptrdiff_t>(i),
                             matches.end(), doc)
            - matches.begin());
        if (i == matches.size())
            break;
        if (matches[i] == doc) {
            scores[i] += weight;
            ++i;
            cursor.next();
        }
    }
}

std::vector<ScoredHit>
RankedSearcher::finishRanking(const DocSet &matches,
                              const std::vector<double> &scores,
                              std::size_t k) const
{
    std::vector<ScoredHit> hits;
    hits.reserve(matches.size());
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const DocId doc = matches[i];
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, scores[i] / penalty});
    }

    // Highest score first; ties toward lower doc ids (stable,
    // deterministic output).
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

std::vector<ScoredHit>
RankedSearcher::topK(const Query &query, std::size_t k) const
{
    if (!query.valid() || k == 0)
        return {};

    DocSet matches = _boolean.run(query);
    if (matches.empty())
        return {};

    // The only scoring allocation is the score accumulator, parallel
    // to `matches`.
    std::vector<double> scores(matches.size(), 0.0);
    for (const std::string &term : positiveTerms(query.root())) {
        PostingCursor cursor;
        const TermStats stats = termStats(term, &cursor);
        if (stats.df == 0)
            continue; // cache hit spares the cursor rebuild entirely
        accumulate(matches, cursor, stats.idf, scores);
    }
    return finishRanking(matches, scores, k);
}

std::vector<ScoredHit>
RankedSearcher::topKWeighted(const Query &query, std::size_t k,
                             const TermWeights &weights) const
{
    if (!query.valid() || k == 0)
        return {};

    DocSet matches = _boolean.run(query);
    if (matches.empty())
        return {};

    std::vector<double> scores(matches.size(), 0.0);
    for (const auto &[term, weight] : weights) {
        if (weight == 0.0)
            continue; // globally unknown term: no contribution
        PostingCursor cursor = _snapshot.cursor(term);
        if (cursor.count() == 0)
            continue; // term lives in other shards only
        accumulate(matches, cursor, weight, scores);
    }
    return finishRanking(matches, scores, k);
}

} // namespace dsearch
