#include "search/ranked.hh"

#include <algorithm>
#include <cmath>

#include "util/hash_set.hh"

namespace dsearch {

namespace {

void
collect(const QueryNode &node, bool positive,
        std::vector<std::string> &out, HashSet<std::string> &seen)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        if (positive && seen.insert(node.term))
            out.push_back(node.term);
        return;
      case QueryNode::Kind::Not:
        collect(node.children.front(), !positive, out, seen);
        return;
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            collect(child, positive, out, seen);
        return;
    }
}

} // namespace

std::vector<std::string>
positiveTerms(const QueryNode &root)
{
    std::vector<std::string> terms;
    HashSet<std::string> seen;
    collect(root, true, terms, seen);
    return terms;
}

RankedSearcher::RankedSearcher(const InvertedIndex &index,
                               const DocTable &docs)
    : _index(index), _docs(docs), _boolean(index, docs.docCount())
{
}

double
RankedSearcher::idf(const std::string &term) const
{
    const PostingList *postings = _index.postings(term);
    if (postings == nullptr || postings->empty())
        return 0.0;
    double n = static_cast<double>(_docs.docCount());
    double df = static_cast<double>(postings->size());
    return std::log(1.0 + n / df);
}

std::vector<ScoredHit>
RankedSearcher::topK(const Query &query, std::size_t k) const
{
    std::vector<ScoredHit> hits;
    if (!query.valid() || k == 0)
        return hits;

    DocSet matches = _boolean.run(query);
    if (matches.empty())
        return hits;

    // Per positive term: its sorted doc set and idf weight.
    struct Weighted
    {
        DocSet docs;
        double idf;
    };
    std::vector<Weighted> weighted;
    for (const std::string &term : positiveTerms(query.root())) {
        const PostingList *postings = _index.postings(term);
        if (postings == nullptr)
            continue;
        Weighted w;
        w.docs.assign(postings->begin(), postings->end());
        std::sort(w.docs.begin(), w.docs.end());
        w.idf = idf(term);
        weighted.push_back(std::move(w));
    }

    hits.reserve(matches.size());
    for (DocId doc : matches) {
        double score = 0.0;
        for (const Weighted &w : weighted) {
            if (std::binary_search(w.docs.begin(), w.docs.end(), doc))
                score += w.idf;
        }
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, score / penalty});
    }

    // Highest score first; ties toward lower doc ids (stable,
    // deterministic output).
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

} // namespace dsearch
