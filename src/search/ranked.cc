#include "search/ranked.hh"

#include <algorithm>
#include <cmath>

#include "util/hash_set.hh"

namespace dsearch {

namespace {

void
collect(const QueryNode &node, bool positive,
        std::vector<std::string> &out, HashSet<std::string> &seen)
{
    switch (node.kind) {
      case QueryNode::Kind::Term:
        if (positive && seen.insert(node.term))
            out.push_back(node.term);
        return;
      case QueryNode::Kind::Not:
        collect(node.children.front(), !positive, out, seen);
        return;
      case QueryNode::Kind::And:
      case QueryNode::Kind::Or:
        for (const QueryNode &child : node.children)
            collect(child, positive, out, seen);
        return;
    }
}

} // namespace

std::vector<std::string>
positiveTerms(const QueryNode &root)
{
    std::vector<std::string> terms;
    HashSet<std::string> seen;
    collect(root, true, terms, seen);
    return terms;
}

RankedSearcher::RankedSearcher(IndexSnapshot snapshot,
                               const DocTable &docs)
    : _snapshot(std::move(snapshot)), _docs(docs),
      _boolean(_snapshot, docs.docCount())
{
}

double
RankedSearcher::idf(const std::string &term) const
{
    PostingCursor cursor = _snapshot.cursor(term);
    if (cursor.count() == 0)
        return 0.0;
    double n = static_cast<double>(_docs.docCount());
    double df = static_cast<double>(cursor.count());
    return std::log(1.0 + n / df);
}

std::vector<ScoredHit>
RankedSearcher::topK(const Query &query, std::size_t k) const
{
    std::vector<ScoredHit> hits;
    if (!query.valid() || k == 0)
        return hits;

    DocSet matches = _boolean.run(query);
    if (matches.empty())
        return hits;

    // Per positive term: its sorted doc set and idf weight. Sealed
    // cursors are already sorted, so no per-query sort is needed.
    struct Weighted
    {
        DocSet docs;
        double idf;
    };
    std::vector<Weighted> weighted;
    for (const std::string &term : positiveTerms(query.root())) {
        PostingCursor cursor = _snapshot.cursor(term);
        if (cursor.count() == 0)
            continue;
        Weighted w;
        w.docs = cursor.toDocSet();
        w.idf = idf(term);
        weighted.push_back(std::move(w));
    }

    hits.reserve(matches.size());
    for (DocId doc : matches) {
        double score = 0.0;
        for (const Weighted &w : weighted) {
            if (std::binary_search(w.docs.begin(), w.docs.end(), doc))
                score += w.idf;
        }
        double penalty = std::log(
            2.0 + static_cast<double>(_docs.sizeBytes(doc)));
        hits.push_back(ScoredHit{doc, score / penalty});
    }

    // Highest score first; ties toward lower doc ids (stable,
    // deterministic output).
    std::stable_sort(hits.begin(), hits.end(),
                     [](const ScoredHit &a, const ScoredHit &b) {
                         if (a.score != b.score)
                             return a.score > b.score;
                         return a.doc < b.doc;
                     });
    if (hits.size() > k)
        hits.resize(k);
    return hits;
}

} // namespace dsearch
