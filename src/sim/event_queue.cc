#include "sim/event_queue.hh"

#include "util/logging.hh"

namespace dsearch {

void
EventQueue::schedule(SimTime when, Callback cb)
{
    if (when < _now)
        panic("EventQueue::schedule into the past");
    _events.push(Event{when, _next_seq++, std::move(cb)});
}

void
EventQueue::scheduleAfter(SimTime delay, Callback cb)
{
    schedule(_now + delay, std::move(cb));
}

bool
EventQueue::runOne()
{
    if (_events.empty())
        return false;
    // priority_queue::top is const; the event is copied out so the
    // callback may schedule freely.
    Event event = _events.top();
    _events.pop();
    _now = event.when;
    ++_executed;
    event.cb();
    return true;
}

std::size_t
EventQueue::runAll(std::size_t max_events)
{
    std::size_t n = 0;
    while (runOne()) {
        if (++n > max_events)
            panic("EventQueue::runAll exceeded the event budget; "
                  "likely a scheduling loop");
    }
    return n;
}

} // namespace dsearch
