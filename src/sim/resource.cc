#include "sim/resource.hh"

#include "util/logging.hh"

namespace dsearch {

Resource::Resource(EventQueue &eq, std::string name, unsigned servers)
    : _eq(eq), _name(std::move(name)), _servers(servers)
{
    if (servers == 0)
        panic("Resource '" + _name + "': need at least one server");
}

void
Resource::accumulate()
{
    _busy_integral += static_cast<SimTime>(_busy)
                      * (_eq.now() - _last_change);
    _last_change = _eq.now();
}

void
Resource::acquire(EventQueue::Callback grant_cb)
{
    if (_busy < _servers) {
        accumulate();
        ++_busy;
        ++_grants;
        _eq.schedule(_eq.now(), std::move(grant_cb));
        return;
    }
    _waiting.push_back(Waiter{std::move(grant_cb), _eq.now()});
}

void
Resource::release()
{
    if (_busy == 0)
        panic("Resource '" + _name + "': release without acquire");
    accumulate();
    if (_waiting.empty()) {
        --_busy;
        return;
    }
    // Hand the server straight to the longest waiter; busy count is
    // unchanged.
    Waiter next = std::move(_waiting.front());
    _waiting.pop_front();
    _wait_integral += _eq.now() - next.since;
    ++_grants;
    _eq.schedule(_eq.now(), std::move(next.cb));
}

void
Resource::use(SimTime service, EventQueue::Callback done_cb)
{
    acquire([this, service, done_cb = std::move(done_cb)]() mutable {
        _eq.scheduleAfter(service,
                          [this, done_cb = std::move(done_cb)] {
                              release();
                              done_cb();
                          });
    });
}

double
Resource::busySeconds() const
{
    SimTime integral = _busy_integral
                       + static_cast<SimTime>(_busy)
                             * (_eq.now() - _last_change);
    return simToSec(integral);
}

void
SimSemaphore::p(EventQueue::Callback cb)
{
    if (_count > 0) {
        --_count;
        _eq.schedule(_eq.now(), std::move(cb));
        return;
    }
    _waiting.push_back(std::move(cb));
}

void
SimSemaphore::v()
{
    if (!_waiting.empty()) {
        EventQueue::Callback cb = std::move(_waiting.front());
        _waiting.pop_front();
        _eq.schedule(_eq.now(), std::move(cb));
        return;
    }
    ++_count;
}

void
SimQueue::wakeConsumers()
{
    while (!_items.empty() && !_empty_waiters.empty()) {
        std::size_t item = _items.front();
        _items.pop_front();
        PopCallback cb = std::move(_empty_waiters.front());
        _empty_waiters.pop_front();
        _eq.schedule(_eq.now(),
                     [cb = std::move(cb), item] { cb(true, item); });
    }
    if (_closed && _items.empty()) {
        while (!_empty_waiters.empty()) {
            PopCallback cb = std::move(_empty_waiters.front());
            _empty_waiters.pop_front();
            _eq.schedule(_eq.now(),
                         [cb = std::move(cb)] { cb(false, 0); });
        }
    }
}

void
SimQueue::push(std::size_t item, EventQueue::Callback done)
{
    if (_closed)
        panic("SimQueue: push after close");
    if (_items.size() < _capacity) {
        _items.push_back(item);
        _eq.schedule(_eq.now(), std::move(done));
        wakeConsumers();
        return;
    }
    // Queue full: park the producer; the push completes when a pop
    // frees a slot.
    _full_waiters.push_back(
        [this, item, done = std::move(done)]() mutable {
            _items.push_back(item);
            _eq.schedule(_eq.now(), std::move(done));
            wakeConsumers();
        });
}

void
SimQueue::pop(PopCallback cb)
{
    if (!_items.empty()) {
        std::size_t item = _items.front();
        _items.pop_front();
        _eq.schedule(_eq.now(),
                     [cb = std::move(cb), item] { cb(true, item); });
        if (!_full_waiters.empty()) {
            EventQueue::Callback admit =
                std::move(_full_waiters.front());
            _full_waiters.pop_front();
            admit();
        }
        return;
    }
    if (_closed) {
        _eq.schedule(_eq.now(), [cb = std::move(cb)] { cb(false, 0); });
        return;
    }
    _empty_waiters.push_back(std::move(cb));
}

void
SimQueue::close()
{
    if (!_full_waiters.empty())
        panic("SimQueue: closed while producers were still blocked");
    _closed = true;
    wakeConsumers();
}

} // namespace dsearch
