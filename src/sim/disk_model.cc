#include "sim/disk_model.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsearch {

DiskModel::DiskModel(EventQueue &eq, DiskParams params,
                     std::uint64_t seed)
    : _params(params), _seed(seed),
      // One server: the head serves one request at a time. Queue
      // depth (bounded by the NCQ window, `channels`) only shortens
      // positioning, it never parallelizes transfers.
      _channels(eq, "disk", 1)
{
}

bool
DiskModel::cached(std::size_t index) const
{
    if (_params.cached_fraction <= 0.0)
        return false;
    std::uint64_t state = _seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
    double u = static_cast<double>(splitMix64(state) >> 11) * 0x1.0p-53;
    return u < _params.cached_fraction;
}

SimTime
DiskModel::serviceTime(std::uint64_t bytes, double count,
                       ReadMode mode, std::size_t depth) const
{
    double seek_ms = 0.0;
    switch (mode) {
      case ReadMode::Interleaved:
        seek_ms = _params.seek_interleaved_ms;
        break;
      case ReadMode::Scan:
        seek_ms = _params.seek_scan_ms;
        break;
      case ReadMode::Parallel: {
        // Elevator/NCQ effect: positioning falls from the scan cost
        // toward the floor as the visible queue deepens — until the
        // head starts thrashing between too many streams. The
        // scheduler only sees the NCQ window.
        double d = static_cast<double>(
            std::min<std::size_t>(depth, _params.channels));
        seek_ms = _params.seek_floor_ms
                  + (_params.seek_scan_ms - _params.seek_floor_ms)
                        / (1.0 + d / _params.depth_half);
        if (d > _params.thrash_depth) {
            seek_ms += (d - _params.thrash_depth)
                       * _params.thrash_ms_per_extra;
        }
        break;
      }
    }
    double transfer_ms = static_cast<double>(bytes)
                         / (_params.bandwidth_mbps * 1048.576);
    // bandwidth_mbps is MiB/s; bytes / (MiB/s * 1048.576) gives ms.
    double total_ms = seek_ms * count + transfer_ms;
    return secToSim(total_ms * 1e-3);
}

void
DiskModel::read(std::uint64_t bytes, double count,
                ReadMode mode, EventQueue::Callback done)
{
    // Depth as seen when the request is issued: everything already
    // queued or in flight.
    std::size_t depth = _channels.load();
    SimTime service = serviceTime(bytes, count, mode, depth);
    _channels.use(service, std::move(done));
}

} // namespace dsearch
