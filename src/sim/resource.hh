/**
 * @file
 * Simulated contended resources.
 *
 * Three primitives cover everything the pipeline model needs:
 *
 *  - Resource: a FIFO k-server (CPU cores, disk channels, the index
 *    lock as a 1-server resource) with a busy-time integral for
 *    utilization reporting.
 *  - SimSemaphore: counting semaphore (building block of SimQueue).
 *  - SimQueue: the simulated bounded block queue between extractors
 *    and updaters, with the same close-and-drain semantics as the real
 *    BlockingQueue.
 */

#ifndef DSEARCH_SIM_RESOURCE_HH
#define DSEARCH_SIM_RESOURCE_HH

#include <cstdint>
#include <deque>
#include <string>

#include "sim/event_queue.hh"

namespace dsearch {

/** FIFO k-server resource; see the file comment. */
class Resource
{
  public:
    /**
     * @param eq      Owning event queue.
     * @param name    Diagnostic name.
     * @param servers Number of concurrent holders (>= 1).
     */
    Resource(EventQueue &eq, std::string name, unsigned servers);

    /**
     * Request one server.
     *
     * @param grant_cb Runs (as a scheduled event, never inline) once a
     *                 server is available; the caller holds it until
     *                 release().
     */
    void acquire(EventQueue::Callback grant_cb);

    /** Return a server; grants the longest-waiting requester. */
    void release();

    /**
     * Convenience: acquire, hold for @p service, release, then run
     * @p done_cb.
     */
    void use(SimTime service, EventQueue::Callback done_cb);

    /** @return Servers currently held. */
    unsigned busy() const { return _busy; }

    /** @return Requests waiting for a server. */
    std::size_t queueLength() const { return _waiting.size(); }

    /** @return busy()+queueLength(): demand visible to newcomers. */
    std::size_t
    load() const
    {
        return _busy + _waiting.size();
    }

    /** @return Total grants so far. */
    std::uint64_t grants() const { return _grants; }

    /**
     * @return Busy-server seconds integrated up to "now" (divide by
     *         servers * elapsed for utilization).
     */
    double busySeconds() const;

    /** @return Total time requests spent waiting, in seconds. */
    double waitSeconds() const { return simToSec(_wait_integral); }

    /** @return Diagnostic name. */
    const std::string &name() const { return _name; }

  private:
    struct Waiter
    {
        EventQueue::Callback cb;
        SimTime since;
    };

    void accumulate();

    EventQueue &_eq;
    std::string _name;
    unsigned _servers;
    unsigned _busy = 0;
    std::deque<Waiter> _waiting;
    std::uint64_t _grants = 0;
    SimTime _busy_integral = 0; ///< busy-count * time, microseconds.
    SimTime _wait_integral = 0;
    SimTime _last_change = 0;
};

/** Counting semaphore over the event queue. */
class SimSemaphore
{
  public:
    /**
     * @param eq      Owning event queue.
     * @param initial Initial count.
     */
    SimSemaphore(EventQueue &eq, std::uint64_t initial)
        : _eq(eq), _count(initial)
    {
    }

    /** Acquire one unit; @p cb runs once a unit is held. */
    void p(EventQueue::Callback cb);

    /** Release one unit, waking the longest waiter. */
    void v();

    /** @return Currently available units. */
    std::uint64_t count() const { return _count; }

    /** @return Waiting acquirers. */
    std::size_t waiting() const { return _waiting.size(); }

  private:
    EventQueue &_eq;
    std::uint64_t _count;
    std::deque<EventQueue::Callback> _waiting;
};

/**
 * Simulated bounded FIFO of workload-entry indices with close
 * semantics, mirroring pipeline/blocking_queue.hh.
 */
class SimQueue
{
  public:
    /** Pop outcome delivered to the consumer callback. */
    using PopCallback = std::function<void(bool ok, std::size_t item)>;

    /**
     * @param eq       Owning event queue.
     * @param capacity Maximum queued items (>= 1).
     */
    SimQueue(EventQueue &eq, std::size_t capacity)
        : _eq(eq), _capacity(capacity)
    {
    }

    /** Enqueue @p item; @p done runs once space was available. */
    void push(std::size_t item, EventQueue::Callback done);

    /**
     * Dequeue; @p cb receives (true, item) or (false, 0) once the
     * queue is closed and drained.
     */
    void pop(PopCallback cb);

    /** No further pushes; drain then fail waiting/future pops. */
    void close();

    /** @return Items currently queued. */
    std::size_t size() const { return _items.size(); }

  private:
    void wakeConsumers();

    EventQueue &_eq;
    std::size_t _capacity;
    std::deque<std::size_t> _items;
    std::deque<EventQueue::Callback> _full_waiters; ///< Producers.
    std::deque<PopCallback> _empty_waiters;         ///< Consumers.
    bool _closed = false;
};

} // namespace dsearch

#endif // DSEARCH_SIM_RESOURCE_HH
