#include "sim/pipeline_sim.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "sim/resource.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/** Average bytes per token of the synthetic corpus (word + space). */
constexpr double bytes_per_token = 4.7;

/** Species-accumulation coefficient for unique-term saturation. */
constexpr double dedup_coefficient = 0.45;

constexpr double bytes_per_mb = 1048576.0;

} // namespace

WorkloadModel
WorkloadModel::fromCorpusSpec(const CorpusSpec &spec)
{
    CorpusGenerator generator(spec);
    std::vector<std::uint64_t> sizes = generator.fileSizes();

    WorkloadModel model;
    model._files.reserve(sizes.size());
    const double vocab = static_cast<double>(spec.vocabulary_size);
    for (std::uint64_t bytes : sizes) {
        FileModel file;
        file.bytes = bytes;
        file.tokens = static_cast<std::uint64_t>(
            static_cast<double>(bytes) / bytes_per_token);
        // Unique terms saturate against the vocabulary as the file
        // grows (Heaps-like behaviour of the Zipf-drawn corpus).
        double unique =
            vocab
            * (1.0
               - std::exp(-dedup_coefficient
                          * static_cast<double>(file.tokens) / vocab));
        file.terms = static_cast<std::uint32_t>(unique);
        file.count = 1;
        model._file_count += 1;
        model._total_bytes += file.bytes;
        model._total_tokens += file.tokens;
        model._total_terms += file.terms;
        model._files.push_back(file);
    }
    return model;
}

void
WorkloadModel::coarsen(std::size_t factor)
{
    if (factor <= 1 || _files.empty())
        return;
    const std::uint64_t mean_bytes =
        _total_bytes / std::max<std::uint64_t>(1, _file_count);
    const std::uint64_t large_threshold = mean_bytes * 10;

    std::vector<FileModel> merged;
    merged.reserve(_files.size() / factor + 8);
    FileModel group;
    std::uint32_t in_group = 0;
    auto flush = [&merged, &group, &in_group] {
        if (in_group > 0) {
            merged.push_back(group);
            group = FileModel{};
            in_group = 0;
        }
    };
    for (const FileModel &file : _files) {
        if (file.bytes > large_threshold) {
            // Large files stay their own entries so the round-robin
            // balance effects survive coarsening.
            flush();
            merged.push_back(file);
            continue;
        }
        group.bytes += file.bytes;
        group.tokens += file.tokens;
        group.terms += file.terms;
        group.count += in_group == 0 ? 0 : 1;
        if (in_group == 0)
            group.count = 1;
        ++in_group;
        if (in_group >= factor)
            flush();
    }
    flush();
    // Re-derive counts: the loop above kept count = files merged.
    _files = std::move(merged);
}

PipelineSim::PipelineSim(PlatformSpec platform, WorkloadModel workload)
    : _platform(std::move(platform)), _workload(std::move(workload))
{
}

namespace {

/** Microseconds of CPU to scan (tokenize + dedup) an entry. */
double
scanUs(const PlatformSpec &p, const FileModel &f)
{
    return static_cast<double>(f.bytes) / bytes_per_mb
           * p.scan_us_per_mb;
}

/** Microseconds of CPU spent issuing/copying an uncached read. */
double
readCpuUs(const PlatformSpec &p, const FileModel &f)
{
    return static_cast<double>(f.bytes) / bytes_per_mb
           * p.read_cpu_us_per_mb;
}

/** Microseconds of CPU to copy an entry out of the page cache. */
double
cacheCopyUs(const PlatformSpec &p, const FileModel &f)
{
    return static_cast<double>(f.bytes) / bytes_per_mb
           * p.cache_copy_us_per_mb;
}

/**
 * Microseconds of CPU to insert an entry's block(s) into an index.
 * En-bloc mode pays per unique term; immediate mode pays the
 * duplicate-scan-inflated cost per occurrence.
 */
double
insertUs(const PlatformSpec &p, const Config &cfg, const FileModel &f)
{
    if (cfg.en_bloc)
        return static_cast<double>(f.terms) * p.insert_us_per_term;
    return static_cast<double>(f.tokens) * p.insert_us_per_term
           * p.dup_scan_factor;
}

/** Lock-overhead microseconds per entry under Implementation 1. */
double
lockUs(const PlatformSpec &p, const Config &cfg, const FileModel &f)
{
    // En-bloc: one lock pair per block; immediate: one per occurrence
    // ("overwhelm the index with locking requests").
    double ops = cfg.en_bloc ? static_cast<double>(f.count)
                             : static_cast<double>(f.tokens);
    return ops * p.lock_us;
}

/**
 * Analytic "Join Forces" reduction: merge replica masses pairwise,
 * z lanes per level (LPT), until one replica remains.
 *
 * @param masses  Unique postings per replica.
 * @param z       Joiner threads.
 * @param join_us Cost per source posting moved.
 * @return Seconds spent joining.
 */
double
joinSeconds(std::vector<double> masses, unsigned z, double join_us)
{
    if (masses.size() <= 1 || z == 0)
        return 0.0;
    double total_sec = 0.0;
    while (masses.size() > 1) {
        std::size_t pairs = masses.size() / 2;
        std::size_t lanes = std::min<std::size_t>(z, pairs);

        // Cost of merging pair p = moving the source replica.
        std::vector<double> costs(pairs);
        for (std::size_t p = 0; p < pairs; ++p)
            costs[p] = masses[2 * p + 1] * join_us;

        // LPT assignment onto the lanes.
        std::sort(costs.rbegin(), costs.rend());
        std::vector<double> lane_time(lanes, 0.0);
        for (double cost : costs) {
            auto lightest =
                std::min_element(lane_time.begin(), lane_time.end());
            *lightest += cost;
        }
        total_sec +=
            *std::max_element(lane_time.begin(), lane_time.end())
            * 1e-6;

        std::vector<double> next;
        next.reserve(pairs + masses.size() % 2);
        for (std::size_t p = 0; p < pairs; ++p)
            next.push_back(masses[2 * p] + masses[2 * p + 1]);
        if (masses.size() % 2 == 1)
            next.push_back(masses.back());
        masses = std::move(next);
    }
    return total_sec;
}

/** All mutable state of one parallel DES run. */
struct DesRun
{
    const PlatformSpec &p;
    const WorkloadModel &w;
    const Config &cfg;

    EventQueue eq;
    Resource cores;
    Resource lock;
    DiskModel disk;
    SimQueue queue;

    std::vector<std::vector<std::size_t>> shards; ///< Per extractor.
    std::vector<std::size_t> cursor;
    std::vector<double> masses; ///< Postings per replica.

    unsigned extractors_done = 0;
    unsigned updaters_done = 0;
    SimTime stage2_end = 0;
    SimTime stage3_end = 0;

    bool shared_impl;
    double insert_inflation; ///< Multiplier on shared-index inserts.
    double updater_cold;     ///< Multiplier on handed-off inserts.

    DesRun(const PlatformSpec &platform, const WorkloadModel &workload,
           const Config &config)
        : p(platform), w(workload), cfg(config),
          cores(eq, "cores", platform.cores),
          lock(eq, "index-lock", 1),
          disk(eq, platform.disk, platform.cache_seed),
          queue(eq, config.queue_capacity),
          shared_impl(config.impl == Implementation::SharedLocked)
    {
        const unsigned x = cfg.extractors;
        const unsigned y = cfg.updaters;

        // Round-robin deal of workload entries (the paper's chosen
        // distribution).
        shards.assign(x, {});
        for (std::size_t i = 0; i < w.files().size(); ++i)
            shards[i % x].push_back(i);
        cursor.assign(x, 0);

        if (!shared_impl)
            masses.assign(cfg.replicaCount(), 0.0);

        // Shared-index insert inflation: with direct extractor
        // inserts (y = 0) the writers' caches fight (coherence);
        // with dedicated updaters every block arrives cache-cold.
        if (shared_impl && y == 0) {
            insert_inflation =
                1.0 + p.coherence_factor * static_cast<double>(x - 1);
        } else {
            insert_inflation = 1.0;
        }
        updater_cold = y > 0 ? p.cold_insert_factor : 1.0;
    }

    void
    start()
    {
        for (unsigned u = 0; u < cfg.updaters; ++u)
            updaterLoop(u);
        for (unsigned x = 0; x < cfg.extractors; ++x)
            extractorNext(x);
    }

    /** Advance extractor @p e to its next file (or finish). */
    void
    extractorNext(unsigned e)
    {
        if (cursor[e] >= shards[e].size()) {
            if (++extractors_done == cfg.extractors) {
                stage2_end = eq.now();
                queue.close();
                if (cfg.updaters == 0)
                    stage3_end = eq.now();
            }
            return;
        }
        std::size_t entry = shards[e][cursor[e]++];
        const FileModel &file = w.files()[entry];

        // Expected cached/uncached split: the cached share of the
        // entry's bytes is a page-cache copy on the CPU, the rest is
        // fetched from the device (coarsening-stable, deterministic).
        const double fc = p.disk.cached_fraction;
        const auto uncached_bytes = static_cast<std::uint64_t>(
            static_cast<double>(file.bytes) * (1.0 - fc));
        const double cached_mb =
            static_cast<double>(file.bytes - uncached_bytes)
            / bytes_per_mb;
        const double cache_cpu_us =
            cached_mb * p.cache_copy_us_per_mb;

        if (uncached_bytes == 0) {
            cpuPhase(e, entry, cache_cpu_us);
        } else {
            const double uncached_mb =
                static_cast<double>(uncached_bytes) / bytes_per_mb;
            const double read_cpu_us =
                uncached_mb * p.read_cpu_us_per_mb;
            disk.read(uncached_bytes,
                      static_cast<double>(file.count) * (1.0 - fc),
                      ReadMode::Parallel,
                      [this, e, entry, cache_cpu_us, read_cpu_us] {
                          cpuPhase(e, entry,
                                   cache_cpu_us + read_cpu_us);
                      });
        }
    }

    /** Scan burst (plus read/copy CPU) on a core, then delivery. */
    void
    cpuPhase(unsigned e, std::size_t entry, double io_cpu_us)
    {
        const FileModel &file = w.files()[entry];
        SimTime burst = secToSim((io_cpu_us + scanUs(p, file)) * 1e-6);
        cores.use(burst, [this, e, entry] { deliver(e, entry); });
    }

    /** Hand the extracted block to Stage 3. */
    void
    deliver(unsigned e, std::size_t entry)
    {
        const FileModel &file = w.files()[entry];
        if (cfg.updaters > 0) {
            // Push into the bounded buffer; blocks when full (the
            // back-pressure that stalls extractors and idles the
            // disk).
            queue.push(entry, [this, e] { extractorNext(e); });
            return;
        }
        if (shared_impl) {
            // Direct insert under the global lock.
            SimTime burst = secToSim(
                (insertUs(p, cfg, file) * insert_inflation
                 + lockUs(p, cfg, file))
                * 1e-6);
            lock.acquire([this, e, burst] {
                cores.use(burst, [this, e] {
                    lock.release();
                    extractorNext(e);
                });
            });
            return;
        }
        // Private replica: no lock at all.
        masses[e] += static_cast<double>(file.terms);
        SimTime burst = secToSim(insertUs(p, cfg, file) * 1e-6);
        cores.use(burst, [this, e] { extractorNext(e); });
    }

    /** One updater's pop-insert loop. */
    void
    updaterLoop(unsigned u)
    {
        queue.pop([this, u](bool ok, std::size_t entry) {
            if (!ok) {
                if (++updaters_done == cfg.updaters)
                    stage3_end = eq.now();
                return;
            }
            const FileModel &file = w.files()[entry];
            double queue_cpu =
                static_cast<double>(file.count) * p.queue_op_us;
            if (shared_impl) {
                SimTime burst = secToSim(
                    (queue_cpu
                     + insertUs(p, cfg, file) * updater_cold
                     + lockUs(p, cfg, file))
                    * 1e-6);
                lock.acquire([this, u, burst] {
                    cores.use(burst, [this, u] {
                        lock.release();
                        updaterLoop(u);
                    });
                });
            } else {
                masses[u] += static_cast<double>(file.terms);
                SimTime burst = secToSim(
                    (queue_cpu
                     + insertUs(p, cfg, file) * updater_cold)
                    * 1e-6);
                cores.use(burst, [this, u] { updaterLoop(u); });
            }
        });
    }
};

} // namespace

SimResult
PipelineSim::run(const Config &cfg) const
{
    cfg.validate();
    if (cfg.impl == Implementation::Sequential)
        return runSequential();
    return runParallel(cfg);
}

SimResult
PipelineSim::runSequential() const
{
    // The sequential program needs no DES: one thread, no overlap —
    // per file: (interleaved) read, scan, insert; all serial.
    const PlatformSpec &p = _platform;
    Config cfg = Config::sequential();

    EventQueue eq; // only for the cache draw
    DiskModel disk(eq, p.disk, p.cache_seed);

    SimResult result;
    const double fc = p.disk.cached_fraction;
    double read_sec = 0.0, scan_sec = 0.0, insert_sec = 0.0;
    for (std::size_t i = 0; i < _workload.files().size(); ++i) {
        const FileModel &file = _workload.files()[i];
        const auto uncached_bytes = static_cast<std::uint64_t>(
            static_cast<double>(file.bytes) * (1.0 - fc));
        const double cached_mb =
            static_cast<double>(file.bytes - uncached_bytes)
            / bytes_per_mb;
        read_sec += cached_mb * p.cache_copy_us_per_mb * 1e-6;
        if (uncached_bytes > 0) {
            const double uncached_mb =
                static_cast<double>(uncached_bytes) / bytes_per_mb;
            read_sec +=
                simToSec(disk.serviceTime(
                    uncached_bytes,
                    static_cast<double>(file.count) * (1.0 - fc),
                    ReadMode::Interleaved, 0))
                + uncached_mb * p.read_cpu_us_per_mb * 1e-6;
        }
        scan_sec += scanUs(p, file) * 1e-6;
        insert_sec += insertUs(p, cfg, file) * 1e-6;
    }

    result.stages.filename_generation =
        static_cast<double>(_workload.fileCount())
        * p.fname_us_per_file * 1e-6;
    result.stages.read_and_extract = read_sec + scan_sec;
    result.stages.index_update = insert_sec;
    result.stages.total = result.stages.filename_generation
                          + result.stages.read_and_extract
                          + result.stages.index_update;
    result.total_sec = result.stages.total;
    result.disk_busy_sec = read_sec;
    result.cpu_busy_sec = scan_sec + insert_sec;
    return result;
}

SimResult
PipelineSim::runParallel(const Config &cfg) const
{
    if (cfg.pipelined_stage1)
        fatal("PipelineSim: pipelined Stage 1 is a host-measured "
              "ablation, not modelled");
    if (cfg.distribution != DistributionKind::RoundRobin)
        fatal("PipelineSim: only round-robin distribution is "
              "modelled");

    DesRun run(_platform, _workload, cfg);
    run.start();
    run.eq.runAll();

    if (run.extractors_done != cfg.extractors
        || (cfg.updaters > 0 && run.updaters_done != cfg.updaters)) {
        panic("PipelineSim: simulation ended with live actors");
    }

    const PlatformSpec &p = _platform;
    SimResult result;
    result.events = run.eq.executed();

    double fname_sec = static_cast<double>(_workload.fileCount())
                       * p.fname_us_per_file * 1e-6;
    double spawn_sec =
        static_cast<double>(cfg.extractors + cfg.updaters
                            + cfg.joiners)
        * p.thread_spawn_us * 1e-6;

    double join_sec = 0.0;
    if (cfg.impl == Implementation::ReplicatedJoin)
        join_sec =
            joinSeconds(run.masses, cfg.joiners, p.join_us_per_term);

    result.stages.filename_generation = fname_sec;
    result.stages.read_and_extract = simToSec(run.stage2_end);
    result.stages.index_update =
        simToSec(run.stage3_end) - simToSec(run.stage2_end);
    result.stages.join = join_sec;
    result.total_sec = fname_sec + spawn_sec
                       + simToSec(run.stage3_end) + join_sec;
    result.stages.total = result.total_sec;

    result.disk_busy_sec = run.disk.busySeconds();
    result.disk_wait_sec = run.disk.waitSeconds();
    result.cpu_busy_sec = run.cores.busySeconds();
    result.lock_wait_sec = run.lock.waitSeconds();
    return result;
}

StageTimes
PipelineSim::measureStages() const
{
    // Table 1 passes are first-run (cold) measurements: dedicated
    // scan-mode reads, no page-cache hits.
    const PlatformSpec &p = _platform;
    Config cfg = Config::sequential();

    StageTimes times;
    times.filename_generation =
        static_cast<double>(_workload.fileCount())
        * p.fname_us_per_file * 1e-6;

    EventQueue eq;
    DiskModel disk(eq, p.disk, p.cache_seed);
    double read_sec = 0.0, scan_sec = 0.0, insert_sec = 0.0;
    for (const FileModel &file : _workload.files()) {
        read_sec += simToSec(disk.serviceTime(file.bytes, file.count,
                                              ReadMode::Scan, 0))
                    + readCpuUs(p, file) * 1e-6;
        scan_sec += scanUs(p, file) * 1e-6;
        insert_sec += insertUs(p, cfg, file) * 1e-6;
    }
    times.read_files = read_sec;
    times.read_and_extract = read_sec + scan_sec;
    times.index_update = insert_sec;
    times.total = times.filename_generation + times.read_and_extract
                  + times.index_update;
    return times;
}

} // namespace dsearch
