/**
 * @file
 * Discrete-event simulation kernel: a time-ordered event queue.
 *
 * The platform simulator replays the index-generation pipeline on
 * modelled hardware (the paper's 4-, 8- and 32-core machines). Time is
 * in integer microseconds; events at equal times run in scheduling
 * (FIFO) order, which makes every simulation deterministic.
 */

#ifndef DSEARCH_SIM_EVENT_QUEUE_HH
#define DSEARCH_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace dsearch {

/** Simulated time in microseconds. */
using SimTime = std::uint64_t;

/** Convert simulated time to seconds. */
constexpr double
simToSec(SimTime t)
{
    return static_cast<double>(t) * 1e-6;
}

/** Convert (non-negative) seconds to simulated time. */
constexpr SimTime
secToSim(double sec)
{
    return sec <= 0.0 ? 0 : static_cast<SimTime>(sec * 1e6 + 0.5);
}

/** Deterministic time-ordered event queue; see the file comment. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /**
     * Schedule a callback at absolute time @p when (>= now; panics on
     * scheduling into the past).
     */
    void schedule(SimTime when, Callback cb);

    /** Schedule a callback @p delay after the current time. */
    void scheduleAfter(SimTime delay, Callback cb);

    /** @return Current simulated time. */
    SimTime now() const { return _now; }

    /**
     * Run the earliest event.
     *
     * @return False when no events remain.
     */
    bool runOne();

    /**
     * Run until the queue drains.
     *
     * @param max_events Safety valve against runaway simulations
     *                   (panics when exceeded).
     * @return Number of events executed.
     */
    std::size_t runAll(std::size_t max_events = 500000000);

    /** @return Number of scheduled, not-yet-run events. */
    std::size_t pending() const { return _events.size(); }

    /** @return Total events executed so far. */
    std::uint64_t executed() const { return _executed; }

  private:
    struct Event
    {
        SimTime when;
        std::uint64_t seq; ///< Tie-breaker: FIFO among equal times.
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> _events;
    SimTime _now = 0;
    std::uint64_t _next_seq = 0;
    std::uint64_t _executed = 0;
};

} // namespace dsearch

#endif // DSEARCH_SIM_EVENT_QUEUE_HH
