/**
 * @file
 * Simulated platform descriptions.
 *
 * The paper evaluates on three machines that are not available here:
 *
 *   4-core  Intel Core2Quad Q6600, 2.4 GHz, 4 GB, Windows 7 64 bit
 *   8-core  Intel Xeon E5320, 1.86 GHz, 8 GB, Ubuntu 8.10 64 bit
 *   32-core Intel Xeon X7560, 2.27 GHz, 8 GB, RHEL 4 64 bit (MTL)
 *
 * Each PlatformSpec captures the cost model of one machine: disk
 * behaviour, per-unit CPU costs of scanning/inserting, lock and queue
 * overheads, and coherence penalties. The constants are calibrated so
 * the simulator reproduces the paper's Table 1 stage times and the
 * sequential totals, then validated against Tables 2-4 (see
 * EXPERIMENTS.md for paper-vs-simulated values and platform.cc for
 * the derivation of every constant).
 */

#ifndef DSEARCH_SIM_PLATFORM_HH
#define DSEARCH_SIM_PLATFORM_HH

#include <cstdint>
#include <string>

#include "sim/disk_model.hh"

namespace dsearch {

/** Cost model of one machine; see the file comment. */
struct PlatformSpec
{
    std::string name = "generic";
    unsigned cores = 4;
    double clock_ghz = 2.0; ///< Informational only.

    DiskParams disk;

    /** Stage 1 cost per file (directory walk + name handling). */
    double fname_us_per_file = 100.0;

    /** CPU cost of issuing reads / copying buffers, per MiB read. */
    double read_cpu_us_per_mb = 500.0;

    /** CPU cost of copying a page-cached file, per MiB. */
    double cache_copy_us_per_mb = 1500.0;

    /** Tokenize + per-file dedup cost, per MiB scanned. */
    double scan_us_per_mb = 12000.0;

    /** Hash-map insert cost per unique (term, doc) posting. */
    double insert_us_per_term = 0.35;

    /**
     * Immediate-mode multiplier on insert cost: every occurrence is
     * inserted and the posting list is scanned for duplicates.
     */
    double dup_scan_factor = 3.0;

    /** Mutex acquire/release pair. */
    double lock_us = 0.8;

    /**
     * Critical-section inflation per additional *extractor* inserting
     * directly into the shared index (y = 0 under Implementation 1):
     * the shared hash map's lines ping-pong between the x writer
     * cores. Effective insert cost is
     * insert * (1 + coherence_factor * (x - 1)).
     */
    double coherence_factor = 0.5;

    /**
     * Cross-core block-handoff penalty: when dedicated updater
     * threads (y >= 1) insert blocks produced on other cores, every
     * term string arrives cache-cold, inflating insert cost by this
     * factor. This is the dominant Implementation 1 cost on the
     * paper's FSB-based 8-core machine (its best configuration is
     * still ~2x slower than Implementation 3's).
     */
    double cold_insert_factor = 1.5;

    /** Bounded-queue push+pop pair per block. */
    double queue_op_us = 1.2;

    /** Join cost per source posting moved into the destination. */
    double join_us_per_term = 0.25;

    /** Thread creation cost, per thread. */
    double thread_spawn_us = 300.0;

    /** Seed for deterministic cache-residency draws. */
    std::uint64_t cache_seed = 0x0a11cafe;

    /** The paper's 4-core desktop (Q6600, Windows 7, desktop HDD). */
    static PlatformSpec quadCore2010();

    /** The paper's 8-core server (Xeon E5320, Ubuntu 8.10). */
    static PlatformSpec octCore2010();

    /** The paper's 32-core Manycore Testing Lab machine (X7560). */
    static PlatformSpec manyCore2010();

    /**
     * A spec shaped like the build host: detected core count, fast
     * in-memory "disk" (the host benchmarks use MemoryFs).
     *
     * @param cores Override; 0 = detect via hardware_concurrency.
     */
    static PlatformSpec host(unsigned cores = 0);
};

} // namespace dsearch

#endif // DSEARCH_SIM_PLATFORM_HH
