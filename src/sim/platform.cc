#include "sim/platform.hh"

#include <thread>

namespace dsearch {

/*
 * Calibration notes
 * -----------------
 * Constants below are fitted against the paper's published numbers
 * for the ~51,000-file / 869 MB benchmark corpus:
 *
 *   Table 1 (sequential stage times, seconds)
 *                 fname  read   read+extract  index
 *     4-core       5.0   77.0      88.0        22.0
 *     8-core       4.0   47.0      61.0        29.0
 *     32-core      5.0   73.0      80.0        28.0
 *
 *   Sequential totals: 220 s / 105 s / 90 s.
 *
 * Derivations (workload model: ~194 M tokens, ~59 M unique postings —
 * see WorkloadModel::fromCorpusSpec):
 *
 *  - fname_us_per_file     = Table1 fname / 51,000 files.
 *  - scan_us_per_mb        = (read+extract - read) / 869 MB.
 *  - insert_us_per_term    = Table1 index / total postings.
 *  - seek_scan_ms          : read = 51,000 * seek_scan + 869/bw
 *                            + read CPU.
 *  - seek_interleaved_ms   : sequential total = fname + interleaved
 *                            read + scan + index. The interleaved
 *                            read is far slower than the dedicated
 *                            scan because per-file think time defeats
 *                            readahead — this is what makes the
 *                            4-core sequential program take 220 s
 *                            although its parts sum to 115 s.
 *  - cached_fraction       : only the 32-core machine (8 GB RAM,
 *                            five averaged runs) sees page-cache
 *                            hits; fitted so the sequential total is
 *                            90 s although the cold parts sum to
 *                            113 s.
 *  - cold_insert_factor    : fitted from Implementation 1's best
 *                            time (its updates serialize on the
 *                            index lock, so best-time / Table1-index
 *                            bounds the factor): 59.5/29 = 2.05 on
 *                            the FSB-based 8-core, 45.9/28 = 1.64 on
 *                            the 32-core, masked by the disk on the
 *                            4-core (1.6 assumed).
 *  - join_us_per_term      : fitted from Implementation 2 minus
 *                            Implementation 3 at the paper's best
 *                            configurations (8.2 s for one 29.5 M
 *                            posting merge on the 8-core; 10.7 s for
 *                            44 M moved postings on the 32-core; the
 *                            4-core's measured join cost is ~0.2 s —
 *                            see EXPERIMENTS.md for the discussion).
 */

PlatformSpec
PlatformSpec::quadCore2010()
{
    PlatformSpec p;
    p.name = "4-core Intel (Q6600, 2.4 GHz, Windows 7)";
    p.cores = 4;
    p.clock_ghz = 2.4;

    p.disk.seek_interleaved_ms = 3.25;
    p.disk.seek_scan_ms = 1.19;
    p.disk.seek_floor_ms = 0.35;
    p.disk.depth_half = 0.8;
    p.disk.thrash_depth = 3.0;
    p.disk.thrash_ms_per_extra = 0.30;
    p.disk.bandwidth_mbps = 55.0;
    p.disk.channels = 8;
    p.disk.cached_fraction = 0.0;

    p.fname_us_per_file = 98.0;
    p.read_cpu_us_per_mb = 500.0;
    p.cache_copy_us_per_mb = 800.0;
    p.scan_us_per_mb = 12660.0;
    p.insert_us_per_term = 0.362;
    p.dup_scan_factor = 3.0;
    p.lock_us = 1.0;
    p.coherence_factor = 0.8;
    p.cold_insert_factor = 1.6;
    p.queue_op_us = 1.5;
    p.join_us_per_term = 0.02;
    p.thread_spawn_us = 300.0;
    return p;
}

PlatformSpec
PlatformSpec::octCore2010()
{
    PlatformSpec p;
    p.name = "8-core Intel (Xeon E5320, 1.86 GHz, Ubuntu 8.10)";
    p.cores = 8;
    p.clock_ghz = 1.86;

    p.disk.seek_interleaved_ms = 0.75;
    p.disk.seek_scan_ms = 0.53;
    p.disk.seek_floor_ms = 0.46;
    p.disk.depth_half = 1.2;
    p.disk.thrash_depth = 8.0;
    p.disk.thrash_ms_per_extra = 0.10;
    p.disk.bandwidth_mbps = 45.0;
    p.disk.channels = 8;
    p.disk.cached_fraction = 0.0;

    p.fname_us_per_file = 78.4;
    p.read_cpu_us_per_mb = 600.0;
    p.cache_copy_us_per_mb = 900.0;
    p.scan_us_per_mb = 16110.0;
    p.insert_us_per_term = 0.477;
    p.dup_scan_factor = 3.0;
    p.lock_us = 1.0;
    p.coherence_factor = 1.0;
    p.cold_insert_factor = 1.95;
    p.queue_op_us = 1.8;
    p.join_us_per_term = 0.28;
    p.thread_spawn_us = 350.0;
    return p;
}

PlatformSpec
PlatformSpec::manyCore2010()
{
    PlatformSpec p;
    p.name = "32-core Intel (Xeon X7560, 2.27 GHz, RHEL 4)";
    p.cores = 32;
    p.clock_ghz = 2.27;

    p.disk.seek_interleaved_ms = 1.40;
    p.disk.seek_scan_ms = 0.94;
    p.disk.seek_floor_ms = 0.25;
    p.disk.depth_half = 1.5;
    p.disk.thrash_depth = 8.0;
    p.disk.thrash_ms_per_extra = 0.05;
    p.disk.bandwidth_mbps = 35.0;
    p.disk.channels = 16;
    p.disk.cached_fraction = 0.488;

    p.fname_us_per_file = 98.0;
    p.read_cpu_us_per_mb = 450.0;
    p.cache_copy_us_per_mb = 800.0;
    p.scan_us_per_mb = 8055.0;
    p.insert_us_per_term = 0.461;
    p.dup_scan_factor = 3.0;
    p.lock_us = 0.9;
    p.coherence_factor = 0.1;
    p.cold_insert_factor = 1.47;
    p.queue_op_us = 1.5;
    p.join_us_per_term = 0.242;
    p.thread_spawn_us = 400.0;
    return p;
}

PlatformSpec
PlatformSpec::host(unsigned cores)
{
    PlatformSpec p;
    p.name = "build host (in-memory corpus)";
    p.cores = cores != 0
                  ? cores
                  : std::max(1u, std::thread::hardware_concurrency());
    p.clock_ghz = 2.0;

    // MemoryFs: "reads" are memory copies — no positioning cost, no
    // queue-depth effects, effectively infinite bandwidth.
    p.disk.seek_interleaved_ms = 0.0;
    p.disk.seek_scan_ms = 0.0;
    p.disk.seek_floor_ms = 0.0;
    p.disk.depth_half = 1.0;
    p.disk.thrash_depth = 1e9;
    p.disk.thrash_ms_per_extra = 0.0;
    p.disk.bandwidth_mbps = 8000.0;
    p.disk.channels = 64;
    p.disk.cached_fraction = 0.0;

    p.fname_us_per_file = 2.0;
    p.read_cpu_us_per_mb = 120.0;
    p.cache_copy_us_per_mb = 120.0;
    p.scan_us_per_mb = 9000.0;
    p.insert_us_per_term = 0.25;
    p.dup_scan_factor = 3.0;
    p.lock_us = 0.05;
    p.coherence_factor = 0.4;
    p.cold_insert_factor = 1.3;
    p.queue_op_us = 0.3;
    p.join_us_per_term = 0.15;
    p.thread_spawn_us = 60.0;
    return p;
}

} // namespace dsearch
