/**
 * @file
 * Storage model for the platform simulator.
 *
 * Per-file service time = positioning (seek + metadata) + transfer.
 * The positioning cost depends on how the file system is driven,
 * which is exactly the effect the paper's measurements revolve
 * around:
 *
 *  - Interleaved: the sequential indexer issues one read, then
 *    tokenizes and inserts before the next read. The think time
 *    between requests defeats OS readahead, so every file pays the
 *    full positioning cost. This is why the paper's sequential
 *    program is much slower than the sum of its Table 1 parts.
 *  - Scan: a dedicated read-only pass (the paper's "empty scanner")
 *    keeps readahead effective; positioning is cheaper.
 *  - Parallel: k extractor threads keep a queue of outstanding
 *    requests; the deeper the queue, the more the OS/disk scheduler
 *    can reorder and coalesce (elevator/NCQ), pushing positioning
 *    toward a floor. This is why parallel reading can beat the
 *    single-threaded scan — the super-linear speed-up on the paper's
 *    4-core machine.
 *
 * A configurable fraction of files is served from the page cache
 * (relevant on the 32-core machine whose 8 GB RAM holds the 869 MB
 * corpus across the paper's five averaged runs); cached reads cost
 * CPU only and are handled by the caller.
 */

#ifndef DSEARCH_SIM_DISK_MODEL_HH
#define DSEARCH_SIM_DISK_MODEL_HH

#include <cstdint>

#include "sim/resource.hh"
#include "util/rng.hh"

namespace dsearch {

/** Storage characteristics of a simulated platform. */
struct DiskParams
{
    double seek_interleaved_ms = 3.0; ///< Positioning, interleaved.
    double seek_scan_ms = 1.0;        ///< Positioning, dedicated scan.
    double seek_floor_ms = 0.4;       ///< Positioning at deep queue.
    double depth_half = 1.5; ///< Queue depth halving scan->floor gap.

    /**
     * Beyond this queue depth, extra concurrent streams start to
     * *hurt*: the head thrashes between too many positions. This is
     * what bounds the useful extractor count on the paper's desktop
     * disk (best x = 3 on the 4-core machine).
     */
    double thrash_depth = 4.0;

    /** Positioning penalty per request beyond thrash_depth, ms. */
    double thrash_ms_per_extra = 0.2;

    double bandwidth_mbps = 40.0;     ///< Streaming transfer rate.

    /**
     * NCQ window: how many outstanding requests the device scheduler
     * considers when reordering. Caps the depth-based seek discount;
     * the device still serves one request at a time.
     */
    unsigned channels = 4;
    double cached_fraction = 0.0;     ///< Page-cache hit fraction.
};

/** How the caller drives the disk; see the file comment. */
enum class ReadMode { Interleaved, Scan, Parallel };

/** Asynchronous disk with queue-depth-dependent positioning cost. */
class DiskModel
{
  public:
    /**
     * @param eq     Owning event queue.
     * @param params Device characteristics.
     * @param seed   Seed for the deterministic cache-residency draw.
     */
    DiskModel(EventQueue &eq, DiskParams params, std::uint64_t seed);

    /** @return Device characteristics. */
    const DiskParams &params() const { return _params; }

    /**
     * Deterministic page-cache residency of workload entry @p index
     * (stable across configurations so sweeps are comparable).
     */
    bool cached(std::size_t index) const;

    /**
     * Service time of one uncached request.
     *
     * @param bytes File bytes to fetch from the device.
     * @param count Real files behind this (possibly coarsened) entry;
     *              positioning is paid per file. Fractional counts
     *              arise from the expected cached/uncached split.
     * @param mode  Access pattern.
     * @param depth Outstanding requests visible to this one
     *              (Parallel mode only).
     */
    SimTime serviceTime(std::uint64_t bytes, double count,
                        ReadMode mode, std::size_t depth) const;

    /**
     * Issue an asynchronous read; @p done runs when the data is in
     * memory. The caller models page-cache hits as CPU copies and
     * only sends the uncached share here.
     */
    void read(std::uint64_t bytes, double count, ReadMode mode,
              EventQueue::Callback done);

    /** @return Seconds the device spent busy. */
    double busySeconds() const { return _channels.busySeconds(); }

    /** @return Seconds requests spent queued. */
    double waitSeconds() const { return _channels.waitSeconds(); }

  private:
    DiskParams _params;
    std::uint64_t _seed;
    Resource _channels;
};

} // namespace dsearch

#endif // DSEARCH_SIM_DISK_MODEL_HH
