/**
 * @file
 * Discrete-event simulation of the index-generation pipeline.
 *
 * Replays a workload (file sizes + per-file unique-term counts derived
 * from a CorpusSpec) through the three-stage pipeline on a modelled
 * platform, for any (implementation, x, y, z) configuration. This is
 * the substitute for the paper's 4-, 8- and 32-core machines: the
 * benchmark harnesses sweep configurations through this simulator to
 * regenerate Tables 2-4, while the real threaded generator runs on the
 * build host for ground truth.
 *
 * Model summary (see DESIGN.md §2 for the rationale):
 *  - one FIFO resource with `cores` servers models the CPUs
 *    (non-preemptive, file-granularity bursts);
 *  - DiskModel serves uncached reads with queue-depth-dependent
 *    positioning costs; cached files cost a CPU copy instead;
 *  - Implementation 1 funnels inserts through a 1-server lock
 *    resource; blocks handed to dedicated updaters are inserted
 *    cache-cold (cold_insert_factor);
 *  - the extractor->updater buffer is a bounded SimQueue with the
 *    same close-and-drain semantics as the real BlockingQueue;
 *  - the Implementation 2 join is evaluated analytically from the
 *    replica masses accumulated during the run (LPT over z lanes per
 *    reduction level).
 */

#ifndef DSEARCH_SIM_PIPELINE_SIM_HH
#define DSEARCH_SIM_PIPELINE_SIM_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "core/stage_times.hh"
#include "fs/corpus.hh"
#include "sim/platform.hh"

namespace dsearch {

/** One (possibly coarsened) workload entry. */
struct FileModel
{
    std::uint64_t bytes = 0;  ///< Total bytes of the entry.
    std::uint64_t tokens = 0; ///< Term occurrences.
    std::uint32_t terms = 0;  ///< Unique terms (postings produced).
    std::uint32_t count = 1;  ///< Real files behind this entry.
};

/**
 * Derived per-file workload statistics for the simulator.
 *
 * Token counts follow the synthetic corpus's bytes-per-token ratio;
 * unique terms follow a species-accumulation law against the
 * vocabulary (Heaps-like saturation), matching what the real
 * extractor produces on the synthetic corpus.
 */
class WorkloadModel
{
  public:
    /** Build from a corpus spec (no text is generated — fast). */
    static WorkloadModel fromCorpusSpec(const CorpusSpec &spec);

    /**
     * Merge runs of up to @p factor small files into single entries
     * to cut simulation cost. Per-file costs (seeks, stage-1 work,
     * lock/queue operations) are preserved via the entries' counts;
     * large files are never merged.
     */
    void coarsen(std::size_t factor);

    /** @return Workload entries in corpus order. */
    const std::vector<FileModel> &files() const { return _files; }

    /** @return Real file count (sum of entry counts). */
    std::uint64_t fileCount() const { return _file_count; }

    /** @return Total bytes. */
    std::uint64_t totalBytes() const { return _total_bytes; }

    /** @return Total token occurrences. */
    std::uint64_t totalTokens() const { return _total_tokens; }

    /** @return Total unique postings. */
    std::uint64_t totalTerms() const { return _total_terms; }

  private:
    std::vector<FileModel> _files;
    std::uint64_t _file_count = 0;
    std::uint64_t _total_bytes = 0;
    std::uint64_t _total_tokens = 0;
    std::uint64_t _total_terms = 0;
};

/** What one simulated run produced. */
struct SimResult
{
    double total_sec = 0.0; ///< End-to-end build time.
    StageTimes stages;      ///< Stage decomposition.
    double disk_busy_sec = 0.0; ///< Device busy time.
    double disk_wait_sec = 0.0; ///< Requests queued at the device.
    double cpu_busy_sec = 0.0;  ///< Core busy time (all cores).
    double lock_wait_sec = 0.0; ///< Time blocked on the index lock.
    std::uint64_t events = 0;   ///< DES events executed.
};

/** Simulator facade; construct once per (platform, workload) pair. */
class PipelineSim
{
  public:
    PipelineSim(PlatformSpec platform, WorkloadModel workload);

    /** @return The platform being modelled. */
    const PlatformSpec &platform() const { return _platform; }

    /** @return The workload being replayed. */
    const WorkloadModel &workload() const { return _workload; }

    /**
     * Simulate one build.
     *
     * Restrictions vs. the real generator: only round-robin
     * distribution is modelled and pipelined Stage 1 is not (both are
     * host-measured ablations); fatal() otherwise.
     */
    SimResult run(const Config &cfg) const;

    /**
     * The paper's Table 1 decomposition: sequential stage times
     * measured cold (first-run behaviour, no page-cache hits).
     */
    StageTimes measureStages() const;

  private:
    SimResult runSequential() const;
    SimResult runParallel(const Config &cfg) const;

    PlatformSpec _platform;
    WorkloadModel _workload;
};

} // namespace dsearch

#endif // DSEARCH_SIM_PIPELINE_SIM_HH
