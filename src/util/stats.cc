#include "util/stats.hh"

#include <algorithm>
#include <cmath>

namespace dsearch {

void
RunningStat::push(double x)
{
    ++_count;
    _sum += x;
    if (_count == 1) {
        _mean = x;
        _m2 = 0.0;
        _min = x;
        _max = x;
        return;
    }
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    if (x < _min)
        _min = x;
    if (x > _max)
        _max = x;
}

double
RunningStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::clear()
{
    *this = RunningStat{};
}

Summary
summarize(const std::vector<double> &sample)
{
    RunningStat stat;
    for (double x : sample)
        stat.push(x);
    Summary s;
    s.count = stat.count();
    s.mean = stat.mean();
    s.stddev = stat.stddev();
    s.min = stat.min();
    s.max = stat.max();
    return s;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencySummary
summarizeLatencies(std::vector<double> sample)
{
    LatencySummary digest;
    if (sample.empty())
        return digest;
    std::sort(sample.begin(), sample.end());
    RunningStat stat;
    for (double x : sample)
        stat.push(x);
    digest.count = stat.count();
    digest.mean = stat.mean();
    digest.p50 = quantileSorted(sample, 0.50);
    digest.p95 = quantileSorted(sample, 0.95);
    digest.p99 = quantileSorted(sample, 0.99);
    digest.max = stat.max();
    return digest;
}

void
LatencyHistogram::record(double seconds)
{
    if (seconds < 0.0)
        seconds = 0.0;
    ++_buckets[bucketFor(seconds)];
    if (_count == 0) {
        _min = seconds;
        _max = seconds;
    } else {
        if (seconds < _min)
            _min = seconds;
        if (seconds > _max)
            _max = seconds;
    }
    ++_count;
    _sum += seconds;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other._count == 0)
        return;
    for (std::size_t i = 0; i < bucket_count; ++i)
        _buckets[i] += other._buckets[i];
    if (_count == 0) {
        _min = other._min;
        _max = other._max;
    } else {
        _min = std::min(_min, other._min);
        _max = std::max(_max, other._max);
    }
    _count += other._count;
    _sum += other._sum;
}

std::size_t
LatencyHistogram::bucketFor(double seconds)
{
    if (seconds < min_bound)
        return 0; // underflow: [0, min_bound)
    double decades_up = std::log10(seconds / min_bound);
    auto index = static_cast<std::size_t>(
        decades_up * static_cast<double>(buckets_per_decade));
    // +1 for the underflow bucket; everything past the last finite
    // bucket lands in the overflow bucket.
    return std::min(index + 1, bucket_count - 1);
}

double
LatencyHistogram::bucketLow(std::size_t index)
{
    if (index == 0)
        return 0.0;
    return min_bound
           * std::pow(10.0, static_cast<double>(index - 1)
                                / static_cast<double>(
                                    buckets_per_decade));
}

double
LatencyHistogram::bucketHigh(std::size_t index)
{
    if (index == 0)
        return min_bound;
    return min_bound
           * std::pow(10.0, static_cast<double>(index)
                                / static_cast<double>(
                                    buckets_per_decade));
}

double
LatencyHistogram::quantile(double q) const
{
    if (_count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The extremes are tracked exactly; report them exactly.
    if (q == 0.0)
        return _min;
    if (q == 1.0)
        return _max;
    // Target the same fractional rank the exact estimator uses, then
    // interpolate linearly inside the containing bucket.
    double rank = q * static_cast<double>(_count - 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bucket_count; ++i) {
        std::uint64_t in_bucket = _buckets[i];
        if (in_bucket == 0)
            continue;
        double first = static_cast<double>(seen);
        double last = static_cast<double>(seen + in_bucket - 1);
        if (rank <= last) {
            double lo = bucketLow(i);
            double hi = bucketHigh(i);
            double frac = in_bucket > 1
                              ? (rank - first)
                                    / static_cast<double>(in_bucket - 1)
                              : 0.5;
            double value = lo + (hi - lo) * frac;
            return std::clamp(value, _min, _max);
        }
        seen += in_bucket;
    }
    return _max; // unreachable with consistent counters
}

LatencySummary
LatencyHistogram::summarize() const
{
    LatencySummary digest;
    if (_count == 0)
        return digest;
    digest.count = static_cast<std::size_t>(_count);
    digest.mean = _sum / static_cast<double>(_count);
    digest.p50 = quantile(0.50);
    digest.p95 = quantile(0.95);
    digest.p99 = quantile(0.99);
    digest.max = _max;
    return digest;
}

void
LatencyHistogram::clear()
{
    *this = LatencyHistogram{};
}

double
speedup(double baseline_sec, double measured_sec)
{
    if (measured_sec <= 0.0)
        return 0.0;
    return baseline_sec / measured_sec;
}

double
percentDelta(double value, double reference)
{
    if (reference <= 0.0)
        return 0.0;
    return (value - reference) / reference * 100.0;
}

} // namespace dsearch
