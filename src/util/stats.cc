#include "util/stats.hh"

#include <algorithm>
#include <cmath>

namespace dsearch {

void
RunningStat::push(double x)
{
    ++_count;
    _sum += x;
    if (_count == 1) {
        _mean = x;
        _m2 = 0.0;
        _min = x;
        _max = x;
        return;
    }
    double delta = x - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (x - _mean);
    if (x < _min)
        _min = x;
    if (x > _max)
        _max = x;
}

double
RunningStat::variance() const
{
    if (_count < 2)
        return 0.0;
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::clear()
{
    *this = RunningStat{};
}

Summary
summarize(const std::vector<double> &sample)
{
    RunningStat stat;
    for (double x : sample)
        stat.push(x);
    Summary s;
    s.count = stat.count();
    s.mean = stat.mean();
    s.stddev = stat.stddev();
    s.min = stat.min();
    s.max = stat.max();
    return s;
}

double
quantileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double rank = q * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

LatencySummary
summarizeLatencies(std::vector<double> sample)
{
    LatencySummary digest;
    if (sample.empty())
        return digest;
    std::sort(sample.begin(), sample.end());
    RunningStat stat;
    for (double x : sample)
        stat.push(x);
    digest.count = stat.count();
    digest.mean = stat.mean();
    digest.p50 = quantileSorted(sample, 0.50);
    digest.p95 = quantileSorted(sample, 0.95);
    digest.p99 = quantileSorted(sample, 0.99);
    digest.max = stat.max();
    return digest;
}

double
speedup(double baseline_sec, double measured_sec)
{
    if (measured_sec <= 0.0)
        return 0.0;
    return baseline_sec / measured_sec;
}

double
percentDelta(double value, double reference)
{
    if (reference <= 0.0)
        return 0.0;
    return (value - reference) / reference * 100.0;
}

} // namespace dsearch
