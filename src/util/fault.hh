/**
 * @file
 * Deterministic fault injection for resilience testing.
 *
 * FlakyFs (fs/flaky_fs.hh) proved the pattern for one subsystem: make
 * failures deterministic and countable, and resilience becomes a unit
 * test instead of an ops anecdote. This module generalizes it to the
 * whole library. Code that can fail in production declares a named
 * *failure point*:
 *
 *     if (faultFires("disk_fs.read"))
 *         return false;                  // behave as if the read failed
 *
 * and tests arm that point with a FaultSpec — fire the next N hits,
 * fire every hit after a delay, or fire a seeded pseudo-random
 * fraction of hits — then assert the caller recovered. Points fire
 * only while armed; an unarmed program takes one relaxed atomic load
 * per hit (the registry is globally off until the first arm), so
 * shipping the checks costs nothing measurable. Builds that must not
 * carry them at all can define DSEARCH_NO_FAULT_INJECTION, which
 * compiles every faultFires() into a constant false.
 *
 * Determinism: a point's firing sequence is a pure function of its
 * FaultSpec and its hit ordinal — never of wall clock or global RNG —
 * so a failing fuzz case replays exactly. Counters (hits, fires) are
 * readable per point for exact assertions, FlakyFs-style.
 *
 * Wired-in points (grep for faultFires to enumerate):
 *   disk_fs.read                 DiskFs::readFile fails
 *   serialize.save.stream        saveSnapshot/saveIndex stream write fails
 *   serialize.load.stream        loadSnapshot/loadIndex stream read fails
 *   snapshot_store.crash_mid_write    save "crashes" with a partial temp
 *   snapshot_store.crash_before_rename save "crashes" after the temp
 *                                      is complete but before publish
 *   snapshot_store.crash_before_manifest save "crashes" after rename,
 *                                      before the manifest points at it
 *   query_server.execute         a worker throws mid-query
 *   shard.dispatch               the broker cannot reach one shard
 *                                (the sub-query is never scattered)
 *   shard.merge                  one shard's partial result is lost
 *                                at gather time (dropped, not torn)
 *   live.scan                    a live-index corpus walk aborts
 *   live.delta_build             a delta extraction aborts (no commit)
 *   live.merge                   one compaction attempt fails
 *   live.publish                 one server hot-swap is skipped
 *
 * Thread safety: arming/disarming takes a mutex; the hit path is a
 * lock-free check while nothing is armed and a short critical section
 * per armed-point hit (fault runs are tests, not benchmarks).
 */

#ifndef DSEARCH_UTIL_FAULT_HH
#define DSEARCH_UTIL_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsearch {

/** How an armed failure point decides to fire; see armFault(). */
struct FaultSpec
{
    /**
     * Hits that pass through unharmed before the point starts
     * firing (0 = eligible immediately). Models "the Nth write
     * fails" and transient-then-healthy sequences.
     */
    std::uint64_t skip = 0;

    /**
     * Maximum times the point fires before going dormant;
     * UINT64_MAX = keep firing while armed.
     */
    std::uint64_t fire_limit = UINT64_MAX;

    /**
     * Probability that an eligible hit fires (1.0 = every hit).
     * Drawn from a seeded per-point stream, so the fire pattern is
     * reproducible and independent of other points.
     */
    double probability = 1.0;

    /** Seed of the per-point probability stream. */
    std::uint64_t seed = 0xfa017;
};

/**
 * Arm @p point with @p spec, replacing any previous arming (counters
 * reset). The point fires according to the spec until disarmed.
 */
void armFault(const std::string &point, FaultSpec spec = {});

/** Disarm @p point; its faultFires() returns false again. */
void disarmFault(const std::string &point);

/** Disarm every point (test teardown). */
void disarmAllFaults();

/**
 * The failure-point probe: @return true when the armed spec says this
 * hit fails. Unarmed points (and unarmed programs) return false.
 */
#ifndef DSEARCH_NO_FAULT_INJECTION
bool faultFires(const char *point);
#else
inline bool faultFires(const char *) { return false; }
#endif

/** @return Times @p point was evaluated while armed. */
std::uint64_t faultHits(const std::string &point);

/** @return Times @p point actually fired while armed. */
std::uint64_t faultFireCount(const std::string &point);

/** @return Names of currently armed points (diagnostics). */
std::vector<std::string> armedFaults();

/**
 * RAII arming for test scopes: arms in the constructor, disarms in
 * the destructor, so a failing assertion cannot leak an armed fault
 * into later tests.
 */
class ScopedFault
{
  public:
    explicit ScopedFault(std::string point, FaultSpec spec = {})
        : _point(std::move(point))
    {
        armFault(_point, spec);
    }

    ~ScopedFault() { disarmFault(_point); }

    ScopedFault(const ScopedFault &) = delete;
    ScopedFault &operator=(const ScopedFault &) = delete;

    /** @return Times the point was evaluated while armed. */
    std::uint64_t hits() const { return faultHits(_point); }

    /** @return Times the point fired while armed. */
    std::uint64_t fires() const { return faultFireCount(_point); }

  private:
    std::string _point;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_FAULT_HH
