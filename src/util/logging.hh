/**
 * @file
 * Status and error reporting for the dsearch library.
 *
 * Follows the gem5 convention: panic() marks internal bugs (conditions
 * that must never happen regardless of user input) and aborts; fatal()
 * marks unrecoverable user errors (bad configuration, missing files)
 * and exits with status 1; warn() and inform() report conditions the
 * user should know about without stopping the program.
 *
 * All non-fatal messages flow through a replaceable sink so tests can
 * capture them.
 */

#ifndef DSEARCH_UTIL_LOGGING_HH
#define DSEARCH_UTIL_LOGGING_HH

#include <functional>
#include <string>

namespace dsearch {

/** Severity of a log message, ordered from most to least severe. */
enum class LogLevel {
    Silent, ///< Suppress everything below panic/fatal.
    Error,  ///< Only error text from panic/fatal paths.
    Warn,   ///< Warnings and above.
    Info    ///< Everything, including inform().
};

/**
 * Set the global verbosity threshold.
 *
 * @param level Messages less severe than this are dropped.
 */
void setLogLevel(LogLevel level);

/** @return The current global verbosity threshold. */
LogLevel logLevel();

/**
 * @return True when a message of @p level would reach the sink.
 *
 * Lets hot paths skip building a message that emit() would drop.
 */
bool wouldLog(LogLevel level);

/**
 * Replaceable destination for warn()/inform() messages.
 *
 * The sink receives the severity and the fully formatted message
 * (without trailing newline).
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Install a log sink, returning the previous one.
 *
 * Passing an empty function restores the default stderr sink. Intended
 * for tests that assert on emitted warnings.
 */
LogSink setLogSink(LogSink sink);

/**
 * Report an internal invariant violation and abort.
 *
 * Use for conditions that indicate a bug in dsearch itself, never for
 * bad user input.
 */
[[noreturn]] void panic(const std::string &msg);

/**
 * Report an unrecoverable user-caused error and exit(1).
 *
 * Use for bad configuration, unreadable inputs, and similar conditions
 * that are the caller's fault rather than a library bug.
 */
[[noreturn]] void fatal(const std::string &msg);

/** Report a suspicious but survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

} // namespace dsearch

#endif // DSEARCH_UTIL_LOGGING_HH
