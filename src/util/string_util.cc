#include "util/string_util.hh"

#include <cstdint>
#include <cstdio>

namespace dsearch {

std::string
toLowerAscii(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s)
        out.push_back(toLowerAscii(c));
    return out;
}

std::string_view
trim(std::string_view s)
{
    auto is_space = [](char c) {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    };
    std::size_t begin = 0;
    std::size_t end = s.size();
    while (begin < end && is_space(s[begin]))
        ++begin;
    while (end > begin && is_space(s[end - 1]))
        --end;
    return s.substr(begin, end - begin);
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string_view::npos)
            pos = s.size();
        if (pos > start)
            fields.emplace_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return fields;
}

std::string
formatBytes(std::uint64_t bytes)
{
    static const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double value = static_cast<double>(bytes);
    int unit = 0;
    while (value >= 1024.0 && unit < 4) {
        value /= 1024.0;
        ++unit;
    }
    char buf[64];
    if (unit == 0)
        std::snprintf(buf, sizeof(buf), "%.0f %s", value, units[unit]);
    else
        std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
    return buf;
}

std::string
formatDuration(double seconds)
{
    char buf[64];
    if (seconds >= 1.0)
        std::snprintf(buf, sizeof(buf), "%.1f s", seconds);
    else if (seconds >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
    else
        std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
    return buf;
}

std::string
formatDouble(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

} // namespace dsearch
