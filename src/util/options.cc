#include "util/options.hh"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/logging.hh"

namespace dsearch {

OptionParser::OptionParser(std::string program, std::string description)
    : _program(std::move(program)), _description(std::move(description))
{
}

void
OptionParser::addFlag(const std::string &name, const std::string &help,
                      bool default_value)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.kind = Kind::Flag;
    opt.bool_value = default_value;
    _options.push_back(std::move(opt));
}

void
OptionParser::addInt(const std::string &name, const std::string &help,
                     std::int64_t default_value)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.kind = Kind::Int;
    opt.int_value = default_value;
    _options.push_back(std::move(opt));
}

void
OptionParser::addDouble(const std::string &name, const std::string &help,
                        double default_value)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.kind = Kind::Double;
    opt.double_value = default_value;
    _options.push_back(std::move(opt));
}

void
OptionParser::addString(const std::string &name, const std::string &help,
                        std::string default_value)
{
    Option opt;
    opt.name = name;
    opt.help = help;
    opt.kind = Kind::String;
    opt.string_value = std::move(default_value);
    _options.push_back(std::move(opt));
}

OptionParser::Option *
OptionParser::findOption(const std::string &name)
{
    for (Option &opt : _options)
        if (opt.name == name)
            return &opt;
    return nullptr;
}

const OptionParser::Option &
OptionParser::requireOption(const std::string &name, Kind kind) const
{
    for (const Option &opt : _options) {
        if (opt.name == name) {
            if (opt.kind != kind)
                panic("option --" + name + " queried with wrong type");
            return opt;
        }
    }
    panic("option --" + name + " was never registered");
}

void
OptionParser::assign(Option &opt, const std::string &text)
{
    char *end = nullptr;
    switch (opt.kind) {
      case Kind::Flag:
        panic("flag --" + opt.name + " does not take a value");
      case Kind::Int:
        opt.int_value = std::strtoll(text.c_str(), &end, 10);
        if (end == nullptr || *end != '\0')
            fatal("option --" + opt.name + " expects an integer, got '"
                  + text + "'");
        break;
      case Kind::Double:
        opt.double_value = std::strtod(text.c_str(), &end);
        if (end == nullptr || *end != '\0')
            fatal("option --" + opt.name + " expects a number, got '"
                  + text + "'");
        break;
      case Kind::String:
        opt.string_value = text;
        break;
    }
}

void
OptionParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(helpText().c_str(), stdout);
            std::exit(0);
        }
        if (arg.rfind("--", 0) != 0) {
            _positional.push_back(std::move(arg));
            continue;
        }
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        std::size_t eq = name.find('=');
        if (eq != std::string::npos) {
            value = name.substr(eq + 1);
            name = name.substr(0, eq);
            has_value = true;
        }
        Option *opt = findOption(name);
        if (opt == nullptr)
            fatal("unknown option --" + name + " (try --help)");
        if (opt->kind == Kind::Flag) {
            if (has_value)
                fatal("flag --" + name + " does not take a value");
            opt->bool_value = true;
            continue;
        }
        if (!has_value) {
            if (i + 1 >= argc)
                fatal("option --" + name + " needs a value");
            value = argv[++i];
        }
        assign(*opt, value);
    }
}

bool
OptionParser::flag(const std::string &name) const
{
    return requireOption(name, Kind::Flag).bool_value;
}

std::int64_t
OptionParser::intValue(const std::string &name) const
{
    return requireOption(name, Kind::Int).int_value;
}

double
OptionParser::doubleValue(const std::string &name) const
{
    return requireOption(name, Kind::Double).double_value;
}

const std::string &
OptionParser::stringValue(const std::string &name) const
{
    return requireOption(name, Kind::String).string_value;
}

const std::vector<std::string> &
OptionParser::positional() const
{
    return _positional;
}

std::string
OptionParser::helpText() const
{
    std::ostringstream oss;
    oss << _program << " - " << _description << "\n\nOptions:\n";
    for (const Option &opt : _options) {
        oss << "  --" << opt.name;
        switch (opt.kind) {
          case Kind::Flag:
            oss << " (flag, default "
                << (opt.bool_value ? "on" : "off") << ")";
            break;
          case Kind::Int:
            oss << " <int, default " << opt.int_value << ">";
            break;
          case Kind::Double:
            oss << " <num, default " << opt.double_value << ">";
            break;
          case Kind::String:
            oss << " <str, default '" << opt.string_value << "'>";
            break;
        }
        oss << "\n      " << opt.help << "\n";
    }
    oss << "  --help\n      Show this message.\n";
    return oss.str();
}

} // namespace dsearch
