/**
 * @file
 * Small string helpers shared across the library: ASCII case folding
 * for the tokenizer, splitting/trimming for the query parser and CLI,
 * and human-readable byte/duration formatting for reports.
 */

#ifndef DSEARCH_UTIL_STRING_UTIL_HH
#define DSEARCH_UTIL_STRING_UTIL_HH

#include <string>
#include <string_view>
#include <vector>

namespace dsearch {

/** @return True for ASCII 'a'-'z' or 'A'-'Z'. */
constexpr bool
isAsciiAlpha(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/** @return True for ASCII '0'-'9'. */
constexpr bool
isAsciiDigit(char c)
{
    return c >= '0' && c <= '9';
}

/** @return The lower-case form of an ASCII letter, else @p c. */
constexpr char
toLowerAscii(char c)
{
    return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/** Lower-case a whole string (ASCII only, locale independent). */
std::string toLowerAscii(std::string_view s);

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/**
 * Split @p s on @p sep, omitting empty fields.
 *
 * @param s   Input string.
 * @param sep Separator character.
 */
std::vector<std::string> split(std::string_view s, char sep);

/** Format a byte count as "869.0 MiB"-style text. */
std::string formatBytes(std::uint64_t bytes);

/** Format a duration in seconds as "46.7 s" / "12.3 ms" text. */
std::string formatDuration(double seconds);

/** Format a double with fixed precision (no locale surprises). */
std::string formatDouble(double value, int precision);

} // namespace dsearch

#endif // DSEARCH_UTIL_STRING_UTIL_HH
