/**
 * @file
 * Hash set built on the open-addressing HashMap.
 *
 * The paper's term extractors eliminate per-file duplicate terms with
 * a Boost hash set (FNV1 hashing); this adapter provides the same role
 * on top of dsearch's own table.
 */

#ifndef DSEARCH_UTIL_HASH_SET_HH
#define DSEARCH_UTIL_HASH_SET_HH

#include <cstddef>

#include "util/hash_map.hh"

namespace dsearch {

/**
 * Unordered set of keys with FNV hashing.
 *
 * @tparam Key  Element type (default-constructible, movable).
 * @tparam Hash Hash functor; defaults to FnvHash.
 */
template <typename Key, typename Hash = FnvHash<Key>>
class HashSet
{
  public:
    /** Zero-size mapped type for the underlying map slots. */
    struct Empty {};

    using map_type = HashMap<Key, Empty, Hash>;

    HashSet() = default;

    /** Construct with room for @p expected elements. */
    explicit HashSet(std::size_t expected) : _map(expected) {}

    /** @return Number of elements stored. */
    std::size_t size() const { return _map.size(); }

    /** @return True when the set is empty. */
    bool empty() const { return _map.empty(); }

    /** Remove all elements, keeping the allocated table. */
    void clear() { _map.clear(); }

    /** Ensure capacity for @p expected elements without rehashing. */
    void reserve(std::size_t expected) { _map.reserve(expected); }

    /**
     * Insert @p key. Heterogeneous: a string set accepts a
     * string_view and materializes a Key only when the element is new.
     *
     * @return True if the key was new.
     */
    template <typename K>
    bool
    insert(const K &key)
    {
        return _map.insert(key, Empty{});
    }

    /**
     * Insert with a precomputed hash (must equal the functor's hash of
     * @p key).
     *
     * @return True if the key was new.
     */
    template <typename K>
    bool
    insertHashed(std::size_t hash, const K &key)
    {
        return _map.insertHashed(hash, key, Empty{});
    }

    /** @return True when @p key is present (heterogeneous). */
    template <typename K>
    bool contains(const K &key) const { return _map.contains(key); }

    /**
     * Remove @p key.
     *
     * @return True if an element was removed.
     */
    template <typename K>
    bool erase(const K &key) { return _map.erase(key); }

    /**
     * Iterator over elements; dereferences to the underlying map slot
     * whose `key` member is the element.
     */
    using const_iterator = typename map_type::const_iterator;

    const_iterator begin() const { return _map.begin(); }
    const_iterator end() const { return _map.end(); }

  private:
    map_type _map;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_HASH_SET_HH
