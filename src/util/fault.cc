#include "util/fault.hh"

#include <atomic>
#include <mutex>
#include <unordered_map>

#include "util/rng.hh"

namespace dsearch {

namespace {

/** One armed point: its spec plus deterministic firing state. */
struct ArmedPoint
{
    FaultSpec spec;
    Rng rng;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;

    explicit ArmedPoint(FaultSpec s) : spec(s), rng(s.seed) {}

    /** Advance one hit; @return true when this hit fires. */
    bool
    step()
    {
        ++hits;
        if (hits <= spec.skip)
            return false;
        if (fires >= spec.fire_limit)
            return false;
        // Draw even for probability 1.0 so the stream position is a
        // pure function of the eligible-hit ordinal.
        if (rng.nextDouble() >= spec.probability)
            return false;
        ++fires;
        return true;
    }
};

struct Registry
{
    std::mutex mutex;
    std::unordered_map<std::string, ArmedPoint> points;
};

/** Leaked singleton: usable from static destructors, never torn down. */
Registry &
registry()
{
    static Registry *instance = new Registry;
    return *instance;
}

/**
 * Armed-point count, readable without the mutex: the zero check is
 * the only cost fault points impose on an unarmed program.
 */
std::atomic<std::size_t> g_armed{0};

} // namespace

void
armFault(const std::string &point, FaultSpec spec)
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    reg.points.erase(point);
    reg.points.emplace(point, ArmedPoint(spec));
    g_armed.store(reg.points.size(), std::memory_order_release);
}

void
disarmFault(const std::string &point)
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    reg.points.erase(point);
    g_armed.store(reg.points.size(), std::memory_order_release);
}

void
disarmAllFaults()
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    reg.points.clear();
    g_armed.store(0, std::memory_order_release);
}

// The probe itself compiles away under DSEARCH_NO_FAULT_INJECTION
// (the header supplies a constant-false inline); arming and counter
// reads stay link-able so test binaries build in either mode.
#ifndef DSEARCH_NO_FAULT_INJECTION
bool
faultFires(const char *point)
{
    if (g_armed.load(std::memory_order_acquire) == 0)
        return false;
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    auto it = reg.points.find(point);
    if (it == reg.points.end())
        return false;
    return it->second.step();
}
#endif

std::uint64_t
faultHits(const std::string &point)
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    auto it = reg.points.find(point);
    return it == reg.points.end() ? 0 : it->second.hits;
}

std::uint64_t
faultFireCount(const std::string &point)
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    auto it = reg.points.find(point);
    return it == reg.points.end() ? 0 : it->second.fires;
}

std::vector<std::string>
armedFaults()
{
    Registry &reg = registry();
    std::scoped_lock lock(reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.points.size());
    for (const auto &[name, state] : reg.points)
        names.push_back(name);
    return names;
}

} // namespace dsearch
