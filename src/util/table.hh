/**
 * @file
 * ASCII table renderer.
 *
 * Every benchmark harness prints its results in the same row/column
 * layout as the paper's tables, so reproduction output can be compared
 * against the publication side by side.
 */

#ifndef DSEARCH_UTIL_TABLE_HH
#define DSEARCH_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace dsearch {

/** Horizontal alignment of a table column. */
enum class Align { Left, Right };

/**
 * Simple monospace table with a title, column headers and string
 * cells. Column widths are computed from content at render time.
 */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title);

    /**
     * Define the columns.
     *
     * Must be called before addRow(); resets any existing rows.
     *
     * @param headers One header per column.
     */
    void setColumns(std::vector<std::string> headers);

    /**
     * Set per-column alignment (default: first column left, remaining
     * columns right — the layout used for all paper-style tables).
     */
    void setAlignments(std::vector<Align> alignments);

    /**
     * Append one row.
     *
     * @param cells Must match the column count.
     */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** @return Number of data rows (separators excluded). */
    std::size_t rowCount() const;

    /** Render to a stream with box-drawing ASCII. */
    void render(std::ostream &os) const;

    /** Render to a string (convenience for tests). */
    std::string toString() const;

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string _title;
    std::vector<std::string> _headers;
    std::vector<Align> _aligns;
    std::vector<Row> _rows;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_TABLE_HH
