#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace dsearch {

namespace {

/** Guards the sink and level; log calls may race across threads. */
std::mutex log_mutex;
LogLevel log_level = LogLevel::Info;
LogSink log_sink;

void
emitDefault(LogLevel level, const std::string &msg)
{
    const char *tag = level == LogLevel::Warn ? "warn" : "info";
    std::fprintf(stderr, "%s: %s\n", tag, msg.c_str());
}

void
emit(LogLevel level, const std::string &msg)
{
    LogSink sink;
    {
        std::scoped_lock lock(log_mutex);
        if (static_cast<int>(level) > static_cast<int>(log_level))
            return;
        sink = log_sink;
    }
    if (sink)
        sink(level, msg);
    else
        emitDefault(level, msg);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    std::scoped_lock lock(log_mutex);
    log_level = level;
}

LogLevel
logLevel()
{
    std::scoped_lock lock(log_mutex);
    return log_level;
}

bool
wouldLog(LogLevel level)
{
    std::scoped_lock lock(log_mutex);
    return static_cast<int>(level) <= static_cast<int>(log_level);
}

LogSink
setLogSink(LogSink sink)
{
    std::scoped_lock lock(log_mutex);
    LogSink old = std::move(log_sink);
    log_sink = std::move(sink);
    return old;
}

void
panic(const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
fatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string &msg)
{
    emit(LogLevel::Warn, msg);
}

void
inform(const std::string &msg)
{
    emit(LogLevel::Info, msg);
}

} // namespace dsearch
