#include "util/table.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace dsearch {

Table::Table(std::string title) : _title(std::move(title)) {}

void
Table::setColumns(std::vector<std::string> headers)
{
    _headers = std::move(headers);
    _aligns.assign(_headers.size(), Align::Right);
    if (!_aligns.empty())
        _aligns[0] = Align::Left;
    _rows.clear();
}

void
Table::setAlignments(std::vector<Align> alignments)
{
    if (alignments.size() != _headers.size())
        panic("Table::setAlignments: alignment/column count mismatch");
    _aligns = std::move(alignments);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        panic("Table::addRow: cell/column count mismatch");
    _rows.push_back(Row{std::move(cells), false});
}

void
Table::addSeparator()
{
    _rows.push_back(Row{{}, true});
}

std::size_t
Table::rowCount() const
{
    std::size_t n = 0;
    for (const Row &row : _rows)
        if (!row.separator)
            ++n;
    return n;
}

namespace {

void
renderRule(std::ostream &os, const std::vector<std::size_t> &widths)
{
    os << '+';
    for (std::size_t w : widths)
        os << std::string(w + 2, '-') << '+';
    os << '\n';
}

void
renderCells(std::ostream &os, const std::vector<std::string> &cells,
            const std::vector<std::size_t> &widths,
            const std::vector<Align> &aligns)
{
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string &cell = i < cells.size() ? cells[i] : "";
        std::size_t pad = widths[i] - cell.size();
        os << ' ';
        if (aligns[i] == Align::Right)
            os << std::string(pad, ' ') << cell;
        else
            os << cell << std::string(pad, ' ');
        os << " |";
    }
    os << '\n';
}

} // namespace

void
Table::render(std::ostream &os) const
{
    if (_headers.empty())
        panic("Table::render: no columns defined");

    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t i = 0; i < _headers.size(); ++i)
        widths[i] = _headers[i].size();
    for (const Row &row : _rows) {
        if (row.separator)
            continue;
        for (std::size_t i = 0; i < row.cells.size(); ++i)
            widths[i] = std::max(widths[i], row.cells[i].size());
    }

    if (!_title.empty())
        os << _title << '\n';
    renderRule(os, widths);
    renderCells(os, _headers, widths, _aligns);
    renderRule(os, widths);
    for (const Row &row : _rows) {
        if (row.separator)
            renderRule(os, widths);
        else
            renderCells(os, row.cells, widths, _aligns);
    }
    renderRule(os, widths);
}

std::string
Table::toString() const
{
    std::ostringstream oss;
    render(oss);
    return oss.str();
}

} // namespace dsearch
