/**
 * @file
 * Minimal command-line option parser for the example programs and
 * benchmark harnesses.
 *
 * Supports `--name value`, `--name=value`, boolean flags (`--verbose`)
 * and `--help`. Unknown options are fatal (user error), so typos never
 * silently fall back to defaults.
 */

#ifndef DSEARCH_UTIL_OPTIONS_HH
#define DSEARCH_UTIL_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsearch {

/** Declarative command-line parser; register options, then parse(). */
class OptionParser
{
  public:
    /**
     * @param program     Program name for the usage line.
     * @param description One-line summary printed by --help.
     */
    OptionParser(std::string program, std::string description);

    /** Register a boolean flag (present => true). */
    void addFlag(const std::string &name, const std::string &help,
                 bool default_value = false);

    /** Register an integer option. */
    void addInt(const std::string &name, const std::string &help,
                std::int64_t default_value);

    /** Register a floating-point option. */
    void addDouble(const std::string &name, const std::string &help,
                   double default_value);

    /** Register a string option. */
    void addString(const std::string &name, const std::string &help,
                   std::string default_value);

    /**
     * Parse the command line.
     *
     * Exits with a usage message on `--help`; calls fatal() on unknown
     * or malformed options. Non-option arguments are collected into
     * positional().
     */
    void parse(int argc, const char *const *argv);

    /** @return Value of a registered flag. */
    bool flag(const std::string &name) const;

    /** @return Value of a registered integer option. */
    std::int64_t intValue(const std::string &name) const;

    /** @return Value of a registered double option. */
    double doubleValue(const std::string &name) const;

    /** @return Value of a registered string option. */
    const std::string &stringValue(const std::string &name) const;

    /** @return Positional (non-option) arguments in order. */
    const std::vector<std::string> &positional() const;

    /** @return The generated --help text. */
    std::string helpText() const;

  private:
    enum class Kind { Flag, Int, Double, String };

    struct Option
    {
        std::string name;
        std::string help;
        Kind kind;
        bool bool_value = false;
        std::int64_t int_value = 0;
        double double_value = 0.0;
        std::string string_value;
    };

    Option *findOption(const std::string &name);
    const Option &requireOption(const std::string &name,
                                Kind kind) const;
    void assign(Option &opt, const std::string &text);

    std::string _program;
    std::string _description;
    std::vector<Option> _options;
    std::vector<std::string> _positional;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_OPTIONS_HH
