/**
 * @file
 * Open-addressing hash map used for the inverted index.
 *
 * The paper implements its index with the Boost hash map and the FNV1
 * hash function. To keep the reproduction self-contained this is a
 * from-scratch open-addressing table: power-of-two capacity, linear
 * probing, and backward-shift deletion (no tombstones), with FnvHash
 * as the default hash functor.
 *
 * Hash caching: every occupied slot stores the full hash of its key.
 * Probes compare the cached hash before touching the key, so a miss
 * along a probe chain costs one integer compare instead of a string
 * compare; rehashing and backward-shift deletion re-place slots by
 * their cached hash and never invoke the hash functor again. The
 * invariant is slot.hash == Hash{}(slot.key) for every occupied slot.
 *
 * Heterogeneous lookup: the lookup methods are templated over the key
 * argument, so a HashMap<std::string, V> can be probed with a
 * std::string_view (or char literal) without materializing a
 * std::string. The *Hashed variants additionally take a precomputed
 * hash, letting callers that already know a term's hash (TermBlock
 * spans, merge) skip hashing entirely. A std::string key is only
 * constructed when a new slot is actually placed.
 *
 * Requirements: Key and Value must be default-constructible and
 * movable; a heterogeneous lookup type K must hash identically to the
 * Key it equals (FnvHash guarantees this for string-likes). Iterators
 * are invalidated by insert(), erase() and rehashing. The container is
 * not thread safe; concurrent use is coordinated by the index layer
 * (see index/shared_index.hh).
 */

#ifndef DSEARCH_UTIL_HASH_MAP_HH
#define DSEARCH_UTIL_HASH_MAP_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "util/fnv_hash.hh"
#include "util/logging.hh"

namespace dsearch {

/**
 * Hash map with open addressing, linear probing and cached hashes.
 *
 * @tparam Key   Key type (default-constructible, movable, equality
 *               comparable).
 * @tparam Value Mapped type (default-constructible, movable).
 * @tparam Hash  Hash functor; defaults to FNV-1a via FnvHash.
 */
template <typename Key, typename Value, typename Hash = FnvHash<Key>>
class HashMap
{
  public:
    /** One table slot; exposed (read-only key) through iterators. */
    struct Slot
    {
        Key key{};
        Value value{};
        std::size_t hash = 0; ///< Cached Hash{}(key) while occupied.
        bool occupied = false;
    };

    /** Minimum non-empty table size; always a power of two. */
    static constexpr std::size_t minCapacity = 16;

    HashMap() = default;

    /**
     * Construct with room for at least @p expected elements without
     * rehashing.
     */
    explicit
    HashMap(std::size_t expected)
    {
        reserve(expected);
    }

    HashMap(const HashMap &) = default;
    HashMap &operator=(const HashMap &) = default;

    // Explicit moves: the defaulted ones would move _slots but *copy*
    // _size, leaving the moved-from map claiming its old element
    // count over zero slots. Moved-from must read as empty.
    HashMap(HashMap &&other) noexcept
        : _slots(std::move(other._slots)),
          _size(std::exchange(other._size, 0))
    {
        other._slots.clear();
    }

    HashMap &
    operator=(HashMap &&other) noexcept
    {
        _slots = std::move(other._slots);
        _size = std::exchange(other._size, 0);
        other._slots.clear();
        return *this;
    }

    /** @return Number of elements stored. */
    std::size_t size() const { return _size; }

    /** @return True when the map holds no elements. */
    bool empty() const { return _size == 0; }

    /** @return Current number of slots (0 until first insert). */
    std::size_t capacity() const { return _slots.size(); }

    /** @return Occupied fraction of the table, 0 when empty. */
    double
    loadFactor() const
    {
        return _slots.empty()
            ? 0.0
            : static_cast<double>(_size)
                  / static_cast<double>(_slots.size());
    }

    /** Remove all elements, keeping the allocated table. */
    void
    clear()
    {
        for (Slot &slot : _slots)
            slot = Slot{};
        _size = 0;
    }

    /**
     * Ensure capacity for @p expected elements without rehashing.
     */
    void
    reserve(std::size_t expected)
    {
        std::size_t needed = minCapacity;
        while (needed * maxLoadNum < expected * maxLoadDen)
            needed <<= 1;
        if (needed > _slots.size())
            rehash(needed);
    }

    /**
     * Insert a key/value pair if the key is absent. Heterogeneous: a
     * Key is materialized only when the pair is actually inserted.
     *
     * @return True if inserted, false if the key already existed (the
     *         stored value is left untouched).
     */
    template <typename K>
    bool
    insert(const K &key, Value value)
    {
        return insertHashed(_hash(key), key, std::move(value));
    }

    /**
     * Insert with a precomputed hash; @p key may be any type a Key is
     * constructible from (a Key is materialized only on insertion).
     *
     * @return True if inserted, false if the key already existed.
     */
    template <typename K>
    bool
    insertHashed(std::size_t hash, const K &key, Value value)
    {
        growIfNeeded();
        std::size_t pos = probe(hash, key);
        if (_slots[pos].occupied)
            return false;
        place(pos, Key(key), std::move(value), hash);
        return true;
    }

    /** Overload taking ownership of an already-materialized key. */
    bool
    insertHashed(std::size_t hash, Key &&key, Value value)
    {
        growIfNeeded();
        std::size_t pos = probe(hash, key);
        if (_slots[pos].occupied)
            return false;
        place(pos, std::move(key), std::move(value), hash);
        return true;
    }

    /**
     * Find or default-construct the value for @p key.
     *
     * Mirrors std::unordered_map::operator[].
     */
    Value &
    operator[](const Key &key)
    {
        return findOrEmplaceHashed(_hash(key), key);
    }

    /**
     * Hash-reusing operator[]: find or default-construct the value for
     * @p key, probing with the caller-supplied @p hash. The hot path of
     * Stage 3 — every en-bloc insert lands here with the hash the
     * extractor already computed.
     */
    template <typename K>
    Value &
    findOrEmplaceHashed(std::size_t hash, const K &key)
    {
        growIfNeeded();
        std::size_t pos = probe(hash, key);
        if (!_slots[pos].occupied)
            place(pos, Key(key), Value{}, hash);
        return _slots[pos].value;
    }

    /**
     * Look up @p key; heterogeneous (string_view probes a string map
     * without allocating).
     *
     * @return Pointer to the mapped value, or nullptr when absent.
     */
    template <typename K>
    Value *
    find(const K &key)
    {
        return findHashed(_hash(key), key);
    }

    /** Const overload of find(). */
    template <typename K>
    const Value *
    find(const K &key) const
    {
        return findHashed(_hash(key), key);
    }

    /** Lookup with a precomputed hash. */
    template <typename K>
    Value *
    findHashed(std::size_t hash, const K &key)
    {
        if (_slots.empty())
            return nullptr;
        std::size_t pos = probe(hash, key);
        return _slots[pos].occupied ? &_slots[pos].value : nullptr;
    }

    /** Const overload of findHashed(). */
    template <typename K>
    const Value *
    findHashed(std::size_t hash, const K &key) const
    {
        if (_slots.empty())
            return nullptr;
        std::size_t pos = probe(hash, key);
        return _slots[pos].occupied ? &_slots[pos].value : nullptr;
    }

    /** @return True when @p key is present (heterogeneous). */
    template <typename K>
    bool contains(const K &key) const { return find(key) != nullptr; }

    /**
     * Remove @p key using backward-shift deletion (heterogeneous).
     * Shifted entries are re-homed by their cached hash; no key is
     * ever re-hashed.
     *
     * @return True if an element was removed.
     */
    template <typename K>
    bool
    erase(const K &key)
    {
        if (_slots.empty())
            return false;
        std::size_t hole = probe(_hash(key), key);
        if (!_slots[hole].occupied)
            return false;

        // Shift the following probe-chain entries back over the hole
        // so lookups never need tombstones.
        std::size_t mask = _slots.size() - 1;
        std::size_t next = (hole + 1) & mask;
        while (_slots[next].occupied) {
            std::size_t home = _slots[next].hash & mask;
            // The entry can fill the hole iff its home bucket lies at
            // or before the hole along its probe path.
            if (((next - home) & mask) >= ((next - hole) & mask)) {
                _slots[hole] = std::move(_slots[next]);
                _slots[next] = Slot{};
                hole = next;
            }
            next = (next + 1) & mask;
        }
        _slots[hole] = Slot{};
        --_size;
        return true;
    }

    /**
     * Forward iterator over occupied slots.
     *
     * Dereferences to a Slot with a key that must not be modified.
     */
    template <bool Const>
    class IteratorImpl
    {
      public:
        using table_type =
            std::conditional_t<Const, const HashMap, HashMap>;
        using slot_type = std::conditional_t<Const, const Slot, Slot>;

        IteratorImpl(table_type *table, std::size_t pos)
            : _table(table), _pos(pos)
        {
            skipEmpty();
        }

        slot_type &operator*() const { return _table->_slots[_pos]; }
        slot_type *operator->() const { return &_table->_slots[_pos]; }

        IteratorImpl &
        operator++()
        {
            ++_pos;
            skipEmpty();
            return *this;
        }

        bool
        operator==(const IteratorImpl &other) const
        {
            return _table == other._table && _pos == other._pos;
        }

      private:
        void
        skipEmpty()
        {
            while (_pos < _table->_slots.size()
                   && !_table->_slots[_pos].occupied) {
                ++_pos;
            }
        }

        table_type *_table;
        std::size_t _pos;
    };

    using iterator = IteratorImpl<false>;
    using const_iterator = IteratorImpl<true>;

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, _slots.size()); }
    const_iterator begin() const { return const_iterator(this, 0); }
    const_iterator end() const
    {
        return const_iterator(this, _slots.size());
    }

  private:
    // Grow at 5/8 occupancy. Linear probing degrades sharply with
    // load: expected probes per insert are ~4 at 0.625 but ~32 at
    // 0.875, and the benchmark corpus pushes every table through its
    // growth threshold repeatedly.
    static constexpr std::size_t maxLoadNum = 5;
    static constexpr std::size_t maxLoadDen = 8;

    /**
     * Probe for a key with a known hash. Cached hashes are compared
     * before keys, so chain misses cost an integer compare.
     *
     * @return Index of the slot holding the key, or of the first empty
     *         slot on its probe path.
     */
    template <typename K>
    std::size_t
    probe(std::size_t hash, const K &key) const
    {
        std::size_t mask = _slots.size() - 1;
        std::size_t pos = hash & mask;
        while (_slots[pos].occupied
               && !(_slots[pos].hash == hash
                    && _slots[pos].key == key)) {
            pos = (pos + 1) & mask;
        }
        return pos;
    }

    void
    place(std::size_t pos, Key key, Value value, std::size_t hash)
    {
        _slots[pos].key = std::move(key);
        _slots[pos].value = std::move(value);
        _slots[pos].hash = hash;
        _slots[pos].occupied = true;
        ++_size;
    }

    void
    growIfNeeded()
    {
        if (_slots.empty()) {
            rehash(minCapacity);
            return;
        }
        if ((_size + 1) * maxLoadDen > _slots.size() * maxLoadNum)
            rehash(_slots.size() * 2);
    }

    /**
     * Resize the table, re-placing every slot by its cached hash. The
     * hash functor is never called: all stored keys are distinct, so
     * each slot goes to the first empty position on its probe path.
     */
    void
    rehash(std::size_t new_capacity)
    {
        if ((new_capacity & (new_capacity - 1)) != 0)
            panic("HashMap capacity must be a power of two");
        std::vector<Slot> old = std::move(_slots);
        _slots.assign(new_capacity, Slot{});
        std::size_t mask = new_capacity - 1;
        for (Slot &slot : old) {
            if (!slot.occupied)
                continue;
            std::size_t pos = slot.hash & mask;
            while (_slots[pos].occupied)
                pos = (pos + 1) & mask;
            _slots[pos] = std::move(slot);
        }
    }

    std::vector<Slot> _slots;
    std::size_t _size = 0;
    Hash _hash{};
};

} // namespace dsearch

#endif // DSEARCH_UTIL_HASH_MAP_HH
