/**
 * @file
 * Fowler/Noll/Vo hash functions.
 *
 * The paper's index uses a Boost hash map and hash set with the FNV1
 * hash function (reference [3] in the paper, Landon Curt Noll's page).
 * Both the historical FNV-1 and the recommended FNV-1a variants are
 * provided, in 32- and 64-bit widths, all constexpr.
 */

#ifndef DSEARCH_UTIL_FNV_HASH_HH
#define DSEARCH_UTIL_FNV_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace dsearch {

/// FNV offset basis, 32-bit.
inline constexpr std::uint32_t fnv32_offset = 0x811c9dc5u;
/// FNV prime, 32-bit.
inline constexpr std::uint32_t fnv32_prime = 0x01000193u;
/// FNV offset basis, 64-bit.
inline constexpr std::uint64_t fnv64_offset = 0xcbf29ce484222325ull;
/// FNV prime, 64-bit.
inline constexpr std::uint64_t fnv64_prime = 0x00000100000001b3ull;

/**
 * FNV-1 over a byte range (multiply, then xor), 32-bit.
 *
 * @param data Bytes to hash.
 * @param size Number of bytes.
 * @return 32-bit hash value.
 */
constexpr std::uint32_t
fnv1_32(const char *data, std::size_t size)
{
    std::uint32_t h = fnv32_offset;
    for (std::size_t i = 0; i < size; ++i) {
        h *= fnv32_prime;
        h ^= static_cast<std::uint8_t>(data[i]);
    }
    return h;
}

/** FNV-1a over a byte range (xor, then multiply), 32-bit. */
constexpr std::uint32_t
fnv1a_32(const char *data, std::size_t size)
{
    std::uint32_t h = fnv32_offset;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<std::uint8_t>(data[i]);
        h *= fnv32_prime;
    }
    return h;
}

/** FNV-1 over a byte range, 64-bit. */
constexpr std::uint64_t
fnv1_64(const char *data, std::size_t size)
{
    std::uint64_t h = fnv64_offset;
    for (std::size_t i = 0; i < size; ++i) {
        h *= fnv64_prime;
        h ^= static_cast<std::uint8_t>(data[i]);
    }
    return h;
}

/** FNV-1a over a byte range, 64-bit. */
constexpr std::uint64_t
fnv1a_64(const char *data, std::size_t size)
{
    std::uint64_t h = fnv64_offset;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<std::uint8_t>(data[i]);
        h *= fnv64_prime;
    }
    return h;
}

/** Convenience overloads for string views. */
constexpr std::uint32_t
fnv1_32(std::string_view s)
{
    return fnv1_32(s.data(), s.size());
}

constexpr std::uint32_t
fnv1a_32(std::string_view s)
{
    return fnv1a_32(s.data(), s.size());
}

constexpr std::uint64_t
fnv1_64(std::string_view s)
{
    return fnv1_64(s.data(), s.size());
}

constexpr std::uint64_t
fnv1a_64(std::string_view s)
{
    return fnv1a_64(s.data(), s.size());
}

/**
 * Default hash functor for dsearch containers.
 *
 * Strings hash their characters with FNV-1a (64-bit); trivially
 * copyable scalar types hash their object representation the same way,
 * which is what the original Boost-based index effectively did.
 *
 * The functor is transparent: anything convertible to string_view
 * (std::string, string_view, char literals) hashes to the same value,
 * so the containers can probe with a string_view without materializing
 * a std::string first.
 */
template <typename Key>
struct FnvHash
{
    using is_transparent = void;

    template <typename K = Key>
    std::size_t
    operator()(const K &key) const
    {
        if constexpr (std::is_convertible_v<const K &,
                                            std::string_view>) {
            return static_cast<std::size_t>(
                fnv1a_64(std::string_view(key)));
        } else {
            // Heterogeneous probes are only sound for string-likes,
            // which normalize through string_view; a scalar of a
            // different width would hash different bytes than the
            // stored Key and silently miss.
            static_assert(std::is_same_v<K, Key>,
                          "FnvHash: non-string keys must be probed "
                          "with the exact Key type");
            static_assert(std::is_trivially_copyable_v<K>,
                          "FnvHash requires string-like or trivially "
                          "copyable keys");
            char bytes[sizeof(K)] = {};
            __builtin_memcpy(bytes, &key, sizeof(K));
            return static_cast<std::size_t>(fnv1a_64(bytes, sizeof(K)));
        }
    }
};

} // namespace dsearch

#endif // DSEARCH_UTIL_FNV_HASH_HH
