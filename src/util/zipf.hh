/**
 * @file
 * Zipf-distributed sampling for synthetic vocabulary draws.
 *
 * Term frequencies in natural-language corpora follow a Zipfian law;
 * the synthetic corpus generator draws words from this distribution so
 * the index sees realistic term-duplication statistics (the property
 * the paper's en-bloc duplicate elimination depends on).
 */

#ifndef DSEARCH_UTIL_ZIPF_HH
#define DSEARCH_UTIL_ZIPF_HH

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"

namespace dsearch {

/**
 * Samples ranks 0..n-1 with probability proportional to
 * 1 / (rank + 1)^s.
 *
 * Implemented with an explicit CDF table and binary search: exact,
 * O(n) memory, O(log n) per draw — ample for vocabulary sizes up to a
 * few hundred thousand.
 */
class ZipfDistribution
{
  public:
    /**
     * @param n Number of ranks (must be >= 1).
     * @param s Skew exponent; 1.0 is classic Zipf, 0.0 is uniform.
     */
    ZipfDistribution(std::size_t n, double s = 1.0)
        : _cdf(n)
    {
        if (n == 0)
            panic("ZipfDistribution: n must be >= 1");
        double acc = 0.0;
        for (std::size_t rank = 0; rank < n; ++rank) {
            acc += 1.0 / std::pow(static_cast<double>(rank + 1), s);
            _cdf[rank] = acc;
        }
        const double total = acc;
        for (double &v : _cdf)
            v /= total;
        _cdf.back() = 1.0; // guard against rounding
    }

    /** @return Number of ranks. */
    std::size_t size() const { return _cdf.size(); }

    /** Draw one rank in [0, size()). */
    std::size_t
    sample(Rng &rng) const
    {
        double u = rng.nextDouble();
        // First index whose CDF value exceeds u.
        std::size_t lo = 0, hi = _cdf.size() - 1;
        while (lo < hi) {
            std::size_t mid = lo + (hi - lo) / 2;
            if (_cdf[mid] > u)
                hi = mid;
            else
                lo = mid + 1;
        }
        return lo;
    }

    /** Exact probability of @p rank. */
    double
    probability(std::size_t rank) const
    {
        if (rank >= _cdf.size())
            return 0.0;
        return rank == 0 ? _cdf[0] : _cdf[rank] - _cdf[rank - 1];
    }

  private:
    std::vector<double> _cdf;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_ZIPF_HH
