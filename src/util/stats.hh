/**
 * @file
 * Statistics helpers for repeated-run measurements.
 *
 * The paper reports, for each configuration, the average of five runs
 * plus a "variance" column expressing the speed-up delta relative to
 * Implementation 1 in percent. These helpers compute both.
 */

#ifndef DSEARCH_UTIL_STATS_HH
#define DSEARCH_UTIL_STATS_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsearch {

/**
 * Incremental mean/variance accumulator (Welford's algorithm).
 *
 * Numerically stable for long observation streams; used by the DES
 * resources and the benchmark harnesses alike.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void push(double x);

    /** @return Number of observations so far. */
    std::size_t count() const { return _count; }

    /** @return Arithmetic mean, 0 when empty. */
    double mean() const { return _mean; }

    /** @return Unbiased sample variance, 0 with < 2 observations. */
    double variance() const;

    /** @return Sample standard deviation. */
    double stddev() const;

    /** @return Smallest observation, 0 when empty. */
    double min() const { return _count ? _min : 0.0; }

    /** @return Largest observation, 0 when empty. */
    double max() const { return _count ? _max : 0.0; }

    /** @return Sum of all observations. */
    double sum() const { return _sum; }

    /** Reset to the empty state. */
    void clear();

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/** Five-number-style summary of a sample. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;
};

/** Summarize a sample in one pass. */
Summary summarize(const std::vector<double> &sample);

/**
 * Quantile of an ascending-sorted sample with linear interpolation
 * between ranks (the common "type 7" estimator).
 *
 * @param sorted Sample sorted ascending; must not be descending.
 * @param q      Quantile in [0, 1] (clamped).
 * @return Interpolated sample value; 0 when the sample is empty.
 */
double quantileSorted(const std::vector<double> &sorted, double q);

/**
 * The latency digest a query server reports: tail percentiles over
 * per-query observations.
 */
struct LatencySummary
{
    std::size_t count = 0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    double max = 0.0;
};

/**
 * Digest @p sample (unsorted; sorted internally, the argument is
 * taken by value so callers keep their observation log intact).
 */
LatencySummary summarizeLatencies(std::vector<double> sample);

/**
 * Fixed-size, mergeable latency histogram with log-spaced buckets.
 *
 * The exact-quantile path (quantileSorted over a raw sample vector)
 * is the right tool when one owner holds all observations — but a
 * rollup across servers (the sharded serving tier's broker over N
 * per-shard QueryServers) would have to concatenate every shard's
 * raw log on every stats() call. This histogram is the mergeable
 * alternative: 16 buckets per decade from 1 microsecond to 1000
 * seconds (145 fixed buckets, no allocation after construction), so
 * merge() is a counter add and quantile() is bounded-error — the
 * bucket ratio is 10^(1/16) ~= 1.155, so any reported quantile is
 * within ~16% of the exact sample value, plenty for tail monitoring.
 * min/max/mean are tracked exactly.
 *
 * Keep exact quantiles where the samples are already centralized;
 * use this where they are not.
 */
class LatencyHistogram
{
  public:
    /** Lower bound of the first finite bucket, seconds. */
    static constexpr double min_bound = 1e-6;

    /** Log-spaced resolution. */
    static constexpr std::size_t buckets_per_decade = 16;

    /** Decades covered: 1e-6 .. 1e+3 seconds. */
    static constexpr std::size_t decades = 9;

    /** Finite buckets plus one underflow and one overflow bucket. */
    static constexpr std::size_t bucket_count =
        buckets_per_decade * decades + 2;

    /** Record one observation (negative values clamp to 0). */
    void record(double seconds);

    /** Fold @p other into this histogram (counter adds). */
    void merge(const LatencyHistogram &other);

    /**
     * Quantile @p q in [0, 1] (clamped), interpolated linearly
     * within the containing bucket and clamped to the exact
     * [min, max] observed; q = 0 and q = 1 report the exact
     * extremes. 0 when empty.
     */
    double quantile(double q) const;

    /** Digest into the same shape the exact path reports. */
    LatencySummary summarize() const;

    /** @return Observations recorded (or merged in). */
    std::uint64_t count() const { return _count; }

    /** @return Sum of all observations (exact). */
    double sum() const { return _sum; }

    /** @return Smallest observation (exact), 0 when empty. */
    double min() const { return _count != 0 ? _min : 0.0; }

    /** @return Largest observation (exact), 0 when empty. */
    double max() const { return _count != 0 ? _max : 0.0; }

    /** Reset to the empty state. */
    void clear();

  private:
    /** @return Bucket index for an observation. */
    static std::size_t bucketFor(double seconds);

    /** @return Inclusive lower bound of bucket @p index, seconds. */
    static double bucketLow(std::size_t index);

    /** @return Exclusive upper bound of bucket @p index, seconds. */
    static double bucketHigh(std::size_t index);

    std::array<std::uint64_t, bucket_count> _buckets{};
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Speed-up of a measured time against a baseline time.
 *
 * @param baseline_sec Sequential (or reference) execution time.
 * @param measured_sec Parallel execution time.
 * @return baseline / measured; 0 when measured is non-positive.
 */
double speedup(double baseline_sec, double measured_sec);

/**
 * The paper's "variance" column: percentage difference of @p value
 * against @p reference ((value - reference) / reference * 100).
 *
 * @return Signed percentage; 0 when the reference is non-positive.
 */
double percentDelta(double value, double reference);

} // namespace dsearch

#endif // DSEARCH_UTIL_STATS_HH
