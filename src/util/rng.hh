/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Synthetic corpora must be reproducible across runs and platforms, so
 * dsearch carries its own generator instead of relying on unspecified
 * standard-library engines: SplitMix64 for seeding and xoshiro256**
 * for the stream. The class satisfies UniformRandomBitGenerator, so it
 * also works with <algorithm> shuffles.
 */

#ifndef DSEARCH_UTIL_RNG_HH
#define DSEARCH_UTIL_RNG_HH

#include <cstdint>
#include <limits>

#include "util/logging.hh"

namespace dsearch {

/**
 * SplitMix64 step; used to expand a single seed into generator state.
 *
 * @param state Seed state, advanced in place.
 * @return Next 64-bit output.
 */
constexpr std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator (Blackman & Vigna), deterministic across
 * platforms.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded with SplitMix64. */
    explicit
    Rng(std::uint64_t seed = 0x5eed5eed5eed5eedull)
    {
        std::uint64_t sm = seed;
        for (std::uint64_t &word : _state)
            word = splitMix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** @return Next raw 64-bit value. */
    result_type
    operator()()
    {
        return nextU64();
    }

    /** @return Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        std::uint64_t *s = _state;
        std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** @return Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /**
     * Uniform integer in the inclusive range [lo, hi].
     *
     * Uses Lemire's multiply-shift rejection method, so results are
     * unbiased.
     */
    std::uint64_t
    uniform(std::uint64_t lo, std::uint64_t hi)
    {
        if (lo > hi)
            panic("Rng::uniform: lo > hi");
        std::uint64_t span = hi - lo + 1;
        if (span == 0) // full 2^64 range
            return nextU64();
        // Rejection sampling on the top bits.
        std::uint64_t threshold = (0 - span) % span;
        while (true) {
            std::uint64_t r = nextU64();
            __uint128_t m = static_cast<__uint128_t>(r) * span;
            if (static_cast<std::uint64_t>(m) >= threshold)
                return lo + static_cast<std::uint64_t>(m >> 64);
        }
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Split off an independent child generator.
     *
     * Parallel corpus writers each take a split so their streams never
     * overlap regardless of scheduling.
     */
    Rng
    split()
    {
        return Rng(nextU64() ^ 0xa02e90f9d0e0497bull);
    }

  private:
    static constexpr std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t _state[4];
};

} // namespace dsearch

#endif // DSEARCH_UTIL_RNG_HH
