/**
 * @file
 * Wall-clock timing helpers used by the instrumented index generator
 * and the benchmark harnesses.
 */

#ifndef DSEARCH_UTIL_TIMER_HH
#define DSEARCH_UTIL_TIMER_HH

#include <chrono>

namespace dsearch {

/** Monotonic stopwatch; starts running on construction. */
class Timer
{
  public:
    using clock = std::chrono::steady_clock;

    Timer() : _start(clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { _start = clock::now(); }

    /** @return Seconds elapsed since construction or last reset(). */
    double
    elapsedSec() const
    {
        return std::chrono::duration<double>(clock::now() - _start)
            .count();
    }

    /** @return Microseconds elapsed, as a 64-bit count. */
    std::int64_t
    elapsedUsec() const
    {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   clock::now() - _start)
            .count();
    }

  private:
    clock::time_point _start;
};

/**
 * Adds the scope's duration to an accumulator on destruction.
 *
 * Used to attribute time to pipeline stages without littering the
 * generator with explicit stop calls.
 */
class ScopedTimer
{
  public:
    /** @param accumulator_sec Target accumulator, in seconds. */
    explicit ScopedTimer(double &accumulator_sec)
        : _acc(accumulator_sec)
    {}

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    ~ScopedTimer() { _acc += _timer.elapsedSec(); }

  private:
    double &_acc;
    Timer _timer;
};

} // namespace dsearch

#endif // DSEARCH_UTIL_TIMER_HH
