/**
 * @file
 * Per-stage timing record — the row format of the paper's Table 1.
 */

#ifndef DSEARCH_CORE_STAGE_TIMES_HH
#define DSEARCH_CORE_STAGE_TIMES_HH

namespace dsearch {

/**
 * Wall-clock seconds attributed to each pipeline stage.
 *
 * For sequential runs the extract/update fields are accumulated
 * per-file phase times; for parallel runs they are the wall time of
 * the corresponding phase (extraction until the last extractor
 * finished; update for the extra drain time after that; join for the
 * reduction).
 *
 * `read_files` is only filled by the dedicated Table 1 measurement
 * (the "empty scanner" pass); ordinary builds leave it 0 because
 * reading and extraction are fused there.
 */
struct StageTimes
{
    double filename_generation = 0.0; ///< Stage 1.
    double read_files = 0.0;          ///< Empty-scanner read pass.
    double read_and_extract = 0.0;    ///< Stage 2 (includes reads).
    double index_update = 0.0;        ///< Stage 3 insert time.
    double join = 0.0;                ///< Implementation 2 join.
    double total = 0.0;               ///< End-to-end build time.
};

} // namespace dsearch

#endif // DSEARCH_CORE_STAGE_TIMES_HH
