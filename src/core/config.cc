#include "core/config.hh"

#include <sstream>

#include "util/logging.hh"

namespace dsearch {

const char *
name(Implementation impl)
{
    switch (impl) {
      case Implementation::Sequential:
        return "Sequential";
      case Implementation::SharedLocked:
        return "Implementation 1";
      case Implementation::ReplicatedJoin:
        return "Implementation 2";
      case Implementation::ReplicatedNoJoin:
        return "Implementation 3";
    }
    return "unknown";
}

std::string
Config::tupleString() const
{
    std::ostringstream oss;
    oss << '(' << extractors << ", " << updaters << ", " << joiners
        << ')';
    return oss.str();
}

std::string
Config::describe() const
{
    if (impl == Implementation::Sequential)
        return "Sequential";
    return std::string(name(impl)) + " " + tupleString();
}

std::size_t
Config::replicaCount() const
{
    return updaters > 0 ? updaters : extractors;
}

void
Config::validate() const
{
    if (extractors == 0)
        fatal("Config: need at least one extractor thread (x >= 1)");
    if (queue_capacity == 0 || filename_queue_capacity == 0)
        fatal("Config: queue capacities must be >= 1");
    if (lock_shards == 0)
        fatal("Config: lock_shards must be >= 1");
    if (lock_shards > 1 && impl != Implementation::SharedLocked)
        fatal("Config: lock sharding only applies to "
              "Implementation 1");
    if (lock_shards > 1 && !en_bloc)
        fatal("Config: immediate mode with sharded locks is not "
              "supported");

    switch (impl) {
      case Implementation::Sequential:
        if (extractors != 1 || updaters != 0 || joiners != 0)
            fatal("Config: the sequential baseline is (1, 0, 0), got "
                  + tupleString());
        if (pipelined_stage1)
            fatal("Config: pipelined Stage 1 needs a parallel "
                  "implementation");
        break;
      case Implementation::SharedLocked:
        if (joiners != 0)
            fatal("Config: Implementation 1 has nothing to join "
                  "(z must be 0), got " + tupleString());
        break;
      case Implementation::ReplicatedJoin:
        if (joiners == 0)
            fatal("Config: Implementation 2 joins replicas "
                  "(z >= 1), got " + tupleString());
        break;
      case Implementation::ReplicatedNoJoin:
        if (joiners != 0)
            fatal("Config: Implementation 3 never joins "
                  "(z must be 0), got " + tupleString());
        break;
    }
}

Config
Config::sharedLocked(unsigned x, unsigned y)
{
    Config cfg;
    cfg.impl = Implementation::SharedLocked;
    cfg.extractors = x;
    cfg.updaters = y;
    return cfg;
}

Config
Config::replicatedJoin(unsigned x, unsigned y, unsigned z)
{
    Config cfg;
    cfg.impl = Implementation::ReplicatedJoin;
    cfg.extractors = x;
    cfg.updaters = y;
    cfg.joiners = z;
    return cfg;
}

Config
Config::replicatedNoJoin(unsigned x, unsigned y)
{
    Config cfg;
    cfg.impl = Implementation::ReplicatedNoJoin;
    cfg.extractors = x;
    cfg.updaters = y;
    return cfg;
}

Config
Config::sequential()
{
    return Config{};
}

} // namespace dsearch
