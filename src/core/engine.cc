#include "core/engine.hh"

namespace dsearch {

Engine::Engine(const FileSystem &fs, std::string root)
    : _fs(&fs), _root(std::move(root))
{
}

Engine
Engine::open(const FileSystem &fs, std::string root)
{
    return Engine(fs, std::move(root));
}

Engine &
Engine::organization(Implementation impl)
{
    _cfg.impl = impl;
    return *this;
}

Engine &
Engine::threads(unsigned x, unsigned y, unsigned z)
{
    _cfg.extractors = x;
    _cfg.updaters = y;
    _cfg.joiners = z;
    return *this;
}

Engine &
Engine::tokenizer(TokenizerOptions opts)
{
    _opts = opts;
    return *this;
}

Engine &
Engine::distribution(DistributionKind kind)
{
    _cfg.distribution = kind;
    return *this;
}

Engine &
Engine::enBloc(bool en_bloc)
{
    _cfg.en_bloc = en_bloc;
    return *this;
}

Engine &
Engine::lockShards(std::size_t shards)
{
    _cfg.lock_shards = shards;
    return *this;
}

Engine &
Engine::pipelinedStage1(bool pipelined)
{
    _cfg.pipelined_stage1 = pipelined;
    return *this;
}

Engine &
Engine::queueCapacity(std::size_t capacity)
{
    _cfg.queue_capacity = capacity;
    return *this;
}

Engine &
Engine::config(const Config &cfg)
{
    _cfg = cfg;
    return *this;
}

Engine::Result
Engine::build() const
{
    Config cfg = _cfg;
    // Ergonomics the Config factories used to provide: a join without
    // joiners means "one joiner", not a validation failure.
    if (cfg.impl == Implementation::ReplicatedJoin && cfg.joiners == 0)
        cfg.joiners = 1;

    IndexGenerator generator(*_fs, _root, cfg, _opts);
    BuildResult built = generator.build();

    Result result;
    result.config = built.config;
    result.docs = std::move(built.docs);
    result.times = built.times;
    result.extraction = built.extraction;
    result.snapshot = built.sealIndices();
    return result;
}

} // namespace dsearch
