/**
 * @file
 * dsearch::Engine — the front door of the library.
 *
 * One fluent builder covers the whole pipeline: open a filesystem,
 * pick the paper's organization and (x, y, z) thread tuple, build,
 * and receive an immutable IndexSnapshot ready for the searchers:
 *
 *     Engine::Result built = Engine::open(fs, "/")
 *                                .organization(
 *                                    Implementation::ReplicatedJoin)
 *                                .threads(3, 2, 1)
 *                                .build();
 *     Searcher search(built.snapshot, built.docs.docCount());
 *
 * The facade drives IndexGenerator (which in turn drives Stage 3
 * through the pluggable IndexBackend) and seals the outcome, so
 * callers never touch a mutable InvertedIndex: joined organizations
 * yield a unified snapshot for Searcher/RankedSearcher, while
 * Implementation 3 yields one segment per replica for MultiSearcher.
 *
 * Every ablation knob of Config is reachable through a setter (or
 * wholesale via config()); unset knobs keep Config's defaults, and
 * organization()/threads() provide the ergonomics the factories used
 * to: ReplicatedJoin defaults to one joiner when z is unset.
 */

#ifndef DSEARCH_CORE_ENGINE_HH
#define DSEARCH_CORE_ENGINE_HH

#include <string>

#include "core/config.hh"
#include "core/index_generator.hh"
#include "core/stage_times.hh"
#include "fs/file_system.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "text/term_extractor.hh"
#include "text/tokenizer.hh"

namespace dsearch {

/** Fluent build facade; see the file comment. */
class Engine
{
  public:
    /** Everything a build produces, with the index already sealed. */
    struct Result
    {
        /** The configuration that produced this result. */
        Config config;

        /** Document table assigned during Stage 1. */
        DocTable docs;

        /**
         * Sealed index: unified for joined organizations, one
         * segment per replica for Implementation 3.
         */
        IndexSnapshot snapshot;

        /** Stage timing breakdown. */
        StageTimes times;

        /** Aggregated extractor counters. */
        ExtractorStats extraction;
    };

    /**
     * Start a build over @p fs rooted at @p root. The filesystem must
     * outlive build() calls; everything else is copied into the
     * engine.
     */
    static Engine open(const FileSystem &fs, std::string root = "/");

    /** Pick the generator organization (default: Sequential). */
    Engine &organization(Implementation impl);

    /**
     * The paper's (x, y, z) thread tuple: extractors, updaters,
     * joiners. Omitted values keep 0 (no buffer stage / no joiners);
     * ReplicatedJoin builds with z = 0 get one joiner.
     */
    Engine &threads(unsigned x, unsigned y = 0, unsigned z = 0);

    /** Tokenizer settings shared by all extractors. */
    Engine &tokenizer(TokenizerOptions opts);

    /** Work distribution strategy for Stage 2 (§2.1). */
    Engine &distribution(DistributionKind kind);

    /** En-bloc (default) vs immediate duplicate handling (§2.2). */
    Engine &enBloc(bool en_bloc);

    /** Lock shard count for Implementation 1 (default 1). */
    Engine &lockShards(std::size_t shards);

    /** Run Stage 1 concurrently with Stage 2 (ablation E6). */
    Engine &pipelinedStage1(bool pipelined);

    /** Capacity of the extractor -> updater block queue. */
    Engine &queueCapacity(std::size_t capacity);

    /** Adopt a complete Config (overwrites every knob set so far). */
    Engine &config(const Config &cfg);

    /** @return The configuration build() would run. */
    const Config &currentConfig() const { return _cfg; }

    // Wiring accessors for layers that keep working against the same
    // corpus after the one-shot build — the live-index pipeline
    // re-scans fs()/root() and extracts deltas with
    // tokenizerOptions(), so its increments tokenize exactly like the
    // base build did.

    /** @return The filesystem this engine builds over. */
    const FileSystem &fs() const { return *_fs; }

    /** @return The traversal root build() starts from. */
    const std::string &root() const { return _root; }

    /** @return The tokenizer settings extractors run with. */
    const TokenizerOptions &tokenizerOptions() const { return _opts; }

    /**
     * Run the build once and seal the result. Reentrant; each call
     * is an independent build.
     */
    Result build() const;

  private:
    Engine(const FileSystem &fs, std::string root);

    const FileSystem *_fs;
    std::string _root;
    Config _cfg;
    TokenizerOptions _opts;
};

} // namespace dsearch

#endif // DSEARCH_CORE_ENGINE_HH
