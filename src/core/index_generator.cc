#include "core/index_generator.hh"

#include <memory>
#include <mutex>
#include <thread>

#include "fs/traversal.hh"
#include "index/index_join.hh"
#include "index/shared_index.hh"
#include "pipeline/blocking_queue.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace dsearch {

InvertedIndex &
BuildResult::primary()
{
    if (indices.empty())
        panic("BuildResult::primary: no index was built");
    return indices.front();
}

const InvertedIndex &
BuildResult::primary() const
{
    if (indices.empty())
        panic("BuildResult::primary: no index was built");
    return indices.front();
}

IndexGenerator::IndexGenerator(const FileSystem &fs, std::string root,
                               Config cfg, TokenizerOptions opts)
    : _fs(fs), _root(std::move(root)), _cfg(cfg), _opts(opts)
{
    _cfg.validate();
}

BuildResult
IndexGenerator::build()
{
    if (_cfg.impl == Implementation::Sequential)
        return buildSequential();
    return buildParallel();
}

BuildResult
IndexGenerator::buildSequential()
{
    BuildResult result;
    result.config = _cfg;
    Timer total;

    // Stage 1: single-threaded filename generation, run to completion.
    Timer stage1;
    FileList files = generateFilenames(_fs, _root);
    result.times.filename_generation = stage1.elapsedSec();
    result.docs = DocTable::fromFileList(files);

    // Stages 2+3 interleaved per file — the unoverlapped program the
    // paper's speed-ups are measured against.
    InvertedIndex index;
    TermExtractor extractor(_fs, _opts);
    TermBlock block;
    std::vector<std::string> occurrences;
    for (const FileEntry &file : files) {
        if (_cfg.en_bloc) {
            bool ok;
            {
                ScopedTimer t(result.times.read_and_extract);
                ok = extractor.extract(file, block);
            }
            if (!ok)
                continue;
            ScopedTimer t(result.times.index_update);
            index.addBlock(block);
        } else {
            bool ok;
            {
                ScopedTimer t(result.times.read_and_extract);
                ok = extractor.extractOccurrences(file, occurrences);
            }
            if (!ok)
                continue;
            ScopedTimer t(result.times.index_update);
            for (const std::string &term : occurrences)
                index.addOccurrence(term, file.doc);
        }
    }

    result.extraction = extractor.stats();
    result.indices.push_back(std::move(index));
    result.times.total = total.elapsedSec();
    return result;
}

BuildResult
IndexGenerator::buildParallel()
{
    BuildResult result;
    result.config = _cfg;
    Timer total;

    const unsigned x = _cfg.extractors;
    const unsigned y = _cfg.updaters;
    const bool buffered = y > 0;
    const bool shared_impl = _cfg.impl == Implementation::SharedLocked;
    const std::size_t replica_count =
        shared_impl ? 0 : _cfg.replicaCount();

    // ------------------------------------------------------------------
    // Stage 1. Default: run to completion on this thread, then
    // partition (the paper's design). Pipelined ablation: feed a
    // shared locked queue concurrently with Stage 2.
    // ------------------------------------------------------------------
    FileList files;
    BlockingQueue<FileEntry> file_queue(_cfg.filename_queue_capacity);
    std::unique_ptr<FileSource> source;
    if (!_cfg.pipelined_stage1) {
        Timer stage1;
        files = generateFilenames(_fs, _root);
        result.times.filename_generation = stage1.elapsedSec();
        result.docs = DocTable::fromFileList(files);
        source = makeFileSource(_cfg.distribution, files, x);
    }

    // ------------------------------------------------------------------
    // Shared structures. The replica vector is sized before any thread
    // starts and never resized, so replicas[i] is touched by exactly
    // one thread.
    // ------------------------------------------------------------------
    SharedIndex shared;
    std::unique_ptr<ShardedIndex> sharded;
    if (shared_impl && _cfg.lock_shards > 1)
        sharded = std::make_unique<ShardedIndex>(_cfg.lock_shards);
    std::vector<InvertedIndex> replicas(replica_count);
    BlockingQueue<TermBlock> block_queue(_cfg.queue_capacity);

    std::mutex stats_mutex;
    ExtractorStats stats_total; // guarded by stats_mutex

    // Insert one block into a private index, honouring the duplicate
    // handling mode. Immediate mode reuses the span hashes the
    // extractor computed.
    auto insert_private = [this](InvertedIndex &target,
                                 const TermBlock &block) {
        if (_cfg.en_bloc) {
            target.addBlock(block);
        } else {
            for (std::size_t i = 0; i < block.spans.size(); ++i)
                target.addOccurrenceHashed(block.hashAt(i),
                                           block.term(i), block.doc);
        }
    };

    // Insert one block into the shared index. In immediate mode the
    // lock is taken per occurrence — the "overwhelm the index with
    // locking requests" behaviour §2.2 warns about. With sharded
    // locks (lock_shards > 1) each block locks only the shards its
    // terms hash to.
    auto insert_shared = [this, &shared, &sharded](
                             const TermBlock &block) {
        if (sharded) {
            sharded->addBlock(block);
        } else if (_cfg.en_bloc) {
            shared.addBlock(block);
        } else {
            for (std::size_t i = 0; i < block.spans.size(); ++i)
                shared.addOccurrenceHashed(block.hashAt(i),
                                           block.term(i), block.doc);
        }
    };

    // ------------------------------------------------------------------
    // Stage 3: y updater threads drain the block queue.
    // ------------------------------------------------------------------
    std::vector<std::thread> updaters;
    updaters.reserve(y);
    // Updaters drain the queue in batches: one lock round-trip and
    // one producer wake-up amortized over up to updaterBatch blocks.
    constexpr std::size_t updaterBatch = 16;
    for (unsigned u = 0; u < y; ++u) {
        updaters.emplace_back([&, u] {
            std::vector<TermBlock> batch;
            while (block_queue.popBatch(batch, updaterBatch)) {
                for (const TermBlock &block : batch) {
                    if (shared_impl)
                        insert_shared(block);
                    else
                        insert_private(replicas[u], block);
                }
            }
        });
    }

    // ------------------------------------------------------------------
    // Stage 2: x extractor threads.
    // ------------------------------------------------------------------
    Timer stage2;
    std::vector<std::thread> extractors;
    extractors.reserve(x);
    for (unsigned w = 0; w < x; ++w) {
        extractors.emplace_back([&, w] {
            TermExtractor extractor(_fs, _opts);
            FileEntry file;
            std::vector<std::string> occurrences;

            auto next_file = [&]() {
                return _cfg.pipelined_stage1 ? file_queue.pop(file)
                                             : source->next(w, file);
            };

            TermBlock block;
            while (next_file()) {
                bool ok;
                if (_cfg.en_bloc) {
                    ok = extractor.extract(file, block);
                } else {
                    ok = extractor.extractOccurrences(file,
                                                      occurrences);
                    if (ok) {
                        // Immediate mode ships every occurrence,
                        // duplicates included, hashed once here.
                        block.doc = file.doc;
                        block.clear();
                        for (const std::string &term : occurrences)
                            block.addTerm(term);
                    }
                }
                if (!ok)
                    continue;

                if (buffered)
                    block_queue.push(std::move(block));
                else if (shared_impl)
                    insert_shared(block);
                else
                    insert_private(replicas[w], block);
            }

            std::scoped_lock lock(stats_mutex);
            stats_total.add(extractor.stats());
        });
    }

    // Pipelined Stage 1 runs here, concurrently with the extractors:
    // one push (and one matching pop) per filename — the lock pair the
    // paper measured.
    if (_cfg.pipelined_stage1) {
        Timer stage1;
        DocTable docs;
        traverseFiles(_fs, _root,
                      [&docs, &file_queue](const std::string &path,
                                           std::uint64_t size) {
                          FileEntry entry;
                          entry.path = path;
                          entry.size = size;
                          entry.doc = docs.add(path, size);
                          file_queue.push(std::move(entry));
                      });
        file_queue.close();
        result.times.filename_generation = stage1.elapsedSec();
        result.docs = std::move(docs);
    }

    for (std::thread &extractor : extractors)
        extractor.join();
    result.times.read_and_extract = stage2.elapsedSec();

    // Drain: close the buffer, let updaters finish the backlog.
    Timer stage3;
    block_queue.close();
    for (std::thread &updater : updaters)
        updater.join();
    result.times.index_update = stage3.elapsedSec();

    {
        std::scoped_lock lock(stats_mutex);
        result.extraction = stats_total;
    }

    // ------------------------------------------------------------------
    // Finalize per implementation.
    // ------------------------------------------------------------------
    switch (_cfg.impl) {
      case Implementation::SharedLocked:
        if (sharded) {
            InvertedIndex joined;
            sharded->joinInto(joined);
            result.indices.push_back(std::move(joined));
        } else {
            result.indices.push_back(shared.release());
        }
        break;
      case Implementation::ReplicatedJoin: {
        // The barrier of the "Join Forces" pattern is implicit in the
        // joins above: every updater finished before this point.
        Timer join_timer;
        result.indices.push_back(
            joinParallel(std::move(replicas), _cfg.joiners));
        result.times.join = join_timer.elapsedSec();
        break;
      }
      case Implementation::ReplicatedNoJoin:
        result.indices = std::move(replicas);
        break;
      case Implementation::Sequential:
        panic("buildParallel called with sequential config");
    }

    result.times.total = total.elapsedSec();
    return result;
}

StageTimes
IndexGenerator::measureSequentialStages(const FileSystem &fs,
                                        const std::string &root,
                                        TokenizerOptions opts)
{
    StageTimes times;
    Timer total;

    // (a) Filename generation.
    Timer stage1;
    FileList files = generateFilenames(fs, root);
    times.filename_generation = stage1.elapsedSec();

    // (b) The "empty scanner": read each file byte by byte without
    // extracting anything.
    {
        Timer timer;
        std::string content;
        std::uint64_t checksum = 0;
        for (const FileEntry &file : files) {
            if (!fs.readFile(file.path, content))
                continue;
            for (char c : content)
                checksum += static_cast<unsigned char>(c);
        }
        // Defeat dead-code elimination of the read loop.
        volatile std::uint64_t sink = checksum;
        (void)sink;
        times.read_files = timer.elapsedSec();
    }

    // (c) Read files and extract terms (no index).
    {
        Timer timer;
        TermExtractor extractor(fs, opts);
        TermBlock block;
        for (const FileEntry &file : files)
            extractor.extract(file, block);
        times.read_and_extract = timer.elapsedSec();
    }

    // (d) Index update alone: re-extract (untimed) and time only the
    // en-bloc inserts.
    {
        TermExtractor extractor(fs, opts);
        TermBlock block;
        InvertedIndex index;
        for (const FileEntry &file : files) {
            if (!extractor.extract(file, block))
                continue;
            ScopedTimer t(times.index_update);
            index.addBlock(block);
        }
    }

    times.total = total.elapsedSec();
    return times;
}

} // namespace dsearch
