#include "core/index_generator.hh"

#include <memory>
#include <mutex>
#include <thread>

#include "fs/traversal.hh"
#include "index/index_backend.hh"
#include "pipeline/blocking_queue.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace dsearch {

InvertedIndex &
BuildResult::primary()
{
    if (indices.empty())
        panic("BuildResult::primary: no index was built");
    return indices.front();
}

const InvertedIndex &
BuildResult::primary() const
{
    if (indices.empty())
        panic("BuildResult::primary: no index was built");
    return indices.front();
}

IndexSnapshot
BuildResult::sealIndices()
{
    return IndexSnapshot::seal(std::move(indices));
}

IndexGenerator::IndexGenerator(const FileSystem &fs, std::string root,
                               Config cfg, TokenizerOptions opts)
    : _fs(fs), _root(std::move(root)), _cfg(cfg), _opts(opts)
{
    _cfg.validate();
}

BuildResult
IndexGenerator::build()
{
    if (_cfg.impl == Implementation::Sequential)
        return buildSequential();
    return buildParallel();
}

namespace {

/**
 * Turn an immediate-mode occurrence list into a block, hashing each
 * occurrence once here (duplicates included — that is the point of
 * ablation E7).
 */
void
occurrencesToBlock(const std::vector<std::string> &occurrences,
                   DocId doc, TermBlock &block)
{
    block.doc = doc;
    block.clear();
    for (const std::string &term : occurrences)
        block.addTerm(term);
}

} // namespace

BuildResult
IndexGenerator::buildSequential()
{
    BuildResult result;
    result.config = _cfg;
    Timer total;

    // Stage 1: single-threaded filename generation, run to completion.
    Timer stage1;
    FileList files = generateFilenames(_fs, _root);
    result.times.filename_generation = stage1.elapsedSec();
    result.docs = DocTable::fromFileList(files);

    // Stages 2+3 interleaved per file — the unoverlapped program the
    // paper's speed-ups are measured against. Stage 3 goes through
    // the backend like every other organization.
    std::unique_ptr<IndexBackend> backend = makeBackend(_cfg);
    TermExtractor extractor(_fs, _opts);
    TermBlock block;
    std::vector<std::string> occurrences;
    for (const FileEntry &file : files) {
        bool ok;
        {
            ScopedTimer t(result.times.read_and_extract);
            ok = _cfg.en_bloc
                     ? extractor.extract(file, block)
                     : extractor.extractOccurrences(file, occurrences);
        }
        if (!ok)
            continue;
        ScopedTimer t(result.times.index_update);
        // Immediate mode hashes its occurrences on the insert side,
        // like the old direct addOccurrence path — Stage 3 time.
        if (!_cfg.en_bloc)
            occurrencesToBlock(occurrences, file.doc, block);
        backend->addBlock(std::move(block), 0);
    }

    result.extraction = extractor.stats();
    result.indices = backend->release();
    result.times.total = total.elapsedSec();
    return result;
}

BuildResult
IndexGenerator::buildParallel()
{
    BuildResult result;
    result.config = _cfg;
    Timer total;

    const unsigned x = _cfg.extractors;
    const unsigned y = _cfg.updaters;
    const bool buffered = y > 0;

    // ------------------------------------------------------------------
    // Stage 1. Default: run to completion on this thread, then
    // partition (the paper's design). Pipelined ablation: feed a
    // shared locked queue concurrently with Stage 2.
    // ------------------------------------------------------------------
    FileList files;
    BlockingQueue<FileEntry> file_queue(_cfg.filename_queue_capacity);
    std::unique_ptr<FileSource> source;
    if (!_cfg.pipelined_stage1) {
        Timer stage1;
        files = generateFilenames(_fs, _root);
        result.times.filename_generation = stage1.elapsedSec();
        result.docs = DocTable::fromFileList(files);
        source = makeFileSource(_cfg.distribution, files, x);
    }

    // ------------------------------------------------------------------
    // The organization of the index itself lives behind the backend;
    // this function only decides which lane each writer owns. Lanes
    // are fixed before any thread starts, so a lane is touched by
    // exactly one thread.
    // ------------------------------------------------------------------
    std::unique_ptr<IndexBackend> backend = makeBackend(_cfg);
    BlockingQueue<TermBlock> block_queue(_cfg.queue_capacity);

    std::mutex stats_mutex;
    ExtractorStats stats_total; // guarded by stats_mutex

    // ------------------------------------------------------------------
    // Stage 3: y updater threads drain the block queue into lane u.
    // ------------------------------------------------------------------
    std::vector<std::thread> updaters;
    updaters.reserve(y);
    // Updaters drain the queue in batches: one lock round-trip and
    // one producer wake-up amortized over up to updaterBatch blocks.
    constexpr std::size_t updaterBatch = 16;
    for (unsigned u = 0; u < y; ++u) {
        updaters.emplace_back([&, u] {
            std::vector<TermBlock> batch;
            while (block_queue.popBatch(batch, updaterBatch)) {
                for (TermBlock &block : batch)
                    backend->addBlock(std::move(block), u);
            }
        });
    }

    // ------------------------------------------------------------------
    // Stage 2: x extractor threads; unbuffered runs write lane w
    // directly.
    // ------------------------------------------------------------------
    Timer stage2;
    std::vector<std::thread> extractors;
    extractors.reserve(x);
    for (unsigned w = 0; w < x; ++w) {
        extractors.emplace_back([&, w] {
            TermExtractor extractor(_fs, _opts);
            FileEntry file;
            std::vector<std::string> occurrences;

            auto next_file = [&]() {
                return _cfg.pipelined_stage1 ? file_queue.pop(file)
                                             : source->next(w, file);
            };

            TermBlock block;
            while (next_file()) {
                bool ok;
                if (_cfg.en_bloc) {
                    ok = extractor.extract(file, block);
                } else {
                    ok = extractor.extractOccurrences(file,
                                                      occurrences);
                    if (ok)
                        occurrencesToBlock(occurrences, file.doc,
                                           block);
                }
                if (!ok)
                    continue;

                if (buffered)
                    block_queue.push(std::move(block));
                else
                    backend->addBlock(std::move(block), w);
            }

            std::scoped_lock lock(stats_mutex);
            stats_total.add(extractor.stats());
        });
    }

    // Pipelined Stage 1 runs here, concurrently with the extractors:
    // one push (and one matching pop) per filename — the lock pair the
    // paper measured.
    if (_cfg.pipelined_stage1) {
        Timer stage1;
        DocTable docs;
        traverseFiles(_fs, _root,
                      [&docs, &file_queue](const std::string &path,
                                           std::uint64_t size) {
                          FileEntry entry;
                          entry.path = path;
                          entry.size = size;
                          entry.doc = docs.add(path, size);
                          file_queue.push(std::move(entry));
                      });
        file_queue.close();
        result.times.filename_generation = stage1.elapsedSec();
        result.docs = std::move(docs);
    }

    for (std::thread &extractor : extractors)
        extractor.join();
    result.times.read_and_extract = stage2.elapsedSec();

    // Drain: close the buffer, let updaters finish the backlog.
    Timer stage3;
    block_queue.close();
    for (std::thread &updater : updaters)
        updater.join();
    result.times.index_update = stage3.elapsedSec();

    {
        std::scoped_lock lock(stats_mutex);
        result.extraction = stats_total;
    }

    // Finalize per organization — entirely the backend's business
    // (the "Join Forces" barrier is implicit: every writer joined
    // above).
    result.indices = backend->release(&result.times.join);

    result.times.total = total.elapsedSec();
    return result;
}

StageTimes
IndexGenerator::measureSequentialStages(const FileSystem &fs,
                                        const std::string &root,
                                        TokenizerOptions opts)
{
    StageTimes times;
    Timer total;

    // (a) Filename generation.
    Timer stage1;
    FileList files = generateFilenames(fs, root);
    times.filename_generation = stage1.elapsedSec();

    // (b) The "empty scanner": read each file byte by byte without
    // extracting anything.
    {
        Timer timer;
        std::string content;
        std::uint64_t checksum = 0;
        for (const FileEntry &file : files) {
            if (!fs.readFile(file.path, content))
                continue;
            for (char c : content)
                checksum += static_cast<unsigned char>(c);
        }
        // Defeat dead-code elimination of the read loop.
        volatile std::uint64_t sink = checksum;
        (void)sink;
        times.read_files = timer.elapsedSec();
    }

    // (c) Read files and extract terms (no index).
    {
        Timer timer;
        TermExtractor extractor(fs, opts);
        TermBlock block;
        for (const FileEntry &file : files)
            extractor.extract(file, block);
        times.read_and_extract = timer.elapsedSec();
    }

    // (d) Index update alone: re-extract (untimed) and time only the
    // en-bloc inserts.
    {
        TermExtractor extractor(fs, opts);
        TermBlock block;
        InvertedIndex index;
        for (const FileEntry &file : files) {
            if (!extractor.extract(file, block))
                continue;
            ScopedTimer t(times.index_update);
            index.addBlock(block);
        }
    }

    times.total = total.elapsedSec();
    return times;
}

} // namespace dsearch
