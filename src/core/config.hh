/**
 * @file
 * Index generator configuration.
 *
 * A configuration is the paper's tuple (x, y, z) — threads for term
 * extraction, index update, and index join — plus the implementation
 * choice (§4):
 *
 *  - Implementation 1 (SharedLocked): one shared index, locked on
 *    update.
 *  - Implementation 2 (ReplicatedJoin): replicated indices, joined at
 *    the end.
 *  - Implementation 3 (ReplicatedNoJoin): replicated indices, never
 *    joined.
 *
 * plus the ablation knobs the paper discusses in the text: the work
 * distribution strategy (§2.1), pipelined Stage 1 (§3), and en-bloc
 * versus immediate duplicate handling (§2.2).
 */

#ifndef DSEARCH_CORE_CONFIG_HH
#define DSEARCH_CORE_CONFIG_HH

#include <cstddef>
#include <string>

#include "pipeline/distribution.hh"

namespace dsearch {

/** Which of the paper's generator organizations to run. */
enum class Implementation {
    Sequential,       ///< The paper's baseline program.
    SharedLocked,     ///< Implementation 1.
    ReplicatedJoin,   ///< Implementation 2.
    ReplicatedNoJoin, ///< Implementation 3.
};

/** @return Human-readable implementation name. */
const char *name(Implementation impl);

/** Full generator configuration; see the file comment. */
struct Config
{
    Implementation impl = Implementation::Sequential;

    /** x: term extraction threads (>= 1). */
    unsigned extractors = 1;

    /**
     * y: index update threads. 0 means extractors update the index
     * themselves (no buffer); >= 1 inserts a bounded block queue
     * between the stages with y consumer threads.
     */
    unsigned updaters = 0;

    /** z: index join threads (Implementation 2 only, >= 1 there). */
    unsigned joiners = 0;

    /** How files are handed to extractors (§2.1). */
    DistributionKind distribution = DistributionKind::RoundRobin;

    /**
     * Run Stage 1 concurrently with Stage 2 through a shared locked
     * filename queue — the variant the paper measured as "highly
     * inefficient" (ablation E6). When set, `distribution` is
     * irrelevant: files are consumed from the shared queue.
     */
    bool pipelined_stage1 = false;

    /**
     * True (paper's choice): extractors deduplicate per file and pass
     * unique terms en bloc. False (ablation E7): every occurrence is
     * inserted and the index performs the linear duplicate scan.
     */
    bool en_bloc = true;

    /**
     * Lock granularity for Implementation 1: 1 (the paper's design)
     * guards the whole index with one mutex; > 1 splits the index
     * into hash shards with one lock each, so updates to different
     * shards proceed concurrently. Rounded up to a power of two.
     * Answers §2.3's "Is synchronization the bottleneck?" directly.
     */
    std::size_t lock_shards = 1;

    /** Capacity of the extractor->updater block queue (when y >= 1). */
    std::size_t queue_capacity = 256;

    /** Capacity of the shared filename queue (pipelined Stage 1). */
    std::size_t filename_queue_capacity = 128;

    /** @return The paper's "(x, y, z)" tuple notation. */
    std::string tupleString() const;

    /** @return "Implementation 2 (3, 5, 1)"-style description. */
    std::string describe() const;

    /**
     * Number of index replicas a replicated configuration builds:
     * y when updaters exist, else x (one per extractor).
     */
    std::size_t replicaCount() const;

    /** fatal() when the tuple is inconsistent with the implementation. */
    void validate() const;

    /** Convenience factory for Implementation 1. */
    static Config sharedLocked(unsigned x, unsigned y = 0);

    /** Convenience factory for Implementation 2. */
    static Config replicatedJoin(unsigned x, unsigned y, unsigned z);

    /** Convenience factory for Implementation 3. */
    static Config replicatedNoJoin(unsigned x, unsigned y = 0);

    /** Convenience factory for the sequential baseline. */
    static Config sequential();
};

} // namespace dsearch

#endif // DSEARCH_CORE_CONFIG_HH
