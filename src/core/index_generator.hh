/**
 * @file
 * The index generator — the system the paper builds and parallelizes.
 *
 * Pipeline (§2):
 *   Stage 1  filename generation   traverse the directory hierarchy
 *   Stage 2  term extraction       read files, extract unique terms
 *   Stage 3  index update          insert term blocks into the index
 *
 * build() runs the configured organization once:
 *
 *  - Sequential: the baseline program — one thread, per file:
 *    read -> extract -> insert, no overlap.
 *  - SharedLocked (Implementation 1): x extractors feed one shared,
 *    locked index, either directly (y = 0) or through a bounded block
 *    queue drained by y updater threads.
 *  - ReplicatedJoin (Implementation 2): as above but each updater (or
 *    extractor when y = 0) owns a private index; after a barrier the
 *    replicas are joined by z threads ("Join Forces").
 *  - ReplicatedNoJoin (Implementation 3): same, but the replicas are
 *    kept and queried in parallel (see search/multi_searcher.hh).
 *
 * Stage 3 is driven entirely through the IndexBackend interface
 * (index/index_backend.hh): the generator owns the thread topology —
 * who extracts, who drains the queue, which lane each writer uses —
 * while the backend owns the organization of the index itself. New
 * organizations slot in via makeBackend() without touching the loop.
 *
 * measureSequentialStages() reproduces the paper's Table 1
 * decomposition, including the "empty scanner" read-only pass.
 *
 * Note: prefer the dsearch::Engine facade (core/engine.hh) for new
 * code; it wraps this class and seals the result into the
 * IndexSnapshot read API.
 */

#ifndef DSEARCH_CORE_INDEX_GENERATOR_HH
#define DSEARCH_CORE_INDEX_GENERATOR_HH

#include <string>
#include <vector>

#include "core/config.hh"
#include "core/stage_times.hh"
#include "fs/file_system.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"
#include "text/term_extractor.hh"
#include "text/tokenizer.hh"

namespace dsearch {

/** Everything a build run produces. */
struct BuildResult
{
    /** The configuration that produced this result. */
    Config config;

    /** Document table assigned during Stage 1. */
    DocTable docs;

    /**
     * The built index (one entry), or the unjoined replicas
     * (Implementation 3: replicaCount() entries, some possibly empty).
     */
    std::vector<InvertedIndex> indices;

    /** Stage timing breakdown. */
    StageTimes times;

    /** Aggregated extractor counters. */
    ExtractorStats extraction;

    /** @return The single index of non-replicated results. */
    InvertedIndex &primary();
    const InvertedIndex &primary() const;

    /**
     * Move the built indices into an immutable IndexSnapshot (one
     * segment per index; postings canonicalized). `indices` is left
     * empty; everything else in the result stays valid. This is what
     * Engine::build() returns — call it directly when using the
     * generator but querying through the snapshot API.
     */
    IndexSnapshot sealIndices();
};

/** Configurable index generator; see the file comment. */
class IndexGenerator
{
  public:
    /**
     * @param fs   Filesystem holding the corpus (must outlive the
     *             generator; read concurrently during build).
     * @param root Directory to index.
     * @param cfg  Organization and thread counts; validated here
     *             (fatal on inconsistent tuples).
     * @param opts Tokenizer settings shared by all extractors.
     */
    IndexGenerator(const FileSystem &fs, std::string root, Config cfg,
                   TokenizerOptions opts = {});

    /** Run the build once. Reentrant; each call is independent. */
    BuildResult build();

    /**
     * The paper's Table 1 measurement: time (a) filename generation,
     * (b) an empty-scanner read of every file, (c) read + term
     * extraction, and (d) index update alone, all single-threaded.
     */
    static StageTimes measureSequentialStages(const FileSystem &fs,
                                              const std::string &root,
                                              TokenizerOptions opts
                                              = {});

  private:
    BuildResult buildSequential();
    BuildResult buildParallel();

    const FileSystem &_fs;
    std::string _root;
    Config _cfg;
    TokenizerOptions _opts;
};

} // namespace dsearch

#endif // DSEARCH_CORE_INDEX_GENERATOR_HH
