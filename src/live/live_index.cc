#include "live/live_index.hh"

#include <algorithm>
#include <chrono>

#include "index/index_backend.hh"
#include "index/index_join.hh"
#include "text/term_extractor.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/**
 * Decode a sealed snapshot back into a mutable index, dropping
 * tombstoned postings — the read half of compaction. Deltas are tiny
 * and the base decodes at hundreds of M postings/s, so materializing
 * is cheap next to the join + re-seal that follows.
 */
InvertedIndex
materialize(const IndexSnapshot &snapshot, const DocSet &tombstones)
{
    InvertedIndex out;
    if (snapshot.segmentCount() == 0)
        return out;
    SegmentReader reader = snapshot.segment(0);
    out.reserveTerms(reader.termCount());
    std::vector<DocId> scratch;
    reader.forEachTerm(
        [&](const std::string &term, PostingCursor cursor) {
            scratch.clear();
            for (; cursor.valid(); cursor.next()) {
                DocId doc = cursor.doc();
                if (!std::binary_search(tombstones.begin(),
                                        tombstones.end(), doc))
                    scratch.push_back(doc);
            }
            if (!scratch.empty())
                out.addPostings(term, scratch.data(), scratch.size());
        });
    return out;
}

/** Sorted merge of two sorted path lists (created + modified). */
std::vector<std::string>
mergePaths(const std::vector<std::string> &a,
           const std::vector<std::string> &b)
{
    std::vector<std::string> out;
    out.reserve(a.size() + b.size());
    std::merge(a.begin(), a.end(), b.begin(), b.end(),
               std::back_inserter(out));
    return out;
}

} // namespace

LiveIndex::LiveIndex(const FileSystem &fs, std::string root,
                     QueryServer &server, SnapshotStore *store,
                     LiveIndexOptions options, TokenizerOptions tok)
    : _fs(fs), _root(std::move(root)), _server(server), _store(store),
      _options(options), _tok(tok)
{
    if (_options.merge_threshold == 0)
        _options.merge_threshold = 1;
    if (_options.merge_retries == 0)
        _options.merge_retries = 1;
    if (_options.join_threads == 0)
        _options.join_threads = 1;
    if (_root.empty())
        _root = "/";
}

LiveIndex::~LiveIndex()
{
    stop();
}

void
LiveIndex::adopt(Engine::Result &&built)
{
    if (!built.snapshot.unified())
        panic("LiveIndex: the base build must be unified (joined "
              "organizations only)");

    std::scoped_lock lock(_mutex);
    _base = std::move(built.snapshot);
    _docs = std::move(built.docs);
    _base_docs = static_cast<DocId>(_docs.docCount());
    _deltas.clear();
    _tombstones.clear();

    _alive.clear();
    for (DocId doc = 0; doc < _docs.docCount(); ++doc)
        _alive.insert_or_assign(_docs.path(doc), doc);

    // The build just walked this corpus; a real scan (not a DocTable
    // baseline) captures mtimes, so same-size rewrites are detected
    // from the very first cycle.
    ScanSnapshot scan;
    if (scanFileSystem(_fs, _root, scan))
        _scan = std::move(scan);
    else
        _scan = baselineFromDocTable(_docs);

    if (_store != nullptr) {
        std::uint64_t gen = _store->save(_base, _docs);
        if (gen != 0)
            _stats.generation = gen;
    }
    _stats.doc_count = _docs.docCount();
    publishLocked();
}

std::uint64_t
LiveIndex::bootstrap()
{
    std::uint64_t gen = 0;
    {
        std::scoped_lock lock(_mutex);
        IndexSnapshot snapshot;
        DocTable docs;
        if (_store != nullptr)
            gen = _store->load(snapshot, docs);

        _base = std::move(snapshot);
        _docs = std::move(docs);
        _base_docs = static_cast<DocId>(_docs.docCount());
        _deltas.clear();
        _tombstones.clear();
        _stats.generation = gen;

        // Reconstruct liveness from the recovered table: the newest
        // DocId per path serves; every older one was superseded by a
        // live update before the crash and is re-tombstoned (its
        // postings may still be in the recovered base if the crash
        // predated the next compaction).
        _alive.clear();
        for (DocId doc = 0; doc < _docs.docCount(); ++doc) {
            auto [it, inserted] =
                _alive.insert_or_assign(_docs.path(doc), doc);
            (void)it;
            (void)inserted;
        }
        for (DocId doc = 0; doc < _docs.docCount(); ++doc) {
            auto it = _alive.find(_docs.path(doc));
            if (it != _alive.end() && it->second != doc)
                tombstoneLocked(doc);
        }

        // Diff the first real scan against what the recovered index
        // covers, so changes-while-down become the first delta.
        _scan = baselineFromDocTable(_docs);
        _stats.doc_count = _docs.docCount();
        _publish_pending = true; // publish even if the corpus is idle
    }

    runCycle();
    return gen;
}

void
LiveIndex::start()
{
    std::scoped_lock lock(_mutex);
    if (_running)
        return;
    _running = true;
    _stop = false;
    _scanner = std::thread([this] { scanLoop(); });
    _merger = std::thread([this] { mergeLoop(); });
}

void
LiveIndex::stop()
{
    {
        std::scoped_lock lock(_mutex);
        if (!_running)
            return;
        _stop = true;
    }
    _wake_scanner.notify_all();
    _wake_merger.notify_all();
    if (_scanner.joinable())
        _scanner.join();
    if (_merger.joinable())
        _merger.join();
    std::scoped_lock lock(_mutex);
    _running = false;
}

void
LiveIndex::tombstoneLocked(DocId doc)
{
    auto it = std::lower_bound(_tombstones.begin(), _tombstones.end(),
                               doc);
    if (it != _tombstones.end() && *it == doc)
        return;
    _tombstones.insert(it, doc);
    _stats.tombstones = _tombstones.size();
}

void
LiveIndex::killPathLocked(const std::string &path)
{
    auto it = _alive.find(path);
    if (it == _alive.end())
        return;
    tombstoneLocked(it->second);
    _alive.erase(it);
}

bool
LiveIndex::buildDelta(const std::vector<std::string> &paths)
{
    DocId first_doc;
    {
        std::scoped_lock lock(_mutex);
        first_doc = static_cast<DocId>(_docs.docCount());
    }

    // Everything below is pure until the commit: an abort (injected
    // crash) leaves the served state byte-identical, which is the
    // whole crash-safety story for deltas — they are rebuilt from the
    // next scan, never half-applied.
    if (faultFires("live.delta_build")) {
        std::scoped_lock lock(_mutex);
        ++_stats.failed_deltas;
        return false;
    }

    Config cfg;
    cfg.impl = Implementation::Sequential;
    cfg.extractors = 1;
    std::unique_ptr<IndexBackend> backend = makeBackend(cfg);
    TermExtractor extractor(_fs, _tok);

    std::vector<FileEntry> entries;
    entries.reserve(paths.size());
    TermBlock block;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        FileEntry entry;
        entry.doc = first_doc + static_cast<DocId>(i);
        entry.path = paths[i];
        entry.size = _fs.fileSize(paths[i]);
        // An unreadable file still occupies its DocId (matching the
        // base build, where Stage 1 lists files Stage 2 then cannot
        // read): it serves as an empty document.
        if (extractor.extract(entry, block))
            backend->addBlock(std::move(block), 0);
        block.clear();
        entries.push_back(std::move(entry));
    }
    IndexSnapshot delta = backend->sealed();

    // Commit.
    std::scoped_lock lock(_mutex);
    PendingDelta pending;
    pending.index = std::move(delta);
    pending.first_doc = first_doc;
    pending.end_doc = first_doc + static_cast<DocId>(entries.size());
    for (const FileEntry &entry : entries) {
        DocId doc = _docs.add(entry.path, entry.size);
        if (doc != entry.doc)
            panic("LiveIndex: delta DocId assignment raced");
        killPathLocked(entry.path); // supersede any previous version
        _alive.insert_or_assign(entry.path, doc);
    }
    _deltas.push_back(std::move(pending));
    ++_stats.deltas_built;
    _stats.delta_docs += entries.size();
    _stats.doc_count = _docs.docCount();
    return true;
}

ServingUpdate
LiveIndex::makeUpdateLocked()
{
    ServingUpdate update;
    update.base = _base;
    update.docs = _docs;
    update.base_docs = _base_docs;
    update.deltas.reserve(_deltas.size());
    for (const PendingDelta &delta : _deltas) {
        DeltaSegment segment;
        segment.index = delta.index;
        segment.first_doc = delta.first_doc;
        segment.end_doc = delta.end_doc;
        update.deltas.push_back(std::move(segment));
    }
    update.tombstones = _tombstones;
    update.generation = _stats.generation;
    return update;
}

void
LiveIndex::publishLocked()
{
    if (faultFires("live.publish")) {
        // Simulated crash between state change and server swap: the
        // served generation is now behind the in-memory one. The
        // next cycle notices _publish_pending and republishes — and
        // a real crash here loses nothing, because the state that
        // mattered (the compacted generation) is already on disk.
        _publish_pending = true;
        ++_stats.skipped_publishes;
        return;
    }
    _server.publish(makeUpdateLocked());
    _publish_pending = false;
    ++_stats.publishes;
}

bool
LiveIndex::runCycle()
{
    ScanSnapshot next;
    if (!scanFileSystem(_fs, _root, next)) {
        // Aborted walk: discard (a partial scan would read as a mass
        // deletion) and retry next cycle from the old baseline.
        std::scoped_lock lock(_mutex);
        ++_stats.failed_scans;
        return false;
    }

    ScanDiff diff;
    {
        std::scoped_lock lock(_mutex);
        diff = diffScans(_scan, next);
    }

    std::vector<std::string> changed =
        mergePaths(diff.created, diff.modified);

    bool mutated = false;
    if (!changed.empty()) {
        if (!buildDelta(changed))
            return false; // scan baseline unchanged; retried next cycle
        mutated = true;
    }

    bool want_merge = false;
    {
        std::scoped_lock lock(_mutex);
        for (const std::string &path : diff.deleted) {
            killPathLocked(path);
            mutated = true;
        }
        _scan = std::move(next);
        ++_stats.scans;
        if (mutated || _publish_pending)
            publishLocked();
        want_merge = shouldCompactLocked();
    }
    if (want_merge)
        _wake_merger.notify_one();
    return mutated;
}

bool
LiveIndex::mergeAttempt(const MergeInput &input, IndexSnapshot &out)
{
    if (faultFires("live.merge"))
        return false;

    std::vector<InvertedIndex> parts;
    parts.reserve(input.deltas.size() + 1);
    parts.push_back(materialize(input.base, input.tombstones));
    for (const PendingDelta &delta : input.deltas)
        parts.push_back(materialize(delta.index, input.tombstones));

    InvertedIndex joined = _options.join_threads > 1
        ? joinParallel(std::move(parts), _options.join_threads)
        : joinSequential(std::move(parts));
    out = IndexSnapshot::seal(std::move(joined));
    return true;
}

bool
LiveIndex::compactNow()
{
    MergeInput input;
    {
        std::scoped_lock lock(_mutex);
        if (_merging || _deltas.empty())
            return false;
        _merging = true;
        input.base = _base;
        input.deltas = _deltas; // PendingDelta copies are two
                                // pointer copies per snapshot
        input.tombstones = _tombstones;
        input.docs = _docs;
        input.take = _deltas.size();
    }

    // Compaction proper runs with no lock held: the scanner keeps
    // committing new deltas (on DocIds past input.docs) and queries
    // keep serving while the merge grinds.
    IndexSnapshot merged;
    bool ok = false;
    double backoff = _options.retry_backoff_sec;
    std::string error;
    for (std::size_t attempt = 0;
         attempt < _options.merge_retries && !ok; ++attempt) {
        if (attempt != 0) {
            std::unique_lock lock(_mutex);
            // Backoff that a stop() can cut short.
            _wake_merger.wait_for(
                lock, std::chrono::duration<double>(backoff),
                [this] { return _stop; });
            if (_stop)
                break;
            backoff *= 2.0;
        }
        if (mergeAttempt(input, merged)) {
            ok = true;
            break;
        }
        error = "merge attempt failed";
        std::scoped_lock lock(_mutex);
        ++_stats.merge_failures;
    }

    std::uint64_t gen = 0;
    if (ok && _store != nullptr) {
        // Persist before publishing: a crash after this point
        // recovers to exactly the generation queries are about to
        // see. save() failures (injected crashes, full disk) demote
        // the whole compaction to a failed attempt — the in-memory
        // state is untouched and the deltas stay pending.
        gen = _store->save(merged, input.docs);
        if (gen == 0) {
            ok = false;
            error = "generation save failed";
            std::scoped_lock lock(_mutex);
            ++_stats.merge_failures;
        }
    }

    std::scoped_lock lock(_mutex);
    _merging = false;
    if (!ok) {
        // Degraded mode: serve on, report staleness. Deltas remain
        // pending, so a later compaction (next wake) retries with
        // everything accumulated since.
        _stats.degraded = true;
        _stats.last_error =
            error.empty() ? "merge stopped" : std::move(error);
        return false;
    }

    _base = std::move(merged);
    _base_docs = static_cast<DocId>(input.docs.docCount());
    _deltas.erase(_deltas.begin(),
                  _deltas.begin()
                      + static_cast<std::ptrdiff_t>(input.take));
    if (gen != 0)
        _stats.generation = gen;
    ++_stats.merges;
    _stats.degraded = false;
    _stats.last_error.clear();
    _stats.pending_deltas = _deltas.size();
    publishLocked();
    return true;
}

void
LiveIndex::scanLoop()
{
    std::unique_lock lock(_mutex);
    while (!_stop) {
        lock.unlock();
        runCycle();
        lock.lock();
        if (_stop)
            break;
        _wake_scanner.wait_for(
            lock,
            std::chrono::duration<double>(_options.scan_interval_sec),
            [this] { return _stop; });
    }
}

void
LiveIndex::mergeLoop()
{
    std::unique_lock lock(_mutex);
    while (!_stop) {
        _wake_merger.wait(lock, [this] {
            return _stop || shouldCompactLocked();
        });
        if (_stop)
            break;
        lock.unlock();
        compactNow();
        lock.lock();
    }
}

LiveStats
LiveIndex::stats() const
{
    std::scoped_lock lock(_mutex);
    LiveStats digest = _stats;
    digest.pending_deltas = _deltas.size();
    digest.tombstones = _tombstones.size();
    digest.doc_count = _docs.docCount();
    return digest;
}

} // namespace dsearch
