/**
 * @file
 * Re-scan change feed for the live index.
 *
 * The live pipeline has no OS file watcher (the FileSystem interface
 * is storage agnostic), so changes are detected the way ugrep-indexer
 * does its incremental re-index: walk the tree, record (size, mtime)
 * per file, and diff against the previous walk. A file is *modified*
 * when its size changed, or when both scans carry a real mtime and
 * the stamps differ — backends that report no mtime (the default 0)
 * degrade to size-only detection rather than producing false
 * positives.
 *
 * The other half of this header is crash recovery: a restarted
 * LiveIndex has a DocTable (from the recovered snapshot) but no scan
 * state. baselineFromDocTable() reconstructs a ScanSnapshot from the
 * table's paths and sizes (mtime 0 = unknown), so the first re-scan
 * after recovery reconciles everything that changed while the
 * process was down — created files appear as created, edits as
 * size-changed modifications, removals as deleted.
 */

#ifndef DSEARCH_LIVE_SCAN_DIFF_HH
#define DSEARCH_LIVE_SCAN_DIFF_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fs/file_system.hh"
#include "index/doc_table.hh"

namespace dsearch {

/** Per-file metadata captured by one scan. */
struct FileState
{
    std::uint64_t size = 0;
    std::uint64_t mtime = 0; ///< 0 = backend tracks no mtime.

    bool
    operator==(const FileState &o) const
    {
        return size == o.size && mtime == o.mtime;
    }
};

/**
 * One full walk of the corpus: path -> metadata, ordered by path so
 * diffing is a linear merge and delta DocId assignment is stable.
 */
using ScanSnapshot = std::map<std::string, FileState>;

/** Difference between two consecutive scans. */
struct ScanDiff
{
    std::vector<std::string> created;  ///< In next, not in prev.
    std::vector<std::string> modified; ///< In both, metadata changed.
    std::vector<std::string> deleted;  ///< In prev, not in next.

    bool
    empty() const
    {
        return created.empty() && modified.empty() && deleted.empty();
    }
};

/**
 * Walk @p fs from @p root and capture every regular file's state.
 *
 * Traversal is depth-first over the deterministic list() order. The
 * fault point "live.scan" aborts the walk (simulating an I/O error
 * mid-traversal); an aborted scan must be discarded, not diffed —
 * its missing tail would read as a mass deletion.
 *
 * @param fs   Filesystem to walk.
 * @param root Directory to start from.
 * @param out  Receives the scan (replaced).
 * @return False when the walk was aborted by "live.scan".
 */
bool scanFileSystem(const FileSystem &fs, const std::string &root,
                    ScanSnapshot &out);

/**
 * Diff two scans; see the file comment for the modification rule.
 */
ScanDiff diffScans(const ScanSnapshot &prev, const ScanSnapshot &next);

/**
 * Reconstruct a post-recovery scan baseline from a DocTable.
 *
 * Later DocIds win when several ids share a path (an id superseded by
 * a live update); sizes come from the table, mtimes are 0 (unknown),
 * so the first diff against a real scan falls back to size-only
 * modification detection for every recovered file.
 */
ScanSnapshot baselineFromDocTable(const DocTable &docs);

} // namespace dsearch

#endif // DSEARCH_LIVE_SCAN_DIFF_HH
