/**
 * @file
 * LiveIndex: the crash-safe incremental indexing pipeline.
 *
 * Everything below this layer builds once and seals once; LiveIndex
 * turns the sealed index into a living one. Two background threads
 * run an LSM-shaped state machine over a QueryServer:
 *
 *   scan ──> delta ──> publish ──> (merge ──> persist ──> publish)
 *                                   \── prune (SnapshotStore)
 *
 *  - The *scanner* thread re-walks the corpus (live/scan_diff.hh,
 *    ugrep-indexer style), turns the diff into a small delta segment
 *    through the same extractor + IndexBackend path the base build
 *    used, tombstones deleted/superseded documents, and publishes
 *    the new (base + deltas + tombstones) generation to the server —
 *    an atomic hot-swap, zero query downtime.
 *  - The *merger* thread wakes when enough deltas accumulate,
 *    compacts base + deltas into a fresh unified base (decoding the
 *    sealed segments, dropping tombstoned postings, joining via
 *    index_join), persists the result crash-safely through
 *    SnapshotStore, and publishes. Merging runs outside the state
 *    lock: delta building and query serving continue while it works.
 *
 * DocIds are dense and never reused: the base owns [0, base_docs),
 * each delta the contiguous range assigned while it was built. A
 * modified file is indexed as a *new* document and its old DocId
 * tombstoned; tombstones are a permanent universe mask (a dead DocId
 * stays in the DocTable, and without the mask a NOT-dominated query
 * would resurrect it as an "empty" document after compaction strips
 * its postings).
 *
 * Robustness contract:
 *
 *  - Crash at any stage recovers: only compacted generations are
 *    persisted (via SnapshotStore's temp + fsync + rename chain), so
 *    a process killed mid-delta-build, mid-merge or mid-publish
 *    restarts from the newest valid generation; bootstrap()
 *    reconstructs scan state from the recovered DocTable and the
 *    first cycle re-indexes everything that changed while the
 *    process was down (deltas are cheap to rebuild — that is why
 *    they are not persisted).
 *  - A failing merge retries with doubling backoff
 *    (LiveIndexOptions::merge_retries); on exhaustion the pipeline
 *    *degrades instead of dying*: the current generation keeps
 *    serving, deltas keep accumulating and publishing, and stats()
 *    reports degraded = true with the failure message until a later
 *    merge succeeds.
 *  - Every stage has a deterministic fault point (util/fault.hh):
 *    "live.scan" aborts a walk, "live.delta_build" a delta,
 *    "live.merge" a compaction attempt, "live.publish" skips one
 *    server publish (re-published next cycle). Tests drive each.
 */

#ifndef DSEARCH_LIVE_LIVE_INDEX_HH
#define DSEARCH_LIVE_LIVE_INDEX_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/snapshot_store.hh"
#include "live/scan_diff.hh"
#include "search/live_searcher.hh"
#include "search/query_server.hh"
#include "text/tokenizer.hh"

namespace dsearch {

/** Tuning knobs for a LiveIndex. */
struct LiveIndexOptions
{
    /** Pending deltas that wake the merger (>= 1). */
    std::size_t merge_threshold = 4;

    /** Compaction attempts per merge before degrading (>= 1). */
    std::size_t merge_retries = 3;

    /** Backoff before the first retry, seconds; doubles per retry. */
    double retry_backoff_sec = 0.005;

    /** Seconds between background scan cycles. */
    double scan_interval_sec = 0.05;

    /** Join threads for compaction (1 = sequential join). */
    std::size_t join_threads = 1;
};

/** Health and progress of the live pipeline; see stats(). */
struct LiveStats
{
    std::uint64_t scans = 0;         ///< Completed scan cycles.
    std::uint64_t failed_scans = 0;  ///< Walks aborted ("live.scan").
    std::uint64_t deltas_built = 0;  ///< Delta segments committed.
    std::uint64_t delta_docs = 0;    ///< Documents indexed via deltas.
    std::uint64_t failed_deltas = 0; ///< Builds aborted ("live.delta_build").
    std::uint64_t merges = 0;        ///< Successful compactions.
    std::uint64_t merge_failures = 0; ///< Failed compaction attempts.
    std::uint64_t publishes = 0;     ///< Server hot-swaps performed.
    std::uint64_t skipped_publishes = 0; ///< "live.publish" skips.
    std::uint64_t generation = 0;    ///< Newest persisted generation.
    std::uint64_t pending_deltas = 0; ///< Deltas awaiting compaction.
    std::uint64_t tombstones = 0;    ///< Dead DocIds masked.
    std::uint64_t doc_count = 0;     ///< DocTable size (incl. dead).

    /**
     * Staleness/health: true after a merge exhausted its retries.
     * The served index stays fresh (deltas still publish) but
     * compaction — and therefore persistence — is behind; last_error
     * says why. Cleared by the next successful merge.
     */
    bool degraded = false;
    std::string last_error;
};

/** The live incremental pipeline; see the file comment. */
class LiveIndex
{
  public:
    /**
     * @param fs      Corpus to watch (must outlive the LiveIndex).
     * @param root    Directory the scans walk.
     * @param server  Serving endpoint to hot-swap (outlives this).
     * @param store   Crash-safe persistence for compacted
     *                generations; nullptr = in-memory only (no crash
     *                safety, no prune). Outlives this when given.
     * @param options Pipeline tuning.
     * @param tok     Tokenizer settings — pass the base build's
     *                (Engine::tokenizerOptions()) so deltas tokenize
     *                identically.
     */
    LiveIndex(const FileSystem &fs, std::string root,
              QueryServer &server, SnapshotStore *store,
              LiveIndexOptions options = {}, TokenizerOptions tok = {});

    /** Stops the background threads if still running. */
    ~LiveIndex();

    LiveIndex(const LiveIndex &) = delete;
    LiveIndex &operator=(const LiveIndex &) = delete;

    /**
     * Adopt a finished base build (the Engine hand-off): serve it,
     * persist it as the first generation when a store is attached,
     * and baseline the scan state from the live corpus.
     * Call exactly one of adopt()/bootstrap(), before start().
     */
    void adopt(Engine::Result &&built);

    /**
     * Recover-or-start-empty: load the newest valid generation from
     * the store (empty base when none or no store), reconstruct the
     * alive/tombstone maps from the recovered DocTable, run one
     * synchronous reconciliation cycle (changes that happened while
     * the process was down become the first delta), and publish.
     *
     * @return The generation recovered, 0 when starting empty.
     */
    std::uint64_t bootstrap();

    /** Start the background scanner + merger threads. Idempotent. */
    void start();

    /** Stop and join the background threads. Idempotent. */
    void stop();

    /**
     * Run one scan -> delta -> publish cycle synchronously (the
     * scanner thread's body; exposed so tests and benches can drive
     * the pipeline deterministically without timing dependence).
     *
     * @return True when the cycle changed the served state.
     */
    bool runCycle();

    /**
     * Run one compaction synchronously (the merger thread's body,
     * including retry/backoff). No-op when nothing is pending.
     *
     * @return True when a merge succeeded.
     */
    bool compactNow();

    /** @return Pipeline health and progress counters. */
    LiveStats stats() const;

  private:
    /** A committed, not-yet-compacted increment. */
    struct PendingDelta
    {
        IndexSnapshot index; ///< Sealed delta postings.
        DocId first_doc = 0;
        DocId end_doc = 0;
    };

    /** Everything compaction needs, captured under _mutex. */
    struct MergeInput
    {
        IndexSnapshot base;
        std::vector<PendingDelta> deltas;
        DocSet tombstones;
        DocTable docs;    ///< Consistent with base + deltas.
        std::size_t take = 0; ///< Deltas consumed on success.
    };

    /** Mark @p doc dead (sorted insert; no-op when already dead). */
    void tombstoneLocked(DocId doc);

    /** Tombstone @p path's alive doc, if any, and forget it. */
    void killPathLocked(const std::string &path);

    /**
     * Extract @p paths into a sealed delta owning DocIds
     * [docCount, docCount + |paths|). Pure until commit: state is
     * only mutated after extraction succeeds, so an aborted build
     * ("live.delta_build") leaves nothing behind.
     *
     * @return False when aborted.
     */
    bool buildDelta(const std::vector<std::string> &paths);

    /** Push the current state to the server ("live.publish" point). */
    void publishLocked();

    /** Build a ServingUpdate from the current state (under _mutex). */
    ServingUpdate makeUpdateLocked();

    /** One compaction attempt over @p input ("live.merge" point). */
    bool mergeAttempt(const MergeInput &input, IndexSnapshot &out);

    /** Scanner-thread body. */
    void scanLoop();

    /** Merger-thread body. */
    void mergeLoop();

    /** @return True when enough deltas are pending (under _mutex). */
    bool
    shouldCompactLocked() const
    {
        return _deltas.size() >= _options.merge_threshold;
    }

    const FileSystem &_fs;
    std::string _root;
    QueryServer &_server;
    SnapshotStore *_store;
    LiveIndexOptions _options;
    TokenizerOptions _tok;

    // Served state: base + deltas + tombstones + table. Guarded by
    // _mutex; the scanner commits deltas, the merger swaps the base.
    mutable std::mutex _mutex;
    IndexSnapshot _base;
    DocId _base_docs = 0;
    std::vector<PendingDelta> _deltas;
    DocSet _tombstones;
    DocTable _docs;
    std::map<std::string, DocId> _alive; ///< path -> serving DocId.
    ScanSnapshot _scan;
    bool _publish_pending = false; ///< A publish was skipped/failed.
    bool _merging = false;         ///< A compaction is in flight.

    // Background threads.
    std::thread _scanner;
    std::thread _merger;
    std::condition_variable _wake_scanner;
    std::condition_variable _wake_merger;
    bool _running = false;
    bool _stop = false;

    // Stats (guarded by _mutex).
    LiveStats _stats;
};

} // namespace dsearch

#endif // DSEARCH_LIVE_LIVE_INDEX_HH
