#include "live/scan_diff.hh"

#include "util/fault.hh"

namespace dsearch {

namespace {

/** Depth-first walk; returns false when "live.scan" fires. */
bool
walk(const FileSystem &fs, const std::string &dir, ScanSnapshot &out)
{
    if (faultFires("live.scan"))
        return false;
    for (const DirEntry &entry : fs.list(dir)) {
        std::string path = joinPath(dir, entry.name);
        if (entry.is_dir) {
            if (!walk(fs, path, out))
                return false;
        } else {
            FileState state{fs.fileSize(path), fs.fileMtime(path)};
            out.emplace(std::move(path), state);
        }
    }
    return true;
}

} // namespace

bool
scanFileSystem(const FileSystem &fs, const std::string &root,
               ScanSnapshot &out)
{
    out.clear();
    return walk(fs, root.empty() ? "/" : root, out);
}

ScanDiff
diffScans(const ScanSnapshot &prev, const ScanSnapshot &next)
{
    ScanDiff diff;
    auto p = prev.begin();
    auto n = next.begin();
    while (p != prev.end() || n != next.end()) {
        if (p == prev.end()) {
            diff.created.push_back(n->first);
            ++n;
        } else if (n == next.end()) {
            diff.deleted.push_back(p->first);
            ++p;
        } else if (p->first < n->first) {
            diff.deleted.push_back(p->first);
            ++p;
        } else if (n->first < p->first) {
            diff.created.push_back(n->first);
            ++n;
        } else {
            const FileState &a = p->second;
            const FileState &b = n->second;
            // Size change always counts; mtime change only when both
            // scans actually carry a stamp (0 = untracked/unknown).
            bool modified = a.size != b.size
                || (a.mtime != 0 && b.mtime != 0
                    && a.mtime != b.mtime);
            if (modified)
                diff.modified.push_back(n->first);
            ++p;
            ++n;
        }
    }
    return diff;
}

ScanSnapshot
baselineFromDocTable(const DocTable &docs)
{
    ScanSnapshot base;
    // Walk ids in order; insert_or_assign makes the newest id per
    // path win, matching the serving rule that a re-added path's
    // older DocIds are tombstoned.
    for (DocId doc = 0; doc < docs.docCount(); ++doc)
        base.insert_or_assign(docs.path(doc),
                              FileState{docs.sizeBytes(doc), 0});
    return base;
}

} // namespace dsearch
