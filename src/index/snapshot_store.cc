#include "index/snapshot_store.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "index/serialize.hh"
#include "util/fault.hh"
#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define DSEARCH_HAVE_FSYNC 1
#endif

namespace dsearch {

namespace stdfs = std::filesystem;

namespace {

constexpr char manifest_name[] = "MANIFEST";
constexpr char snapshot_prefix[] = "snapshot-";
constexpr char snapshot_suffix[] = ".idx";

/** Zero-padded generation stem, e.g. "snapshot-000042.idx". */
std::string
snapshotName(std::uint64_t gen)
{
    std::string digits = std::to_string(gen);
    if (digits.size() < 6)
        digits.insert(0, 6 - digits.size(), '0');
    return snapshot_prefix + digits + snapshot_suffix;
}

/** @return The generation of a snapshot file name, 0 when not one. */
std::uint64_t
parseSnapshotName(const std::string &name)
{
    const std::size_t prefix_len = sizeof(snapshot_prefix) - 1;
    const std::size_t suffix_len = sizeof(snapshot_suffix) - 1;
    if (name.size() <= prefix_len + suffix_len)
        return 0;
    if (name.compare(0, prefix_len, snapshot_prefix) != 0)
        return 0;
    if (name.compare(name.size() - suffix_len, suffix_len,
                     snapshot_suffix)
        != 0) {
        return 0;
    }
    std::uint64_t gen = 0;
    for (std::size_t i = prefix_len; i < name.size() - suffix_len;
         ++i) {
        char c = name[i];
        if (c < '0' || c > '9')
            return 0;
        gen = gen * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return gen;
}

/**
 * Flush @p path's bytes to stable storage. Opens a fresh descriptor:
 * the data was written through a stream that is closed by now, and
 * fsync on any descriptor of the file covers its page-cache state.
 */
void
syncPath(const std::string &path)
{
#ifdef DSEARCH_HAVE_FSYNC
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)path;
#endif
}

/** Flush directory metadata (the rename itself) to stable storage. */
void
syncDirectory(const std::string &dir)
{
#ifdef DSEARCH_HAVE_FSYNC
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#else
    (void)dir;
#endif
}

/** Atomic within-directory rename; @return false (warned) on error. */
bool
renameOver(const std::string &from, const std::string &to)
{
    std::error_code ec;
    stdfs::rename(from, to, ec);
    if (ec) {
        warn("SnapshotStore: rename '" + from + "' -> '" + to
             + "': " + ec.message());
        return false;
    }
    return true;
}

} // namespace

SnapshotStore::SnapshotStore(std::string directory,
                             SnapshotStoreOptions options)
    : _directory(std::move(directory)), _options(options)
{
    if (_options.keep_generations == 0)
        _options.keep_generations = 1;
    std::error_code ec;
    stdfs::create_directories(_directory, ec);
    if (ec) {
        fatal("SnapshotStore: cannot create directory '" + _directory
              + "': " + ec.message());
    }
}

std::string
SnapshotStore::generationPath(std::uint64_t gen) const
{
    return _directory + "/" + snapshotName(gen);
}

std::vector<std::uint64_t>
SnapshotStore::generationsLocked() const
{
    std::vector<std::uint64_t> gens;

    // Manifest first (the common, cheap case) ...
    std::ifstream manifest(_directory + "/" + manifest_name);
    std::uint64_t gen = 0;
    while (manifest >> gen) {
        if (gen != 0)
            gens.push_back(gen);
    }

    // ... then the scan, which also sees generations a crash landed
    // between rename and manifest write.
    std::error_code ec;
    stdfs::directory_iterator it(_directory, ec);
    if (!ec) {
        for (const stdfs::directory_entry &entry : it) {
            std::uint64_t found =
                parseSnapshotName(entry.path().filename().string());
            if (found != 0)
                gens.push_back(found);
        }
    }

    std::sort(gens.begin(), gens.end());
    gens.erase(std::unique(gens.begin(), gens.end()), gens.end());

    // Manifest entries whose file vanished are stale hints; drop them
    // so load() does not chase ghosts.
    gens.erase(std::remove_if(gens.begin(), gens.end(),
                              [this](std::uint64_t g) {
                                  std::error_code exists_ec;
                                  return !stdfs::exists(
                                      generationPath(g), exists_ec);
                              }),
               gens.end());
    return gens;
}

std::vector<std::uint64_t>
SnapshotStore::generations() const
{
    std::scoped_lock lock(_mutex);
    return generationsLocked();
}

std::uint64_t
SnapshotStore::newestGeneration() const
{
    std::scoped_lock lock(_mutex);
    std::vector<std::uint64_t> gens = generationsLocked();
    return gens.empty() ? 0 : gens.back();
}

bool
SnapshotStore::writeManifest(const std::vector<std::uint64_t> &gens)
{
    const std::string path = _directory + "/" + manifest_name;
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("SnapshotStore: cannot write '" + tmp + "'");
            return false;
        }
        for (std::uint64_t gen : gens)
            out << gen << "\n";
        out.flush();
        if (!out)
            return false;
    }
    if (_options.sync)
        syncPath(tmp);
    if (!renameOver(tmp, path))
        return false;
    if (_options.sync)
        syncDirectory(_directory);
    return true;
}

void
SnapshotStore::prune(std::vector<std::uint64_t> &gens)
{
    while (gens.size() > _options.keep_generations) {
        std::error_code ec;
        stdfs::remove(generationPath(gens.front()), ec);
        gens.erase(gens.begin());
    }
}

void
SnapshotStore::removePartials()
{
    std::error_code ec;
    stdfs::directory_iterator it(_directory, ec);
    if (ec)
        return;
    for (const stdfs::directory_entry &entry : it) {
        if (entry.path().extension() == ".tmp") {
            std::error_code rm_ec;
            if (stdfs::remove(entry.path(), rm_ec) && !rm_ec)
                ++_cleaned;
        }
    }
}

std::uint64_t
SnapshotStore::save(const IndexSnapshot &snapshot, const DocTable &docs)
{
    std::scoped_lock lock(_mutex);

    std::vector<std::uint64_t> gens = generationsLocked();
    const std::uint64_t gen = (gens.empty() ? 0 : gens.back()) + 1;
    const std::string final_path = generationPath(gen);
    const std::string tmp_path = final_path + ".tmp";

    // Serialize to memory first: the write below is then a plain byte
    // copy, which the crash_mid_write fault can cut at an arbitrary
    // point — exactly the torn state a real crash leaves.
    std::ostringstream buffer(std::ios::binary);
    if (!saveSnapshot(snapshot, docs, buffer))
        return 0;
    const std::string bytes = buffer.str();

    // Another store instance recovering this directory concurrently
    // (a restarted reader) reaps *.tmp partials — including, in a
    // narrow window, the temp this save is about to rename. That
    // shows up as the rename's source vanishing underfoot: rewrite
    // the temp and rename again, bounded. Any rename failure that
    // leaves the temp in place is a real error.
    int attempts = 3;
    while (true) {
        {
            std::ofstream out(tmp_path,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                warn("SnapshotStore: cannot open '" + tmp_path + "'");
                return 0;
            }
            if (faultFires("snapshot_store.crash_mid_write")) {
                // Simulated crash: half the bytes reach the temp
                // file, no rename. Recovery must ignore and remove
                // it.
                out.write(bytes.data(),
                          static_cast<std::streamsize>(bytes.size() / 2));
                return 0;
            }
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
            out.flush();
            if (!out) {
                warn("SnapshotStore: short write to '" + tmp_path + "'");
                return 0;
            }
        }
        if (_options.sync)
            syncPath(tmp_path);

        if (faultFires("snapshot_store.crash_before_rename")) {
            // Simulated crash: complete temp file, never published.
            return 0;
        }

        if (renameOver(tmp_path, final_path))
            break;
        std::error_code exists_ec;
        if (stdfs::exists(tmp_path, exists_ec) || --attempts <= 0)
            return 0;
    }
    if (_options.sync)
        syncDirectory(_directory);

    if (faultFires("snapshot_store.crash_before_manifest")) {
        // Simulated crash: the generation file exists but the
        // manifest still lists the old set. The directory scan in
        // generationsLocked() finds it anyway.
        return gen;
    }

    gens.push_back(gen);
    prune(gens);
    if (!writeManifest(gens)) {
        // The snapshot itself is durable and scan-discoverable; a
        // manifest failure only loses the hint.
        warn("SnapshotStore: manifest update failed for generation "
             + std::to_string(gen));
    }
    return gen;
}

std::uint64_t
SnapshotStore::load(IndexSnapshot &snapshot, DocTable &docs)
{
    std::scoped_lock lock(_mutex);

    snapshot = IndexSnapshot();
    docs = DocTable{};

    removePartials();

    // Another store instance on this directory (a hot-swap publisher)
    // may prune old generations — or publish new ones — while this
    // load walks its candidate list. A candidate that *vanished*
    // underfoot is staleness, not corruption: re-scan the directory
    // (which also surfaces anything published since) and keep going,
    // instead of misdiagnosing the prune as a corrupt file. The same
    // race can even yield an *empty* scan — a directory iteration
    // overlapping the saver's rename + prune can miss the old entry
    // (already unlinked) and the new one (added behind the iterator)
    // at once — so an empty candidate list retries too. Bounded so an
    // adversarial writer cannot spin this loop forever.
    int rescans_left = 8;
    std::vector<std::uint64_t> gens = generationsLocked();
    while (!gens.empty() || rescans_left > 0) {
        if (gens.empty()) {
            --rescans_left;
            gens = generationsLocked();
            continue;
        }
        const std::uint64_t gen = gens.back();
        gens.pop_back();
        if (loadSnapshotFile(snapshot, docs, generationPath(gen))) {
            // Re-sync the manifest with what recovery establishes:
            // this generation and the older fallbacks that remain.
            std::vector<std::uint64_t> good = gens;
            good.push_back(gen);
            writeManifest(good);
            return gen;
        }
        snapshot = IndexSnapshot();
        docs = DocTable{};

        std::error_code exists_ec;
        if (!stdfs::exists(generationPath(gen), exists_ec)) {
            if (rescans_left-- > 0)
                gens = generationsLocked();
            continue;
        }
        warn("SnapshotStore: generation " + std::to_string(gen)
             + " failed validation; falling back");
        std::error_code ec;
        if (stdfs::remove(generationPath(gen), ec) && !ec) {
            ++_cleaned;
            ++_corrupt;
        }
    }
    return 0;
}

} // namespace dsearch
