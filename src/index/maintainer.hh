/**
 * @file
 * Incremental index maintenance.
 *
 * The paper builds the index in one batch; a deployed desktop search
 * keeps it alive while files appear, change and vanish. The
 * IndexMaintainer owns a built index + document table and applies
 * single-document updates:
 *
 *  - addDocument()     index a new file (new doc id);
 *  - removeDocument()  drop a deleted file's postings (the id and
 *                      path stay in the table, marked dead);
 *  - refreshDocument() re-extract a modified file under its id.
 *
 * Document IDs are never reused, so saved query results and logs stay
 * meaningful across updates. aliveDocs() provides the universe for
 * NOT queries after deletions (see Searcher's universe constructor).
 *
 * Single-threaded by design: updates are rare compared to queries,
 * and a deployment serializes them through one maintenance thread.
 */

#ifndef DSEARCH_INDEX_MAINTAINER_HH
#define DSEARCH_INDEX_MAINTAINER_HH

#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"
#include "text/term_extractor.hh"
#include "text/tokenizer.hh"

namespace dsearch {

/** Incremental index owner; see the file comment. */
class IndexMaintainer
{
  public:
    /**
     * Take ownership of a built index.
     *
     * @param index Built index (moved in).
     * @param docs  Matching document table (moved in); every existing
     *              document starts alive.
     * @param opts  Tokenizer settings for future extractions (must
     *              match the ones the index was built with).
     */
    IndexMaintainer(InvertedIndex index, DocTable docs,
                    TokenizerOptions opts = {});

    /**
     * Index a new file.
     *
     * @param fs   Filesystem to read from.
     * @param path File to index.
     * @return The new document ID, or invalid_doc when the file could
     *         not be read (nothing is modified in that case).
     */
    DocId addDocument(const FileSystem &fs, const std::string &path);

    /**
     * Remove a document's postings and mark it dead.
     *
     * @return False when @p doc is unknown or already dead.
     */
    bool removeDocument(DocId doc);

    /**
     * Re-extract a changed file under its existing ID.
     *
     * @return False when @p doc is unknown/dead or the file is
     *         unreadable (the document is left dead in that case —
     *         its old content is gone either way).
     */
    bool refreshDocument(const FileSystem &fs, DocId doc);

    /** @return True when @p doc exists and is alive. */
    bool alive(DocId doc) const;

    /** @return Number of alive documents. */
    std::size_t aliveCount() const { return _alive_count; }

    /** @return Sorted alive-document universe for NOT queries. */
    std::vector<DocId> aliveDocs() const;

    /**
     * Drop terms whose posting lists were emptied by removals.
     *
     * @return Terms erased.
     */
    std::size_t vacuum();

    /** @return The maintained index (valid until the next update). */
    const InvertedIndex &index() const { return _index; }

    /**
     * Seal the current state into an immutable snapshot for the
     * searchers. Deep-copies the index (the maintained one keeps
     * mutating), so this is a per-update-batch operation, not a
     * per-query one: take a snapshot after applying a batch of
     * changes and serve queries from it until the next batch.
     */
    IndexSnapshot snapshot() const;

    /** @return The document table (IDs are never reused). */
    const DocTable &docs() const { return _docs; }

    /** Move the index out (ends maintenance). */
    InvertedIndex releaseIndex() { return std::move(_index); }

  private:
    InvertedIndex _index;
    DocTable _docs;
    std::vector<bool> _alive;
    std::size_t _alive_count = 0;
    TokenizerOptions _opts;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_MAINTAINER_HH
