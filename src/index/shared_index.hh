/**
 * @file
 * Concurrent index wrappers.
 *
 * SharedIndex is Implementation 1 of the paper: one index for all
 * threads, locked on every update. ShardedIndex is a finer-grained
 * alternative (per-term-hash shard locks) built for the lock
 * granularity ablation; the paper discusses the single lock only.
 *
 * Shard selection reuses the FNV hash cached in each TermBlock span —
 * no term is re-hashed here — and takes it from the *high* bits of
 * the hash, because the per-shard HashMaps bucket on the low bits:
 * selecting shards by the same low bits would leave each shard's map
 * with only every 2^k-th bucket reachable.
 */

#ifndef DSEARCH_INDEX_SHARED_INDEX_HH
#define DSEARCH_INDEX_SHARED_INDEX_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "index/inverted_index.hh"
#include "util/fnv_hash.hh"

namespace dsearch {

/**
 * One shared inverted index guarded by one mutex (Implementation 1).
 *
 * The mutex lives next to the data it guards (CP.50); all accessors
 * take it internally, and the unguarded index is only reachable after
 * the owner is done building via release().
 */
class SharedIndex
{
  public:
    SharedIndex() = default;

    /** Locked en-bloc insert. */
    void addBlock(const TermBlock &block);

    /** Locked immediate-mode insert (ablation E7). */
    void addOccurrence(std::string_view term, DocId doc);

    /** Locked immediate-mode insert with a precomputed hash. */
    void addOccurrenceHashed(std::uint64_t hash, std::string_view term,
                             DocId doc);

    /** Locked snapshot of the term count. */
    std::size_t termCount() const;

    /** Locked snapshot of the posting count. */
    std::uint64_t postingCount() const;

    /**
     * Move the built index out. Only valid once all writer threads
     * have been joined.
     */
    InvertedIndex release();

  private:
    mutable std::mutex _mutex;
    InvertedIndex _index; ///< Guarded by _mutex.
};

/**
 * Sharded-lock index: term hashes select one of 2^k shards, each with
 * its own lock, so concurrent updates to different shards do not
 * contend. joinInto() produces a plain InvertedIndex afterwards.
 */
class ShardedIndex
{
  public:
    /** @param shard_count Rounded up to a power of two, >= 1. */
    explicit ShardedIndex(std::size_t shard_count);

    /** @return Actual shard count (power of two). */
    std::size_t shardCount() const { return _shards.size(); }

    /**
     * En-bloc insert; locks each shard at most once per block by
     * grouping the block's span indices by shard first. Shard choice
     * reuses the span hashes (see the file comment).
     */
    void addBlock(const TermBlock &block);

    /** Total terms across shards (locks each shard briefly). */
    std::size_t termCount() const;

    /** Total postings across shards. */
    std::uint64_t postingCount() const;

    /**
     * Merge every shard into @p out (single-threaded; call after all
     * writers joined).
     */
    void joinInto(InvertedIndex &out);

  private:
    struct Shard
    {
        std::mutex mutex;
        InvertedIndex index; ///< Guarded by mutex.
    };

    /** Shard of a hash: top log2(shardCount) bits. */
    std::size_t
    shardOf(std::uint64_t hash) const
    {
        return static_cast<std::size_t>(hash >> _shard_shift)
               & (_shards.size() - 1);
    }

    std::vector<std::unique_ptr<Shard>> _shards;
    unsigned _shard_shift = 0;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_SHARED_INDEX_HH
