/**
 * @file
 * Concurrent index wrappers.
 *
 * SharedIndex is Implementation 1 of the paper: one index for all
 * threads, locked on every update. ShardedIndex is a finer-grained
 * alternative (per-term-hash shard locks) built for the lock
 * granularity ablation; the paper discusses the single lock only.
 */

#ifndef DSEARCH_INDEX_SHARED_INDEX_HH
#define DSEARCH_INDEX_SHARED_INDEX_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "index/inverted_index.hh"
#include "util/fnv_hash.hh"

namespace dsearch {

/**
 * One shared inverted index guarded by one mutex (Implementation 1).
 *
 * The mutex lives next to the data it guards (CP.50); all accessors
 * take it internally, and the unguarded index is only reachable after
 * the owner is done building via release().
 */
class SharedIndex
{
  public:
    SharedIndex() = default;

    /** Locked en-bloc insert. */
    void addBlock(const TermBlock &block);

    /** Locked immediate-mode insert (ablation E7). */
    void addOccurrence(const std::string &term, DocId doc);

    /** Locked snapshot of the term count. */
    std::size_t termCount() const;

    /** Locked snapshot of the posting count. */
    std::uint64_t postingCount() const;

    /**
     * Move the built index out. Only valid once all writer threads
     * have been joined.
     */
    InvertedIndex release();

  private:
    mutable std::mutex _mutex;
    InvertedIndex _index; ///< Guarded by _mutex.
};

/**
 * Sharded-lock index: term hashes select one of 2^k shards, each with
 * its own lock, so concurrent updates to different shards do not
 * contend. joinInto() produces a plain InvertedIndex afterwards.
 */
class ShardedIndex
{
  public:
    /** @param shard_count Rounded up to a power of two, >= 1. */
    explicit ShardedIndex(std::size_t shard_count);

    /** @return Actual shard count (power of two). */
    std::size_t shardCount() const { return _shards.size(); }

    /**
     * En-bloc insert; locks each shard at most once per block by
     * grouping the block's terms by shard first.
     */
    void addBlock(const TermBlock &block);

    /** Total terms across shards (locks each shard briefly). */
    std::size_t termCount() const;

    /** Total postings across shards. */
    std::uint64_t postingCount() const;

    /**
     * Merge every shard into @p out (single-threaded; call after all
     * writers joined).
     */
    void joinInto(InvertedIndex &out);

  private:
    struct Shard
    {
        std::mutex mutex;
        InvertedIndex index; ///< Guarded by mutex.
    };

    std::size_t shardOf(const std::string &term) const;

    std::vector<std::unique_ptr<Shard>> _shards;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_SHARED_INDEX_HH
