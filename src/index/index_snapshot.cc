#include "index/index_snapshot.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsearch {

// ----------------------------------------------------------------------
// PostingSegment
// ----------------------------------------------------------------------

PostingSegment
PostingSegment::build(InvertedIndex &&index, PostingCodec codec)
{
    InvertedIndex source = std::move(index);
    source.sortPostings();

    PostingSegment segment;
    segment._postings = source.postingCount();
    segment._codec = codec;
    const bool packed = codec == PostingCodec::Packed;

    // Sizing pass: exact arena and skip-table sizes, so each is a
    // single allocation regardless of term count.
    std::size_t arena_bytes = 0;
    std::size_t skip_entries = 0;
    source.forEachTerm(
        [&](const std::string &, const PostingList &list) {
            arena_bytes +=
                packed ? encodedPostingBytesPacked(list.data(),
                                                   list.size())
                       : encodedPostingBytes(list.data(), list.size());
            skip_entries += postingSkipCount(list.size());
        });
    segment.reserveSealed(source.termCount(), arena_bytes,
                          skip_entries);

    // Encoding pass: every term's blocks, back to back.
    source.forEachTerm(
        [&segment, packed](const std::string &term,
                           const PostingList &list) {
            if (list.empty())
                return; // removeDoc() leftovers carry no postings
            TermEntry entry;
            entry.offset = segment._arena.size();
            entry.skip_begin =
                static_cast<std::uint32_t>(segment._skips.size());
            if (packed)
                encodePostingsPacked(list.data(), list.size(),
                                     segment._arena, segment._skips);
            else
                encodePostings(list.data(), list.size(), segment._arena,
                               segment._skips);
            entry.bytes = static_cast<std::uint32_t>(
                segment._arena.size() - entry.offset);
            entry.count = static_cast<std::uint32_t>(list.size());
            entry.skip_count = static_cast<std::uint32_t>(
                segment._skips.size() - entry.skip_begin);
            segment._terms.insert(term, entry);
        });

    segment.finishSealed();
    return segment; // `source` (the uncompressed postings) dies here
}

PostingCursor
PostingSegment::cursor(std::string_view term) const
{
    const TermEntry *entry = _terms.find(term);
    if (entry == nullptr)
        return {};
    return cursorFor(*entry);
}

void
PostingSegment::reserveSealed(std::size_t terms,
                              std::size_t arena_bytes,
                              std::size_t skip_entries)
{
    _terms.reserve(terms);
    _arena.reserve(arena_bytes);
    _skips.reserve(skip_entries);
}

bool
PostingSegment::addSealedTerm(std::string term, std::uint32_t count,
                              const std::uint8_t *bytes,
                              std::uint32_t byte_len,
                              const SkipEntry *skips,
                              std::uint32_t skip_count)
{
    TermEntry entry;
    entry.offset = _arena.size();
    entry.bytes = byte_len;
    entry.count = count;
    entry.skip_begin = static_cast<std::uint32_t>(_skips.size());
    entry.skip_count = skip_count;
    if (!_terms.insert(std::move(term), entry))
        return false;
    _arena.insert(_arena.end(), bytes, bytes + byte_len);
    _skips.insert(_skips.end(), skips, skips + skip_count);
    _postings += count;
    return true;
}

void
PostingSegment::finishSealed()
{
    _sorted.clear();
    _sorted.reserve(_terms.size());
    for (const TermSlot &slot : _terms)
        _sorted.push_back(&slot);
    std::sort(_sorted.begin(), _sorted.end(),
              [](const TermSlot *a, const TermSlot *b) {
                  return a->key < b->key;
              });
}

// ----------------------------------------------------------------------
// SegmentReader
// ----------------------------------------------------------------------

PostingCursor
SegmentReader::cursor(std::string_view term) const
{
    if (_segment != nullptr)
        return _segment->cursor(term);
    if (_raw == nullptr)
        return {};
    const PostingList *list = _raw->postings(term);
    if (list == nullptr)
        return {};
    return PostingCursor(list->data(), list->size());
}

std::size_t
SegmentReader::termCount() const
{
    if (_segment != nullptr)
        return _segment->termCount();
    return _raw == nullptr ? 0 : _raw->termCount();
}

std::uint64_t
SegmentReader::postingCount() const
{
    if (_segment != nullptr)
        return _segment->postingCount();
    return _raw == nullptr ? 0 : _raw->postingCount();
}

std::uint32_t
SegmentReader::termDocCount(std::string_view term) const
{
    if (_segment != nullptr)
        return _segment->termDocCount(term);
    if (_raw == nullptr)
        return 0;
    const PostingList *list = _raw->postings(term);
    return list == nullptr ? 0
                           : static_cast<std::uint32_t>(list->size());
}

// ----------------------------------------------------------------------
// IndexSnapshot
// ----------------------------------------------------------------------

IndexSnapshot
IndexSnapshot::seal(InvertedIndex &&index, PostingCodec codec)
{
    IndexSnapshot snapshot;
    snapshot._segments.push_back(std::make_shared<PostingSegment>(
        PostingSegment::build(std::move(index), codec)));
    return snapshot;
}

IndexSnapshot
IndexSnapshot::seal(std::vector<InvertedIndex> &&replicas,
                    PostingCodec codec)
{
    IndexSnapshot snapshot;
    snapshot._segments.reserve(replicas.size());
    for (InvertedIndex &replica : replicas) {
        snapshot._segments.push_back(std::make_shared<PostingSegment>(
            PostingSegment::build(std::move(replica), codec)));
    }
    replicas.clear();
    return snapshot;
}

IndexSnapshot
IndexSnapshot::fromSealed(PostingSegment &&segment)
{
    IndexSnapshot snapshot;
    snapshot._segments.push_back(
        std::make_shared<PostingSegment>(std::move(segment)));
    return snapshot;
}

SegmentReader
IndexSnapshot::segment(std::size_t i) const
{
    if (i >= _segments.size())
        panic("IndexSnapshot::segment: index out of range");
    return SegmentReader(_segments[i].get());
}

SegmentReader
IndexSnapshot::unifiedReader() const
{
    if (_segments.empty())
        return SegmentReader();
    if (_segments.size() > 1) {
        panic("IndexSnapshot: multi-segment snapshot used where a "
              "unified index is required (join the build or use "
              "MultiSearcher)");
    }
    return SegmentReader(_segments.front().get());
}

PostingCursor
IndexSnapshot::cursor(std::string_view term) const
{
    return unifiedReader().cursor(term);
}

std::uint32_t
IndexSnapshot::termDocCount(std::string_view term) const
{
    return unifiedReader().termDocCount(term);
}

std::size_t
IndexSnapshot::termCount() const
{
    return unifiedReader().termCount();
}

std::uint64_t
IndexSnapshot::postingCount() const
{
    return unifiedReader().postingCount();
}

bool
IndexSnapshot::empty() const
{
    for (const auto &segment : _segments)
        if (!segment->empty())
            return false;
    return true;
}

} // namespace dsearch
