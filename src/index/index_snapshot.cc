#include "index/index_snapshot.hh"

#include "util/logging.hh"

namespace dsearch {

PostingCursor
SegmentReader::cursor(std::string_view term) const
{
    if (_segment == nullptr)
        return {};
    const PostingList *list = _segment->postings(term);
    if (list == nullptr)
        return {};
    return PostingCursor(list->data(), list->size());
}

std::size_t
SegmentReader::termCount() const
{
    return _segment == nullptr ? 0 : _segment->termCount();
}

std::uint64_t
SegmentReader::postingCount() const
{
    return _segment == nullptr ? 0 : _segment->postingCount();
}

IndexSnapshot
IndexSnapshot::seal(InvertedIndex &&index)
{
    index.sortPostings();
    IndexSnapshot snapshot;
    snapshot._segments.push_back(
        std::make_shared<InvertedIndex>(std::move(index)));
    return snapshot;
}

IndexSnapshot
IndexSnapshot::seal(std::vector<InvertedIndex> &&replicas)
{
    IndexSnapshot snapshot;
    snapshot._segments.reserve(replicas.size());
    for (InvertedIndex &replica : replicas) {
        replica.sortPostings();
        snapshot._segments.push_back(
            std::make_shared<InvertedIndex>(std::move(replica)));
    }
    replicas.clear();
    return snapshot;
}

SegmentReader
IndexSnapshot::segment(std::size_t i) const
{
    if (i >= _segments.size())
        panic("IndexSnapshot::segment: index out of range");
    return SegmentReader(_segments[i].get());
}

SegmentReader
IndexSnapshot::unifiedReader() const
{
    if (_segments.empty())
        return SegmentReader();
    if (_segments.size() > 1) {
        panic("IndexSnapshot: multi-segment snapshot used where a "
              "unified index is required (join the build or use "
              "MultiSearcher)");
    }
    return SegmentReader(_segments.front().get());
}

PostingCursor
IndexSnapshot::cursor(std::string_view term) const
{
    return unifiedReader().cursor(term);
}

std::size_t
IndexSnapshot::termCount() const
{
    return unifiedReader().termCount();
}

std::uint64_t
IndexSnapshot::postingCount() const
{
    return unifiedReader().postingCount();
}

bool
IndexSnapshot::empty() const
{
    for (const auto &segment : _segments)
        if (!segment->empty())
            return false;
    return true;
}

} // namespace dsearch
