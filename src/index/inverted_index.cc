#include "index/inverted_index.hh"

#include <algorithm>

namespace dsearch {

void
InvertedIndex::addBlock(const TermBlock &block)
{
    for (std::size_t i = 0; i < block.spans.size(); ++i) {
        _map.findOrEmplaceHashed(block.spans[i].hash, block.term(i))
            .push_back(block.doc);
        ++_postings;
    }
}

void
InvertedIndex::addBlockSpans(const TermBlock &block,
                             const std::uint32_t *indices,
                             std::size_t count)
{
    for (std::size_t n = 0; n < count; ++n) {
        const std::uint32_t i = indices[n];
        _map.findOrEmplaceHashed(block.spans[i].hash, block.term(i))
            .push_back(block.doc);
        ++_postings;
    }
}

void
InvertedIndex::addOccurrence(std::string_view term, DocId doc)
{
    addOccurrenceHashed(fnv1a_64(term), term, doc);
}

void
InvertedIndex::addOccurrenceHashed(std::uint64_t hash,
                                   std::string_view term, DocId doc)
{
    PostingList &list = _map.findOrEmplaceHashed(hash, term);
    // The duplicate scan the paper's analysis rejects: without en-bloc
    // deduplication the index must check whether (term, doc) was added
    // before.
    if (std::find(list.begin(), list.end(), doc) != list.end())
        return;
    list.push_back(doc);
    ++_postings;
}

void
InvertedIndex::addPostings(std::string_view term, const DocId *docs,
                           std::size_t count)
{
    if (count == 0)
        return;
    PostingList &list =
        _map.findOrEmplaceHashed(fnv1a_64(term), term);
    list.insert(list.end(), docs, docs + count);
    _postings += count;
}

const PostingList *
InvertedIndex::postings(std::string_view term) const
{
    return _map.find(term);
}

void
InvertedIndex::clear()
{
    _map.clear();
    _postings = 0;
}

InvertedIndex
InvertedIndex::clone() const
{
    InvertedIndex copy;
    copy._map = _map;
    copy._postings = _postings;
    return copy;
}

void
InvertedIndex::merge(InvertedIndex &&other)
{
    for (auto &slot : other._map) {
        PostingList *mine = _map.findHashed(slot.hash, slot.key);
        if (mine == nullptr) {
            _map.insertHashed(slot.hash, std::move(slot.key),
                              std::move(slot.value));
        } else {
            mine->insert(mine->end(), slot.value.begin(),
                         slot.value.end());
        }
    }
    _postings += other._postings;
    other.clear();
}

std::uint64_t
InvertedIndex::removeDoc(DocId doc)
{
    std::uint64_t removed = 0;
    for (auto &slot : _map) {
        PostingList &list = slot.value;
        auto cut = std::remove(list.begin(), list.end(), doc);
        removed += static_cast<std::uint64_t>(list.end() - cut);
        list.erase(cut, list.end());
    }
    _postings -= removed;
    return removed;
}

std::size_t
InvertedIndex::eraseEmptyTerms()
{
    // Collect first: erase() invalidates iterators (backward shift).
    std::vector<std::string> empty;
    for (const auto &slot : _map)
        if (slot.value.empty())
            empty.push_back(slot.key);
    for (const std::string &term : empty)
        _map.erase(term);
    return empty.size();
}

void
InvertedIndex::sortPostings()
{
    for (auto &slot : _map)
        std::sort(slot.value.begin(), slot.value.end());
}

void
InvertedIndex::reserveTerms(std::size_t expected_terms)
{
    _map.reserve(expected_terms);
}

bool
sameContents(const InvertedIndex &a, const InvertedIndex &b)
{
    if (a.termCount() != b.termCount()
        || a.postingCount() != b.postingCount()) {
        return false;
    }
    bool equal = true;
    a.forEachTerm([&b, &equal](const std::string &term,
                               const PostingList &postings) {
        if (!equal)
            return;
        const PostingList *theirs = b.postings(term);
        if (theirs == nullptr || *theirs != postings)
            equal = false;
    });
    return equal;
}

} // namespace dsearch
