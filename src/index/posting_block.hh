/**
 * @file
 * Block codecs for sealed posting lists: delta + varint (v2) and
 * bit-packed SIMD blocks (v3), plus the vectorized intersection
 * kernel the searchers' AND loops run on.
 *
 * A sorted, duplicate-free posting list is encoded in fixed-size
 * blocks of posting_block_docs documents (the last block may be
 * shorter). Two codecs share that geometry:
 *
 *  - PostingCodec::Varint (snapshot format v2). Within a block the
 *    first document is an absolute LEB128 varint and every following
 *    document the varint of its delta to the predecessor (>= 1).
 *    Decode is a byte-at-a-time branch per posting — simple, but the
 *    serving tier's innermost loop was measured at ~450M postings/s
 *    on it.
 *
 *  - PostingCodec::Packed (snapshot format v3, SIMD-BP128 style).
 *    Full 128-document blocks are bit-packed: a 5-byte header (u32
 *    little-endian first document + u8 bit width b) followed by
 *    exactly 16*b payload bytes holding 128 values at b bits each.
 *    Value 0 is a pad (always zero); value i (i >= 1) is
 *    doc[i] - doc[i-1] - 1, so a run of consecutive documents packs
 *    to width 0 — five bytes for 128 postings. The tail block (< 128
 *    documents) keeps the LEB128 varint coding, so short lists — the
 *    overwhelming majority of terms — are byte-identical between the
 *    codecs.
 *
 *    Packed payload layout: the 128 values are split into four
 *    interleaved lanes (value i belongs to lane i % 4), and each
 *    lane's 32 values are concatenated little-endian into b 32-bit
 *    words; the four lanes' words interleave word by word. One
 *    128-bit load therefore yields one packed word of four
 *    *consecutive* values, which is what lets decode run as a
 *    shift/mask unpack plus an in-register prefix sum.
 *
 * SIMD dispatch is compile-time: with __AVX2__ the intersection
 * kernel runs 8 lanes wide and decode uses the SSE unpack (VEX
 * encoded); with SSE2 (the x86-64 baseline) decode and intersection
 * run 4 lanes wide; defining DSEARCH_FORCE_SCALAR (CMake option of
 * the same name) compiles the portable scalar fallbacks only — the
 * byte layout is identical either way, and the scalar entry points
 * stay exported so tests can run the two in lockstep.
 * postingSimdLevel() reports which tier this binary uses.
 *
 * Every block after the first carries a SkipEntry — the block's first
 * document and its byte offset relative to the term's first block —
 * so a cursor can jump straight to the block that may contain a
 * seek target and decode only that block. The first block needs no
 * entry (offset 0, and a seek below the second block's first doc
 * always lands in it), which keeps short lists free of skip overhead.
 *
 * The encoders append into caller-owned vectors so a whole segment's
 * terms can share one contiguous arena (see PostingSegment); the
 * decoders unpack exactly one block at a time into a caller buffer
 * (see PostingCursor).
 */

#ifndef DSEARCH_INDEX_POSTING_BLOCK_HH
#define DSEARCH_INDEX_POSTING_BLOCK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/** Documents per compressed block; the last block may be shorter. */
inline constexpr std::size_t posting_block_docs = 128;

/** Which block codec a sealed segment's postings use. */
enum class PostingCodec : std::uint8_t {
    Varint = 0, ///< Delta + LEB128 varint blocks (snapshot v2).
    Packed = 1, ///< Bit-packed full blocks, varint tail (snapshot v3).
};

/** Bytes of a packed full block's header (u32 first_doc + u8 width). */
inline constexpr std::size_t packed_block_header_bytes = 5;

/** @return Total bytes of a packed full block of bit width @p width. */
inline std::size_t
packedBlockBytes(unsigned width)
{
    return packed_block_header_bytes + 16 * width;
}

/** Skip entry for one block after a term's first; see file comment. */
struct SkipEntry
{
    /** First document of the block. */
    DocId first_doc = 0;

    /** Byte offset of the block, relative to the term's first block. */
    std::uint32_t offset = 0;
};

/** @return Number of blocks encoding a list of @p count documents. */
inline std::size_t
postingBlockCount(std::size_t count)
{
    return (count + posting_block_docs - 1) / posting_block_docs;
}

/**
 * @return Number of skip entries for a list of @p count documents:
 *         one per block after the first, none for an empty list.
 */
inline std::size_t
postingSkipCount(std::size_t count)
{
    std::size_t blocks = postingBlockCount(count);
    return blocks == 0 ? 0 : blocks - 1;
}

/**
 * @return Exact encoded byte size of @p docs (sorted ascending,
 *         duplicate-free) under the varint codec, excluding skip
 *         entries. Used for the single-allocation sizing pass before
 *         encoding a segment.
 */
std::size_t encodedPostingBytes(const DocId *docs, std::size_t count);

/** encodedPostingBytes() for the bit-packed codec. */
std::size_t encodedPostingBytesPacked(const DocId *docs,
                                      std::size_t count);

/**
 * Append the varint block encoding of @p docs to @p arena and one
 * SkipEntry per block after the first to @p skips (offsets relative
 * to the arena position at the time of the call, i.e. the term's
 * base).
 *
 * @param docs  Sorted ascending, duplicate-free documents.
 * @param count Number of documents.
 * @param arena Destination byte arena (appended).
 * @param skips Destination skip arena (appended).
 */
void encodePostings(const DocId *docs, std::size_t count,
                    std::vector<std::uint8_t> &arena,
                    std::vector<SkipEntry> &skips);

/** encodePostings() for the bit-packed codec (same contracts). */
void encodePostingsPacked(const DocId *docs, std::size_t count,
                          std::vector<std::uint8_t> &arena,
                          std::vector<SkipEntry> &skips);

/**
 * Decode one LEB128 varint at @p p.
 *
 * @param p     First byte of the varint.
 * @param value Receives the decoded value.
 * @return Pointer past the varint.
 */
inline const std::uint8_t *
decodeVarint32(const std::uint8_t *p, std::uint32_t &value)
{
    std::uint32_t byte = *p++;
    std::uint32_t v = byte & 0x7f;
    unsigned shift = 7;
    while (byte & 0x80) {
        byte = *p++;
        v |= (byte & 0x7f) << shift;
        shift += 7;
    }
    value = v;
    return p;
}

/**
 * Decode one whole varint block of @p count documents starting at
 * @p p into @p out. The caller supplies the count (blocks are full
 * except the last; see PostingCursor) and a buffer of at least
 * @p count DocIds.
 *
 * @return Pointer past the block's last varint.
 */
inline const std::uint8_t *
decodePostingBlock(const std::uint8_t *p, std::size_t count, DocId *out)
{
    std::uint32_t doc = 0;
    p = decodeVarint32(p, doc);
    out[0] = doc;
    for (std::size_t i = 1; i < count; ++i) {
        std::uint32_t delta;
        p = decodeVarint32(p, delta);
        doc += delta;
        out[i] = doc;
    }
    return p;
}

/**
 * Decode one FULL bit-packed block (posting_block_docs documents) at
 * @p p into @p out. Dispatches to the widest compiled SIMD tier; the
 * byte layout is validated beforehand (validatePostingsPacked), so
 * exactly packedBlockBytes(width) bytes are read.
 *
 * @return Pointer past the block.
 */
const std::uint8_t *decodePackedBlock(const std::uint8_t *p,
                                      DocId *out);

/**
 * The portable scalar implementation of decodePackedBlock(), always
 * compiled, byte-for-byte equivalent — the lockstep-fuzz oracle and
 * the DSEARCH_FORCE_SCALAR code path.
 */
const std::uint8_t *decodePackedBlockScalar(const std::uint8_t *p,
                                            DocId *out);

/**
 * Intersect two sorted, duplicate-free DocId arrays into @p out
 * (which must hold min(na, nb) entries). Dispatches to the widest
 * compiled SIMD tier (AVX2 8-lane / SSE2 4-lane block compares);
 * the searchers' AND loops and ranked accumulation feed it decoded
 * posting blocks.
 *
 * @return Number of common documents written to @p out.
 */
std::size_t intersectU32(const DocId *a, std::size_t na,
                         const DocId *b, std::size_t nb, DocId *out);

/** Scalar two-pointer intersectU32(); the lockstep-fuzz oracle. */
std::size_t intersectU32Scalar(const DocId *a, std::size_t na,
                               const DocId *b, std::size_t nb,
                               DocId *out);

/**
 * @return The SIMD tier this binary's posting codec was compiled
 *         for: "avx2", "sse2", or "scalar" (non-x86 or
 *         DSEARCH_FORCE_SCALAR builds).
 */
const char *postingSimdLevel();

namespace detail {
/** Blocks decoded by cursors on this thread; see below. */
extern thread_local std::uint64_t posting_blocks_decoded;
} // namespace detail

/**
 * @return Posting blocks decoded by PostingCursor on the calling
 *         thread since it started. A metadata query (count()/df())
 *         must not move this counter — regression observable for the
 *         "counts come from the header, not a decode" contract.
 */
inline std::uint64_t
postingBlocksDecoded()
{
    return detail::posting_blocks_decoded;
}

/**
 * Structurally validate one term's varint-coded postings: every
 * block decodes within its byte bounds (block boundaries taken from
 * @p skips), documents are strictly ascending across the whole list,
 * and skip entries agree with the decoded block firsts. Used by the
 * snapshot loader so a corrupt (but checksum-colliding) file can
 * never make a cursor read out of bounds.
 *
 * @return True when the encoding is well-formed.
 */
bool validatePostings(const std::uint8_t *bytes, std::uint32_t byte_len,
                      const SkipEntry *skips, std::uint32_t skip_count,
                      std::uint32_t count);

/**
 * validatePostings() for the bit-packed codec: full blocks must
 * carry a width <= 32 and exactly packedBlockBytes(width) bytes,
 * decoded documents must be strictly ascending without u32 overflow,
 * headers and skip entries must agree, and the varint tail is
 * bounds-checked like the v2 format. A truncated or width-corrupted
 * payload fails here and is never handed to the (unchecked, exact-
 * length) decoder.
 */
bool validatePostingsPacked(const std::uint8_t *bytes,
                            std::uint32_t byte_len,
                            const SkipEntry *skips,
                            std::uint32_t skip_count,
                            std::uint32_t count);

} // namespace dsearch

#endif // DSEARCH_INDEX_POSTING_BLOCK_HH
