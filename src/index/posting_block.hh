/**
 * @file
 * Delta + varint block codec for sealed posting lists.
 *
 * A sorted, duplicate-free posting list is encoded in fixed-size
 * blocks of posting_block_docs documents (the last block may be
 * shorter). Within a block the first document is stored as an
 * absolute LEB128 varint and every following document as the varint
 * of its delta to the predecessor (always >= 1). Typical desktop
 * corpora encode to 1-2 bytes per posting versus 4 for a raw DocId.
 *
 * Every block after the first carries a SkipEntry — the block's first
 * document and its byte offset relative to the term's first block —
 * so a cursor can jump straight to the block that may contain a
 * seek target and decode only that block. The first block needs no
 * entry (offset 0, and a seek below the second block's first doc
 * always lands in it), which keeps short lists — the overwhelming
 * majority of terms — free of skip overhead.
 *
 * The encoder appends into caller-owned vectors so a whole segment's
 * terms can share one contiguous arena (see PostingSegment); the
 * decoder unpacks exactly one block at a time into a caller buffer
 * (see PostingCursor).
 */

#ifndef DSEARCH_INDEX_POSTING_BLOCK_HH
#define DSEARCH_INDEX_POSTING_BLOCK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/** Documents per compressed block; the last block may be shorter. */
inline constexpr std::size_t posting_block_docs = 128;

/** Skip entry for one block after a term's first; see file comment. */
struct SkipEntry
{
    /** First document of the block. */
    DocId first_doc = 0;

    /** Byte offset of the block, relative to the term's first block. */
    std::uint32_t offset = 0;
};

/** @return Number of blocks encoding a list of @p count documents. */
inline std::size_t
postingBlockCount(std::size_t count)
{
    return (count + posting_block_docs - 1) / posting_block_docs;
}

/**
 * @return Number of skip entries for a list of @p count documents:
 *         one per block after the first, none for an empty list.
 */
inline std::size_t
postingSkipCount(std::size_t count)
{
    std::size_t blocks = postingBlockCount(count);
    return blocks == 0 ? 0 : blocks - 1;
}

/**
 * @return Exact encoded byte size of @p docs (sorted ascending,
 *         duplicate-free), excluding skip entries. Used for the
 *         single-allocation sizing pass before encoding a segment.
 */
std::size_t encodedPostingBytes(const DocId *docs, std::size_t count);

/**
 * Append the block encoding of @p docs to @p arena and one SkipEntry
 * per block after the first to @p skips (offsets relative to the
 * arena position at the time of the call, i.e. the term's base).
 *
 * @param docs  Sorted ascending, duplicate-free documents.
 * @param count Number of documents.
 * @param arena Destination byte arena (appended).
 * @param skips Destination skip arena (appended).
 */
void encodePostings(const DocId *docs, std::size_t count,
                    std::vector<std::uint8_t> &arena,
                    std::vector<SkipEntry> &skips);

/**
 * Decode one LEB128 varint at @p p.
 *
 * @param p     First byte of the varint.
 * @param value Receives the decoded value.
 * @return Pointer past the varint.
 */
inline const std::uint8_t *
decodeVarint32(const std::uint8_t *p, std::uint32_t &value)
{
    std::uint32_t byte = *p++;
    std::uint32_t v = byte & 0x7f;
    unsigned shift = 7;
    while (byte & 0x80) {
        byte = *p++;
        v |= (byte & 0x7f) << shift;
        shift += 7;
    }
    value = v;
    return p;
}

/**
 * Decode one whole block of @p count documents starting at @p p into
 * @p out. The caller supplies the count (blocks are full except the
 * last; see PostingCursor) and a buffer of at least @p count DocIds.
 *
 * @return Pointer past the block's last varint.
 */
inline const std::uint8_t *
decodePostingBlock(const std::uint8_t *p, std::size_t count, DocId *out)
{
    std::uint32_t doc = 0;
    p = decodeVarint32(p, doc);
    out[0] = doc;
    for (std::size_t i = 1; i < count; ++i) {
        std::uint32_t delta;
        p = decodeVarint32(p, delta);
        doc += delta;
        out[i] = doc;
    }
    return p;
}

/**
 * Structurally validate one term's encoded postings: every block
 * decodes within its byte bounds (block boundaries taken from
 * @p skips), documents are strictly ascending across the whole list,
 * and skip entries agree with the decoded block firsts. Used by the
 * snapshot loader so a corrupt (but checksum-colliding) file can
 * never make a cursor read out of bounds.
 *
 * @return True when the encoding is well-formed.
 */
bool validatePostings(const std::uint8_t *bytes, std::uint32_t byte_len,
                      const SkipEntry *skips, std::uint32_t skip_count,
                      std::uint32_t count);

} // namespace dsearch

#endif // DSEARCH_INDEX_POSTING_BLOCK_HH
