/**
 * @file
 * Document table: the docID <-> filename mapping.
 *
 * Document IDs are assigned once, by the single-threaded Stage 1, so
 * every index replica agrees on file identity and the later join is a
 * disjoint merge. The table is immutable while the parallel stages
 * run, which is what makes lock-free sharing of it safe.
 */

#ifndef DSEARCH_INDEX_DOC_TABLE_HH
#define DSEARCH_INDEX_DOC_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fs/traversal.hh"

namespace dsearch {

/** Append-only docID <-> path table; see the file comment. */
class DocTable
{
  public:
    DocTable() = default;

    /** Build directly from Stage 1 output (IDs must be dense). */
    static DocTable fromFileList(const FileList &files);

    /**
     * Append a document.
     *
     * @param path Virtual path of the file.
     * @param size File size in bytes.
     * @return The assigned document ID (dense, starting at 0).
     */
    DocId add(std::string path, std::uint64_t size);

    /** @return Number of documents. */
    std::size_t docCount() const { return _paths.size(); }

    /** @return Path of @p doc (panics on out-of-range IDs). */
    const std::string &path(DocId doc) const;

    /** @return Recorded size of @p doc in bytes. */
    std::uint64_t sizeBytes(DocId doc) const;

    /** @return True when @p doc is a valid ID for this table. */
    bool
    contains(DocId doc) const
    {
        return doc < _paths.size();
    }

  private:
    std::vector<std::string> _paths;
    std::vector<std::uint64_t> _sizes;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_DOC_TABLE_HH
