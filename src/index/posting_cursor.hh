/**
 * @file
 * PostingCursor: the per-term read primitive of the snapshot API.
 *
 * A cursor is a forward iterator over one term's posting list in a
 * sealed IndexSnapshot — sorted ascending, duplicate-free. Query code
 * (search/, serialize) consumes postings exclusively through cursors:
 *
 *     for (PostingCursor c = snapshot.cursor("term"); c.valid();
 *          c.next())
 *         use(c.doc());
 *
 * seekGE() advances to the first document >= a target (galloping +
 * binary search), which is what makes cursor-vs-set intersection
 * sublinear on skewed lists.
 *
 * The cursor is the representation seam: today it walks a raw sorted
 * DocId array; a compressed posting layout (delta + varint blocks)
 * replaces the internals of this class and of sealing without touching
 * anything that consumes cursors.
 */

#ifndef DSEARCH_INDEX_POSTING_CURSOR_HH
#define DSEARCH_INDEX_POSTING_CURSOR_HH

#include <algorithm>
#include <cstddef>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/** Forward cursor over one sorted posting list; see file comment. */
class PostingCursor
{
  public:
    /** An exhausted cursor over nothing (unknown terms). */
    PostingCursor() = default;

    /**
     * Cursor over @p count documents starting at @p data. The range
     * must stay alive for the cursor's lifetime (the snapshot
     * guarantees this for cursors it vends) and be sorted ascending
     * without duplicates.
     */
    PostingCursor(const DocId *data, std::size_t count)
        : _pos(data), _end(data + count), _count(count)
    {
    }

    /** @return True while the cursor is on a document. */
    bool valid() const { return _pos != _end; }

    /** @return The current document (only when valid()). */
    DocId doc() const { return *_pos; }

    /** Advance to the next document (only when valid()). */
    void next() { ++_pos; }

    /**
     * Advance to the first document >= @p target (no-op when already
     * there). Gallops, so seeking through a long list costs
     * O(log distance) per call.
     *
     * @return True when such a document exists (cursor is valid).
     */
    bool
    seekGE(DocId target)
    {
        if (_pos == _end || *_pos >= target)
            return _pos != _end;
        // Gallop to bracket the target, then binary-search the
        // bracket.
        std::size_t step = 1;
        const DocId *probe = _pos;
        while (_end - probe > static_cast<std::ptrdiff_t>(step)
               && probe[step] < target) {
            probe += step;
            step <<= 1;
        }
        const DocId *limit = std::min(probe + step + 1, _end);
        _pos = std::lower_bound(probe, limit, target);
        return _pos != _end;
    }

    /** @return Total postings in the underlying list (not remaining). */
    std::size_t count() const { return _count; }

    /** @return Documents not yet consumed (including the current). */
    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(_end - _pos);
    }

    /**
     * Drain the rest of the cursor into a sorted DocId vector
     * (convenience for code that needs a materialized set).
     */
    std::vector<DocId>
    toDocSet()
    {
        std::vector<DocId> out(_pos, _end);
        _pos = _end;
        return out;
    }

  private:
    const DocId *_pos = nullptr;
    const DocId *_end = nullptr;
    std::size_t _count = 0;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_POSTING_CURSOR_HH
