/**
 * @file
 * PostingCursor: the per-term read primitive of the snapshot API.
 *
 * A cursor is a forward iterator over one term's posting list in a
 * sealed IndexSnapshot — sorted ascending, duplicate-free. Query code
 * (search/, serialize) consumes postings exclusively through cursors:
 *
 *     for (PostingCursor c = snapshot.cursor("term"); c.valid();
 *          c.next())
 *         use(c.doc());
 *
 * seekGE() advances to the first document >= a target, which is what
 * makes cursor-vs-set intersection sublinear on skewed lists.
 *
 * Two representations hide behind the same API:
 *
 *  - Raw: a pointer range over sorted DocIds (legacy mutable-index
 *    paths, tests). next() is a pointer bump; seekGE() gallops, then
 *    binary-searches the bracket.
 *
 *  - Compressed: delta-coded blocks from a sealed PostingSegment —
 *    either varint (PostingCodec::Varint) or bit-packed SIMD blocks
 *    (PostingCodec::Packed); see posting_block.hh. The cursor decodes
 *    one block at a time into a small stack buffer; next() walks the
 *    buffer and refills it at block boundaries, seekGE()
 *    binary-searches the skip index to jump to the one block that can
 *    contain the target, decodes it (prefetching the following skip
 *    target so a subsequent jump finds warm cache lines), and gallops
 *    within the decoded buffer.
 *
 * Either way the iteration state is a [pos, end) pointer pair, so
 * valid()/doc() are branch-free and identical for both forms. The
 * backing storage (the raw array, or the segment arena + skip index)
 * must stay alive for the cursor's lifetime; the snapshot guarantees
 * this for cursors it vends. Cursors are freely copyable — a copy
 * continues independently from the same position.
 *
 * Bulk consumers (the searchers' AND loops, ranked accumulation, the
 * decode bench) bypass per-posting next() calls via the block view:
 * blockDocs()/blockRemaining() expose the decoded span from the
 * current position to the end of the current block (the whole list
 * for raw cursors), and skipInBlock() consumes a prefix of that span,
 * refilling at the boundary. count() never decodes anything — a
 * metadata query (e.g. a broker df aggregation) costs O(1).
 */

#ifndef DSEARCH_INDEX_POSTING_CURSOR_HH
#define DSEARCH_INDEX_POSTING_CURSOR_HH

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <vector>

#include "fs/file_system.hh"
#include "index/posting_block.hh"

namespace dsearch {

/** Forward cursor over one sorted posting list; see file comment. */
class PostingCursor
{
  public:
    /** An exhausted cursor over nothing (unknown terms). */
    PostingCursor() = default;

    /**
     * Raw cursor over @p count documents starting at @p data. The
     * range must stay alive for the cursor's lifetime and be sorted
     * ascending without duplicates.
     */
    PostingCursor(const DocId *data, std::size_t count)
        : _pos(data), _end(data + count), _count(count)
    {
    }

    /**
     * Block-decoding cursor over a compressed posting list (layout of
     * posting_block.hh). @p bytes points at the term's encoded
     * blocks, @p skips at its skip entries (one per block after the
     * first; may be null when @p skip_count is 0), @p doc_count is
     * the total documents — block boundaries and byte extents all
     * follow from those. @p codec selects how full blocks decode
     * (varint for v2 segments, bit-packed for v3). The encoded
     * storage must stay alive for the cursor's lifetime.
     */
    PostingCursor(const std::uint8_t *bytes, const SkipEntry *skips,
                  std::uint32_t skip_count, std::uint32_t doc_count,
                  PostingCodec codec = PostingCodec::Varint)
        : _count(doc_count), _bytes(bytes), _skips(skips),
          _skip_count(skip_count), _codec(codec)
    {
        if (doc_count != 0)
            loadBlock(0);
    }

    // A decoding cursor's [pos, end) points into its own _buf, so
    // copies must rebase the pointers onto the copy's buffer.
    PostingCursor(const PostingCursor &other) { assign(other); }

    PostingCursor &
    operator=(const PostingCursor &other)
    {
        if (this != &other)
            assign(other);
        return *this;
    }

    /** @return True while the cursor is on a document. */
    bool valid() const { return _pos != _end; }

    /** @return The current document (only when valid()). */
    DocId doc() const { return *_pos; }

    /** Advance to the next document (only when valid()). */
    void
    next()
    {
        if (++_pos == _end && _tail != 0)
            loadBlock(_block + 1);
    }

    /**
     * Advance to the first document >= @p target (no-op when already
     * there). Raw cursors gallop; decoding cursors consult the skip
     * index first so at most one block beyond the current is decoded.
     *
     * @return True when such a document exists (cursor is valid).
     */
    bool
    seekGE(DocId target)
    {
        if (_pos == _end)
            return false;
        if (*_pos >= target)
            return true;
        if (_bytes != nullptr && _end[-1] < target) {
            // Target is past the decoded block: jump via skips.
            if (_tail == 0) {
                _pos = _end;
                return false;
            }
            // _skips[i] describes block i + 1. Among blocks after the
            // current, find the last whose first doc is <= target;
            // when even the next block starts above the target, the
            // answer is that block's first document.
            const SkipEntry *sbegin = _skips + _block;
            const SkipEntry *send = _skips + _skip_count;
            const SkipEntry *it = std::upper_bound(
                sbegin, send, target,
                [](DocId t, const SkipEntry &e) {
                    return t < e.first_doc;
                });
            // Warm the next skip target: if the gallop below exhausts
            // the landed block, the following block's bytes are
            // already on their way in.
#if defined(__GNUC__) || defined(__clang__)
            if (it != send)
                __builtin_prefetch(_bytes + it->offset);
#endif
            loadBlock(static_cast<std::uint32_t>(
                it == sbegin ? _block + 1 : it - _skips));
        }
        _pos = gallopTo(_pos, _end, target);
        if (_pos == _end) {
            if (_tail == 0)
                return false;
            loadBlock(_block + 1);
        }
        return true;
    }

    /**
     * @return Total postings in the underlying list (not remaining).
     *         Comes from the term header — never triggers a decode.
     */
    std::size_t count() const { return _count; }

    /** @return Documents not yet consumed (including the current). */
    std::size_t
    remaining() const
    {
        return static_cast<std::size_t>(_end - _pos) + _tail;
    }

    /**
     * @return The decoded span from the current position to the end
     *         of the current block (the whole remaining list for raw
     *         cursors): blockDocs()[0 .. blockRemaining()) are sorted
     *         ascending and blockDocs()[0] == doc(). Empty only when
     *         the cursor is exhausted. The span is invalidated by any
     *         advance past the current block and by copying.
     */
    const DocId *blockDocs() const { return _pos; }

    /** @return Number of documents in the blockDocs() span. */
    std::size_t
    blockRemaining() const
    {
        return static_cast<std::size_t>(_end - _pos);
    }

    /**
     * Consume @p n documents of the current block view
     * (n <= blockRemaining()), refilling the next block when the view
     * is exhausted — the bulk counterpart of n calls to next().
     */
    void
    skipInBlock(std::size_t n)
    {
        _pos += n;
        if (_pos == _end && _tail != 0)
            loadBlock(_block + 1);
    }

    /**
     * Drain the rest of the cursor into a sorted DocId vector
     * (convenience for code that needs a materialized set).
     */
    std::vector<DocId>
    toDocSet()
    {
        if (_bytes == nullptr) {
            std::vector<DocId> out(_pos, _end);
            _pos = _end;
            return out;
        }
        std::vector<DocId> out;
        out.reserve(remaining());
        while (valid()) {
            out.push_back(doc());
            next();
        }
        return out;
    }

  private:
    /**
     * @return First position in [pos, end) with *p >= target, or end.
     *         Gallops to bracket the target, then binary-searches the
     *         bracket, so seeking costs O(log distance).
     */
    static const DocId *
    gallopTo(const DocId *pos, const DocId *end, DocId target)
    {
        std::size_t step = 1;
        while (end - pos > static_cast<std::ptrdiff_t>(step)
               && pos[step] < target) {
            pos += step;
            step <<= 1;
        }
        const DocId *limit = std::min(pos + step + 1, end);
        return std::lower_bound(pos, limit, target);
    }

    /** Decode block @p b into _buf and point [_pos, _end) at it. */
    void
    loadBlock(std::uint32_t b)
    {
        _block = b;
        const std::size_t first =
            static_cast<std::size_t>(b) * posting_block_docs;
        const std::size_t n =
            std::min(posting_block_docs, _count - first);
        const std::uint8_t *p =
            _bytes + (b == 0 ? 0 : _skips[b - 1].offset);
        if (_codec == PostingCodec::Packed && n == posting_block_docs)
            decodePackedBlock(p, _buf);
        else
            decodePostingBlock(p, n, _buf);
        ++detail::posting_blocks_decoded;
        _pos = _buf;
        _end = _buf + n;
        _tail = _count - first - n;
#if defined(__GNUC__) || defined(__clang__)
        // Start the next block's bytes toward the cache while this
        // one is being walked.
        if (_tail != 0)
            __builtin_prefetch(_bytes + _skips[b].offset);
#endif
    }

    void
    assign(const PostingCursor &other)
    {
        _count = other._count;
        _bytes = other._bytes;
        _skips = other._skips;
        _skip_count = other._skip_count;
        _codec = other._codec;
        _block = other._block;
        _tail = other._tail;
        if (other._bytes != nullptr && other._count != 0) {
            const std::size_t n = static_cast<std::size_t>(
                other._end - other._buf);
            std::memcpy(_buf, other._buf, n * sizeof(DocId));
            _pos = _buf + (other._pos - other._buf);
            _end = _buf + n;
        } else {
            _pos = other._pos;
            _end = other._end;
        }
    }

    // Iteration state: into the raw array, or into _buf (decoding).
    const DocId *_pos = nullptr;
    const DocId *_end = nullptr;
    std::size_t _count = 0;

    // Compressed representation (null _bytes = raw cursor).
    const std::uint8_t *_bytes = nullptr;
    const SkipEntry *_skips = nullptr;
    std::uint32_t _skip_count = 0;
    PostingCodec _codec = PostingCodec::Varint;
    std::uint32_t _block = 0;  ///< Block currently decoded in _buf.
    std::size_t _tail = 0;     ///< Documents in blocks after _buf.
    DocId _buf[posting_block_docs];
};

} // namespace dsearch

#endif // DSEARCH_INDEX_POSTING_CURSOR_HH
