#include "index/serialize.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "index/posting_cursor.hh"
#include "util/fnv_hash.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

constexpr char magic[4] = {'D', 'S', 'I', 'X'};
constexpr std::uint32_t format_version = 1;

void
putU32(std::string &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putString(std::string &buf, const std::string &s)
{
    putU32(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

/** Cursor-based reader over the loaded payload. */
class Reader
{
  public:
    explicit Reader(const std::string &buf) : _buf(buf) {}

    bool
    u32(std::uint32_t &v)
    {
        if (_pos + 4 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (_pos + 8 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint32_t len;
        if (!u32(len) || _pos + len > _buf.size())
            return false;
        s.assign(_buf, _pos, len);
        _pos += len;
        return true;
    }

    bool done() const { return _pos == _buf.size(); }

  private:
    const std::string &_buf;
    std::size_t _pos = 0;
};

/**
 * Write one sealed segment + docs through the cursor API. The
 * segment's posting lists must be canonical (sorted) — true for
 * anything a snapshot vends.
 */
bool
writeSegment(const SegmentReader &segment, const DocTable &docs,
             std::ostream &out)
{
    std::string payload;

    // Document table.
    putU64(payload, docs.docCount());
    for (DocId doc = 0; doc < docs.docCount(); ++doc) {
        putString(payload, docs.path(doc));
        putU64(payload, docs.sizeBytes(doc));
    }

    // Terms in lexicographic order so equal contents serialize
    // identically regardless of insertion history.
    std::vector<const std::string *> terms;
    terms.reserve(segment.termCount());
    segment.forEachTerm(
        [&terms](const std::string &term, PostingCursor) {
            terms.push_back(&term);
        });
    std::sort(terms.begin(), terms.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });

    putU64(payload, terms.size());
    for (const std::string *term : terms) {
        PostingCursor cursor = segment.cursor(*term);
        putString(payload, *term);
        putU32(payload, static_cast<std::uint32_t>(cursor.count()));
        for (; cursor.valid(); cursor.next())
            putU32(payload, cursor.doc());
    }

    std::uint64_t checksum = fnv1a_64(payload.data(), payload.size());

    out.write(magic, sizeof(magic));
    std::string header;
    putU32(header, format_version);
    putU64(header, payload.size());
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    std::string trailer;
    putU64(trailer, checksum);
    out.write(trailer.data(),
              static_cast<std::streamsize>(trailer.size()));
    return static_cast<bool>(out);
}

} // namespace

bool
saveSnapshot(const IndexSnapshot &snapshot, const DocTable &docs,
             std::ostream &out)
{
    if (!snapshot.unified())
        panic("saveSnapshot: multi-segment snapshot; join the build "
              "before persisting");
    const SegmentReader segment = snapshot.segmentCount() == 0
                                      ? SegmentReader()
                                      : snapshot.segment(0);
    return writeSegment(segment, docs, out);
}

bool
saveSnapshotFile(const IndexSnapshot &snapshot, const DocTable &docs,
                 const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("saveSnapshotFile: cannot open '" + path + "'");
        return false;
    }
    return saveSnapshot(snapshot, docs, out);
}

bool
saveIndex(InvertedIndex &index, const DocTable &docs, std::ostream &out)
{
    index.sortPostings();
    return writeSegment(SegmentReader(&index), docs, out);
}

bool
saveIndexFile(InvertedIndex &index, const DocTable &docs,
              const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("saveIndexFile: cannot open '" + path + "'");
        return false;
    }
    return saveIndex(index, docs, out);
}

bool
loadSnapshot(IndexSnapshot &snapshot, DocTable &docs, std::istream &in)
{
    InvertedIndex index;
    if (!loadIndex(index, docs, in)) {
        snapshot = IndexSnapshot();
        return false;
    }
    snapshot = IndexSnapshot::seal(std::move(index));
    return true;
}

bool
loadSnapshotFile(IndexSnapshot &snapshot, DocTable &docs,
                 const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("loadSnapshotFile: cannot open '" + path + "'");
        snapshot = IndexSnapshot();
        return false;
    }
    return loadSnapshot(snapshot, docs, in);
}

bool
loadIndex(InvertedIndex &index, DocTable &docs, std::istream &in)
{
    index.clear();
    docs = DocTable{};

    char file_magic[4];
    in.read(file_magic, sizeof(file_magic));
    if (!in || std::memcmp(file_magic, magic, sizeof(magic)) != 0) {
        warn("loadIndex: bad magic");
        return false;
    }

    std::string header(12, '\0');
    in.read(header.data(), 12);
    if (!in) {
        warn("loadIndex: truncated header");
        return false;
    }
    Reader header_reader(header);
    std::uint32_t version = 0;
    std::uint64_t payload_size = 0;
    if (!header_reader.u32(version)
        || !header_reader.u64(payload_size)) {
        warn("loadIndex: malformed header");
        return false;
    }
    if (version != format_version) {
        warn("loadIndex: unsupported format version "
             + std::to_string(version));
        return false;
    }

    std::string payload(payload_size, '\0');
    in.read(payload.data(),
            static_cast<std::streamsize>(payload_size));
    std::string trailer(8, '\0');
    in.read(trailer.data(), 8);
    if (!in) {
        warn("loadIndex: truncated payload");
        return false;
    }
    Reader trailer_reader(trailer);
    std::uint64_t stored_checksum = 0;
    if (!trailer_reader.u64(stored_checksum)) {
        warn("loadIndex: malformed trailer");
        return false;
    }
    if (fnv1a_64(payload.data(), payload.size()) != stored_checksum) {
        warn("loadIndex: checksum mismatch");
        return false;
    }

    Reader reader(payload);
    std::uint64_t doc_count;
    if (!reader.u64(doc_count))
        return false;
    for (std::uint64_t d = 0; d < doc_count; ++d) {
        std::string path;
        std::uint64_t size;
        if (!reader.str(path) || !reader.u64(size)) {
            warn("loadIndex: corrupt document table");
            index.clear();
            docs = DocTable{};
            return false;
        }
        docs.add(std::move(path), size);
    }

    std::uint64_t term_count;
    if (!reader.u64(term_count))
        return false;
    index.reserveTerms(term_count);
    TermBlock scratch;
    for (std::uint64_t t = 0; t < term_count; ++t) {
        std::string term;
        std::uint32_t posting_count;
        if (!reader.str(term) || !reader.u32(posting_count)) {
            warn("loadIndex: corrupt term table");
            index.clear();
            docs = DocTable{};
            return false;
        }
        scratch.clear();
        scratch.addTerm(term); // hashed once for the whole list
        for (std::uint32_t p = 0; p < posting_count; ++p) {
            std::uint32_t doc;
            if (!reader.u32(doc)) {
                warn("loadIndex: corrupt posting list");
                index.clear();
                docs = DocTable{};
                return false;
            }
            scratch.doc = doc;
            index.addBlock(scratch);
        }
    }
    if (!reader.done()) {
        warn("loadIndex: trailing bytes in payload");
        index.clear();
        docs = DocTable{};
        return false;
    }
    return true;
}

bool
loadIndexFile(InvertedIndex &index, DocTable &docs,
              const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("loadIndexFile: cannot open '" + path + "'");
        return false;
    }
    return loadIndex(index, docs, in);
}

} // namespace dsearch
