#include "index/serialize.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "index/posting_block.hh"
#include "index/posting_cursor.hh"
#include "util/fault.hh"
#include "util/fnv_hash.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

constexpr char magic[4] = {'D', 'S', 'I', 'X'};
constexpr std::uint32_t format_v1 = 1;
constexpr std::uint32_t format_v2 = 2;
constexpr std::uint32_t format_v3 = 3;

/** @return The block codec a sealed on-disk version stores. */
PostingCodec
codecForVersion(std::uint32_t version)
{
    return version == format_v3 ? PostingCodec::Packed
                                : PostingCodec::Varint;
}

void
putU32(std::string &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putString(std::string &buf, const std::string &s)
{
    putU32(buf, static_cast<std::uint32_t>(s.size()));
    buf.append(s);
}

/** Cursor-based reader over the loaded payload. */
class Reader
{
  public:
    explicit Reader(const std::string &buf) : _buf(buf) {}

    bool
    u32(std::uint32_t &v)
    {
        if (_pos + 4 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (_pos + 8 > _buf.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(_buf[_pos + i]))
                 << (8 * i);
        _pos += 8;
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint32_t len;
        if (!u32(len) || _pos + len > _buf.size())
            return false;
        s.assign(_buf, _pos, len);
        _pos += len;
        return true;
    }

    /**
     * @return Pointer to @p len raw payload bytes (advancing past
     *         them), or nullptr when the payload is too short. The
     *         pointer stays valid as long as the payload string.
     */
    const std::uint8_t *
    bytes(std::size_t len)
    {
        if (len > _buf.size() - _pos)
            return nullptr;
        const auto *p =
            reinterpret_cast<const std::uint8_t *>(_buf.data() + _pos);
        _pos += len;
        return p;
    }

    /** Skip @p len bytes; @return false when the payload is short. */
    bool
    skip(std::size_t len)
    {
        if (len > _buf.size() - _pos)
            return false;
        _pos += len;
        return true;
    }

    bool done() const { return _pos == _buf.size(); }

    /** @return Unconsumed payload bytes. */
    std::size_t remaining() const { return _buf.size() - _pos; }

  private:
    const std::string &_buf;
    std::size_t _pos = 0;
};

/**
 * Trailer checksum for one frame. v1/v2 hash the payload alone (the
 * historical, frozen definition); v3 folds the version field in
 * first, making a version bit-flip tamper-evident. The sealed
 * formats differ only in block semantics — a short list is a varint
 * tail block under both codecs, so a v2 and a v3 payload can be
 * byte-identical and the payload checksum alone could not tell a
 * flipped version byte from a valid file of the other codec.
 */
std::uint64_t
frameChecksum(std::uint32_t version, const std::string &payload)
{
    std::uint64_t h = fnv64_offset;
    if (version >= format_v3) {
        for (int i = 0; i < 4; ++i) {
            h ^= (version >> (8 * i)) & 0xff;
            h *= fnv64_prime;
        }
    }
    for (char c : payload) {
        h ^= static_cast<std::uint8_t>(c);
        h *= fnv64_prime;
    }
    return h;
}

/** Write magic + header + payload + checksum trailer. */
bool
writeFramed(std::ostream &out, std::uint32_t version,
            const std::string &payload)
{
    // Injectable stream failure: a full disk or yanked mount mid-save
    // (tests arm "serialize.save.stream"; the snapshot store must
    // keep the previous generation when this fires).
    if (faultFires("serialize.save.stream")) {
        out.setstate(std::ios::failbit);
        return false;
    }
    std::uint64_t checksum = frameChecksum(version, payload);
    out.write(magic, sizeof(magic));
    std::string header;
    putU32(header, version);
    putU64(header, payload.size());
    out.write(header.data(),
              static_cast<std::streamsize>(header.size()));
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
    std::string trailer;
    putU64(trailer, checksum);
    out.write(trailer.data(),
              static_cast<std::streamsize>(trailer.size()));
    return static_cast<bool>(out);
}

/**
 * Read and verify the framing: magic, version, payload, checksum.
 *
 * @return False (with a warning) on any framing failure.
 */
bool
readFramed(std::istream &in, std::uint32_t &version,
           std::string &payload)
{
    char file_magic[4];
    in.read(file_magic, sizeof(file_magic));
    if (!in || std::memcmp(file_magic, magic, sizeof(magic)) != 0) {
        warn("loadIndex: bad magic");
        return false;
    }

    std::string header(12, '\0');
    in.read(header.data(), 12);
    if (!in) {
        warn("loadIndex: truncated header");
        return false;
    }
    Reader header_reader(header);
    std::uint64_t payload_size = 0;
    if (!header_reader.u32(version)
        || !header_reader.u64(payload_size)) {
        warn("loadIndex: malformed header");
        return false;
    }
    if (version != format_v1 && version != format_v2
        && version != format_v3) {
        warn("loadIndex: unsupported format version "
             + std::to_string(version));
        return false;
    }
    if (faultFires("serialize.load.stream")) {
        warn("loadIndex: injected stream failure");
        return false;
    }

    // The declared payload_size is attacker-controlled until the
    // checksum verifies, so never allocate it up front: a corrupt
    // header claiming exabytes must fail cleanly at end-of-stream,
    // not OOM the process. Read in bounded chunks; memory grows only
    // as bytes actually arrive.
    constexpr std::uint64_t chunk = 1u << 20;
    payload.clear();
    payload.reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(payload_size, chunk)));
    while (payload.size() < payload_size) {
        std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk,
                                    payload_size - payload.size()));
        std::size_t old = payload.size();
        payload.resize(old + want);
        in.read(payload.data() + old,
                static_cast<std::streamsize>(want));
        if (static_cast<std::size_t>(in.gcount()) != want) {
            warn("loadIndex: truncated payload");
            return false;
        }
    }
    std::string trailer(8, '\0');
    in.read(trailer.data(), 8);
    if (!in) {
        warn("loadIndex: truncated payload");
        return false;
    }
    Reader trailer_reader(trailer);
    std::uint64_t stored_checksum = 0;
    if (!trailer_reader.u64(stored_checksum)) {
        warn("loadIndex: malformed trailer");
        return false;
    }
    if (frameChecksum(version, payload) != stored_checksum) {
        warn("loadIndex: checksum mismatch");
        return false;
    }
    return true;
}

void
putDocs(std::string &payload, const DocTable &docs)
{
    putU64(payload, docs.docCount());
    for (DocId doc = 0; doc < docs.docCount(); ++doc) {
        putString(payload, docs.path(doc));
        putU64(payload, docs.sizeBytes(doc));
    }
}

bool
parseDocs(Reader &reader, DocTable &docs)
{
    std::uint64_t doc_count;
    if (!reader.u64(doc_count))
        return false;
    // Each document record is at least 12 bytes (u32 path length +
    // u64 size); a count the payload cannot possibly hold is header
    // corruption — fail before looping, not after filling a table
    // from garbage.
    if (doc_count > reader.remaining() / 12) {
        warn("loadIndex: document count exceeds payload");
        return false;
    }
    for (std::uint64_t d = 0; d < doc_count; ++d) {
        std::string path;
        std::uint64_t size;
        if (!reader.str(path) || !reader.u64(size)) {
            warn("loadIndex: corrupt document table");
            return false;
        }
        docs.add(std::move(path), size);
    }
    return true;
}

/**
 * Write one segment + docs in the version 1 (raw posting) layout,
 * through the cursor API. Used by the legacy mutable-index overloads,
 * whose segments carry no cached term order — terms are collected and
 * sorted here so equal contents serialize identically regardless of
 * insertion history. The posting lists must be canonical (sorted).
 */
bool
writeSegmentV1(const SegmentReader &segment, const DocTable &docs,
               std::ostream &out)
{
    std::string payload;
    putDocs(payload, docs);

    std::vector<const std::string *> terms;
    terms.reserve(segment.termCount());
    segment.forEachTerm(
        [&terms](const std::string &term, PostingCursor) {
            terms.push_back(&term);
        });
    std::sort(terms.begin(), terms.end(),
              [](const std::string *a, const std::string *b) {
                  return *a < *b;
              });

    putU64(payload, terms.size());
    for (const std::string *term : terms) {
        PostingCursor cursor = segment.cursor(*term);
        putString(payload, *term);
        putU32(payload, static_cast<std::uint32_t>(cursor.count()));
        for (; cursor.valid(); cursor.next())
            putU32(payload, cursor.doc());
    }
    return writeFramed(out, format_v1, payload);
}

/**
 * Write a sealed segment + docs in the shared v2/v3 layout: the
 * segment's compressed blocks and skip entries verbatim, terms in
 * the cached lexicographic order (no sort, no re-encode). The two
 * versions differ only in block semantics — v2 blocks are varint,
 * v3 full blocks bit-packed — so @p version is simply the one that
 * matches the segment's codec.
 */
bool
writeSegmentSealed(const PostingSegment *segment, const DocTable &docs,
                   std::ostream &out, std::uint32_t version)
{
    std::string payload;
    putDocs(payload, docs);
    putU32(payload, static_cast<std::uint32_t>(posting_block_docs));
    putU64(payload, segment == nullptr ? 0 : segment->termCount());
    if (segment != nullptr) {
        const std::vector<std::uint8_t> &arena = segment->arena();
        const std::vector<SkipEntry> &skips = segment->skips();
        segment->forEachSortedEntry(
            [&payload, &arena, &skips](
                const std::string &term,
                const PostingSegment::TermEntry &entry) {
                putString(payload, term);
                putU32(payload, entry.count);
                putU32(payload, entry.bytes);
                payload.append(reinterpret_cast<const char *>(
                                   arena.data() + entry.offset),
                               entry.bytes);
                for (std::uint32_t s = 0; s < entry.skip_count; ++s) {
                    const SkipEntry &skip =
                        skips[entry.skip_begin + s];
                    putU32(payload, skip.first_doc);
                    putU32(payload, skip.offset);
                }
            });
    }
    return writeFramed(out, version, payload);
}

/** Parse the version 1 term section into a mutable index. */
bool
parseTermsV1(Reader &reader, InvertedIndex &index)
{
    std::uint64_t term_count;
    if (!reader.u64(term_count))
        return false;
    // A v1 term record is at least 9 bytes (u32 length + u32 count +
    // one term byte); sanity-cap before reserveTerms() turns a
    // corrupt count into a multi-GB hash-table allocation.
    if (term_count > reader.remaining() / 9) {
        warn("loadIndex: term count exceeds payload");
        return false;
    }
    index.reserveTerms(term_count);
    TermBlock scratch;
    for (std::uint64_t t = 0; t < term_count; ++t) {
        std::string term;
        std::uint32_t posting_count;
        if (!reader.str(term) || !reader.u32(posting_count)) {
            warn("loadIndex: corrupt term table");
            return false;
        }
        scratch.clear();
        scratch.addTerm(term); // hashed once for the whole list
        for (std::uint32_t p = 0; p < posting_count; ++p) {
            std::uint32_t doc;
            if (!reader.u32(doc)) {
                warn("loadIndex: corrupt posting list");
                return false;
            }
            scratch.doc = doc;
            index.addBlock(scratch);
        }
    }
    if (!reader.done()) {
        warn("loadIndex: trailing bytes in payload");
        return false;
    }
    return true;
}

/**
 * One version 2 term record, pointing into the payload. Blocks are
 * validated against the posting_block.hh layout before use, so
 * cursors over them can never read out of bounds.
 */
struct TermRecordV2
{
    std::string term;
    std::uint32_t count = 0;
    std::uint32_t byte_len = 0;
    const std::uint8_t *blocks = nullptr;
    std::vector<SkipEntry> skips;
};

/**
 * Read and validate one v2/v3 term record; @p codec picks the
 * validator matching the version's block semantics.
 */
bool
readTermV2(Reader &reader, TermRecordV2 &record, PostingCodec codec)
{
    if (!reader.str(record.term) || !reader.u32(record.count)
        || !reader.u32(record.byte_len)) {
        warn("loadIndex: corrupt term table");
        return false;
    }
    if (record.count == 0) {
        warn("loadIndex: empty posting list in v2 term table");
        return false;
    }
    record.blocks = reader.bytes(record.byte_len);
    if (record.blocks == nullptr) {
        warn("loadIndex: corrupt posting blocks");
        return false;
    }
    const std::size_t skip_count = postingSkipCount(record.count);
    // skip_count derives from the *claimed* doc count; cap it against
    // the bytes actually present (8 per entry) before reserving.
    if (skip_count > reader.remaining() / 8) {
        warn("loadIndex: skip index exceeds payload");
        return false;
    }
    record.skips.clear();
    record.skips.reserve(skip_count);
    for (std::size_t s = 0; s < skip_count; ++s) {
        SkipEntry skip;
        if (!reader.u32(skip.first_doc) || !reader.u32(skip.offset)) {
            warn("loadIndex: corrupt skip index");
            return false;
        }
        record.skips.push_back(skip);
    }
    const bool valid =
        codec == PostingCodec::Packed
            ? validatePostingsPacked(
                  record.blocks, record.byte_len, record.skips.data(),
                  static_cast<std::uint32_t>(skip_count), record.count)
            : validatePostings(
                  record.blocks, record.byte_len, record.skips.data(),
                  static_cast<std::uint32_t>(skip_count), record.count);
    if (!valid) {
        warn("loadIndex: malformed posting blocks");
        return false;
    }
    return true;
}

/**
 * Check the v2 fixed block size and return the term count.
 * @return False on a mismatched block size or short payload.
 */
bool
parseV2Header(Reader &reader, std::uint64_t &term_count)
{
    std::uint32_t block_docs;
    if (!reader.u32(block_docs) || !reader.u64(term_count)) {
        warn("loadIndex: corrupt v2 header");
        return false;
    }
    if (block_docs != posting_block_docs) {
        warn("loadIndex: unsupported posting block size "
             + std::to_string(block_docs));
        return false;
    }
    // A v2 term record is at least 12 bytes (u32 term length + u32
    // doc count + u32 byte_len); cap before any caller sizes term
    // tables from this count.
    if (term_count > reader.remaining() / 12) {
        warn("loadIndex: term count exceeds payload");
        return false;
    }
    return true;
}

/**
 * Pre-scan the v2 term section (a throwaway Reader copy) to size the
 * segment arenas exactly, preserving the one-allocation property of
 * sealed segments across a load.
 */
bool
scanTermsV2(Reader reader, std::uint64_t term_count,
            std::size_t &arena_bytes, std::size_t &skip_entries)
{
    arena_bytes = 0;
    skip_entries = 0;
    std::string term;
    for (std::uint64_t t = 0; t < term_count; ++t) {
        std::uint32_t count, byte_len;
        if (!reader.str(term) || !reader.u32(count)
            || !reader.u32(byte_len)
            || !reader.skip(byte_len + postingSkipCount(count) * 8))
            return false;
        arena_bytes += byte_len;
        skip_entries += postingSkipCount(count);
    }
    return reader.done();
}

/** Parse the v2/v3 term section into a sealed segment. */
bool
parseTermsV2(Reader &reader, PostingSegment &segment,
             PostingCodec codec)
{
    std::uint64_t term_count;
    if (!parseV2Header(reader, term_count))
        return false;
    std::size_t arena_bytes, skip_entries;
    if (!scanTermsV2(reader, term_count, arena_bytes, skip_entries)) {
        warn("loadIndex: corrupt term table");
        return false;
    }
    segment.setCodec(codec);
    segment.reserveSealed(term_count, arena_bytes, skip_entries);

    TermRecordV2 record;
    for (std::uint64_t t = 0; t < term_count; ++t) {
        if (!readTermV2(reader, record, codec))
            return false;
        if (!segment.addSealedTerm(
                std::move(record.term), record.count, record.blocks,
                record.byte_len, record.skips.data(),
                static_cast<std::uint32_t>(record.skips.size()))) {
            warn("loadIndex: duplicate term in v2 term table");
            return false;
        }
    }
    if (!reader.done()) {
        warn("loadIndex: trailing bytes in payload");
        return false;
    }
    segment.finishSealed();
    return true;
}

/**
 * Parse the v2/v3 term section into a mutable index, decoding each
 * term's blocks through a cursor.
 */
bool
parseTermsV2Index(Reader &reader, InvertedIndex &index,
                  PostingCodec codec)
{
    std::uint64_t term_count;
    if (!parseV2Header(reader, term_count))
        return false;
    index.reserveTerms(term_count);
    TermRecordV2 record;
    TermBlock scratch;
    for (std::uint64_t t = 0; t < term_count; ++t) {
        if (!readTermV2(reader, record, codec))
            return false;
        scratch.clear();
        scratch.addTerm(record.term);
        PostingCursor cursor(
            record.blocks, record.skips.data(),
            static_cast<std::uint32_t>(record.skips.size()),
            record.count, codec);
        for (; cursor.valid(); cursor.next()) {
            scratch.doc = cursor.doc();
            index.addBlock(scratch);
        }
    }
    if (!reader.done()) {
        warn("loadIndex: trailing bytes in payload");
        return false;
    }
    return true;
}

} // namespace

bool
saveSnapshot(const IndexSnapshot &snapshot, const DocTable &docs,
             std::ostream &out)
{
    if (!snapshot.unified())
        panic("saveSnapshot: multi-segment snapshot; join the build "
              "before persisting");
    const PostingSegment *segment =
        snapshot.segmentCount() == 0 ? nullptr
                                     : snapshot.segment(0).sealed();
    // The on-disk version simply names the segment's codec: fresh
    // seals are bit-packed (v3); a segment loaded from a v2 file and
    // re-saved round-trips as v2 without transcoding.
    const std::uint32_t version =
        segment != nullptr && segment->codec() == PostingCodec::Varint
            ? format_v2
            : format_v3;
    return writeSegmentSealed(segment, docs, out, version);
}

bool
saveSnapshotFile(const IndexSnapshot &snapshot, const DocTable &docs,
                 const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("saveSnapshotFile: cannot open '" + path + "'");
        return false;
    }
    return saveSnapshot(snapshot, docs, out);
}

bool
saveIndex(InvertedIndex &index, const DocTable &docs, std::ostream &out)
{
    index.sortPostings();
    return writeSegmentV1(SegmentReader(&index), docs, out);
}

bool
saveIndexFile(InvertedIndex &index, const DocTable &docs,
              const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        warn("saveIndexFile: cannot open '" + path + "'");
        return false;
    }
    return saveIndex(index, docs, out);
}

bool
loadSnapshot(IndexSnapshot &snapshot, DocTable &docs, std::istream &in)
{
    snapshot = IndexSnapshot();
    docs = DocTable{};

    std::uint32_t version = 0;
    std::string payload;
    if (!readFramed(in, version, payload))
        return false;

    Reader reader(payload);
    if (!parseDocs(reader, docs)) {
        docs = DocTable{};
        return false;
    }

    if (version == format_v1) {
        InvertedIndex index;
        if (!parseTermsV1(reader, index)) {
            docs = DocTable{};
            return false;
        }
        snapshot = IndexSnapshot::seal(std::move(index));
        return true;
    }

    PostingSegment segment;
    if (!parseTermsV2(reader, segment, codecForVersion(version))) {
        docs = DocTable{};
        return false;
    }
    snapshot = IndexSnapshot::fromSealed(std::move(segment));
    return true;
}

bool
loadSnapshotFile(IndexSnapshot &snapshot, DocTable &docs,
                 const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("loadSnapshotFile: cannot open '" + path + "'");
        snapshot = IndexSnapshot();
        return false;
    }
    return loadSnapshot(snapshot, docs, in);
}

bool
loadIndex(InvertedIndex &index, DocTable &docs, std::istream &in)
{
    index.clear();
    docs = DocTable{};

    std::uint32_t version = 0;
    std::string payload;
    if (!readFramed(in, version, payload))
        return false;

    Reader reader(payload);
    bool ok = parseDocs(reader, docs)
              && (version == format_v1
                      ? parseTermsV1(reader, index)
                      : parseTermsV2Index(reader, index,
                                          codecForVersion(version)));
    if (!ok) {
        index.clear();
        docs = DocTable{};
        return false;
    }
    return true;
}

bool
loadIndexFile(InvertedIndex &index, DocTable &docs,
              const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("loadIndexFile: cannot open '" + path + "'");
        return false;
    }
    return loadIndex(index, docs, in);
}

} // namespace dsearch
