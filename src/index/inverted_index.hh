/**
 * @file
 * The inverted index: term -> list of documents containing the term.
 *
 * Implemented as the paper describes: a hash map (FNV1 hashing) from
 * term to posting list. Two insertion paths exist:
 *
 *  - addBlock() takes a file's unique terms en bloc. Because each file
 *    is scanned exactly once and duplicates were already eliminated in
 *    the extractor, no (term, doc) duplicate check is needed — the
 *    design choice §3 of the paper argues for.
 *
 *  - addOccurrence() inserts a single occurrence and performs the
 *    linear duplicate scan the paper describes for the rejected
 *    immediate-insertion design. It exists for ablation E7.
 *
 * Zero-copy / hash-once contract: TermBlock spans carry the FNV-1a
 * hash the extractor computed, and every insert path hands that hash
 * to the map (findOrEmplaceHashed), so Stage 3 never re-hashes a term
 * and only materializes a std::string key the first time a term is
 * seen globally. merge() — the Join Forces step — likewise moves
 * slots between maps with their cached hashes, so a term is hashed
 * exactly once in the lifetime of a build, in the extractor.
 *
 * The class itself is single-threaded; concurrent use is coordinated
 * by SharedIndex (Implementation 1) or by giving each thread a private
 * replica (Implementations 2 and 3).
 */

#ifndef DSEARCH_INDEX_INVERTED_INDEX_HH
#define DSEARCH_INDEX_INVERTED_INDEX_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "text/term_extractor.hh"
#include "util/hash_map.hh"

namespace dsearch {

/** Documents containing a term, in insertion order (unsorted). */
using PostingList = std::vector<DocId>;

/** Single-threaded inverted index; see the file comment. */
class InvertedIndex
{
  public:
    InvertedIndex() = default;

    InvertedIndex(const InvertedIndex &) = delete;
    InvertedIndex &operator=(const InvertedIndex &) = delete;

    // Explicit moves so the moved-from index reads as empty (the
    // defaulted ones would copy the posting counter).
    InvertedIndex(InvertedIndex &&other) noexcept
        : _map(std::move(other._map)),
          _postings(std::exchange(other._postings, 0))
    {
    }

    InvertedIndex &
    operator=(InvertedIndex &&other) noexcept
    {
        _map = std::move(other._map);
        _postings = std::exchange(other._postings, 0);
        return *this;
    }

    /**
     * Insert one file's unique terms en bloc (no duplicate checks;
     * the extractor guarantees uniqueness). Reuses the hashes cached
     * in the block's spans.
     */
    void addBlock(const TermBlock &block);

    /**
     * En-bloc insert of a subset of a block's terms, given by span
     * indices: same semantics as addBlock() restricted to those spans.
     * Used by the sharded-lock wrapper, which groups a block's terms
     * by shard.
     */
    void addBlockSpans(const TermBlock &block,
                       const std::uint32_t *indices, std::size_t count);

    /**
     * Insert one term occurrence, checking the posting list for a
     * previous (term, doc) pair — the linear search the en-bloc
     * design eliminates.
     */
    void addOccurrence(std::string_view term, DocId doc);

    /** addOccurrence() with a caller-supplied term hash. */
    void addOccurrenceHashed(std::uint64_t hash, std::string_view term,
                             DocId doc);

    /**
     * Append @p count postings to @p term's list with no duplicate
     * check — the bulk path for materializing a sealed segment back
     * into mutable form (live-index compaction decodes each term's
     * cursor into a scratch buffer and hands it here). The caller
     * owns the no-duplicates invariant, exactly as in addBlock().
     */
    void addPostings(std::string_view term, const DocId *docs,
                     std::size_t count);

    /**
     * @return Posting list for @p term, or nullptr when the term is
     *         unknown. Heterogeneous: no std::string is allocated for
     *         the probe.
     */
    const PostingList *postings(std::string_view term) const;

    /** @return Number of distinct terms. */
    std::size_t termCount() const { return _map.size(); }

    /** @return Total (term, doc) pairs across all posting lists. */
    std::uint64_t postingCount() const { return _postings; }

    /** @return True when the index holds nothing. */
    bool empty() const { return _map.empty(); }

    /** Drop all content. */
    void clear();

    /**
     * Explicit deep copy. Indices are move-only so accidental copies
     * of multi-million-posting tables cannot happen silently; cloning
     * is for benchmarks and tools that need to reuse a replica set.
     */
    InvertedIndex clone() const;

    /**
     * Merge another index into this one (the "Join Forces" step).
     *
     * Posting lists for shared terms are concatenated; when document
     * sets were disjoint (as in the generator, where each file is
     * processed by exactly one thread) the result has no duplicates.
     * Slots move over with their cached hashes — no term is re-hashed.
     * @p other is left empty.
     */
    void merge(InvertedIndex &&other);

    /**
     * Remove every posting of @p doc (incremental maintenance: the
     * file was deleted or is being re-indexed). Linear in the total
     * posting count; desktop-scale indices tolerate that for the
     * rare-delete case.
     *
     * @return Number of postings removed.
     */
    std::uint64_t removeDoc(DocId doc);

    /**
     * Erase terms whose posting lists became empty (after
     * removeDoc()).
     *
     * @return Number of terms erased.
     */
    std::size_t eraseEmptyTerms();

    /**
     * Sort every posting list ascending (canonical form for
     * comparison, serialization and search).
     */
    void sortPostings();

    /**
     * Visit every (term, postings) pair.
     *
     * @param fn Callable taking (const std::string &,
     *           const PostingList &). Iteration order is hash order.
     */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        for (const auto &slot : _map)
            fn(slot.key, slot.value);
    }

    /** Pre-size the term table for @p expected_terms entries. */
    void reserveTerms(std::size_t expected_terms);

  private:
    HashMap<std::string, PostingList> _map;
    std::uint64_t _postings = 0;
};

/**
 * Structural equality after canonicalization: same term set, same
 * sorted posting lists. Both arguments must already be sorted via
 * sortPostings().
 */
bool sameContents(const InvertedIndex &a, const InvertedIndex &b);

} // namespace dsearch

#endif // DSEARCH_INDEX_INVERTED_INDEX_HH
