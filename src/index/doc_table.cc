#include "index/doc_table.hh"

#include "util/logging.hh"

namespace dsearch {

DocTable
DocTable::fromFileList(const FileList &files)
{
    DocTable table;
    table._paths.reserve(files.size());
    table._sizes.reserve(files.size());
    for (const FileEntry &file : files) {
        if (file.doc != table._paths.size())
            panic("DocTable::fromFileList: non-dense document IDs");
        table._paths.push_back(file.path);
        table._sizes.push_back(file.size);
    }
    return table;
}

DocId
DocTable::add(std::string path, std::uint64_t size)
{
    DocId doc = static_cast<DocId>(_paths.size());
    _paths.push_back(std::move(path));
    _sizes.push_back(size);
    return doc;
}

const std::string &
DocTable::path(DocId doc) const
{
    if (doc >= _paths.size())
        panic("DocTable::path: document ID out of range");
    return _paths[doc];
}

std::uint64_t
DocTable::sizeBytes(DocId doc) const
{
    if (doc >= _sizes.size())
        panic("DocTable::sizeBytes: document ID out of range");
    return _sizes[doc];
}

} // namespace dsearch
