/**
 * @file
 * Crash-safe, generational persistence for built indexes.
 *
 * saveSnapshotFile() writes one file in place; a crash (power loss,
 * OOM-kill, a full disk) halfway through leaves a truncated file where
 * the only copy of the index used to be. A production service cannot
 * serve from that. SnapshotStore makes persistence atomic and
 * recoverable by construction:
 *
 *  - Every save writes a NEW generation: the bytes go to
 *    `snapshot-NNNNNN.idx.tmp`, are flushed and fsync'd, and only then
 *    renamed to `snapshot-NNNNNN.idx` (rename within a directory is
 *    atomic on POSIX). The previous generation is never touched, so no
 *    crash point can lose the last good index.
 *  - A small text MANIFEST lists the generations the store believes
 *    in; it is itself replaced atomically (tmp + rename) after the
 *    snapshot rename. The manifest is an optimization hint, not the
 *    source of truth — recovery also scans the directory, so a crash
 *    between the snapshot rename and the manifest write just means the
 *    new generation is found by scan instead of by list.
 *  - load() validates the newest candidate with the serialize layer's
 *    full checking (magic, version, FNV-1a payload checksum,
 *    structural posting-block validation) and falls back generation by
 *    generation until one passes, deleting corrupt files and stray
 *    `.tmp` partials as it goes. An interrupted save therefore
 *    degrades to "serve the previous generation", never to "serve
 *    garbage" or "serve nothing despite a good older file".
 *
 * Failure handling summary:
 *   detected:  truncated/bit-flipped snapshot files (checksum +
 *              structural validation), partial writes (`.tmp` never
 *              considered), missing manifest (directory scan).
 *   recovered: newest *valid* generation wins; older generations are
 *              the fallback chain.
 *   cleaned:   `.tmp` partials and corrupt generation files are
 *              deleted on load; generations beyond keep_generations
 *              are pruned on save.
 *
 * Crash points are injectable (util/fault.hh):
 * `snapshot_store.crash_mid_write`, `...crash_before_rename`, and
 * `...crash_before_manifest` make save() stop at the matching stage,
 * leaving exactly the on-disk state a real crash there would — the
 * kill-mid-save tests drive recovery through every stage.
 *
 * Thread safety: a store instance serializes its own operations with
 * an internal mutex (hot-swap publishers call save() from a background
 * thread while a loader recovers elsewhere). Distinct instances on the
 * same directory share no lock, but load() tolerates a concurrent
 * saver pruning generations underfoot: a candidate file that vanished
 * (rather than failed validation) triggers a bounded directory
 * re-scan — which also picks up anything published since — instead of
 * being misdiagnosed as corrupt. Symmetrically, save() tolerates a
 * concurrent loader reaping its in-flight `.tmp` as a partial: a
 * rename whose source vanished underfoot rewrites the temp and tries
 * again (bounded) rather than failing the save.
 */

#ifndef DSEARCH_INDEX_SNAPSHOT_STORE_HH
#define DSEARCH_INDEX_SNAPSHOT_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"

namespace dsearch {

/** Tuning knobs for a SnapshotStore. */
struct SnapshotStoreOptions
{
    /**
     * Good generations kept on disk after a successful save (>= 1).
     * Older ones are pruned; more survive crash-corruption of the
     * newest file at the cost of disk.
     */
    std::size_t keep_generations = 3;

    /**
     * Issue fsync barriers on the data file and directory (crash
     * durability). Tests that only need atomicity can turn it off
     * for speed.
     */
    bool sync = true;
};

/** Generational snapshot persistence; see the file comment. */
class SnapshotStore
{
  public:
    /**
     * Operate on host directory @p directory, created (with parents)
     * when missing.
     */
    explicit SnapshotStore(std::string directory,
                           SnapshotStoreOptions options = {});

    /** @return The store's host directory. */
    const std::string &directory() const { return _directory; }

    /**
     * Persist @p snapshot + @p docs as a new generation (temp ->
     * fsync -> rename -> manifest), then prune generations beyond
     * keep_generations.
     *
     * @return The new generation number, or 0 on failure — in which
     *         case the previous generations are untouched and still
     *         load.
     */
    std::uint64_t save(const IndexSnapshot &snapshot,
                       const DocTable &docs);

    /**
     * Recover the newest valid generation into @p snapshot / @p docs,
     * deleting `.tmp` partials and corrupt generation files along the
     * way (see the file comment).
     *
     * @return The generation loaded, or 0 when no valid generation
     *         exists (outputs left empty).
     */
    std::uint64_t load(IndexSnapshot &snapshot, DocTable &docs);

    /**
     * @return Generation numbers present on disk (manifest union
     *         directory scan), ascending. Validity is not checked.
     */
    std::vector<std::uint64_t> generations() const;

    /** @return Largest generation present on disk, 0 when none. */
    std::uint64_t newestGeneration() const;

    /** @return Host path of generation @p gen's snapshot file. */
    std::string generationPath(std::uint64_t gen) const;

    /** @return Corrupt/partial files deleted by load() so far. */
    std::uint64_t cleanedFiles() const { return _cleaned; }

    /**
     * @return Generation files deleted because they failed
     *         validation — actual corruption, as opposed to reaped
     *         `.tmp` partials (a concurrent saver's in-flight temp
     *         counts only in cleanedFiles(); the saver rewrites it).
     */
    std::uint64_t corruptFiles() const { return _corrupt; }

  private:
    /** generations(), caller already holding _mutex. */
    std::vector<std::uint64_t> generationsLocked() const;

    /** Atomically rewrite MANIFEST to list @p gens (ascending). */
    bool writeManifest(const std::vector<std::uint64_t> &gens);

    /** Delete generations older than the keep_generations newest. */
    void prune(std::vector<std::uint64_t> &gens);

    /** Remove every `*.tmp` in the directory (partial writes). */
    void removePartials();

    std::string _directory;
    SnapshotStoreOptions _options;
    mutable std::mutex _mutex;
    std::uint64_t _cleaned = 0;
    std::uint64_t _corrupt = 0;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_SNAPSHOT_STORE_HH
