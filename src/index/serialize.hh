/**
 * @file
 * Binary persistence for an index + document table.
 *
 * A desktop-search deployment builds the index once and serves many
 * queries from it, so the index must survive process restarts. The
 * format is versioned, little-endian, and carries an FNV-1a checksum
 * of the payload so truncated or corrupted files are detected on
 * load.
 */

#ifndef DSEARCH_INDEX_SERIALIZE_HH
#define DSEARCH_INDEX_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "index/doc_table.hh"
#include "index/inverted_index.hh"

namespace dsearch {

/**
 * Write @p index and @p docs to a stream.
 *
 * Posting lists are written sorted, so the on-disk form is canonical:
 * two indices with equal contents serialize identically.
 *
 * @param index Index to save (sorted internally; the in-memory object
 *              is canonicalized as a side effect).
 * @param docs  Document table the postings refer to.
 * @param out   Destination stream (binary).
 * @return False on stream failure.
 */
bool saveIndex(InvertedIndex &index, const DocTable &docs,
               std::ostream &out);

/** Convenience overload writing to a file path. */
bool saveIndexFile(InvertedIndex &index, const DocTable &docs,
                   const std::string &path);

/**
 * Read an index + document table written by saveIndex().
 *
 * @param index Receives the index (replaced).
 * @param docs  Receives the document table (replaced).
 * @param in    Source stream (binary).
 * @return False on stream failure, bad magic/version, or checksum
 *         mismatch; the outputs are left empty in that case.
 */
bool loadIndex(InvertedIndex &index, DocTable &docs, std::istream &in);

/** Convenience overload reading from a file path. */
bool loadIndexFile(InvertedIndex &index, DocTable &docs,
                   const std::string &path);

} // namespace dsearch

#endif // DSEARCH_INDEX_SERIALIZE_HH
