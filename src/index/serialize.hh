/**
 * @file
 * Binary persistence for an index + document table.
 *
 * A desktop-search deployment builds the index once and serves many
 * queries from it, so the index must survive process restarts. The
 * format is versioned, little-endian, and carries an FNV-1a checksum
 * of the payload so truncated or corrupted files are detected on
 * load.
 *
 * The write side consumes postings exclusively through PostingCursor
 * (terms in lexicographic order, cursors walked front to back), so
 * the on-disk form is canonical — two equal indices serialize
 * identically — and the writer is independent of the in-memory
 * posting representation.
 *
 * saveSnapshot()/loadSnapshot() are the primary entry points; the
 * InvertedIndex overloads remain for code that still holds mutable
 * indices (they canonicalize in place as a side effect).
 */

#ifndef DSEARCH_INDEX_SERIALIZE_HH
#define DSEARCH_INDEX_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"

namespace dsearch {

/**
 * Write a sealed snapshot and @p docs to a stream.
 *
 * @param snapshot Unified snapshot (panics when multi-segment; join
 *                 the build before persisting).
 * @param docs     Document table the postings refer to.
 * @param out      Destination stream (binary).
 * @return False on stream failure.
 */
bool saveSnapshot(const IndexSnapshot &snapshot, const DocTable &docs,
                  std::ostream &out);

/** Convenience overload writing to a file path. */
bool saveSnapshotFile(const IndexSnapshot &snapshot,
                      const DocTable &docs, const std::string &path);

/**
 * Read a snapshot + document table written by saveSnapshot() (or
 * saveIndex()).
 *
 * @param snapshot Receives the sealed index (replaced).
 * @param docs     Receives the document table (replaced).
 * @param in       Source stream (binary).
 * @return False on stream failure, bad magic/version, or checksum
 *         mismatch; the outputs are left empty in that case.
 */
bool loadSnapshot(IndexSnapshot &snapshot, DocTable &docs,
                  std::istream &in);

/** Convenience overload reading from a file path. */
bool loadSnapshotFile(IndexSnapshot &snapshot, DocTable &docs,
                      const std::string &path);

/**
 * Write @p index and @p docs to a stream (mutable-index overload;
 * the index is canonicalized in place as a side effect).
 */
bool saveIndex(InvertedIndex &index, const DocTable &docs,
               std::ostream &out);

/** Convenience overload writing to a file path. */
bool saveIndexFile(InvertedIndex &index, const DocTable &docs,
                   const std::string &path);

/**
 * Read an index + document table into a mutable InvertedIndex (for
 * incremental maintenance; prefer loadSnapshot() for querying).
 */
bool loadIndex(InvertedIndex &index, DocTable &docs, std::istream &in);

/** Convenience overload reading from a file path. */
bool loadIndexFile(InvertedIndex &index, DocTable &docs,
                   const std::string &path);

} // namespace dsearch

#endif // DSEARCH_INDEX_SERIALIZE_HH
