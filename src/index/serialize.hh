/**
 * @file
 * Binary persistence for an index + document table.
 *
 * A desktop-search deployment builds the index once and serves many
 * queries from it, so the index must survive process restarts. The
 * format is versioned, little-endian, and carries an FNV-1a checksum
 * of the payload so truncated or corrupted files are detected on
 * load.
 *
 * Common framing (all versions):
 *
 *     magic "DSIX" | u32 version | u64 payload_size
 *     payload (payload_size bytes)
 *     u64 checksum
 *
 * The checksum is FNV-1a-64 of the payload for v1/v2 (the frozen
 * historical definition) and of the little-endian version field
 * followed by the payload for v3 — v2 and v3 payloads can be
 * byte-identical (short lists are varint tails under both codecs),
 * so v3 folds the version in to make a flipped version byte a
 * checksum mismatch instead of a silent codec swap.
 *
 * Versions 2 and 3 share the sealed-segment payload layout. Posting
 * blocks are copied verbatim from the segment arena on save and back
 * into an arena on load; nothing is decoded or re-encoded, and terms
 * are written in the segment's cached lexicographic order (no
 * save-time sort). Layout:
 *
 *     u64 doc_count | { str path, u64 size_bytes } * doc_count
 *     u32 block_docs          -- posting_block_docs at write time;
 *                                loads reject a mismatch
 *     u64 term_count
 *     per term, lexicographic:
 *       str term
 *       u32 doc_count         -- postings in the list (> 0)
 *       u32 byte_len          -- encoded block bytes
 *       byte_len bytes        -- posting blocks, verbatim
 *                                (posting_block.hh layout)
 *       { u32 first_doc, u32 offset } * (ceil(doc_count /
 *           block_docs) - 1) -- skip entries, one per block after
 *                                the first
 *
 *     (str = u32 length + bytes.)
 *
 * The versions differ only in block semantics: v2 blocks are
 * delta + LEB128 varint (PostingCodec::Varint); v3 full blocks are
 * bit-packed SIMD-BP128-style with a varint tail block
 * (PostingCodec::Packed) — see posting_block.hh for both byte
 * layouts. v3 term records are validated with
 * validatePostingsPacked() (width bounds, exact packed-payload
 * sizes, overflow-free ascending docs) before any block reaches the
 * exact-length packed decoder.
 *
 * Version 1 payload — the legacy raw format: same document table,
 * then `u64 term_count` and per term `str term, u32 doc_count,
 * u32 doc * doc_count`. Still written by the mutable-InvertedIndex
 * overloads (which have no compressed blocks to copy and sort terms
 * at write time) and still loaded by every load entry point.
 *
 * saveSnapshot()/loadSnapshot() are the primary entry points. Save
 * writes the version matching the segment's codec — v3 for fresh
 * (bit-packed) seals, v2 for a segment that was itself loaded from a
 * v2 file, so either vintage round-trips without transcoding. All
 * three versions load everywhere; the InvertedIndex overloads remain
 * for code that still holds mutable indices (they canonicalize in
 * place as a side effect).
 *
 * Failure handling. Load never trusts the file: magic, version and
 * checksum are verified, the payload is read in bounded chunks (a
 * huge payload_size fails at EOF instead of allocating), and every
 * count in the header (doc_count, term_count, skip entries) is
 * sanity-capped against the bytes actually remaining before any
 * table is sized from it — a corrupt header produces `false` and
 * empty outputs, never an OOM or a crash (fuzzed in
 * tests/test_snapshot_fuzz.cc, under ASan/UBSan in CI). Save and
 * load streams carry the fault-injection points
 * "serialize.save.stream" / "serialize.load.stream" (util/fault.hh)
 * so callers' failure paths are testable; crash-safe on-disk
 * rotation of these images lives in index/snapshot_store.hh.
 */

#ifndef DSEARCH_INDEX_SERIALIZE_HH
#define DSEARCH_INDEX_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"

namespace dsearch {

/**
 * Write a sealed snapshot and @p docs to a stream (version 3 for
 * bit-packed segments, version 2 for varint ones: the segment's
 * compressed blocks verbatim, terms in the cached lexicographic
 * order).
 *
 * @param snapshot Unified snapshot (panics when multi-segment; join
 *                 the build before persisting).
 * @param docs     Document table the postings refer to.
 * @param out      Destination stream (binary).
 * @return False on stream failure.
 */
bool saveSnapshot(const IndexSnapshot &snapshot, const DocTable &docs,
                  std::ostream &out);

/** Convenience overload writing to a file path. */
bool saveSnapshotFile(const IndexSnapshot &snapshot,
                      const DocTable &docs, const std::string &path);

/**
 * Read a snapshot + document table written by saveSnapshot() (or
 * saveIndex()). Version 2/3 files load straight into a sealed
 * segment — blocks are copied, not re-encoded, and the segment keeps
 * the file's codec; version 1 files are read into a mutable index
 * and sealed (bit-packed).
 *
 * @param snapshot Receives the sealed index (replaced).
 * @param docs     Receives the document table (replaced).
 * @param in       Source stream (binary).
 * @return False on stream failure, bad magic/version, checksum
 *         mismatch, or malformed posting blocks; the outputs are
 *         left empty in that case.
 */
bool loadSnapshot(IndexSnapshot &snapshot, DocTable &docs,
                  std::istream &in);

/** Convenience overload reading from a file path. */
bool loadSnapshotFile(IndexSnapshot &snapshot, DocTable &docs,
                      const std::string &path);

/**
 * Write @p index and @p docs to a stream (mutable-index overload,
 * version 1; the index is canonicalized in place as a side effect).
 */
bool saveIndex(InvertedIndex &index, const DocTable &docs,
               std::ostream &out);

/** Convenience overload writing to a file path. */
bool saveIndexFile(InvertedIndex &index, const DocTable &docs,
                   const std::string &path);

/**
 * Read an index + document table into a mutable InvertedIndex (for
 * incremental maintenance; prefer loadSnapshot() for querying).
 * Accepts all versions; version 2/3 blocks are decoded back into raw
 * posting lists.
 */
bool loadIndex(InvertedIndex &index, DocTable &docs, std::istream &in);

/** Convenience overload reading from a file path. */
bool loadIndexFile(InvertedIndex &index, DocTable &docs,
                   const std::string &path);

} // namespace dsearch

#endif // DSEARCH_INDEX_SERIALIZE_HH
