#include "index/shared_index.hh"

#include "util/logging.hh"

namespace dsearch {

void
SharedIndex::addBlock(const TermBlock &block)
{
    std::scoped_lock lock(_mutex);
    _index.addBlock(block);
}

void
SharedIndex::addOccurrence(const std::string &term, DocId doc)
{
    std::scoped_lock lock(_mutex);
    _index.addOccurrence(term, doc);
}

std::size_t
SharedIndex::termCount() const
{
    std::scoped_lock lock(_mutex);
    return _index.termCount();
}

std::uint64_t
SharedIndex::postingCount() const
{
    std::scoped_lock lock(_mutex);
    return _index.postingCount();
}

InvertedIndex
SharedIndex::release()
{
    std::scoped_lock lock(_mutex);
    return std::move(_index);
}

ShardedIndex::ShardedIndex(std::size_t shard_count)
{
    std::size_t n = 1;
    while (n < shard_count)
        n <<= 1;
    _shards.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        _shards.push_back(std::make_unique<Shard>());
}

std::size_t
ShardedIndex::shardOf(const std::string &term) const
{
    return FnvHash<std::string>{}(term) & (_shards.size() - 1);
}

void
ShardedIndex::addBlock(const TermBlock &block)
{
    if (_shards.size() == 1) {
        Shard &shard = *_shards[0];
        std::scoped_lock lock(shard.mutex);
        shard.index.addBlock(block);
        return;
    }

    // Group the block by shard so each shard lock is taken at most
    // once per block (preserving the paper's "large chunks" benefit).
    // Pointers, not copies: grouping must stay cheap relative to the
    // lock contention it avoids.
    std::vector<std::vector<const std::string *>> per_shard(
        _shards.size());
    for (const std::string &term : block.terms)
        per_shard[shardOf(term)].push_back(&term);
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        if (per_shard[s].empty())
            continue;
        Shard &shard = *_shards[s];
        std::scoped_lock lock(shard.mutex);
        shard.index.addBlockRefs(block.doc, per_shard[s]);
    }
}

std::size_t
ShardedIndex::termCount() const
{
    std::size_t total = 0;
    for (const auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        total += shard->index.termCount();
    }
    return total;
}

std::uint64_t
ShardedIndex::postingCount() const
{
    std::uint64_t total = 0;
    for (const auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        total += shard->index.postingCount();
    }
    return total;
}

void
ShardedIndex::joinInto(InvertedIndex &out)
{
    for (auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        out.merge(std::move(shard->index));
    }
}

} // namespace dsearch
