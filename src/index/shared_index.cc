#include "index/shared_index.hh"

#include "util/logging.hh"

namespace dsearch {

void
SharedIndex::addBlock(const TermBlock &block)
{
    std::scoped_lock lock(_mutex);
    _index.addBlock(block);
}

void
SharedIndex::addOccurrence(std::string_view term, DocId doc)
{
    addOccurrenceHashed(fnv1a_64(term), term, doc);
}

void
SharedIndex::addOccurrenceHashed(std::uint64_t hash,
                                 std::string_view term, DocId doc)
{
    std::scoped_lock lock(_mutex);
    _index.addOccurrenceHashed(hash, term, doc);
}

std::size_t
SharedIndex::termCount() const
{
    std::scoped_lock lock(_mutex);
    return _index.termCount();
}

std::uint64_t
SharedIndex::postingCount() const
{
    std::scoped_lock lock(_mutex);
    return _index.postingCount();
}

InvertedIndex
SharedIndex::release()
{
    std::scoped_lock lock(_mutex);
    return std::move(_index);
}

ShardedIndex::ShardedIndex(std::size_t shard_count)
{
    std::size_t n = 1;
    unsigned bits = 0;
    while (n < shard_count) {
        n <<= 1;
        ++bits;
    }
    _shard_shift = 64 - bits;
    if (bits == 0)
        _shard_shift = 0; // n == 1: shardOf masks to 0 anyway
    _shards.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        _shards.push_back(std::make_unique<Shard>());
}

void
ShardedIndex::addBlock(const TermBlock &block)
{
    if (_shards.size() == 1) {
        Shard &shard = *_shards[0];
        std::scoped_lock lock(shard.mutex);
        shard.index.addBlock(block);
        return;
    }

    // Group the block's span indices by shard so each shard lock is
    // taken at most once per block (preserving the paper's "large
    // chunks" benefit). Span indices, not string copies, and the
    // grouping scratch is reused across calls from the same thread:
    // grouping must stay cheap relative to the lock contention it
    // avoids.
    thread_local std::vector<std::vector<std::uint32_t>> per_shard;
    per_shard.resize(_shards.size());
    for (auto &group : per_shard)
        group.clear();
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(block.spans.size()); ++i) {
        per_shard[shardOf(block.spans[i].hash)].push_back(i);
    }
    for (std::size_t s = 0; s < _shards.size(); ++s) {
        if (per_shard[s].empty())
            continue;
        Shard &shard = *_shards[s];
        std::scoped_lock lock(shard.mutex);
        shard.index.addBlockSpans(block, per_shard[s].data(),
                                  per_shard[s].size());
    }
}

std::size_t
ShardedIndex::termCount() const
{
    std::size_t total = 0;
    for (const auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        total += shard->index.termCount();
    }
    return total;
}

std::uint64_t
ShardedIndex::postingCount() const
{
    std::uint64_t total = 0;
    for (const auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        total += shard->index.postingCount();
    }
    return total;
}

void
ShardedIndex::joinInto(InvertedIndex &out)
{
    for (auto &shard : _shards) {
        std::scoped_lock lock(shard->mutex);
        out.merge(std::move(shard->index));
    }
}

} // namespace dsearch
