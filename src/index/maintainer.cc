#include "index/maintainer.hh"

#include "util/logging.hh"

namespace dsearch {

IndexMaintainer::IndexMaintainer(InvertedIndex index, DocTable docs,
                                 TokenizerOptions opts)
    : _index(std::move(index)), _docs(std::move(docs)),
      _alive(_docs.docCount(), true), _alive_count(_docs.docCount()),
      _opts(opts)
{
}

DocId
IndexMaintainer::addDocument(const FileSystem &fs,
                             const std::string &path)
{
    TermExtractor extractor(fs, _opts);
    FileEntry entry;
    entry.doc = static_cast<DocId>(_docs.docCount());
    entry.path = path;
    entry.size = fs.fileSize(path);
    TermBlock block;
    if (!extractor.extract(entry, block))
        return invalid_doc;

    DocId doc = _docs.add(path, entry.size);
    _alive.push_back(true);
    ++_alive_count;
    _index.addBlock(block);
    return doc;
}

bool
IndexMaintainer::removeDocument(DocId doc)
{
    if (doc >= _alive.size() || !_alive[doc])
        return false;
    _index.removeDoc(doc);
    _alive[doc] = false;
    --_alive_count;
    return true;
}

bool
IndexMaintainer::refreshDocument(const FileSystem &fs, DocId doc)
{
    if (doc >= _alive.size() || !_alive[doc])
        return false;
    _index.removeDoc(doc);

    TermExtractor extractor(fs, _opts);
    FileEntry entry;
    entry.doc = doc;
    entry.path = _docs.path(doc);
    entry.size = fs.fileSize(entry.path);
    TermBlock block;
    if (!extractor.extract(entry, block)) {
        // The file is gone mid-refresh: it becomes a removal.
        _alive[doc] = false;
        --_alive_count;
        return false;
    }
    _index.addBlock(block);
    return true;
}

bool
IndexMaintainer::alive(DocId doc) const
{
    return doc < _alive.size() && _alive[doc];
}

std::vector<DocId>
IndexMaintainer::aliveDocs() const
{
    std::vector<DocId> docs;
    docs.reserve(_alive_count);
    for (DocId doc = 0; doc < _alive.size(); ++doc)
        if (_alive[doc])
            docs.push_back(doc);
    return docs;
}

std::size_t
IndexMaintainer::vacuum()
{
    return _index.eraseEmptyTerms();
}

IndexSnapshot
IndexMaintainer::snapshot() const
{
    return IndexSnapshot::seal(_index.clone());
}

} // namespace dsearch
