/**
 * @file
 * The "Join Forces" pattern: merging replicated indices.
 *
 * §2.3 of the paper: each term extractor (or updater) builds a private
 * index and the replicas are joined at the end, eliminating all
 * synchronization except a barrier before the join. The open question
 * the paper poses — "Would it be enough to join the indices with a
 * single thread, or should a parallel reduction setup with multiple
 * joining processes be used?" — is answered empirically by ablation
 * E8, for which both joins are provided.
 */

#ifndef DSEARCH_INDEX_INDEX_JOIN_HH
#define DSEARCH_INDEX_INDEX_JOIN_HH

#include <cstddef>
#include <vector>

#include "index/inverted_index.hh"

namespace dsearch {

/**
 * Join replicas with a single thread: fold every replica into the
 * first.
 *
 * @param replicas Consumed (left empty).
 * @return The joined index; empty input yields an empty index.
 */
InvertedIndex joinSequential(std::vector<InvertedIndex> replicas);

/**
 * Join replicas with a parallel reduction tree of @p threads joiner
 * threads: each round merges disjoint pairs concurrently, halving the
 * replica count until one remains.
 *
 * @param replicas Consumed (left empty).
 * @param threads  Joiner thread count (>= 1; 1 degenerates to the
 *                 sequential join).
 * @return The joined index.
 */
InvertedIndex joinParallel(std::vector<InvertedIndex> replicas,
                           std::size_t threads);

} // namespace dsearch

#endif // DSEARCH_INDEX_INDEX_JOIN_HH
