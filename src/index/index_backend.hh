/**
 * @file
 * IndexBackend: the pluggable write side of Stage 3.
 *
 * The generator used to hard-code the paper's three organizations as
 * special cases over concrete types; the backend interface reduces
 * Stage 3 to one loop:
 *
 *     backend->addBlock(std::move(block), lane);   // per block
 *     ...all writers joined...
 *     IndexSnapshot snapshot = backend->sealed();  // finalize
 *
 * Lanes model the paper's replica ownership: a replicated backend
 * gives each writer thread (updater u, or extractor w when y = 0) a
 * private index at lane index u/w, so no insert synchronizes; shared
 * backends ignore the lane and synchronize internally. Callers must
 * use one lane per concurrent writer — a lane itself is not
 * thread-safe.
 *
 * Sealing runs the organization's finalization (lock release, shard
 * join, or the paper's "Join Forces" reduction) and canonicalizes the
 * result into an immutable IndexSnapshot. Implementations:
 *
 *  - makeBackend(Sequential):        one unlocked index, one lane.
 *  - makeBackend(SharedLocked):      one locked index (lock_shards = 1)
 *                                    or hash-sharded locks (> 1);
 *                                    seals to one segment.
 *  - makeBackend(ReplicatedJoin):    one private index per lane,
 *                                    joined by z threads at seal; one
 *                                    segment.
 *  - makeBackend(ReplicatedNoJoin):  private indices kept; seals to
 *                                    one segment per lane.
 */

#ifndef DSEARCH_INDEX_INDEX_BACKEND_HH
#define DSEARCH_INDEX_INDEX_BACKEND_HH

#include <memory>

#include "core/config.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"
#include "text/term_extractor.hh"

namespace dsearch {

/** Pluggable Stage 3 write interface; see the file comment. */
class IndexBackend
{
  public:
    virtual ~IndexBackend() = default;

    /** @return Organization name for logs and test output. */
    virtual const char *name() const = 0;

    /**
     * @return Number of writer lanes this backend was built for.
     *         Shared backends report 1 (and accept any lane value).
     */
    virtual std::size_t laneCount() const = 0;

    /**
     * Insert one file's term block. The backend owns the rvalue: it
     * may read from it or steal its buffers, and the caller must
     * treat the block as moved-from afterwards (clear() before
     * reuse, which the extractor loop does anyway). The backends in
     * this file only read, so in practice the caller's arena
     * capacity survives for reuse — a backend that retains buffers
     * is correct but forfeits that optimization for its callers.
     * En-bloc versus immediate duplicate handling is a property of
     * the backend's Config.
     *
     * Thread safety: concurrent calls are allowed with distinct
     * lanes (replicated) or any lanes (shared, internally locked).
     */
    virtual void addBlock(TermBlock &&block, unsigned lane = 0) = 0;

    /**
     * Finalize after every writer joined and move the raw indices
     * out: exactly one for joined organizations, laneCount() (some
     * possibly empty) for unjoined replicas. The backend is empty
     * afterwards.
     *
     * @param join_seconds When non-null, receives the time spent in
     *        the organization's join step (0 when there is none).
     */
    virtual std::vector<InvertedIndex>
    release(double *join_seconds = nullptr) = 0;

    /**
     * Finalize into an immutable snapshot: release() + seal. This is
     * the normal endpoint; release() exists for callers that still
     * need mutable indices (maintenance, ablations).
     */
    IndexSnapshot
    sealed(double *join_seconds = nullptr)
    {
        return IndexSnapshot::seal(release(join_seconds));
    }
};

/**
 * Build the backend for @p cfg's organization (cfg must already be
 * validated). The Config is copied; the backend is independent of the
 * generator that made it.
 */
std::unique_ptr<IndexBackend> makeBackend(const Config &cfg);

} // namespace dsearch

#endif // DSEARCH_INDEX_INDEX_BACKEND_HH
