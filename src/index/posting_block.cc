#include "index/posting_block.hh"

#include <bit>
#include <cstring>

// Compile-time SIMD tier for the packed codec and the intersection
// kernel. DSEARCH_FORCE_SCALAR (CMake option) wins over everything;
// otherwise AVX2 implies the SSE paths too, and SSE2 is the x86-64
// baseline.
#if !defined(DSEARCH_FORCE_SCALAR) && defined(__AVX2__)
#define DSEARCH_POSTING_AVX2 1
#define DSEARCH_POSTING_SSE2 1
#elif !defined(DSEARCH_FORCE_SCALAR) && defined(__SSE2__)
#define DSEARCH_POSTING_SSE2 1
#endif

#ifdef DSEARCH_POSTING_SSE2
#include <immintrin.h>
#endif

namespace dsearch {

namespace detail {
thread_local std::uint64_t posting_blocks_decoded = 0;
} // namespace detail

namespace {

/** @return LEB128 byte length of @p v (1..5). */
inline std::size_t
varintBytes(std::uint32_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * decodeVarint32 with a hard bound: never reads at or past @p limit.
 *
 * @return Pointer past the varint, or nullptr when it would overrun.
 */
const std::uint8_t *
decodeVarint32Bounded(const std::uint8_t *p, const std::uint8_t *limit,
                      std::uint32_t &value)
{
    std::uint32_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (p == limit || shift > 28)
            return nullptr;
        std::uint32_t byte = *p++;
        v |= (byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
    }
    value = v;
    return p;
}

inline std::uint32_t
loadLe32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0])
           | static_cast<std::uint32_t>(p[1]) << 8
           | static_cast<std::uint32_t>(p[2]) << 16
           | static_cast<std::uint32_t>(p[3]) << 24;
}

inline void
storeLe32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
    p[2] = static_cast<std::uint8_t>(v >> 16);
    p[3] = static_cast<std::uint8_t>(v >> 24);
}

/**
 * @return Bit width of a full block starting at @p docs: the widest
 *         (delta - 1) among its 127 gaps, 0 for a consecutive run.
 */
unsigned
packedBlockWidth(const DocId *docs)
{
    std::uint32_t acc = 0;
    for (std::size_t i = 1; i < posting_block_docs; ++i)
        acc |= docs[i] - docs[i - 1] - 1;
    return static_cast<unsigned>(std::bit_width(acc));
}

/**
 * Unpack the 128 packed values of one full block (pad + deltas, not
 * yet prefix-summed) into @p vals. Portable scalar path; reads
 * exactly 16 * @p width bytes.
 */
void
unpackPackedValsScalar(const std::uint8_t *payload, unsigned width,
                       std::uint32_t *vals)
{
    if (width == 0) {
        std::memset(vals, 0, posting_block_docs * sizeof(std::uint32_t));
        return;
    }
    const std::uint64_t mask =
        width >= 32 ? 0xffffffffull : (1ull << width) - 1;
    for (unsigned lane = 0; lane < 4; ++lane) {
        const std::uint8_t *wp = payload + 4 * lane;
        std::uint64_t acc = 0;
        unsigned have = 0;
        for (unsigned r = 0; r < 32; ++r) {
            if (have < width) {
                acc |= static_cast<std::uint64_t>(loadLe32(wp)) << have;
                wp += 16; // lane words interleave at 16-byte stride
                have += 32;
            }
            vals[4 * r + lane] = static_cast<std::uint32_t>(acc & mask);
            acc >>= width;
            have -= width;
        }
    }
}

#ifdef DSEARCH_POSTING_SSE2

/**
 * Unpack + delta-reconstruct one full packed block of bit width @p W.
 * Each 128-bit load yields one packed word per lane = four
 * consecutive values; unpack is shift/mask (straddling words OR in
 * the next load), then an in-register inclusive prefix sum with a
 * broadcast carry turns (delta - 1) values into absolute documents.
 *
 * @return Pointer past the payload.
 */
template <unsigned W>
const std::uint8_t *
unpackPrefixSse(const std::uint8_t *payload, std::uint32_t first,
                DocId *out)
{
    const __m128i mask =
        W >= 32 ? _mm_set1_epi32(-1)
                : _mm_set1_epi32(static_cast<int>((1u << W) - 1));
    __m128i carry = _mm_set1_epi32(static_cast<int>(first));
    // Row 0's lane 0 is the pad: +0 instead of the usual delta +1.
    __m128i incr = _mm_setr_epi32(0, 1, 1, 1);
    const std::uint8_t *wp = payload;
    __m128i cur = _mm_setzero_si128();
    if constexpr (W != 0)
        cur = _mm_loadu_si128(reinterpret_cast<const __m128i *>(wp));
    unsigned shift = 0;
#pragma GCC unroll 32
    for (unsigned r = 0; r < 32; ++r) {
        __m128i v;
        if constexpr (W == 0) {
            v = _mm_setzero_si128();
        } else if (shift + W <= 32) {
            v = _mm_and_si128(
                _mm_srli_epi32(cur, static_cast<int>(shift)), mask);
            shift += W;
            if (shift == 32 && r + 1 < 32) {
                wp += 16;
                cur = _mm_loadu_si128(
                    reinterpret_cast<const __m128i *>(wp));
                shift = 0;
            }
        } else {
            __m128i nxt = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(wp + 16));
            v = _mm_and_si128(
                _mm_or_si128(
                    _mm_srli_epi32(cur, static_cast<int>(shift)),
                    _mm_slli_epi32(nxt, static_cast<int>(32 - shift))),
                mask);
            wp += 16;
            cur = nxt;
            shift = shift + W - 32;
        }
        __m128i x = _mm_add_epi32(v, incr);
        x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
        x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
        x = _mm_add_epi32(x, carry);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + 4 * r), x);
        carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
        incr = _mm_set1_epi32(1);
    }
    return payload + 16 * W;
}

#endif // DSEARCH_POSTING_SSE2

} // namespace

std::size_t
encodedPostingBytes(const DocId *docs, std::size_t count)
{
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (i % posting_block_docs == 0)
            bytes += varintBytes(docs[i]);
        else
            bytes += varintBytes(docs[i] - docs[i - 1]);
    }
    return bytes;
}

std::size_t
encodedPostingBytesPacked(const DocId *docs, std::size_t count)
{
    std::size_t bytes = 0;
    std::size_t i = 0;
    for (; i + posting_block_docs <= count; i += posting_block_docs)
        bytes += packedBlockBytes(packedBlockWidth(docs + i));
    for (; i < count; ++i) {
        if (i % posting_block_docs == 0)
            bytes += varintBytes(docs[i]);
        else
            bytes += varintBytes(docs[i] - docs[i - 1]);
    }
    return bytes;
}

void
encodePostings(const DocId *docs, std::size_t count,
               std::vector<std::uint8_t> &arena,
               std::vector<SkipEntry> &skips)
{
    const std::size_t base = arena.size();
    for (std::size_t i = 0; i < count; ++i) {
        if (i % posting_block_docs == 0) {
            if (i != 0) {
                skips.push_back(SkipEntry{
                    docs[i],
                    static_cast<std::uint32_t>(arena.size() - base)});
            }
            putVarint(arena, docs[i]);
        } else {
            putVarint(arena, docs[i] - docs[i - 1]);
        }
    }
}

void
encodePostingsPacked(const DocId *docs, std::size_t count,
                     std::vector<std::uint8_t> &arena,
                     std::vector<SkipEntry> &skips)
{
    const std::size_t base = arena.size();
    std::size_t i = 0;
    for (; i + posting_block_docs <= count; i += posting_block_docs) {
        if (i != 0) {
            skips.push_back(SkipEntry{
                docs[i],
                static_cast<std::uint32_t>(arena.size() - base)});
        }
        const unsigned width = packedBlockWidth(docs + i);
        const std::size_t header = arena.size();
        arena.resize(header + packedBlockBytes(width), 0);
        std::uint8_t *out = arena.data() + header;
        storeLe32(out, docs[i]);
        out[4] = static_cast<std::uint8_t>(width);
        if (width == 0)
            continue;
        std::uint8_t *payload = out + packed_block_header_bytes;
        for (unsigned lane = 0; lane < 4; ++lane) {
            std::uint8_t *wp = payload + 4 * lane;
            std::uint64_t acc = 0;
            unsigned have = 0;
            for (unsigned r = 0; r < 32; ++r) {
                const std::size_t k = 4 * r + lane;
                // Value 0 is the pad; value k is delta - 1.
                const std::uint32_t v =
                    k == 0 ? 0 : docs[i + k] - docs[i + k - 1] - 1;
                acc |= static_cast<std::uint64_t>(v) << have;
                have += width;
                if (have >= 32) {
                    storeLe32(wp, static_cast<std::uint32_t>(acc));
                    wp += 16;
                    acc >>= 32;
                    have -= 32;
                }
            }
            // 32 values * width bits is a whole number of words, so
            // the accumulator always drains exactly.
        }
    }
    for (; i < count; ++i) {
        if (i % posting_block_docs == 0) {
            if (i != 0) {
                skips.push_back(SkipEntry{
                    docs[i],
                    static_cast<std::uint32_t>(arena.size() - base)});
            }
            putVarint(arena, docs[i]);
        } else {
            putVarint(arena, docs[i] - docs[i - 1]);
        }
    }
}

const std::uint8_t *
decodePackedBlockScalar(const std::uint8_t *p, DocId *out)
{
    const std::uint32_t first = loadLe32(p);
    const unsigned width = p[4];
    std::uint32_t vals[posting_block_docs];
    unpackPackedValsScalar(p + packed_block_header_bytes, width, vals);
    // The pad value participates so scalar and SIMD agree bit-for-bit
    // even on non-canonical input (the validator rejects pad != 0).
    DocId doc = first + vals[0];
    out[0] = doc;
    for (std::size_t i = 1; i < posting_block_docs; ++i) {
        doc += vals[i] + 1;
        out[i] = doc;
    }
    return p + packedBlockBytes(width);
}

const std::uint8_t *
decodePackedBlock(const std::uint8_t *p, DocId *out)
{
#ifdef DSEARCH_POSTING_SSE2
    const std::uint32_t first = loadLe32(p);
    switch (p[4]) {
#define DSEARCH_UNPACK_CASE(W)                                          \
    case W:                                                             \
        return unpackPrefixSse<W>(p + packed_block_header_bytes, first, \
                                  out);
        DSEARCH_UNPACK_CASE(0)
        DSEARCH_UNPACK_CASE(1)
        DSEARCH_UNPACK_CASE(2)
        DSEARCH_UNPACK_CASE(3)
        DSEARCH_UNPACK_CASE(4)
        DSEARCH_UNPACK_CASE(5)
        DSEARCH_UNPACK_CASE(6)
        DSEARCH_UNPACK_CASE(7)
        DSEARCH_UNPACK_CASE(8)
        DSEARCH_UNPACK_CASE(9)
        DSEARCH_UNPACK_CASE(10)
        DSEARCH_UNPACK_CASE(11)
        DSEARCH_UNPACK_CASE(12)
        DSEARCH_UNPACK_CASE(13)
        DSEARCH_UNPACK_CASE(14)
        DSEARCH_UNPACK_CASE(15)
        DSEARCH_UNPACK_CASE(16)
        DSEARCH_UNPACK_CASE(17)
        DSEARCH_UNPACK_CASE(18)
        DSEARCH_UNPACK_CASE(19)
        DSEARCH_UNPACK_CASE(20)
        DSEARCH_UNPACK_CASE(21)
        DSEARCH_UNPACK_CASE(22)
        DSEARCH_UNPACK_CASE(23)
        DSEARCH_UNPACK_CASE(24)
        DSEARCH_UNPACK_CASE(25)
        DSEARCH_UNPACK_CASE(26)
        DSEARCH_UNPACK_CASE(27)
        DSEARCH_UNPACK_CASE(28)
        DSEARCH_UNPACK_CASE(29)
        DSEARCH_UNPACK_CASE(30)
        DSEARCH_UNPACK_CASE(31)
        DSEARCH_UNPACK_CASE(32)
#undef DSEARCH_UNPACK_CASE
    default:
        // Width > 32 never survives validatePostingsPacked.
        return decodePackedBlockScalar(p, out);
    }
#else
    return decodePackedBlockScalar(p, out);
#endif
}

std::size_t
intersectU32Scalar(const DocId *a, std::size_t na, const DocId *b,
                   std::size_t nb, DocId *out)
{
    std::size_t i = 0, j = 0, k = 0;
    while (i < na && j < nb) {
        const DocId x = a[i];
        const DocId y = b[j];
        if (x == y) {
            out[k++] = x;
            ++i;
            ++j;
        } else {
            i += x < y;
            j += y < x;
        }
    }
    return k;
}

std::size_t
intersectU32(const DocId *a, std::size_t na, const DocId *b,
             std::size_t nb, DocId *out)
{
#if defined(DSEARCH_POSTING_AVX2)
    std::size_t i = 0, j = 0, k = 0;
    const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
    const __m256i rot2 = _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1);
    const __m256i rot3 = _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2);
    const __m256i rot4 = _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3);
    const __m256i rot5 = _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4);
    const __m256i rot6 = _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5);
    const __m256i rot7 = _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6);
    while (i + 8 <= na && j + 8 <= nb) {
        const __m256i va =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(b + j));
        __m256i eq = _mm256_cmpeq_epi32(va, vb);
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot1)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot2)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot3)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot4)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot5)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot6)));
        eq = _mm256_or_si256(
            eq, _mm256_cmpeq_epi32(va,
                                   _mm256_permutevar8x32_epi32(vb, rot7)));
        int mask = _mm256_movemask_ps(_mm256_castsi256_ps(eq));
        while (mask) {
            const int bit = __builtin_ctz(static_cast<unsigned>(mask));
            out[k++] = a[i + static_cast<std::size_t>(bit)];
            mask &= mask - 1;
        }
        const DocId amax = a[i + 7];
        const DocId bmax = b[j + 7];
        if (amax <= bmax)
            i += 8;
        if (bmax <= amax)
            j += 8;
    }
    return k + intersectU32Scalar(a + i, na - i, b + j, nb - j, out + k);
#elif defined(DSEARCH_POSTING_SSE2)
    std::size_t i = 0, j = 0, k = 0;
    while (i + 4 <= na && j + 4 <= nb) {
        const __m128i va =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(b + j));
        __m128i eq = _mm_cmpeq_epi32(va, vb);
        eq = _mm_or_si128(
            eq, _mm_cmpeq_epi32(
                    va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(0, 3, 2, 1))));
        eq = _mm_or_si128(
            eq, _mm_cmpeq_epi32(
                    va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(1, 0, 3, 2))));
        eq = _mm_or_si128(
            eq, _mm_cmpeq_epi32(
                    va, _mm_shuffle_epi32(vb, _MM_SHUFFLE(2, 1, 0, 3))));
        int mask = _mm_movemask_ps(_mm_castsi128_ps(eq));
        while (mask) {
            const int bit = __builtin_ctz(static_cast<unsigned>(mask));
            out[k++] = a[i + static_cast<std::size_t>(bit)];
            mask &= mask - 1;
        }
        const DocId amax = a[i + 3];
        const DocId bmax = b[j + 3];
        if (amax <= bmax)
            i += 4;
        if (bmax <= amax)
            j += 4;
    }
    return k + intersectU32Scalar(a + i, na - i, b + j, nb - j, out + k);
#else
    return intersectU32Scalar(a, na, b, nb, out);
#endif
}

const char *
postingSimdLevel()
{
#if defined(DSEARCH_POSTING_AVX2)
    return "avx2";
#elif defined(DSEARCH_POSTING_SSE2)
    return "sse2";
#else
    return "scalar";
#endif
}

bool
validatePostings(const std::uint8_t *bytes, std::uint32_t byte_len,
                 const SkipEntry *skips, std::uint32_t skip_count,
                 std::uint32_t count)
{
    if (count == 0)
        return byte_len == 0 && skip_count == 0;
    if (byte_len == 0
        || skip_count != postingSkipCount(count))
        return false;

    const std::uint8_t *p = bytes;
    const std::uint8_t *const end = bytes + byte_len;
    std::uint64_t prev = 0; // one past the last doc seen, 0 = none
    for (std::uint32_t b = 0; b <= skip_count; ++b) {
        // Block boundaries come from the skip entries; the last block
        // must end exactly at byte_len.
        const std::uint8_t *block_end =
            b < skip_count ? bytes + skips[b].offset : end;
        if (block_end <= p || block_end > end)
            return false;
        std::size_t docs_in_block = std::min<std::size_t>(
            posting_block_docs,
            count - static_cast<std::size_t>(b) * posting_block_docs);
        std::uint32_t doc = 0;
        for (std::size_t i = 0; i < docs_in_block; ++i) {
            std::uint32_t v;
            p = decodeVarint32Bounded(p, block_end, v);
            if (p == nullptr)
                return false;
            doc = i == 0 ? v : doc + v;
            if (static_cast<std::uint64_t>(doc) + 1 <= prev)
                return false; // not strictly ascending (or overflow)
            prev = static_cast<std::uint64_t>(doc) + 1;
            if (i == 0 && b > 0 && skips[b - 1].first_doc != doc)
                return false; // skip entry disagrees with the data
        }
        if (p != block_end)
            return false; // trailing bytes inside the block
    }
    return p == end;
}

bool
validatePostingsPacked(const std::uint8_t *bytes, std::uint32_t byte_len,
                       const SkipEntry *skips, std::uint32_t skip_count,
                       std::uint32_t count)
{
    if (count == 0)
        return byte_len == 0 && skip_count == 0;
    if (byte_len == 0
        || skip_count != postingSkipCount(count))
        return false;

    const std::uint8_t *p = bytes;
    const std::uint8_t *const end = bytes + byte_len;
    std::uint64_t prev = 0; // one past the last doc seen, 0 = none
    for (std::uint32_t b = 0; b <= skip_count; ++b) {
        const std::uint8_t *block_end =
            b < skip_count ? bytes + skips[b].offset : end;
        if (block_end <= p || block_end > end)
            return false;
        std::size_t docs_in_block = std::min<std::size_t>(
            posting_block_docs,
            count - static_cast<std::size_t>(b) * posting_block_docs);
        if (docs_in_block == posting_block_docs) {
            // Bit-packed full block: exact size for its width, pad
            // zero, strictly ascending without u32 overflow. Only
            // after those checks may the (exact-length, unchecked)
            // decoder ever see these bytes.
            if (block_end - p
                < static_cast<std::ptrdiff_t>(packed_block_header_bytes))
                return false;
            const unsigned width = p[4];
            if (width > 32)
                return false;
            if (block_end - p
                != static_cast<std::ptrdiff_t>(packedBlockBytes(width)))
                return false;
            const std::uint32_t first = loadLe32(p);
            if (static_cast<std::uint64_t>(first) + 1 <= prev)
                return false;
            if (b > 0 && skips[b - 1].first_doc != first)
                return false;
            std::uint32_t vals[posting_block_docs];
            unpackPackedValsScalar(p + packed_block_header_bytes, width,
                                   vals);
            if (vals[0] != 0)
                return false; // non-canonical pad
            std::uint64_t doc = first;
            for (std::size_t i = 1; i < posting_block_docs; ++i) {
                doc += static_cast<std::uint64_t>(vals[i]) + 1;
                if (doc > 0xffffffffull)
                    return false; // would wrap in the u32 decoder
            }
            prev = doc + 1;
            p = block_end;
        } else {
            // Varint tail block, identical to the v2 rules.
            std::uint32_t doc = 0;
            for (std::size_t i = 0; i < docs_in_block; ++i) {
                std::uint32_t v;
                p = decodeVarint32Bounded(p, block_end, v);
                if (p == nullptr)
                    return false;
                doc = i == 0 ? v : doc + v;
                if (static_cast<std::uint64_t>(doc) + 1 <= prev)
                    return false;
                prev = static_cast<std::uint64_t>(doc) + 1;
                if (i == 0 && b > 0 && skips[b - 1].first_doc != doc)
                    return false;
            }
            if (p != block_end)
                return false;
        }
    }
    return p == end;
}

} // namespace dsearch
