#include "index/posting_block.hh"

namespace dsearch {

namespace {

/** @return LEB128 byte length of @p v (1..5). */
inline std::size_t
varintBytes(std::uint32_t v)
{
    std::size_t n = 1;
    while (v >= 0x80) {
        v >>= 7;
        ++n;
    }
    return n;
}

inline void
putVarint(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/**
 * decodeVarint32 with a hard bound: never reads at or past @p limit.
 *
 * @return Pointer past the varint, or nullptr when it would overrun.
 */
const std::uint8_t *
decodeVarint32Bounded(const std::uint8_t *p, const std::uint8_t *limit,
                      std::uint32_t &value)
{
    std::uint32_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (p == limit || shift > 28)
            return nullptr;
        std::uint32_t byte = *p++;
        v |= (byte & 0x7f) << shift;
        if ((byte & 0x80) == 0)
            break;
        shift += 7;
    }
    value = v;
    return p;
}

} // namespace

std::size_t
encodedPostingBytes(const DocId *docs, std::size_t count)
{
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < count; ++i) {
        if (i % posting_block_docs == 0)
            bytes += varintBytes(docs[i]);
        else
            bytes += varintBytes(docs[i] - docs[i - 1]);
    }
    return bytes;
}

void
encodePostings(const DocId *docs, std::size_t count,
               std::vector<std::uint8_t> &arena,
               std::vector<SkipEntry> &skips)
{
    const std::size_t base = arena.size();
    for (std::size_t i = 0; i < count; ++i) {
        if (i % posting_block_docs == 0) {
            if (i != 0) {
                skips.push_back(SkipEntry{
                    docs[i],
                    static_cast<std::uint32_t>(arena.size() - base)});
            }
            putVarint(arena, docs[i]);
        } else {
            putVarint(arena, docs[i] - docs[i - 1]);
        }
    }
}

bool
validatePostings(const std::uint8_t *bytes, std::uint32_t byte_len,
                 const SkipEntry *skips, std::uint32_t skip_count,
                 std::uint32_t count)
{
    if (count == 0)
        return byte_len == 0 && skip_count == 0;
    if (byte_len == 0
        || skip_count != postingSkipCount(count))
        return false;

    const std::uint8_t *p = bytes;
    const std::uint8_t *const end = bytes + byte_len;
    std::uint64_t prev = 0; // one past the last doc seen, 0 = none
    for (std::uint32_t b = 0; b <= skip_count; ++b) {
        // Block boundaries come from the skip entries; the last block
        // must end exactly at byte_len.
        const std::uint8_t *block_end =
            b < skip_count ? bytes + skips[b].offset : end;
        if (block_end <= p || block_end > end)
            return false;
        std::size_t docs_in_block = std::min<std::size_t>(
            posting_block_docs,
            count - static_cast<std::size_t>(b) * posting_block_docs);
        std::uint32_t doc = 0;
        for (std::size_t i = 0; i < docs_in_block; ++i) {
            std::uint32_t v;
            p = decodeVarint32Bounded(p, block_end, v);
            if (p == nullptr)
                return false;
            doc = i == 0 ? v : doc + v;
            if (static_cast<std::uint64_t>(doc) + 1 <= prev)
                return false; // not strictly ascending (or overflow)
            prev = static_cast<std::uint64_t>(doc) + 1;
            if (i == 0 && b > 0 && skips[b - 1].first_doc != doc)
                return false; // skip entry disagrees with the data
        }
        if (p != block_end)
            return false; // trailing bytes inside the block
    }
    return p == end;
}

} // namespace dsearch
