/**
 * @file
 * IndexSnapshot: the immutable, compressed read side of a built index.
 *
 * Sealing separates the build organization (IndexBackend) from the
 * query-time reader: whatever organization produced the postings —
 * shared-locked, sharded, replicated-joined or unjoined replicas —
 * queries see only a snapshot of one or more *segments*, each an
 * immutable PostingSegment whose per-term access is a PostingCursor.
 *
 * A PostingSegment is not the build-side hash-map-of-vectors: sealing
 * sorts every posting list, delta + varint block-encodes it (see
 * posting_block.hh) into one contiguous per-segment arena — a single
 * allocation holding every term's blocks back to back — and drops the
 * per-term heap vectors. The term table maps term -> {offset, byte
 * length, count, skip range}; the segment also caches its terms in
 * lexicographic order so serialization and ordered iteration never
 * re-sort. The build-side InvertedIndex stays uncompressed, so
 * Stage-3 insert throughput is untouched; only sealed, read-only data
 * pays the (en-masse, cache-friendly) encode.
 *
 *  - Joined organizations seal to a single segment; Searcher and
 *    RankedSearcher require that (unified()).
 *  - Implementation 3 seals its unjoined replicas to one segment per
 *    replica; MultiSearcher evaluates segments in parallel.
 *
 * Snapshots share segments by reference: copying a snapshot is two
 * pointer copies, and every copy (and every cursor vended from it)
 * stays valid for as long as any copy lives.
 */

#ifndef DSEARCH_INDEX_INDEX_SNAPSHOT_HH
#define DSEARCH_INDEX_INDEX_SNAPSHOT_HH

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "index/inverted_index.hh"
#include "index/posting_block.hh"
#include "index/posting_cursor.hh"

namespace dsearch {

/**
 * One sealed segment: every term's postings block-compressed into a
 * single contiguous arena, plus a hashed term table and the cached
 * lexicographic term order. Immutable after build()/load; move-only
 * (cursors and the sorted order point into its storage).
 */
class PostingSegment
{
  public:
    /** Where one term's postings live inside the segment arenas. */
    struct TermEntry
    {
        std::uint64_t offset = 0;     ///< First byte in the arena.
        std::uint32_t bytes = 0;      ///< Encoded byte length.
        std::uint32_t count = 0;      ///< Documents in the list.
        std::uint32_t skip_begin = 0; ///< First entry in the skip arena.
        std::uint32_t skip_count = 0; ///< Blocks after the first.
    };

    PostingSegment() = default;

    // Move-only: _sorted points into _terms' slot storage, which
    // vector moves preserve but copies would not.
    PostingSegment(PostingSegment &&) noexcept = default;
    PostingSegment &operator=(PostingSegment &&) noexcept = default;
    PostingSegment(const PostingSegment &) = delete;
    PostingSegment &operator=(const PostingSegment &) = delete;

    /**
     * Seal @p index: sort its posting lists, encode every term into
     * the arena (sized exactly in a first pass, so the arena is one
     * allocation), and cache the lexicographic term order. The index
     * is consumed. Fresh seals default to the bit-packed codec; the
     * varint option exists for the v2 writer and A/B benching.
     */
    static PostingSegment build(InvertedIndex &&index,
                                PostingCodec codec = PostingCodec::Packed);

    /** @return The block codec this segment's postings use. */
    PostingCodec codec() const { return _codec; }

    /**
     * Set the codec before assembling via addSealedTerm() (the v2/v3
     * loaders; bytes must already match the codec's layout).
     */
    void setCodec(PostingCodec codec) { _codec = codec; }

    /**
     * @return Documents in @p term's posting list, 0 for unknown
     *         terms. Pure term-table lookup — unlike cursor(), this
     *         never decodes a block, so df/metadata aggregation stays
     *         O(1) per term.
     */
    std::uint32_t
    termDocCount(std::string_view term) const
    {
        const TermEntry *entry = _terms.find(term);
        return entry == nullptr ? 0 : entry->count;
    }

    /**
     * @return Decoding cursor over @p term's postings; an exhausted
     *         cursor when the term is unknown. Heterogeneous probe
     *         (no std::string allocated).
     */
    PostingCursor cursor(std::string_view term) const;

    /** @return Distinct terms in this segment. */
    std::size_t termCount() const { return _terms.size(); }

    /** @return Total (term, doc) postings in this segment. */
    std::uint64_t postingCount() const { return _postings; }

    /** @return True when the segment holds nothing. */
    bool empty() const { return _terms.empty(); }

    /**
     * @return Bytes of compressed posting storage (block arena plus
     *         skip entries); the raw equivalent is
     *         postingCount() * sizeof(DocId).
     */
    std::uint64_t
    postingBytes() const
    {
        return _arena.size() + _skips.size() * sizeof(SkipEntry);
    }

    /**
     * Visit every (term, cursor) pair in lexicographic term order;
     * @p fn takes (const std::string &, PostingCursor).
     */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        for (const TermSlot *slot : _sorted)
            fn(slot->key, cursorFor(slot->value));
    }

    /**
     * Visit every (term, TermEntry) pair in lexicographic term order
     * (serialization: entries locate the raw encoded bytes).
     */
    template <typename Fn>
    void
    forEachSortedEntry(Fn &&fn) const
    {
        for (const TermSlot *slot : _sorted)
            fn(slot->key, slot->value);
    }

    /** @return The shared block arena (serialization). */
    const std::vector<std::uint8_t> &arena() const { return _arena; }

    /** @return The shared skip-entry arena (serialization). */
    const std::vector<SkipEntry> &skips() const { return _skips; }

    // ------------------------------------------------------------------
    // Loader interface (serialize.cc, v2 files): a segment is
    // assembled term by term from on-disk blocks, then finished.
    // ------------------------------------------------------------------

    /** Pre-size the arenas and term table (one allocation each). */
    void reserveSealed(std::size_t terms, std::size_t arena_bytes,
                       std::size_t skip_entries);

    /**
     * Append one term whose blocks were encoded elsewhere (the v2
     * loader; bytes/skips are validated against posting_block.hh's
     * layout before this is called).
     *
     * @return False when the term already exists (corrupt input).
     */
    bool addSealedTerm(std::string term, std::uint32_t count,
                       const std::uint8_t *bytes, std::uint32_t byte_len,
                       const SkipEntry *skips, std::uint32_t skip_count);

    /** Rebuild the cached lexicographic order after addSealedTerm(). */
    void finishSealed();

  private:
    using TermMap = HashMap<std::string, TermEntry>;
    using TermSlot = TermMap::Slot;

    /** @return Cursor over @p entry's blocks. */
    PostingCursor
    cursorFor(const TermEntry &entry) const
    {
        return PostingCursor(
            _arena.data() + entry.offset,
            entry.skip_count != 0 ? _skips.data() + entry.skip_begin
                                  : nullptr,
            entry.skip_count, entry.count, _codec);
    }

    TermMap _terms;
    std::vector<const TermSlot *> _sorted; ///< Lexicographic order.
    std::vector<std::uint8_t> _arena;      ///< All blocks, contiguous.
    std::vector<SkipEntry> _skips;         ///< All skip entries.
    std::uint64_t _postings = 0;
    PostingCodec _codec = PostingCodec::Packed;
};

/**
 * Non-owning reader over one sealed segment. Cheap to copy; valid as
 * long as the snapshot that vended it (or a copy) lives.
 *
 * Readers normally wrap a compressed PostingSegment; the raw
 * InvertedIndex form exists for the legacy mutable-index persistence
 * overloads (serialize.cc), which canonicalize in place and write
 * through cursors without sealing first.
 */
class SegmentReader
{
  public:
    /** A reader over nothing (zero terms). */
    SegmentReader() = default;

    /** @param segment Sealed segment (may be null = empty). */
    explicit SegmentReader(const PostingSegment *segment)
        : _segment(segment)
    {
    }

    /**
     * @param raw Canonicalized (sorted posting lists) mutable index;
     *            legacy persistence path only.
     */
    explicit SegmentReader(const InvertedIndex *raw) : _raw(raw) {}

    /**
     * @return Cursor over @p term's postings; an exhausted cursor when
     *         the term is unknown. Heterogeneous probe (no std::string
     *         allocated).
     */
    PostingCursor cursor(std::string_view term) const;

    /** @return Distinct terms in this segment. */
    std::size_t termCount() const;

    /** @return Total (term, doc) postings in this segment. */
    std::uint64_t postingCount() const;

    /**
     * @return Documents in @p term's posting list, 0 when unknown —
     *         a metadata lookup that never decodes a posting block
     *         (unlike cursor(term).count(), which decodes the first).
     */
    std::uint32_t termDocCount(std::string_view term) const;

    /** @return True when the segment holds nothing. */
    bool empty() const { return termCount() == 0; }

    /**
     * @return The sealed segment, or null for the legacy raw form
     *         (serialization switches formats on this).
     */
    const PostingSegment *sealed() const { return _segment; }

    /**
     * Visit every (term, cursor) pair; @p fn takes
     * (const std::string &, PostingCursor). Sealed segments iterate
     * in lexicographic term order; the legacy raw form in hash order.
     */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        if (_segment != nullptr) {
            _segment->forEachTerm(std::forward<Fn>(fn));
        } else if (_raw != nullptr) {
            _raw->forEachTerm(
                [&fn](const std::string &term, const PostingList &list) {
                    fn(term, PostingCursor(list.data(), list.size()));
                });
        }
    }

  private:
    const PostingSegment *_segment = nullptr;
    const InvertedIndex *_raw = nullptr;
};

/** Immutable multi-segment read view; see the file comment. */
class IndexSnapshot
{
  public:
    /** An empty snapshot: zero segments, unified, no terms. */
    IndexSnapshot() = default;

    /**
     * Seal one index into a single-segment snapshot: sort, block-
     * compress into the segment arena (bit-packed by default), drop
     * the build-side vectors.
     */
    static IndexSnapshot seal(InvertedIndex &&index,
                              PostingCodec codec = PostingCodec::Packed);

    /**
     * Seal a replica set, one segment per replica (empty replicas
     * keep their position so segment i is still replica i's slice).
     */
    static IndexSnapshot seal(std::vector<InvertedIndex> &&replicas,
                              PostingCodec codec = PostingCodec::Packed);

    /**
     * Wrap an already-sealed segment (the v2 snapshot loader, whose
     * blocks come off disk verbatim).
     */
    static IndexSnapshot fromSealed(PostingSegment &&segment);

    /** @return Number of segments (0 for an empty snapshot). */
    std::size_t segmentCount() const { return _segments.size(); }

    /** @return Reader over segment @p i (panics out of range). */
    SegmentReader segment(std::size_t i) const;

    /**
     * @return True when single-index query code (Searcher,
     *         RankedSearcher, serialization) can use this snapshot
     *         directly: at most one segment.
     */
    bool unified() const { return _segments.size() <= 1; }

    // ------------------------------------------------------------------
    // Single-segment conveniences; all panic on multi-segment
    // snapshots (use segment(i) / MultiSearcher there).
    // ------------------------------------------------------------------

    /** @return Cursor over @p term in the unified segment. */
    PostingCursor cursor(std::string_view term) const;

    /**
     * @return termDocCount() of the unified segment: @p term's df
     *         without decoding any posting block.
     */
    std::uint32_t termDocCount(std::string_view term) const;

    /** @return Distinct terms in the unified segment. */
    std::size_t termCount() const;

    /** @return Total postings in the unified segment. */
    std::uint64_t postingCount() const;

    /** @return True when the snapshot holds no postings at all. */
    bool empty() const;

    /** forEachTerm() of the unified segment. */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        unifiedReader().forEachTerm(std::forward<Fn>(fn));
    }

  private:
    /** The single segment's reader (panics when not unified()). */
    SegmentReader unifiedReader() const;

    /** Shared, immutable segments (never mutated after sealing). */
    std::vector<std::shared_ptr<const PostingSegment>> _segments;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_INDEX_SNAPSHOT_HH
