/**
 * @file
 * IndexSnapshot: the immutable read side of a built index.
 *
 * Sealing separates the build organization (IndexBackend) from the
 * query-time reader: whatever organization produced the postings —
 * shared-locked, sharded, replicated-joined or unjoined replicas —
 * queries see only a snapshot of one or more *segments*, each an
 * immutable, canonicalized (sorted, duplicate-free posting lists)
 * index whose per-term access is a PostingCursor.
 *
 *  - Joined organizations seal to a single segment; Searcher and
 *    RankedSearcher require that (unified()).
 *  - Implementation 3 seals its unjoined replicas to one segment per
 *    replica; MultiSearcher evaluates segments in parallel.
 *
 * Snapshots share segments by reference: copying a snapshot is two
 * pointer copies, and every copy (and every cursor vended from it)
 * stays valid for as long as any copy lives. That replaces the old
 * "searcher holds a reference, caller must keep the index alive"
 * contract.
 */

#ifndef DSEARCH_INDEX_INDEX_SNAPSHOT_HH
#define DSEARCH_INDEX_INDEX_SNAPSHOT_HH

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/inverted_index.hh"
#include "index/posting_cursor.hh"

namespace dsearch {

/**
 * Non-owning reader over one sealed segment. Cheap to copy; valid as
 * long as the snapshot that vended it (or a copy) lives.
 */
class SegmentReader
{
  public:
    /** A reader over nothing (zero terms). */
    SegmentReader() = default;

    /** @param segment Sealed segment (may be null = empty). */
    explicit SegmentReader(const InvertedIndex *segment)
        : _segment(segment)
    {
    }

    /**
     * @return Cursor over @p term's postings; an exhausted cursor when
     *         the term is unknown. Heterogeneous probe (no std::string
     *         allocated).
     */
    PostingCursor cursor(std::string_view term) const;

    /** @return Distinct terms in this segment. */
    std::size_t termCount() const;

    /** @return Total (term, doc) postings in this segment. */
    std::uint64_t postingCount() const;

    /** @return True when the segment holds nothing. */
    bool empty() const { return termCount() == 0; }

    /**
     * Visit every (term, cursor) pair; @p fn takes
     * (const std::string &, PostingCursor). Iteration order is hash
     * order.
     */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        if (_segment == nullptr)
            return;
        _segment->forEachTerm(
            [&fn](const std::string &term, const PostingList &list) {
                fn(term, PostingCursor(list.data(), list.size()));
            });
    }

  private:
    const InvertedIndex *_segment = nullptr;
};

/** Immutable multi-segment read view; see the file comment. */
class IndexSnapshot
{
  public:
    /** An empty snapshot: zero segments, unified, no terms. */
    IndexSnapshot() = default;

    /**
     * Seal one index into a single-segment snapshot. Posting lists
     * are sorted here (canonical form); every generator write path
     * already guarantees they are duplicate-free.
     */
    static IndexSnapshot seal(InvertedIndex &&index);

    /**
     * Seal a replica set, one segment per replica (empty replicas
     * keep their position so segment i is still replica i's slice).
     */
    static IndexSnapshot seal(std::vector<InvertedIndex> &&replicas);

    /** @return Number of segments (0 for an empty snapshot). */
    std::size_t segmentCount() const { return _segments.size(); }

    /** @return Reader over segment @p i (panics out of range). */
    SegmentReader segment(std::size_t i) const;

    /**
     * @return True when single-index query code (Searcher,
     *         RankedSearcher, serialization) can use this snapshot
     *         directly: at most one segment.
     */
    bool unified() const { return _segments.size() <= 1; }

    // ------------------------------------------------------------------
    // Single-segment conveniences; all panic on multi-segment
    // snapshots (use segment(i) / MultiSearcher there).
    // ------------------------------------------------------------------

    /** @return Cursor over @p term in the unified segment. */
    PostingCursor cursor(std::string_view term) const;

    /** @return Distinct terms in the unified segment. */
    std::size_t termCount() const;

    /** @return Total postings in the unified segment. */
    std::uint64_t postingCount() const;

    /** @return True when the snapshot holds no postings at all. */
    bool empty() const;

    /** forEachTerm() of the unified segment. */
    template <typename Fn>
    void
    forEachTerm(Fn &&fn) const
    {
        unifiedReader().forEachTerm(std::forward<Fn>(fn));
    }

  private:
    /** The single segment's reader (panics when not unified()). */
    SegmentReader unifiedReader() const;

    /** Shared, immutable segments (never mutated after sealing). */
    std::vector<std::shared_ptr<const InvertedIndex>> _segments;
};

} // namespace dsearch

#endif // DSEARCH_INDEX_INDEX_SNAPSHOT_HH
