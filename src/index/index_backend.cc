#include "index/index_backend.hh"

#include "index/index_join.hh"
#include "index/shared_index.hh"
#include "util/logging.hh"
#include "util/timer.hh"

namespace dsearch {

namespace {

/**
 * Insert a block into one private (unsynchronized) index, honouring
 * the duplicate-handling mode. Immediate mode reuses the span hashes
 * the extractor computed.
 */
void
insertPrivate(InvertedIndex &target, const TermBlock &block,
              bool en_bloc)
{
    if (en_bloc) {
        target.addBlock(block);
    } else {
        for (std::size_t i = 0; i < block.spans.size(); ++i)
            target.addOccurrenceHashed(block.hashAt(i), block.term(i),
                                       block.doc);
    }
}

/** Sequential baseline: one unlocked index, one lane. */
class SequentialBackend : public IndexBackend
{
  public:
    explicit SequentialBackend(const Config &cfg)
        : _en_bloc(cfg.en_bloc)
    {
    }

    const char *name() const override { return "sequential"; }

    std::size_t laneCount() const override { return 1; }

    void
    addBlock(TermBlock &&block, unsigned) override
    {
        insertPrivate(_index, block, _en_bloc);
    }

    std::vector<InvertedIndex>
    release(double *join_seconds) override
    {
        if (join_seconds != nullptr)
            *join_seconds = 0.0;
        std::vector<InvertedIndex> out;
        out.push_back(std::move(_index));
        _index = InvertedIndex();
        return out;
    }

  private:
    InvertedIndex _index;
    bool _en_bloc;
};

/**
 * Implementation 1: one shared index behind a single lock. In
 * immediate mode the lock is taken per occurrence — the "overwhelm
 * the index with locking requests" behaviour §2.2 warns about.
 */
class SharedLockedBackend : public IndexBackend
{
  public:
    explicit SharedLockedBackend(const Config &cfg)
        : _en_bloc(cfg.en_bloc)
    {
    }

    const char *name() const override { return "shared-locked"; }

    std::size_t laneCount() const override { return 1; }

    void
    addBlock(TermBlock &&block, unsigned) override
    {
        if (_en_bloc) {
            _shared.addBlock(block);
        } else {
            for (std::size_t i = 0; i < block.spans.size(); ++i)
                _shared.addOccurrenceHashed(block.hashAt(i),
                                            block.term(i), block.doc);
        }
    }

    std::vector<InvertedIndex>
    release(double *join_seconds) override
    {
        if (join_seconds != nullptr)
            *join_seconds = 0.0;
        std::vector<InvertedIndex> out;
        out.push_back(_shared.release());
        return out;
    }

  private:
    SharedIndex _shared;
    bool _en_bloc;
};

/**
 * Implementation 1 with sharded locks (lock_shards > 1): each block
 * locks only the shards its terms hash to; sealing joins the shards
 * into one index.
 */
class ShardedLockBackend : public IndexBackend
{
  public:
    explicit ShardedLockBackend(const Config &cfg)
        : _sharded(cfg.lock_shards)
    {
    }

    const char *name() const override { return "sharded-lock"; }

    std::size_t laneCount() const override { return 1; }

    void
    addBlock(TermBlock &&block, unsigned) override
    {
        _sharded.addBlock(block);
    }

    std::vector<InvertedIndex>
    release(double *join_seconds) override
    {
        Timer join_timer;
        InvertedIndex joined;
        _sharded.joinInto(joined);
        if (join_seconds != nullptr)
            *join_seconds = join_timer.elapsedSec();
        std::vector<InvertedIndex> out;
        out.push_back(std::move(joined));
        return out;
    }

  private:
    ShardedIndex _sharded;
};

/**
 * Implementations 2 and 3: one private index per lane, no insert
 * synchronization. Sealing either runs the "Join Forces" reduction
 * (Implementation 2, cfg.joiners threads) or hands the replicas over
 * unjoined (Implementation 3).
 */
class ReplicatedBackend : public IndexBackend
{
  public:
    explicit ReplicatedBackend(const Config &cfg)
        : _replicas(cfg.replicaCount()), _en_bloc(cfg.en_bloc),
          _join(cfg.impl == Implementation::ReplicatedJoin),
          _joiners(cfg.joiners)
    {
    }

    const char *
    name() const override
    {
        return _join ? "replicated-join" : "replicated-no-join";
    }

    std::size_t laneCount() const override { return _replicas.size(); }

    void
    addBlock(TermBlock &&block, unsigned lane) override
    {
        if (lane >= _replicas.size())
            panic("ReplicatedBackend::addBlock: lane out of range");
        insertPrivate(_replicas[lane], block, _en_bloc);
    }

    std::vector<InvertedIndex>
    release(double *join_seconds) override
    {
        std::vector<InvertedIndex> out;
        if (_join) {
            // The "Join Forces" barrier is implicit: release() runs
            // only after every writer joined.
            Timer join_timer;
            out.push_back(joinParallel(std::move(_replicas),
                                       std::max<std::size_t>(1,
                                                             _joiners)));
            if (join_seconds != nullptr)
                *join_seconds = join_timer.elapsedSec();
        } else {
            if (join_seconds != nullptr)
                *join_seconds = 0.0;
            out = std::move(_replicas);
        }
        _replicas.clear();
        return out;
    }

  private:
    std::vector<InvertedIndex> _replicas;
    bool _en_bloc;
    bool _join;
    unsigned _joiners;
};

} // namespace

std::unique_ptr<IndexBackend>
makeBackend(const Config &cfg)
{
    switch (cfg.impl) {
      case Implementation::Sequential:
        return std::make_unique<SequentialBackend>(cfg);
      case Implementation::SharedLocked:
        if (cfg.lock_shards > 1)
            return std::make_unique<ShardedLockBackend>(cfg);
        return std::make_unique<SharedLockedBackend>(cfg);
      case Implementation::ReplicatedJoin:
      case Implementation::ReplicatedNoJoin:
        return std::make_unique<ReplicatedBackend>(cfg);
    }
    panic("makeBackend: unknown implementation");
}

} // namespace dsearch
