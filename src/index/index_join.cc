#include "index/index_join.hh"

#include <thread>
#include <utility>

#include "util/logging.hh"

namespace dsearch {

InvertedIndex
joinSequential(std::vector<InvertedIndex> replicas)
{
    InvertedIndex result;
    for (InvertedIndex &replica : replicas)
        result.merge(std::move(replica));
    return result;
}

InvertedIndex
joinParallel(std::vector<InvertedIndex> replicas, std::size_t threads)
{
    if (threads == 0)
        fatal("joinParallel: need at least one joiner thread");
    if (replicas.empty())
        return InvertedIndex{};

    // Reduction tree: each round pairs up survivors and merges every
    // pair concurrently, bounded by the joiner thread count.
    std::vector<InvertedIndex> level = std::move(replicas);
    while (level.size() > 1) {
        std::size_t pairs = level.size() / 2;
        std::size_t lanes = std::min(threads, pairs);

        // Lane t merges pairs t, t+lanes, t+2*lanes, ... Joiner
        // threads touch disjoint pairs, so no locks are needed —
        // exactly the property the pattern is meant to deliver.
        std::vector<std::thread> joiners;
        joiners.reserve(lanes);
        for (std::size_t t = 0; t < lanes; ++t) {
            joiners.emplace_back([&level, pairs, lanes, t] {
                for (std::size_t p = t; p < pairs; p += lanes) {
                    level[2 * p].merge(std::move(level[2 * p + 1]));
                }
            });
        }
        for (std::thread &joiner : joiners)
            joiner.join();

        // Compact survivors: merged pairs plus a possible odd leftover.
        std::vector<InvertedIndex> next;
        next.reserve(pairs + level.size() % 2);
        for (std::size_t p = 0; p < pairs; ++p)
            next.push_back(std::move(level[2 * p]));
        if (level.size() % 2 == 1)
            next.push_back(std::move(level.back()));
        level = std::move(next);
    }
    return std::move(level.front());
}

} // namespace dsearch
