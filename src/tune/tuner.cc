#include "tune/tuner.hh"

#include <cmath>
#include <map>

#include "util/logging.hh"

namespace dsearch {

SimCostEvaluator::SimCostEvaluator(const PipelineSim &sim,
                                   unsigned repeats,
                                   double noise_stddev,
                                   std::uint64_t seed)
    : _sim(sim), _repeats(repeats), _noise_stddev(noise_stddev),
      _rng(seed)
{
    if (repeats == 0)
        fatal("SimCostEvaluator: repeats must be >= 1");
}

double
SimCostEvaluator::evaluate(const Config &cfg)
{
    double base = _sim.run(cfg).total_sec;
    double sum = 0.0;
    for (unsigned r = 0; r < _repeats; ++r) {
        double factor = 1.0;
        if (_noise_stddev > 0.0) {
            // Box-Muller standard normal.
            double u1 = _rng.nextDouble();
            double u2 = _rng.nextDouble();
            while (u1 <= 0.0)
                u1 = _rng.nextDouble();
            double z = std::sqrt(-2.0 * std::log(u1))
                       * std::cos(6.28318530717958648 * u2);
            factor = std::max(0.0, 1.0 + _noise_stddev * z);
        }
        sum += base * factor;
    }
    ++_evaluations;
    return sum / static_cast<double>(_repeats);
}

RealCostEvaluator::RealCostEvaluator(const FileSystem &fs,
                                     std::string root, unsigned repeats,
                                     TokenizerOptions opts)
    : _fs(fs), _root(std::move(root)), _repeats(repeats), _opts(opts)
{
    if (repeats == 0)
        fatal("RealCostEvaluator: repeats must be >= 1");
}

double
RealCostEvaluator::evaluate(const Config &cfg)
{
    double sum = 0.0;
    for (unsigned r = 0; r < _repeats; ++r) {
        IndexGenerator generator(_fs, _root, cfg, _opts);
        sum += generator.build().times.total;
    }
    ++_evaluations;
    return sum / static_cast<double>(_repeats);
}

namespace {

/** Track the best point seen, first-found winning ties. */
void
consider(TuneResult &result, const Config &cfg, double seconds)
{
    result.history.push_back(Evaluated{cfg, seconds});
    if (seconds < result.best_sec) {
        result.best_sec = seconds;
        result.best = cfg;
    }
}

} // namespace

TuneResult
ExhaustiveTuner::tune(CostEvaluator &evaluator, const ConfigSpace &space)
{
    TuneResult result;
    for (const Config &cfg : space.enumerate())
        consider(result, cfg, evaluator.evaluate(cfg));
    result.evaluations = result.history.size();
    return result;
}

RandomTuner::RandomTuner(std::size_t budget, std::uint64_t seed)
    : _budget(budget), _seed(seed)
{
    if (budget == 0)
        fatal("RandomTuner: budget must be >= 1");
}

TuneResult
RandomTuner::tune(CostEvaluator &evaluator, const ConfigSpace &space)
{
    space.validate();
    TuneResult result;
    Rng rng(_seed);
    for (std::size_t i = 0; i < _budget; ++i) {
        Config cfg = space.randomConfig(rng);
        consider(result, cfg, evaluator.evaluate(cfg));
    }
    result.evaluations = result.history.size();
    return result;
}

HillClimbTuner::HillClimbTuner(std::size_t restarts,
                               std::size_t max_steps,
                               std::uint64_t seed)
    : _restarts(restarts), _max_steps(max_steps), _seed(seed)
{
    if (restarts == 0 || max_steps == 0)
        fatal("HillClimbTuner: restarts and max_steps must be >= 1");
}

TuneResult
HillClimbTuner::tune(CostEvaluator &evaluator, const ConfigSpace &space)
{
    space.validate();
    TuneResult result;
    Rng rng(_seed);

    // Memoize on the (x, y, z) lattice; re-evaluating the same tuple
    // only wastes budget (noise is the evaluator's concern).
    std::map<std::string, double> cache;
    auto cost = [&](const Config &cfg) {
        auto it = cache.find(cfg.tupleString());
        if (it != cache.end())
            return it->second;
        double seconds = evaluator.evaluate(cfg);
        cache.emplace(cfg.tupleString(), seconds);
        consider(result, cfg, seconds);
        return seconds;
    };

    for (std::size_t restart = 0; restart < _restarts; ++restart) {
        Config current = space.randomConfig(rng);
        double current_cost = cost(current);
        for (std::size_t step = 0; step < _max_steps; ++step) {
            Config best_neighbor = current;
            double best_cost = current_cost;
            for (const Config &neighbor : space.neighbors(current)) {
                double c = cost(neighbor);
                if (c < best_cost) {
                    best_cost = c;
                    best_neighbor = neighbor;
                }
            }
            if (best_cost >= current_cost)
                break; // local optimum
            current = best_neighbor;
            current_cost = best_cost;
        }
    }
    result.evaluations = result.history.size();
    return result;
}

} // namespace dsearch
