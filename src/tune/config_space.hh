/**
 * @file
 * Enumerable configuration space for the auto-tuner.
 *
 * The paper explored "any combination of thread counts" per
 * implementation with the help of Schäfer et al.'s auto-tuner (which
 * was C# and could not drive their C++ generator throughout). This
 * reproduction carries its own tuner; a ConfigSpace describes the
 * (x, y, z) box it searches for one implementation.
 */

#ifndef DSEARCH_TUNE_CONFIG_SPACE_HH
#define DSEARCH_TUNE_CONFIG_SPACE_HH

#include <cstddef>
#include <vector>

#include "core/config.hh"
#include "util/rng.hh"

namespace dsearch {

/** Axis-aligned box of valid configurations; see the file comment. */
struct ConfigSpace
{
    Implementation impl = Implementation::SharedLocked;

    unsigned min_extractors = 1;
    unsigned max_extractors = 8;

    unsigned min_updaters = 0;
    unsigned max_updaters = 6;

    /** Joiner range; only meaningful for Implementation 2. */
    unsigned min_joiners = 1;
    unsigned max_joiners = 2;

    /** Queue capacity used by every generated config. */
    std::size_t queue_capacity = 256;

    /**
     * The sweep used for the paper's Tables 2-4: x in [1, max_x],
     * y in [1, max_y] (the paper's tuned system always had dedicated
     * updater threads), z in [1, max_z] for Implementation 2.
     */
    static ConfigSpace paperTable(Implementation impl, unsigned max_x,
                                  unsigned max_y, unsigned max_z);

    /** All configurations, x-major then y then z (deterministic). */
    std::vector<Config> enumerate() const;

    /** @return Number of configurations in the box. */
    std::size_t size() const;

    /** @return True when @p cfg lies inside the box. */
    bool contains(const Config &cfg) const;

    /** Uniform random configuration from the box. */
    Config randomConfig(Rng &rng) const;

    /**
     * Axis neighbours of @p cfg (each thread count +-1, clipped to
     * the box), for hill climbing.
     */
    std::vector<Config> neighbors(const Config &cfg) const;

    /** fatal() when the box is empty or inconsistent. */
    void validate() const;

  private:
    Config make(unsigned x, unsigned y, unsigned z) const;
};

} // namespace dsearch

#endif // DSEARCH_TUNE_CONFIG_SPACE_HH
