#include "tune/config_space.hh"

#include "util/logging.hh"

namespace dsearch {

ConfigSpace
ConfigSpace::paperTable(Implementation impl, unsigned max_x,
                        unsigned max_y, unsigned max_z)
{
    ConfigSpace space;
    space.impl = impl;
    space.min_extractors = 1;
    space.max_extractors = max_x;
    space.min_updaters = 1;
    space.max_updaters = max_y;
    if (impl == Implementation::ReplicatedJoin) {
        space.min_joiners = 1;
        space.max_joiners = max_z;
    } else {
        space.min_joiners = 0;
        space.max_joiners = 0;
    }
    return space;
}

void
ConfigSpace::validate() const
{
    if (impl == Implementation::Sequential)
        fatal("ConfigSpace: nothing to tune for the sequential "
              "baseline");
    if (min_extractors == 0 || min_extractors > max_extractors)
        fatal("ConfigSpace: bad extractor range");
    if (min_updaters > max_updaters)
        fatal("ConfigSpace: bad updater range");
    if (impl == Implementation::ReplicatedJoin) {
        if (min_joiners == 0 || min_joiners > max_joiners)
            fatal("ConfigSpace: Implementation 2 needs z >= 1");
    } else if (min_joiners != 0 || max_joiners != 0) {
        fatal("ConfigSpace: joiners only apply to Implementation 2");
    }
    if (queue_capacity == 0)
        fatal("ConfigSpace: queue capacity must be >= 1");
}

Config
ConfigSpace::make(unsigned x, unsigned y, unsigned z) const
{
    Config cfg;
    cfg.impl = impl;
    cfg.extractors = x;
    cfg.updaters = y;
    cfg.joiners = z;
    cfg.queue_capacity = queue_capacity;
    return cfg;
}

std::vector<Config>
ConfigSpace::enumerate() const
{
    validate();
    std::vector<Config> configs;
    configs.reserve(size());
    for (unsigned x = min_extractors; x <= max_extractors; ++x) {
        for (unsigned y = min_updaters; y <= max_updaters; ++y) {
            if (impl == Implementation::ReplicatedJoin) {
                for (unsigned z = min_joiners; z <= max_joiners; ++z)
                    configs.push_back(make(x, y, z));
            } else {
                configs.push_back(make(x, y, 0));
            }
        }
    }
    return configs;
}

std::size_t
ConfigSpace::size() const
{
    std::size_t x_span = max_extractors - min_extractors + 1;
    std::size_t y_span = max_updaters - min_updaters + 1;
    std::size_t z_span = impl == Implementation::ReplicatedJoin
                             ? max_joiners - min_joiners + 1
                             : 1;
    return x_span * y_span * z_span;
}

bool
ConfigSpace::contains(const Config &cfg) const
{
    if (cfg.impl != impl)
        return false;
    if (cfg.extractors < min_extractors
        || cfg.extractors > max_extractors)
        return false;
    if (cfg.updaters < min_updaters || cfg.updaters > max_updaters)
        return false;
    if (impl == Implementation::ReplicatedJoin) {
        if (cfg.joiners < min_joiners || cfg.joiners > max_joiners)
            return false;
    } else if (cfg.joiners != 0) {
        return false;
    }
    return true;
}

Config
ConfigSpace::randomConfig(Rng &rng) const
{
    validate();
    unsigned x = static_cast<unsigned>(
        rng.uniform(min_extractors, max_extractors));
    unsigned y = static_cast<unsigned>(
        rng.uniform(min_updaters, max_updaters));
    unsigned z = 0;
    if (impl == Implementation::ReplicatedJoin)
        z = static_cast<unsigned>(
            rng.uniform(min_joiners, max_joiners));
    return make(x, y, z);
}

std::vector<Config>
ConfigSpace::neighbors(const Config &cfg) const
{
    std::vector<Config> out;
    auto try_add = [this, &out](int x, int y, int z) {
        if (x < 0 || y < 0 || z < 0)
            return;
        Config candidate = make(static_cast<unsigned>(x),
                                static_cast<unsigned>(y),
                                static_cast<unsigned>(z));
        if (contains(candidate))
            out.push_back(candidate);
    };
    int x = static_cast<int>(cfg.extractors);
    int y = static_cast<int>(cfg.updaters);
    int z = static_cast<int>(cfg.joiners);
    try_add(x - 1, y, z);
    try_add(x + 1, y, z);
    try_add(x, y - 1, z);
    try_add(x, y + 1, z);
    if (impl == Implementation::ReplicatedJoin) {
        try_add(x, y, z - 1);
        try_add(x, y, z + 1);
    }
    return out;
}

} // namespace dsearch
