/**
 * @file
 * Auto-tuner for the generator configuration.
 *
 * Step 6 of the paper's recommended process: "Use an auto-tuner to
 * speed up exploring the design space." Three search strategies run
 * against an abstract CostEvaluator, so the same tuner drives either
 * the platform simulator (for the table reproductions) or the real
 * threaded generator (for host tuning).
 */

#ifndef DSEARCH_TUNE_TUNER_HH
#define DSEARCH_TUNE_TUNER_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/index_generator.hh"
#include "sim/pipeline_sim.hh"
#include "tune/config_space.hh"

namespace dsearch {

/** Cost oracle: configuration -> expected build seconds. */
class CostEvaluator
{
  public:
    virtual ~CostEvaluator() = default;

    /** @return Mean build time for @p cfg, in seconds. */
    virtual double evaluate(const Config &cfg) = 0;

    /** @return Evaluations performed so far. */
    std::uint64_t evaluations() const { return _evaluations; }

  protected:
    std::uint64_t _evaluations = 0;
};

/**
 * Evaluator backed by the platform simulator.
 *
 * The DES itself is deterministic; optional multiplicative Gaussian
 * noise models run-to-run measurement variance, and @p repeats
 * averages it away — reproducing the paper's five-run protocol.
 */
class SimCostEvaluator : public CostEvaluator
{
  public:
    /**
     * @param sim          Simulator to query (kept by reference).
     * @param repeats      Runs to average per evaluation (>= 1).
     * @param noise_stddev Relative noise sigma (0 = deterministic).
     * @param seed         Noise stream seed.
     */
    SimCostEvaluator(const PipelineSim &sim, unsigned repeats = 1,
                     double noise_stddev = 0.0,
                     std::uint64_t seed = 0x70b5);

    double evaluate(const Config &cfg) override;

  private:
    const PipelineSim &_sim;
    unsigned _repeats;
    double _noise_stddev;
    Rng _rng;
};

/** Evaluator that runs the real threaded generator on a corpus. */
class RealCostEvaluator : public CostEvaluator
{
  public:
    /**
     * @param fs      Filesystem holding the corpus.
     * @param root    Directory to index.
     * @param repeats Runs to average per evaluation (>= 1).
     * @param opts    Tokenizer settings.
     */
    RealCostEvaluator(const FileSystem &fs, std::string root,
                      unsigned repeats = 1, TokenizerOptions opts = {});

    double evaluate(const Config &cfg) override;

  private:
    const FileSystem &_fs;
    std::string _root;
    unsigned _repeats;
    TokenizerOptions _opts;
};

/** One evaluated point of a tuning run. */
struct Evaluated
{
    Config config;
    double seconds = 0.0;
};

/** Outcome of a tuning run. */
struct TuneResult
{
    Config best;
    double best_sec = std::numeric_limits<double>::infinity();
    std::uint64_t evaluations = 0;
    /** Every evaluated point, in evaluation order. */
    std::vector<Evaluated> history;
};

/** Search strategy interface. */
class Tuner
{
  public:
    virtual ~Tuner() = default;

    /** Search @p space for the fastest configuration. */
    virtual TuneResult tune(CostEvaluator &evaluator,
                            const ConfigSpace &space) = 0;
};

/** Evaluates every configuration; ties keep the first found. */
class ExhaustiveTuner : public Tuner
{
  public:
    TuneResult tune(CostEvaluator &evaluator,
                    const ConfigSpace &space) override;
};

/** Evaluates a fixed budget of uniformly sampled configurations. */
class RandomTuner : public Tuner
{
  public:
    /**
     * @param budget Configurations to sample (duplicates are
     *               re-evaluated; keeps the estimator unbiased under
     *               noise).
     * @param seed   Sampling seed.
     */
    explicit RandomTuner(std::size_t budget,
                         std::uint64_t seed = 0x7a2d);

    TuneResult tune(CostEvaluator &evaluator,
                    const ConfigSpace &space) override;

  private:
    std::size_t _budget;
    std::uint64_t _seed;
};

/**
 * Steepest-descent hill climbing with random restarts over the
 * (x, y, z) lattice; evaluation results are memoized per restart
 * chain.
 */
class HillClimbTuner : public Tuner
{
  public:
    /**
     * @param restarts  Independent climbs from random starts (>= 1).
     * @param max_steps Step cap per climb.
     * @param seed      Start-point seed.
     */
    HillClimbTuner(std::size_t restarts = 4, std::size_t max_steps = 64,
                   std::uint64_t seed = 0xc11b);

    TuneResult tune(CostEvaluator &evaluator,
                    const ConfigSpace &space) override;

  private:
    std::size_t _restarts;
    std::size_t _max_steps;
    std::uint64_t _seed;
};

} // namespace dsearch

#endif // DSEARCH_TUNE_TUNER_HH
