/**
 * @file
 * Joining thread pool.
 *
 * Used by the parallel query engine and the parallel reduction join,
 * where task counts exceed thread counts. The index generator itself
 * spawns dedicated per-stage threads instead (matching the system the
 * paper describes), so thread placement is part of the configuration
 * tuple being studied.
 */

#ifndef DSEARCH_PIPELINE_THREAD_POOL_HH
#define DSEARCH_PIPELINE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsearch {

/**
 * Fixed-size pool of worker threads executing submitted tasks in FIFO
 * order. Workers are joined in the destructor (CP.25); tasks submitted
 * after shutdown are rejected via panic (library-use bug).
 */
class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads (>= 1; fatal otherwise).
     */
    explicit ThreadPool(std::size_t workers);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** @return Number of worker threads. */
    std::size_t workerCount() const { return _workers.size(); }

    /**
     * Enqueue a task for execution.
     *
     * Tasks must not throw; exceptions escaping a task terminate the
     * process (tasks run under noexcept workers by design).
     */
    void submit(std::function<void()> task);

    /**
     * Block until every task submitted so far has finished.
     *
     * Concurrent submit() from other threads while waiting is allowed;
     * wait() returns once the pool is momentarily idle.
     */
    void wait();

  private:
    void workerLoop();

    std::mutex _mutex;
    std::condition_variable _work_ready; ///< Signals queued work.
    std::condition_variable _idle;       ///< Signals pool drained.
    std::deque<std::function<void()>> _tasks;
    std::vector<std::thread> _workers;
    std::size_t _active = 0; ///< Tasks currently executing.
    bool _shutdown = false;
};

} // namespace dsearch

#endif // DSEARCH_PIPELINE_THREAD_POOL_HH
