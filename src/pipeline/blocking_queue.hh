/**
 * @file
 * Bounded blocking MPMC queue.
 *
 * This is the buffer between term extractors and index updaters in
 * Implementations 1-3 (when y >= 1), and the shared filename queue of
 * the pipelined-Stage-1 ablation. Bounding matters: it provides the
 * back-pressure that makes extractor stalls observable, which is the
 * effect the paper's measurements hinge on.
 *
 * Locking follows the Core Guidelines: RAII locks only, all condition
 * waits use predicates, and close() wakes every waiter exactly once.
 */

#ifndef DSEARCH_PIPELINE_BLOCKING_QUEUE_HH
#define DSEARCH_PIPELINE_BLOCKING_QUEUE_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace dsearch {

/**
 * Multi-producer multi-consumer bounded queue.
 *
 * @tparam T Element type; moved through the queue by value (CP.31).
 */
template <typename T>
class BlockingQueue
{
  public:
    /**
     * @param capacity Maximum queued elements; 0 means unbounded.
     */
    explicit
    BlockingQueue(std::size_t capacity = 0)
        : _capacity(capacity)
    {
    }

    BlockingQueue(const BlockingQueue &) = delete;
    BlockingQueue &operator=(const BlockingQueue &) = delete;

    /**
     * Enqueue an element, blocking while the queue is full.
     *
     * @return False when the queue was closed (the element is
     *         dropped); producers should stop on false.
     */
    bool
    push(T item)
    {
        std::unique_lock lock(_mutex);
        _not_full.wait(lock, [this] {
            return _closed || _capacity == 0
                   || _items.size() < _capacity;
        });
        if (_closed)
            return false;
        _items.push_back(std::move(item));
        lock.unlock();
        _not_empty.notify_one();
        return true;
    }

    /**
     * Non-blocking enqueue.
     *
     * @return True when the element was queued; false when the queue
     *         is full or closed (the element is dropped). Closing is
     *         terminal, so callers can distinguish the two afterwards
     *         with closed(). This is the admission primitive for
     *         load-shedding producers that must never stall.
     */
    bool
    tryPush(T item)
    {
        {
            std::scoped_lock lock(_mutex);
            if (_closed
                || (_capacity != 0 && _items.size() >= _capacity)) {
                return false;
            }
            _items.push_back(std::move(item));
        }
        _not_empty.notify_one();
        return true;
    }

    /**
     * Dequeue an element, blocking while the queue is empty.
     *
     * @param out Receives the element on success.
     * @return False when the queue is closed and fully drained;
     *         consumers should stop on false.
     */
    bool
    pop(T &out)
    {
        std::unique_lock lock(_mutex);
        _not_empty.wait(lock,
                        [this] { return _closed || !_items.empty(); });
        if (_items.empty())
            return false; // closed and drained
        out = std::move(_items.front());
        _items.pop_front();
        lock.unlock();
        notifyProducer();
        return true;
    }

    /**
     * Dequeue up to @p max elements in one critical section,
     * blocking while the queue is empty. Amortizes lock and notify
     * traffic for consumers that can process elements in batches (the
     * Stage-3 updater loop).
     *
     * @param out Cleared, then receives 1..max elements on success.
     * @param max Maximum batch size (>= 1).
     * @return False when the queue is closed and fully drained (out
     *         left empty); consumers should stop on false.
     */
    bool
    popBatch(std::vector<T> &out, std::size_t max)
    {
        out.clear();
        if (max == 0)
            max = 1;
        std::unique_lock lock(_mutex);
        _not_empty.wait(lock,
                        [this] { return _closed || !_items.empty(); });
        if (_items.empty())
            return false; // closed and drained
        std::size_t take = std::min(max, _items.size());
        out.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
            out.push_back(std::move(_items.front()));
            _items.pop_front();
        }
        lock.unlock();
        // Each freed slot can admit exactly one blocked producer;
        // notify_all here would wake every producer per batch.
        for (std::size_t i = 0; i < take; ++i)
            notifyProducer();
        return true;
    }

    /**
     * Non-blocking dequeue.
     *
     * @return True when an element was taken.
     */
    bool
    tryPop(T &out)
    {
        std::unique_lock lock(_mutex);
        if (_items.empty())
            return false;
        out = std::move(_items.front());
        _items.pop_front();
        lock.unlock();
        notifyProducer();
        return true;
    }

    /**
     * Close the queue: subsequent pushes fail, pops drain the
     * remaining elements and then fail. Idempotent.
     */
    void
    close()
    {
        {
            std::scoped_lock lock(_mutex);
            _closed = true;
        }
        _not_empty.notify_all();
        _not_full.notify_all();
    }

    /** @return True once close() has been called. */
    bool
    closed() const
    {
        std::scoped_lock lock(_mutex);
        return _closed;
    }

    /** @return Current number of queued elements. */
    std::size_t
    size() const
    {
        std::scoped_lock lock(_mutex);
        return _items.size();
    }

    /** @return The capacity this queue was built with (0 = unbounded). */
    std::size_t capacity() const { return _capacity; }

    /**
     * @return Producer wake-ups issued by the consumer side so far.
     *
     * Unbounded queues never block a producer, so this stays 0 there —
     * the regression observable for the notify guard.
     */
    std::uint64_t
    producerNotifyCount() const
    {
        return _producer_notifies.load(std::memory_order_relaxed);
    }

  private:
    /**
     * Wake one producer after freeing a slot. Producers only ever
     * block on _not_full when the queue is bounded, so an unbounded
     * queue skips the (syscall-bearing) notify entirely.
     */
    void
    notifyProducer()
    {
        if (_capacity == 0)
            return;
        _producer_notifies.fetch_add(1, std::memory_order_relaxed);
        _not_full.notify_one();
    }

    mutable std::mutex _mutex;
    std::condition_variable _not_full;
    std::condition_variable _not_empty;
    std::deque<T> _items;
    const std::size_t _capacity;
    std::atomic<std::uint64_t> _producer_notifies{0};
    bool _closed = false;
};

} // namespace dsearch

#endif // DSEARCH_PIPELINE_BLOCKING_QUEUE_HH
