/**
 * @file
 * Reusable synchronization barrier.
 *
 * The "Join Forces" pattern needs exactly one barrier: all index
 * updaters arrive before the join threads start merging replicas. A
 * generation counter makes the barrier reusable across phases.
 */

#ifndef DSEARCH_PIPELINE_BARRIER_HH
#define DSEARCH_PIPELINE_BARRIER_HH

#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "util/logging.hh"

namespace dsearch {

/** Classic counting barrier for a fixed set of participants. */
class Barrier
{
  public:
    /** @param parties Number of threads that must arrive (>= 1). */
    explicit
    Barrier(std::size_t parties)
        : _parties(parties), _waiting(0), _generation(0)
    {
        if (parties == 0)
            fatal("Barrier: need at least one party");
    }

    Barrier(const Barrier &) = delete;
    Barrier &operator=(const Barrier &) = delete;

    /**
     * Arrive and block until all parties have arrived.
     *
     * The last arriver releases everyone and resets the barrier for
     * the next generation.
     */
    void
    arriveAndWait()
    {
        std::unique_lock lock(_mutex);
        std::size_t my_generation = _generation;
        if (++_waiting == _parties) {
            _waiting = 0;
            ++_generation;
            lock.unlock();
            _all_arrived.notify_all();
            return;
        }
        _all_arrived.wait(lock, [this, my_generation] {
            return _generation != my_generation;
        });
    }

  private:
    std::mutex _mutex;
    std::condition_variable _all_arrived;
    const std::size_t _parties;
    std::size_t _waiting;
    std::size_t _generation;
};

} // namespace dsearch

#endif // DSEARCH_PIPELINE_BARRIER_HH
