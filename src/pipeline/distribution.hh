/**
 * @file
 * Work-distribution strategies for Stage 2.
 *
 * §2.1 of the paper lists the options considered for handing files to
 * term extractors: work queues, round-robin distribution, assignment
 * based on file lengths, and work stealing. The paper measured simple
 * round-robin into k private vectors as fastest; the other three are
 * implemented here so that claim can be re-measured (ablation E5).
 *
 * Two families:
 *  - static partitioning (round-robin, size-balanced) produces k
 *    private FileLists up front — extractors then run with zero
 *    synchronization;
 *  - dynamic sources (shared queue, work stealing) hand out files at
 *    run time through a FileSource.
 */

#ifndef DSEARCH_PIPELINE_DISTRIBUTION_HH
#define DSEARCH_PIPELINE_DISTRIBUTION_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "fs/traversal.hh"

namespace dsearch {

/** Strategy selector used by the generator configuration. */
enum class DistributionKind {
    RoundRobin,   ///< Paper's choice: file i goes to shard i mod k.
    SizeBalanced, ///< Greedy LPT on file sizes.
    SharedQueue,  ///< One locked queue, workers pull one file at a time.
    WorkStealing  ///< Per-worker deques; idle workers steal.
};

/** @return Human-readable strategy name. */
const char *name(DistributionKind kind);

/**
 * Static round-robin partition.
 *
 * @param files Stage 1 output.
 * @param k     Shard count (>= 1).
 * @return k shards; shard j holds files j, j+k, j+2k, ...
 */
std::vector<FileList> distributeRoundRobin(const FileList &files,
                                           std::size_t k);

/**
 * Static size-balanced partition (greedy longest-processing-time):
 * files sorted by descending size, each assigned to the currently
 * lightest shard.
 */
std::vector<FileList> distributeSizeBalanced(const FileList &files,
                                             std::size_t k);

/** Sum of file sizes per shard (for balance assertions in tests). */
std::vector<std::uint64_t>
shardLoads(const std::vector<FileList> &shards);

/**
 * Runtime source of files for extractor threads.
 *
 * Implementations are constructed with the full file list and handed
 * to x workers; next() is called concurrently.
 */
class FileSource
{
  public:
    virtual ~FileSource() = default;

    /**
     * Fetch the next file for @p worker.
     *
     * @param worker Caller's worker index in [0, workers).
     * @param out    Receives the file entry.
     * @return False when no work is left anywhere.
     */
    virtual bool next(std::size_t worker, FileEntry &out) = 0;
};

/**
 * FileSource over a static partition: each worker consumes its private
 * shard with no synchronization at all (the paper's design).
 */
class VectorSource : public FileSource
{
  public:
    explicit VectorSource(std::vector<FileList> shards);

    bool next(std::size_t worker, FileEntry &out) override;

  private:
    std::vector<FileList> _shards;
    std::vector<std::size_t> _cursor;
};

/**
 * FileSource over one shared locked queue — the contended alternative
 * the paper warns about ("concurrent access to ... the work queues was
 * likely to slow everything down").
 */
class SharedQueueSource : public FileSource
{
  public:
    explicit SharedQueueSource(const FileList &files);

    bool next(std::size_t worker, FileEntry &out) override;

  private:
    std::mutex _mutex;
    const FileList &_files;
    std::size_t _cursor = 0;
};

/**
 * FileSource with per-worker deques and stealing: a worker takes from
 * the back of its own deque and steals from the front of the longest
 * other deque when empty. Deques are mutex-guarded (CP.100: no
 * lock-free machinery for a cold path — steals are rare at file
 * granularity).
 */
class WorkStealingSource : public FileSource
{
  public:
    /**
     * @param files   Stage 1 output, dealt round-robin to the deques.
     * @param workers Number of workers (>= 1).
     */
    WorkStealingSource(const FileList &files, std::size_t workers);

    bool next(std::size_t worker, FileEntry &out) override;

    /** @return Number of successful steals (observability for tests). */
    std::uint64_t stealCount() const;

  private:
    struct Deque
    {
        std::mutex mutex;
        std::deque<FileEntry> items;
    };

    std::vector<std::unique_ptr<Deque>> _deques;
    std::atomic<std::uint64_t> _steals{0};
};

/**
 * Build the FileSource matching a strategy.
 *
 * @param kind    Strategy to use.
 * @param files   Stage 1 output.
 * @param workers Extractor count.
 */
std::unique_ptr<FileSource> makeFileSource(DistributionKind kind,
                                           const FileList &files,
                                           std::size_t workers);

} // namespace dsearch

#endif // DSEARCH_PIPELINE_DISTRIBUTION_HH
