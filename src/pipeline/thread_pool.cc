#include "pipeline/thread_pool.hh"

#include "util/logging.hh"

namespace dsearch {

ThreadPool::ThreadPool(std::size_t workers)
{
    if (workers == 0)
        fatal("ThreadPool: need at least one worker");
    _workers.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::scoped_lock lock(_mutex);
        _shutdown = true;
    }
    _work_ready.notify_all();
    for (std::thread &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::scoped_lock lock(_mutex);
        if (_shutdown)
            panic("ThreadPool::submit after shutdown");
        _tasks.push_back(std::move(task));
    }
    _work_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock lock(_mutex);
    _idle.wait(lock,
               [this] { return _tasks.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock lock(_mutex);
    while (true) {
        _work_ready.wait(lock, [this] {
            return _shutdown || !_tasks.empty();
        });
        if (_tasks.empty()) {
            // Shutdown with nothing left to do.
            return;
        }
        std::function<void()> task = std::move(_tasks.front());
        _tasks.pop_front();
        ++_active;
        lock.unlock();
        task();
        lock.lock();
        --_active;
        if (_tasks.empty() && _active == 0)
            _idle.notify_all();
    }
}

} // namespace dsearch
