#include "pipeline/distribution.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "util/logging.hh"

namespace dsearch {

const char *
name(DistributionKind kind)
{
    switch (kind) {
      case DistributionKind::RoundRobin:
        return "round-robin";
      case DistributionKind::SizeBalanced:
        return "size-balanced";
      case DistributionKind::SharedQueue:
        return "shared-queue";
      case DistributionKind::WorkStealing:
        return "work-stealing";
    }
    return "unknown";
}

std::vector<FileList>
distributeRoundRobin(const FileList &files, std::size_t k)
{
    if (k == 0)
        fatal("distributeRoundRobin: need at least one shard");
    std::vector<FileList> shards(k);
    for (FileList &shard : shards)
        shard.reserve(files.size() / k + 1);
    for (std::size_t i = 0; i < files.size(); ++i)
        shards[i % k].push_back(files[i]);
    return shards;
}

std::vector<FileList>
distributeSizeBalanced(const FileList &files, std::size_t k)
{
    if (k == 0)
        fatal("distributeSizeBalanced: need at least one shard");

    // Longest-processing-time greedy: biggest file first, always into
    // the lightest shard.
    std::vector<std::size_t> order(files.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&files](std::size_t a, std::size_t b) {
                         return files[a].size > files[b].size;
                     });

    using Load = std::pair<std::uint64_t, std::size_t>; // (bytes, shard)
    std::priority_queue<Load, std::vector<Load>, std::greater<>> heap;
    for (std::size_t j = 0; j < k; ++j)
        heap.emplace(0, j);

    std::vector<FileList> shards(k);
    for (std::size_t idx : order) {
        auto [load, shard] = heap.top();
        heap.pop();
        shards[shard].push_back(files[idx]);
        heap.emplace(load + files[idx].size, shard);
    }
    return shards;
}

std::vector<std::uint64_t>
shardLoads(const std::vector<FileList> &shards)
{
    std::vector<std::uint64_t> loads;
    loads.reserve(shards.size());
    for (const FileList &shard : shards) {
        std::uint64_t bytes = 0;
        for (const FileEntry &file : shard)
            bytes += file.size;
        loads.push_back(bytes);
    }
    return loads;
}

VectorSource::VectorSource(std::vector<FileList> shards)
    : _shards(std::move(shards)), _cursor(_shards.size(), 0)
{
}

bool
VectorSource::next(std::size_t worker, FileEntry &out)
{
    if (worker >= _shards.size())
        panic("VectorSource: worker index out of range");
    std::size_t &cur = _cursor[worker];
    if (cur >= _shards[worker].size())
        return false;
    out = _shards[worker][cur++];
    return true;
}

SharedQueueSource::SharedQueueSource(const FileList &files)
    : _files(files)
{
}

bool
SharedQueueSource::next(std::size_t, FileEntry &out)
{
    std::scoped_lock lock(_mutex);
    if (_cursor >= _files.size())
        return false;
    out = _files[_cursor++];
    return true;
}

WorkStealingSource::WorkStealingSource(const FileList &files,
                                       std::size_t workers)
{
    if (workers == 0)
        fatal("WorkStealingSource: need at least one worker");
    _deques.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        _deques.push_back(std::make_unique<Deque>());
    for (std::size_t i = 0; i < files.size(); ++i)
        _deques[i % workers]->items.push_back(files[i]);
}

bool
WorkStealingSource::next(std::size_t worker, FileEntry &out)
{
    if (worker >= _deques.size())
        panic("WorkStealingSource: worker index out of range");

    // Own work first: take from the back of the private deque.
    {
        Deque &own = *_deques[worker];
        std::scoped_lock lock(own.mutex);
        if (!own.items.empty()) {
            out = std::move(own.items.back());
            own.items.pop_back();
            return true;
        }
    }

    // Steal from the front of another deque. Items only ever leave
    // the deques after construction, so one full scan that finds
    // every victim empty proves no work remains.
    for (std::size_t offset = 1; offset < _deques.size(); ++offset) {
        std::size_t victim = (worker + offset) % _deques.size();
        Deque &target = *_deques[victim];
        std::scoped_lock lock(target.mutex);
        if (target.items.empty())
            continue;
        out = std::move(target.items.front());
        target.items.pop_front();
        _steals.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

std::uint64_t
WorkStealingSource::stealCount() const
{
    return _steals.load(std::memory_order_relaxed);
}

std::unique_ptr<FileSource>
makeFileSource(DistributionKind kind, const FileList &files,
               std::size_t workers)
{
    switch (kind) {
      case DistributionKind::RoundRobin:
        return std::make_unique<VectorSource>(
            distributeRoundRobin(files, workers));
      case DistributionKind::SizeBalanced:
        return std::make_unique<VectorSource>(
            distributeSizeBalanced(files, workers));
      case DistributionKind::SharedQueue:
        return std::make_unique<SharedQueueSource>(files);
      case DistributionKind::WorkStealing:
        return std::make_unique<WorkStealingSource>(files, workers);
    }
    panic("makeFileSource: unknown distribution kind");
}

} // namespace dsearch
