#include "shard/broker.hh"

#include <algorithm>
#include <chrono>
#include <queue>
#include <stdexcept>
#include <utility>

#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/**
 * Multiway merge of disjoint sorted DocId runs into one sorted set.
 * The runs come from different shards, so equal keys cannot occur.
 */
DocSet
mergeSortedRuns(std::vector<DocSet> &runs)
{
    std::size_t total = 0;
    std::size_t live = 0;
    for (const DocSet &run : runs) {
        total += run.size();
        if (!run.empty())
            ++live;
    }
    if (live == 1) {
        for (DocSet &run : runs)
            if (!run.empty())
                return std::move(run);
    }

    DocSet merged;
    merged.reserve(total);

    struct Head
    {
        DocId doc;
        std::size_t run;
        std::size_t pos;
    };
    struct Later
    {
        bool
        operator()(const Head &a, const Head &b) const
        {
            return a.doc > b.doc; // min-heap on DocId
        }
    };
    std::priority_queue<Head, std::vector<Head>, Later> heap;
    for (std::size_t r = 0; r < runs.size(); ++r)
        if (!runs[r].empty())
            heap.push(Head{runs[r][0], r, 0});
    while (!heap.empty()) {
        Head head = heap.top();
        heap.pop();
        merged.push_back(head.doc);
        if (head.pos + 1 < runs[head.run].size())
            heap.push(Head{runs[head.run][head.pos + 1], head.run,
                           head.pos + 1});
    }
    return merged;
}

/**
 * K-way merge of per-shard top-k lists, each already sorted by the
 * ranking's total order (score desc, global doc asc), truncated to
 * @p k. Equal scores across shards break toward the lower global
 * DocId — the same tie rule finishRanking() applies — so the merged
 * prefix is exactly what one global sort would produce.
 */
std::vector<ScoredHit>
mergeRankedRuns(std::vector<std::vector<ScoredHit>> &runs,
                std::size_t k)
{
    struct Head
    {
        double score;
        DocId doc;
        std::size_t run;
        std::size_t pos;
    };
    struct Worse
    {
        bool
        operator()(const Head &a, const Head &b) const
        {
            if (a.score != b.score)
                return a.score < b.score; // max-heap on score
            return a.doc > b.doc;         // lower doc wins ties
        }
    };
    std::priority_queue<Head, std::vector<Head>, Worse> heap;
    for (std::size_t r = 0; r < runs.size(); ++r)
        if (!runs[r].empty())
            heap.push(Head{runs[r][0].score, runs[r][0].doc, r, 0});

    std::vector<ScoredHit> merged;
    merged.reserve(std::min(k, static_cast<std::size_t>(64)));
    while (!heap.empty() && merged.size() < k) {
        Head head = heap.top();
        heap.pop();
        merged.push_back(runs[head.run][head.pos]);
        std::size_t next = head.pos + 1;
        if (next < runs[head.run].size())
            heap.push(Head{runs[head.run][next].score,
                           runs[head.run][next].doc, head.run, next});
    }
    return merged;
}

} // namespace

Broker::Broker(ShardedBuild build, BrokerOptions options)
    : _options(options), _global_docs(std::move(build.global_docs)),
      _queue(options.queue_capacity),
      _pool(std::max<std::size_t>(options.merge_workers, 1)),
      _window_start(Clock::now())
{
    if (build.shards.empty())
        panic("Broker: a sharded build must carry at least one shard");
    if (_options.batch_size == 0)
        _options.batch_size = 1;

    // workers = 0 means one per shard here (see BrokerOptions): the
    // shard stands in for a single remote node, and N shards times
    // hardware_concurrency workers would oversubscribe one box.
    ServerOptions shard_opts = _options.shard_options;
    if (shard_opts.workers == 0)
        shard_opts.workers = 1;

    _shards.reserve(build.shards.size());
    for (BuiltShard &built : build.shards) {
        Shard shard;
        shard.server = std::make_unique<QueryServer>(
            std::move(built.snapshot), std::move(built.docs),
            shard_opts);
        shard.to_global = std::move(built.to_global);
        _shards.push_back(std::move(shard));
    }

    _dispatcher = std::thread([this] { dispatchLoop(); });
}

Broker::~Broker()
{
    shutdown();
}

void
Broker::shutdown()
{
    std::call_once(_shutdown_once, [this] {
        _queue.close();          // later submits are rejected
        if (_dispatcher.joinable())
            _dispatcher.join();  // queue drained into the merge pool
        _pool.wait();            // every admitted query answered
        // Only now are the shards idle from the broker's point of
        // view: no merge worker is still waiting on a shard future.
        for (Shard &shard : _shards)
            shard.server->shutdown();
    });
}

std::future<BrokerResponse>
Broker::submit(Query query)
{
    return enqueue(std::move(query), Kind::Boolean, 0);
}

std::future<BrokerResponse>
Broker::submitRanked(Query query, std::size_t k)
{
    return enqueue(std::move(query), Kind::Ranked, k);
}

QueryServer &
Broker::shardServer(std::size_t shard)
{
    if (shard >= _shards.size())
        panic("Broker::shardServer: shard index out of range");
    return *_shards[shard].server;
}

QueryPlan
Broker::compilePlan(const Query &query) const
{
    // Global df: the sum over shards — every document lives in
    // exactly one shard, so shard df's add without double-counting.
    // The same statistic globalWeights() turns into idf; here it
    // only orders AND operands (cheapest shard-spanning list first).
    return QueryPlan::compile(
        query, [this](const std::string &term) {
            std::size_t df = 0;
            for (const Shard &shard : _shards) {
                std::shared_ptr<const ServingState> state =
                    shard.server->serving();
                if (state->ranked != nullptr)
                    df += state->ranked->df(term);
            }
            return df;
        });
}

std::future<BrokerResponse>
Broker::enqueue(Query query, Kind kind, std::size_t k)
{
    if (!query.valid()) {
        auto request = std::make_shared<Request>(QueryPlan());
        request->kind = kind;
        request->k = k;
        request->admitted = Clock::now();
        std::future<BrokerResponse> future =
            request->promise.get_future();
        std::string reason = query.error();
        reject(*request,
               reason.empty() ? "invalid query" : std::move(reason));
        return future;
    }

    // Parse-and-plan happens exactly once, here; the shards receive
    // the compiled plan, never the text.
    auto request = std::make_shared<Request>(compilePlan(query));
    request->kind = kind;
    request->k = k;
    request->admitted = Clock::now();
    std::future<BrokerResponse> future =
        request->promise.get_future();
    admit(std::move(request));
    return future;
}

void
Broker::admit(std::shared_ptr<Request> request)
{
    // Same admission contract as QueryServer: Block (or unbounded)
    // is closed-loop back-pressure; the shedding policies never
    // block the submitter and answer every victim's future.
    if (_options.overload_policy == OverloadPolicy::Block
        || _options.queue_capacity == 0) {
        std::shared_ptr<Request> kept = request;
        if (!_queue.push(std::move(request)))
            reject(*kept, "broker has shut down");
        return;
    }

    while (!_queue.tryPush(request)) {
        if (_queue.closed()) {
            reject(*request, "broker has shut down");
            return;
        }
        if (_options.overload_policy == OverloadPolicy::RejectNewest) {
            reject(*request, "shed under overload", Refusal::Shed);
            return;
        }
        std::shared_ptr<Request> victim;
        if (_queue.tryPop(victim))
            reject(*victim, "shed under overload", Refusal::Shed);
    }
}

void
Broker::reject(Request &request, std::string reason, Refusal refusal)
{
    BrokerResponse response;
    response.ok = false;
    response.error = std::move(reason);
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    {
        std::scoped_lock lock(_stats_mutex);
        switch (refusal) {
          case Refusal::Rejected: ++_rejected; break;
          case Refusal::TimedOut: ++_timed_out; break;
          case Refusal::Shed:     ++_shed; break;
        }
    }
    request.promise.set_value(std::move(response));
}

bool
Broker::expireIfPastDeadline(Request &request)
{
    if (_options.deadline_sec <= 0.0)
        return false;
    double waited =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    if (waited <= _options.deadline_sec)
        return false;
    reject(request, "deadline expired", Refusal::TimedOut);
    return true;
}

void
Broker::dispatchLoop()
{
    std::vector<std::shared_ptr<Request>> batch;
    while (_queue.popBatch(batch, _options.batch_size)) {
        for (std::shared_ptr<Request> &request : batch) {
            if (expireIfPastDeadline(*request))
                continue;
            _pool.submit([this, request = std::move(request)] {
                execute(*request);
            });
        }
    }
}

std::shared_ptr<const TermWeights>
Broker::globalWeights(const QueryPlan &plan) const
{
    const std::vector<std::string> &terms = plan.scoreTerms();
    auto weights = std::make_shared<TermWeights>();
    weights->reserve(terms.size());
    const std::size_t doc_count = _global_docs.docCount();
    for (const std::string &term : terms) {
        // df is a corpus statistic, not a per-replica one: sum over
        // every shard regardless of which shards later answer, so a
        // partial response still scores on the one global scale.
        std::size_t df = 0;
        for (const Shard &shard : _shards) {
            std::shared_ptr<const ServingState> state =
                shard.server->serving();
            if (state->ranked != nullptr)
                df += state->ranked->df(term);
        }
        weights->emplace_back(term, idfFromCounts(doc_count, df));
    }
    return weights;
}

void
Broker::execute(Request &request)
{
    // Pool queueing added wait on top of admission; re-check.
    if (expireIfPastDeadline(request))
        return;

    BrokerResponse response;
    try {
        std::shared_ptr<const TermWeights> weights;
        if (request.kind == Kind::Ranked)
            weights = globalWeights(request.plan);

        // Scatter: one asynchronous sub-query per shard, each into
        // that shard's own admission queue. The fault point models a
        // dead or unreachable shard: the sub-query is never sent.
        struct Pending
        {
            std::size_t shard;
            std::future<QueryResponse> future;
        };
        std::vector<Pending> pending;
        pending.reserve(_shards.size());
        for (std::size_t s = 0; s < _shards.size(); ++s) {
            if (faultFires("shard.dispatch"))
                continue;
            pending.push_back(Pending{
                s,
                request.kind == Kind::Boolean
                    ? _shards[s].server->submitPlan(request.plan)
                    : _shards[s].server->submitRankedWeighted(
                          request.plan, request.k, weights)});
        }

        // Gather: collect whatever answers arrive in time. A shard
        // that refused (shed, deadline, poisoned), outwaited
        // shard_wait_sec, or hits the merge fault point contributes
        // nothing — its absence is recorded, never a torn merge.
        struct Answer
        {
            std::size_t shard;
            QueryResponse reply;
        };
        std::vector<Answer> answers;
        answers.reserve(pending.size());
        for (Pending &p : pending) {
            if (_options.shard_wait_sec > 0.0
                && p.future.wait_for(std::chrono::duration<double>(
                       _options.shard_wait_sec))
                       != std::future_status::ready)
                continue; // abandoned; the future dies with `p`
            QueryResponse reply = p.future.get();
            if (!reply.ok)
                continue;
            if (faultFires("shard.merge"))
                continue;
            answers.push_back(Answer{p.shard, std::move(reply)});
        }

        response.shards_answered = answers.size();
        response.partial = answers.size() < _shards.size();
        if (answers.empty()) {
            reject(request, "no shard answered");
            return;
        }

        // Merge in the global DocId space. to_global is strictly
        // increasing, so remapped runs stay sorted and the multiway
        // merges below need no re-sort.
        if (request.kind == Kind::Boolean) {
            std::vector<DocSet> runs;
            runs.reserve(answers.size());
            for (Answer &answer : answers) {
                const std::vector<DocId> &map =
                    _shards[answer.shard].to_global;
                DocSet run;
                run.reserve(answer.reply.hits.size());
                for (DocId local : answer.reply.hits)
                    run.push_back(map[local]);
                runs.push_back(std::move(run));
            }
            response.hits = mergeSortedRuns(runs);
        } else {
            std::vector<std::vector<ScoredHit>> runs;
            runs.reserve(answers.size());
            for (Answer &answer : answers) {
                const std::vector<DocId> &map =
                    _shards[answer.shard].to_global;
                for (ScoredHit &hit : answer.reply.ranked)
                    hit.doc = map[hit.doc];
                runs.push_back(std::move(answer.reply.ranked));
            }
            response.ranked = mergeRankedRuns(runs, request.k);
        }
    } catch (const std::exception &e) {
        reject(request, std::string("query failed: ") + e.what());
        return;
    } catch (...) {
        reject(request, "query failed: unknown exception");
        return;
    }

    response.ok = true;
    response.latency_sec =
        std::chrono::duration<double>(Clock::now() - request.admitted)
            .count();
    {
        std::scoped_lock lock(_stats_mutex);
        _latencies.push_back(response.latency_sec);
        ++_completed;
        if (response.partial)
            ++_partial;
    }
    request.promise.set_value(std::move(response));
}

BrokerStats
Broker::stats() const
{
    BrokerStats digest;
    std::vector<double> latencies;
    Clock::time_point start;
    {
        std::scoped_lock lock(_stats_mutex);
        latencies = _latencies;
        digest.completed = _completed;
        digest.rejected = _rejected;
        digest.timed_out = _timed_out;
        digest.shed = _shed;
        digest.partial = _partial;
        start = _window_start;
    }
    digest.elapsed_sec =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (digest.elapsed_sec > 0.0)
        digest.qps = static_cast<double>(digest.completed)
                     / digest.elapsed_sec;
    digest.latency = summarizeLatencies(std::move(latencies));

    // The rollup the histogram satellite exists for: fold N shards'
    // digests together with counter adds instead of concatenating N
    // raw sample vectors.
    LatencyHistogram rollup;
    digest.shards.reserve(_shards.size());
    for (const Shard &shard : _shards) {
        rollup.merge(shard.server->latencyHistogram());
        digest.shards.push_back(shard.server->stats());
    }
    digest.shard_latency = rollup.summarize();
    return digest;
}

void
Broker::resetStats()
{
    {
        std::scoped_lock lock(_stats_mutex);
        _latencies.clear();
        _completed = 0;
        _rejected = 0;
        _timed_out = 0;
        _shed = 0;
        _partial = 0;
        _window_start = Clock::now();
    }
    for (Shard &shard : _shards)
        shard.server->resetStats();
}

} // namespace dsearch
