/**
 * @file
 * Broker: scatter-gather front end over N document-partitioned shards.
 *
 * One QueryServer saturates at one machine's worth of cores; the
 * ROADMAP's next step toward "millions of users" is N of them behind
 * a broker — the architecture the related distributed-web-search
 * work (Orlando/Perego/Silvestri) analyzes. This module is that tier,
 * in-process: every shard is a full QueryServer (own admission queue,
 * own deadline and overload policy, own workers over its own sealed
 * snapshot), and the broker is itself shaped like a QueryServer —
 * bounded admission, a dispatcher, a pool — whose "evaluation" is
 * scatter + gather + merge:
 *
 *   clients --submit()--> BlockingQueue --dispatcher--> merge pool
 *                                                        |  scatter:
 *                                                        |  one sub-
 *                                                        v  query per
 *                                          shard QueryServers (async)
 *                                                        |
 *                              gather futures, merge <---+
 *
 * A client query is parsed and planned exactly once: the broker
 * compiles it into a QueryPlan (search/plan.hh) — AND operands
 * ordered by *global* df, summed across shards — and scatters that
 * one immutable plan to every shard through submitPlan() /
 * submitRankedWeighted(plan, ...). Shards never re-parse or re-plan
 * query text; the plan object is shared, not copied (compiled plans
 * are immutable and thread-safe by construction).
 *
 * Merging is where document partitioning earns its keep:
 *
 *  - Boolean: each shard answers in its local DocId space; the
 *    broker remaps through BuiltShard::to_global (strictly
 *    increasing, so sorted runs stay sorted) and multiway-merges the
 *    disjoint runs into one sorted global result — exactly the set
 *    the unsharded Searcher returns, NOT queries included (a local
 *    complement unions to the global complement because every
 *    global document lives in exactly one shard).
 *
 *  - Ranked: the classic document-partitioned pitfall is per-shard
 *    idf — a term rare in one shard but common globally would score
 *    high there, and per-shard scores would not be comparable. The
 *    broker therefore aggregates df per positive term across all
 *    shards (df_global = sum of shard df), converts with the global
 *    document count (idfFromCounts), and sends every shard the same
 *    weight vector in the plan's scoreTerms() order (= the query's
 *    positive-term source order) via submitRankedWeighted(). Each
 *    shard scores its local matches on
 *    the global scale — accumulating contributions in the same
 *    order the unsharded RankedSearcher would, so the doubles are
 *    bit-identical — and the broker k-way heap-merges the per-shard
 *    top-k lists under the same total order (score desc, global doc
 *    asc). Per-shard truncation to k is lossless: the global top-k
 *    is contained in the union of shard top-k's under a total order.
 *
 * Failure containment — a slow or dead shard must cost its own
 * results, not the query:
 *
 *  - options.shard_wait_sec bounds the per-shard gather; a shard
 *    still silent past it is abandoned (its eventual answer is
 *    dropped with its future).
 *  - A shard answering ok = false (shed, deadline, poisoned) or
 *    failing to dispatch contributes nothing.
 *  - Either way the broker reply is degraded but well-formed:
 *    ok = true, partial = true, shards_answered < shardCount(), the
 *    merge covering exactly the shards that answered — never a hang,
 *    never a torn merge. Only zero answering shards make ok = false.
 *  - Fault points "shard.dispatch" (scatter: the sub-query is never
 *    sent) and "shard.merge" (gather: the shard's partial result is
 *    dropped) inject both failure modes deterministically for tests.
 *
 * Stats roll up without centralizing samples: the broker keeps exact
 * end-to-end latencies (it owns those observations), and folds the
 * per-shard views together by merging each server's
 * LatencyHistogram — counter adds, not sample concatenation — plus
 * the full per-shard ServerStats for drill-down (who shed, who timed
 * out: the skewed-load observability bench_shard_broker exercises).
 */

#ifndef DSEARCH_SHARD_BROKER_HH
#define DSEARCH_SHARD_BROKER_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pipeline/blocking_queue.hh"
#include "pipeline/thread_pool.hh"
#include "search/plan.hh"
#include "search/query.hh"
#include "search/query_server.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "shard/shard_planner.hh"
#include "util/stats.hh"

namespace dsearch {

/** Sizing and policy knobs for a Broker. */
struct BrokerOptions
{
    /**
     * Per-shard QueryServer options. workers = 0 here means one
     * worker per shard (each shard stands in for one remote node),
     * not hardware concurrency — a broker over N shards on one box
     * should not start N full pools.
     */
    ServerOptions shard_options;

    /** Merge workers: client queries in flight at once (>= 1). */
    std::size_t merge_workers = 2;

    /** Broker admission queue bound; 0 = unbounded. */
    std::size_t queue_capacity = 1024;

    /** Requests the broker dispatcher drains per round (>= 1). */
    std::size_t batch_size = 8;

    /** Broker-level per-query deadline from admission; 0 = none. */
    double deadline_sec = 0.0;

    /** Broker admission behaviour at a full queue. */
    OverloadPolicy overload_policy = OverloadPolicy::Block;

    /**
     * Longest the gather waits on any one shard, seconds; a shard
     * still silent past it is abandoned and the reply goes out
     * partial. 0 = wait indefinitely (trust shard deadlines).
     */
    double shard_wait_sec = 0.0;
};

/** The answer to one brokered query, in global DocIds. */
struct BrokerResponse
{
    /** False when rejected or no shard answered (error says why). */
    bool ok = false;

    /** Rejection reason (empty when ok). */
    std::string error;

    /** Boolean matches, sorted global DocIds (boolean queries). */
    DocSet hits;

    /** Scored hits, best first, global DocIds (ranked queries). */
    std::vector<ScoredHit> ranked;

    /** True when at least one shard's answer is missing. */
    bool partial = false;

    /** Shards whose results the merge covers. */
    std::size_t shards_answered = 0;

    /** Admission-to-completion latency at the broker, seconds. */
    double latency_sec = 0.0;
};

/** Broker-level traffic digest; see Broker::stats(). */
struct BrokerStats
{
    std::uint64_t completed = 0; ///< Queries answered ok.
    std::uint64_t rejected = 0;  ///< Invalid / refused / all-shards-failed.
    std::uint64_t timed_out = 0; ///< Broker deadline expired.
    std::uint64_t shed = 0;      ///< Dropped by the overload policy.
    std::uint64_t partial = 0;   ///< Completed with missing shards.
    double elapsed_sec = 0.0;    ///< Since start or resetStats().
    double qps = 0.0;            ///< completed / elapsed.

    /** Broker end-to-end latency digest (exact: the broker owns
     *  these samples). */
    LatencySummary latency;

    /** Rollup of per-shard completed-query latencies, merged from
     *  each shard's LatencyHistogram (bounded-error quantiles). */
    LatencySummary shard_latency;

    /** Each shard's own ServerStats, for drill-down. */
    std::vector<ServerStats> shards;
};

/** Scatter-gather serving tier; see the file comment. */
class Broker
{
  public:
    /**
     * Serve @p build (from ShardPlanner::build()). One QueryServer
     * starts per shard; the broker accepts queries as soon as the
     * constructor returns.
     */
    explicit Broker(ShardedBuild build, BrokerOptions options = {});

    /** Shuts down (draining admitted queries) if still running. */
    ~Broker();

    Broker(const Broker &) = delete;
    Broker &operator=(const Broker &) = delete;

    /**
     * Submit a boolean query; the future always becomes ready.
     * Blocking behaviour at a full queue follows
     * options.overload_policy, exactly as on QueryServer.
     */
    std::future<BrokerResponse> submit(Query query);

    /** Submit a ranked query for the global best @p k hits. */
    std::future<BrokerResponse> submitRanked(Query query,
                                             std::size_t k);

    /**
     * Stop the tier: close broker admission, drain and answer every
     * admitted query, then shut the shard servers down. Idempotent;
     * the destructor calls it.
     */
    void shutdown();

    /** @return True while submit() can still admit queries. */
    bool accepting() const { return !_queue.closed(); }

    /** @return Number of shards behind this broker. */
    std::size_t shardCount() const { return _shards.size(); }

    /** @return Documents across all shards. */
    std::size_t docCount() const { return _global_docs.docCount(); }

    /** @return The global document table (paths for display). */
    const DocTable &docs() const { return _global_docs; }

    /** Traffic digest: broker counters + per-shard rollup. */
    BrokerStats stats() const;

    /** Restart the stats window, broker and every shard. */
    void resetStats();

    /**
     * One shard's server, for targeted inspection and load in tests
     * and benchmarks (panics on an out-of-range index).
     */
    QueryServer &shardServer(std::size_t shard);

  private:
    using Clock = std::chrono::steady_clock;

    /** One shard: its server plus the local -> global id map. */
    struct Shard
    {
        std::unique_ptr<QueryServer> server;
        std::vector<DocId> to_global;
    };

    enum class Kind { Boolean, Ranked };

    /** One admitted client query in flight at the broker. The plan
     *  is compiled once at admission and is what the scatter ships
     *  to every shard. */
    struct Request
    {
        explicit Request(QueryPlan p) : plan(std::move(p)) {}

        QueryPlan plan;
        Kind kind = Kind::Boolean;
        std::size_t k = 0;
        std::promise<BrokerResponse> promise;
        Clock::time_point admitted;
    };

    enum class Refusal { Rejected, TimedOut, Shed };

    /** Compile @p query with AND operands ordered by global df
     *  (summed across shards; header-cache probes only). */
    QueryPlan compilePlan(const Query &query) const;

    std::future<BrokerResponse> enqueue(Query query, Kind kind,
                                        std::size_t k);
    void admit(std::shared_ptr<Request> request);
    void reject(Request &request, std::string reason,
                Refusal refusal = Refusal::Rejected);
    bool expireIfPastDeadline(Request &request);
    void dispatchLoop();

    /** Merge-worker body: scatter, gather, merge, resolve. */
    void execute(Request &request);

    /**
     * Global per-term weights for a ranked query: df summed across
     * shards, idf on the global document count, in the plan's
     * scoreTerms() order (the query's positive-term source order).
     */
    std::shared_ptr<const TermWeights>
    globalWeights(const QueryPlan &plan) const;

    BrokerOptions _options;
    DocTable _global_docs;
    std::vector<Shard> _shards;

    BlockingQueue<std::shared_ptr<Request>> _queue;
    ThreadPool _pool;
    std::thread _dispatcher;
    std::once_flag _shutdown_once;

    mutable std::mutex _stats_mutex;
    std::vector<double> _latencies;
    std::uint64_t _completed = 0;
    std::uint64_t _rejected = 0;
    std::uint64_t _timed_out = 0;
    std::uint64_t _shed = 0;
    std::uint64_t _partial = 0;
    Clock::time_point _window_start;
};

} // namespace dsearch

#endif // DSEARCH_SHARD_BROKER_HH
