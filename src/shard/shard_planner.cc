#include "shard/shard_planner.hh"

#include <algorithm>
#include <utility>

#include "fs/traversal.hh"
#include "util/fnv_hash.hh"
#include "util/hash_set.hh"
#include "util/logging.hh"

namespace dsearch {

namespace {

/**
 * A read-only view of a base filesystem restricted to one shard's
 * files. Directories pass through untouched (traversal still walks
 * the whole tree in the same order); regular files exist only when
 * the placement assigned them to this shard. Because list() keeps
 * the base's deterministic order and merely drops entries, the
 * filtered traversal enumerates the shard's files in exactly the
 * global traversal order restricted to the shard — the invariant
 * that makes BuiltShard::to_global strictly increasing.
 */
class FilteredFs : public FileSystem
{
  public:
    FilteredFs(const FileSystem &base, HashSet<std::string> allowed)
        : _base(base), _allowed(std::move(allowed))
    {
    }

    std::vector<DirEntry>
    list(const std::string &path) const override
    {
        std::vector<DirEntry> entries = _base.list(path);
        std::vector<DirEntry> kept;
        kept.reserve(entries.size());
        for (DirEntry &entry : entries) {
            if (entry.is_dir
                || _allowed.contains(joinPath(path, entry.name)))
                kept.push_back(std::move(entry));
        }
        return kept;
    }

    bool
    isDirectory(const std::string &path) const override
    {
        return _base.isDirectory(path);
    }

    bool
    isFile(const std::string &path) const override
    {
        return _allowed.contains(path) && _base.isFile(path);
    }

    std::uint64_t
    fileSize(const std::string &path) const override
    {
        return _allowed.contains(path) ? _base.fileSize(path) : 0;
    }

    std::uint64_t
    fileMtime(const std::string &path) const override
    {
        return _allowed.contains(path) ? _base.fileMtime(path) : 0;
    }

    bool
    readFile(const std::string &path, std::string &out) const override
    {
        return _allowed.contains(path) && _base.readFile(path, out);
    }

  private:
    const FileSystem &_base;
    HashSet<std::string> _allowed;
};

} // namespace

std::size_t
ShardPlanner::shardForPath(const std::string &path, std::size_t shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<std::size_t>(fnv1a_64(path) % shards);
}

ShardedBuild
ShardPlanner::build(const FileSystem &fs, const std::string &root,
                    const ShardPlanOptions &options)
{
    const std::size_t shard_count = std::max<std::size_t>(
        options.shards, 1);

    // One global Stage-1 traversal names every document: this is the
    // DocId space the broker answers in, identical to what an
    // unsharded Engine build over the same corpus would assign.
    FileList files = generateFilenames(fs, root);

    ShardedBuild out;
    out.global_docs = DocTable::fromFileList(files);
    out.shards.resize(shard_count);

    // Assign every file to its shard.
    std::vector<HashSet<std::string>> allowed(shard_count);
    std::vector<std::vector<DocId>> to_global(shard_count);
    for (std::size_t i = 0; i < files.size(); ++i) {
        std::size_t shard =
            options.placement == ShardPlacement::RoundRobin
                ? i % shard_count
                : shardForPath(files[i].path, shard_count);
        allowed[shard].insert(files[i].path);
        to_global[shard].push_back(files[i].doc);
    }

    // Build each shard over its filtered view of the corpus.
    for (std::size_t s = 0; s < shard_count; ++s) {
        FilteredFs view(fs, std::move(allowed[s]));
        Engine::Result built =
            Engine::open(view, root)
                .organization(options.organization)
                .threads(std::max(options.extractors, 1u),
                         options.updaters, options.joiners)
                .tokenizer(options.tokenizer)
                .build();
        if (!built.snapshot.unified())
            panic("ShardPlanner: shard build produced a non-unified "
                  "snapshot (use a joined organization)");

        BuiltShard &shard = out.shards[s];
        shard.snapshot = std::move(built.snapshot);
        shard.docs = std::move(built.docs);
        shard.to_global = std::move(to_global[s]);

        // The local-order invariant everything downstream leans on:
        // shard-local DocId i must name the same file as global DocId
        // to_global[i]. A violation means FileSystem::list() broke
        // its determinism contract.
        if (shard.docs.docCount() != shard.to_global.size())
            panic("ShardPlanner: shard indexed a different document "
                  "count than the placement assigned");
        for (std::size_t i = 0; i < shard.to_global.size(); ++i) {
            if (shard.docs.path(static_cast<DocId>(i))
                != out.global_docs.path(shard.to_global[i]))
                panic("ShardPlanner: shard-local document order "
                      "diverged from the global traversal order");
        }
    }
    return out;
}

} // namespace dsearch
