/**
 * @file
 * ShardPlanner: document-partition one corpus into N sealed shards.
 *
 * The distributed-web-search architecture in the related work
 * (Orlando/Perego/Silvestri) splits the *document collection* across
 * workers: every shard holds the full vocabulary over its own slice
 * of the documents, a query is evaluated against every shard, and a
 * broker merges the partial answers. This module builds that layout
 * in-process:
 *
 *   generateFilenames(fs, root)        one Stage-1 traversal names
 *        |                             every document once — the
 *        v                             *global* DocId order
 *   placement (round-robin | hash)     assigns each file to a shard
 *        |
 *        v
 *   N Engine builds over FilteredFs    each shard indexes only its
 *        |                             own files; DocIds are dense
 *        v                             and *local* per shard
 *   BuiltShard{snapshot, docs, to_global}
 *
 * The key invariant the broker's merge relies on: a shard's local
 * DocIds are assigned by the same deterministic traversal order as
 * the global table, restricted to the shard's files (FileSystem::
 * list() is lexicographic, and filtering a DFS preserves relative
 * order). So `to_global` — local id -> global id — is *strictly
 * increasing*, every global id appears in exactly one shard, and a
 * shard's sorted local result set stays sorted after remapping.
 * Boolean merge is therefore a multiway merge of sorted runs, and a
 * NOT evaluated against the shard-local universe unions to exactly
 * the global complement.
 *
 * Placement:
 *  - RoundRobin spreads documents evenly (traversal index mod N) —
 *    the balanced default for benchmarking scaling curves.
 *  - HashByPath (FNV-1a of the virtual path mod N) keeps a
 *    document's shard stable when the corpus grows or shrinks —
 *    re-sharding moves only ~1/N of documents on a shard-count
 *    change, and a path maps to the same shard on every machine.
 */

#ifndef DSEARCH_SHARD_SHARD_PLANNER_HH
#define DSEARCH_SHARD_SHARD_PLANNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "fs/file_system.hh"
#include "index/doc_table.hh"
#include "index/index_snapshot.hh"
#include "text/tokenizer.hh"

namespace dsearch {

/** How documents are assigned to shards. */
enum class ShardPlacement {
    /** Traversal index mod N: maximally even spread. */
    RoundRobin,
    /** FNV-1a(path) mod N: stable under corpus growth. */
    HashByPath,
};

/** Knobs for ShardPlanner::build(). */
struct ShardPlanOptions
{
    /** Number of shards (>= 1; 0 is clamped to 1). */
    std::size_t shards = 1;

    /** Document-to-shard assignment rule. */
    ShardPlacement placement = ShardPlacement::RoundRobin;

    /** Tokenizer settings shared by every shard build (and by the
     *  unsharded reference build, when comparing). */
    TokenizerOptions tokenizer;

    /**
     * Generator organization for each shard's Engine build. Must be
     * a joined organization (unified snapshot): the serving tier
     * ranks with RankedSearcher, which replicated snapshots cannot.
     */
    Implementation organization = Implementation::Sequential;

    /** The paper's (x, y, z) thread tuple for each shard build
     *  (extractors < 1 is clamped to 1). */
    unsigned extractors = 1;
    unsigned updaters = 0;
    unsigned joiners = 0;
};

/** One sealed shard, ready to be served by its own QueryServer. */
struct BuiltShard
{
    /** Unified snapshot over this shard's documents only. */
    IndexSnapshot snapshot;

    /** Shard-local document table (dense local DocIds from 0). */
    DocTable docs;

    /**
     * Local DocId -> global DocId, strictly increasing (see the file
     * comment); size == docs.docCount().
     */
    std::vector<DocId> to_global;
};

/** The complete output of one sharded build. */
struct ShardedBuild
{
    /** Global document table in unsharded traversal order — the
     *  DocId space broker responses are expressed in. */
    DocTable global_docs;

    /** The shards; every global document is in exactly one. */
    std::vector<BuiltShard> shards;
};

/** Document-partitioning build driver; see the file comment. */
class ShardPlanner
{
  public:
    /**
     * Partition the corpus under @p root into options.shards shards
     * and build each one. Deterministic: the same corpus and options
     * produce the same shards, tables and snapshots.
     *
     * Shards may legitimately end up empty (more shards than
     * documents, or an unlucky hash); an empty shard serves an empty
     * snapshot and answers every query with no hits.
     *
     * Panics if a shard build violates the local-order invariant
     * (would mean FileSystem::list() broke its determinism contract)
     * or produces a non-unified snapshot.
     */
    static ShardedBuild build(const FileSystem &fs,
                              const std::string &root,
                              const ShardPlanOptions &options);

    /**
     * The HashByPath placement rule, exposed so tests and external
     * routers agree with the planner byte for byte.
     */
    static std::size_t shardForPath(const std::string &path,
                                    std::size_t shards);
};

} // namespace dsearch

#endif // DSEARCH_SHARD_SHARD_PLANNER_HH
