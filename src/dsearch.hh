/**
 * @file
 * Umbrella header for the dsearch library.
 *
 * dsearch reproduces Meder & Tichy, "Parallelizing an Index Generator
 * for Desktop Search" (Karlsruhe Reports in Informatics 2010-9): a
 * three-stage index-generation pipeline (filename generation, term
 * extraction, index update) with the paper's three parallel
 * organizations, plus the search, simulation and auto-tuning
 * subsystems built around it.
 *
 * Typical use — the Engine facade builds through a pluggable
 * IndexBackend and seals the result into an immutable IndexSnapshot,
 * which is what every searcher consumes:
 *
 *     #include "dsearch.hh"
 *     using namespace dsearch;
 *
 *     DiskFs fs("/home/me/documents");
 *     Engine::Result built =
 *         Engine::open(fs, "/")
 *             .organization(Implementation::ReplicatedJoin)
 *             .threads(3, 2, 1)
 *             .build();
 *     Searcher search(built.snapshot, built.docs.docCount());
 *     DocSet hits = search.run(Query::parse("report AND 2010"));
 *
 * An Implementation 3 build keeps its replicas as snapshot segments;
 * query those with MultiSearcher(built.snapshot, ...). Persist and
 * reload with saveSnapshotFile()/loadSnapshotFile(). Per-term reads
 * everywhere go through PostingCursor (next()/seekGE()/count()), so
 * the posting representation can change behind the snapshot without
 * touching query code.
 *
 * To *serve* query traffic rather than answer one-shot calls, hand
 * the build result to a QueryServer — the serving entry point next
 * to Engine. It keeps the snapshot and searchers resident, admits
 * queries from any number of client threads through a bounded queue,
 * executes them on a persistent thread pool, and reports throughput
 * and latency percentiles:
 *
 *     QueryServer server(std::move(built));
 *     auto reply = server.submit(Query::parse("report AND 2010"));
 *     DocSet hits = reply.get().hits;   // or submitRanked() for topK
 *     ServerStats load = server.stats();  // qps, p50/p95/p99
 *
 * The one-shot build used to be the end of the story — build once,
 * seal once, serve forever. The live/ layer removes that limit: a
 * LiveIndex keeps a built index current against a changing corpus
 * while the QueryServer keeps serving, through the state machine
 *
 *     scan -> delta -> merge -> publish -> prune
 *
 * A scanner thread re-walks the corpus (live/scan_diff.hh), indexes
 * created/modified files into small sealed delta segments through
 * the same extractor + backend path the base build used, tombstones
 * deleted or superseded documents, and *publishes* each new
 * generation to the QueryServer — an atomic snapshot hot-swap:
 * in-flight queries finish on the generation they started on, new
 * admissions see the new one, nothing pauses and nothing tears. A
 * merger thread compacts base + deltas LSM-style (index_join)
 * once enough accumulate, persists each compacted generation
 * crash-safely through SnapshotStore (which prunes old generations),
 * and publishes the unified result:
 *
 *     QueryServer server(std::move(built2));   // a second build
 *     SnapshotStore store("/var/lib/dsearch");
 *     LiveIndex live(fs, "/", server, &store);
 *     live.adopt(std::move(built));  // or live.bootstrap() to recover
 *     live.start();                  // background scanner + merger
 *     ... server.submit(...) serves while files change ...
 *     LiveStats health = live.stats();  // staleness + degraded flag
 *
 * When one server is not enough, the shard/ layer scales the serving
 * tier *out* instead of up: a ShardPlanner document-partitions the
 * corpus into N disjoint shards (round-robin or hash-by-path over
 * one global traversal, so every shard knows its local-to-global
 * DocId map), each shard is built by its own Engine run and served
 * by its own QueryServer, and a Broker in front scatters every query
 * to all shards and merges the partial answers — boolean DocSets by
 * multiway merge of the disjoint remapped runs, ranked top-K by
 * k-way heap merge. Ranked merging is *bit-identical* to a single
 * unsharded RankedSearcher because the broker aggregates per-shard
 * document frequencies into global weights and sends the same weight
 * vector to every shard; per-shard truncation is lossless under the
 * strict (score desc, doc asc) order. A failed, flooded or injected-
 * faulty shard costs only its own documents: the reply comes back
 * ok with partial = true rather than hanging the client, and only
 * zero answering shards make an error:
 *
 *     ShardPlanOptions plan;
 *     plan.shards = 4;
 *     Broker broker(ShardPlanner::build(fs, "/", plan));
 *     auto reply = broker.submitRanked(Query::parse("report"), 10);
 *     BrokerStats load = broker.stats();  // rollup + per-shard view
 *
 * The rollup merges per-shard latency digests through the mergeable
 * log-bucket LatencyHistogram (util/stats.hh) instead of
 * concatenating raw sample logs.
 *
 * Query execution architecture — every tier, one pipeline:
 *
 *     parse                plan                      execute
 *     Query::parse() ->    QueryPlan::compile() ->   CursorOp tree
 *     (AST, flattened      (canonical, immutable,    (And/Or/Diff/
 *      + deduplicated)      fingerprinted)            Score over any
 *                                                     segment set)
 *
 * Query::parse() canonicalizes the AST as it builds it: nested
 * And/Or chains flatten and structurally duplicate operands drop
 * ("a AND a AND (b AND c)" parses as one 3-way AND). The planner
 * (search/plan.hh) then compiles the AST into the canonical
 * execution form: NOT is pushed down via De Morgan until negation
 * survives only as set difference — Diff(positive, negative) or
 * Diff(*, x) against the universe — conjunctions hoist their
 * negatives into a single anti-join, operands sort into a canonical
 * source-independent order, and AND operands re-order cheapest-df
 * first when the compiling tier supplies term statistics. Every plan
 * carries a stable 64-bit structural fingerprint, computed before
 * df-ordering, so textual variants of the same query ("b AND a",
 * "a AND (b AND a)") share one identity — the key an upcoming
 * result cache will live on.
 *
 * The plan's operator tree (search/operators.hh) is the one
 * execution engine: AndOp feeds plain terms to the bulk SIMD
 * intersection kernel, OrOp k-way heap-merges posting cursors with
 * block-view bulk copies, DiffOp anti-joins (NOT and live-tier
 * tombstones alike), ScoreOp accumulates ranked contributions
 * blockwise. Every serving tier evaluates the same tree over its own
 * segments: Searcher/RankedSearcher over the sealed snapshot,
 * LiveSearcher over base + delta segments (tombstones anti-joined
 * once at the end), MultiSearcher across replicas, and
 * QueryServer/Broker compile a query exactly once at admission and
 * ship the immutable plan — never re-parsed text — through queues,
 * worker pools and shard fan-out (plans are thread-safe to share).
 * The legacy recursive evaluator survives only as the equivalence
 * oracle (tests/test_plan_equivalence) and the query_exec bench
 * baseline in BENCH_micro.json.
 *
 * Performance: the read side is built to run at memory speed. Sealed
 * posting lists live in one arena per segment as bit-packed 128-doc
 * blocks (SIMD-BP128 style; index/posting_block.hh) decoded by
 * AVX2/SSE2 kernels — billions of postings per second on current
 * x86, ~7x the delta+varint codec they replaced, with a bit-exact
 * scalar fallback on other targets (or under -DDSEARCH_FORCE_SCALAR,
 * which CI runs to keep the fallback honest). Query evaluation
 * consumes whole decoded blocks: AND over plain terms runs a
 * vectorized set-intersection kernel blockwise with skip-index
 * galloping (and prefetch) between blocks, ranked scoring
 * accumulates per-block with the same kernel, and term metadata
 * (df, count()) is answered from headers without decoding anything.
 * All of it sits behind the unchanged PostingCursor API, measured
 * and regression-gated in BENCH_micro.json (posting_decode /
 * intersection sections) by scripts/check_bench.py. Builds default
 * to -march=native (DSEARCH_NATIVE_ARCH=OFF for distributable
 * binaries).
 *
 * Failure handling: the library assumes disks lie and queries
 * misbehave. SnapshotStore persists snapshots crash-safely
 * (write-temp + flush + rename, generation rotation, recovery walks
 * back to the newest snapshot that validates); loadSnapshot()
 * rejects corrupt or truncated images without allocating from
 * untrusted headers; QueryServer enforces per-query deadlines,
 * sheds load under overload (OverloadPolicy) and isolates throwing
 * queries as rejected results. The live pipeline extends the same
 * discipline to incremental indexing: a process killed mid-delta,
 * mid-merge or mid-publish restarts via LiveIndex::bootstrap() into
 * the newest valid generation and re-indexes what changed while it
 * was down; a merge that keeps failing *degrades instead of dying* —
 * deltas keep publishing, queries keep answering, and stats()
 * reports degraded with the failure message until a merge lands.
 * util/fault.hh provides deterministic named failure points
 * (armFault()/ScopedFault) wired through disk reads, serialization
 * streams, the snapshot store, query dispatch and every live-pipeline
 * stage (live.scan / live.delta_build / live.merge / live.publish) —
 * and FlakyFs simulates permanently or transiently unreadable files
 * for build-side tests.
 *
 * Deprecation path: constructing IndexGenerator directly and binding
 * searchers to a concrete InvertedIndex (the pre-Engine API) still
 * works for build-side code — BuildResult::sealIndices() bridges into
 * the snapshot world — but Searcher/RankedSearcher/MultiSearcher no
 * longer accept raw indices; seal first via IndexSnapshot::seal().
 * New code should start at Engine and never touch InvertedIndex.
 *
 * Subsystem map (see DESIGN.md for the full inventory):
 *  - core/      Engine facade, the generator, (x, y, z) configuration
 *  - fs/        storage backends and the synthetic corpus
 *  - text/      tokenizer and term extraction
 *  - index/     IndexBackend write side; IndexSnapshot/PostingCursor
 *               read side; joins, persistence, maintenance
 *  - live/      incremental pipeline: re-scan change feed, delta
 *               builds, compaction, crash-safe generations
 *  - search/    the query planner (plan.hh) and cursor-operator
 *               execution layer (operators.hh); boolean, ranked,
 *               multi-segment and live (base + delta + tombstone)
 *               query engines (snapshot consumers only), and the
 *               QueryServer serving loop over them
 *  - shard/     scatter-gather serving tier: ShardPlanner document
 *               partitioning, Broker fan-out/merge over per-shard
 *               QueryServers with global-df ranked scoring
 *  - pipeline/  queues, pools, barriers, work distribution
 *  - sim/       calibrated platform simulator (paper Tables 1-4)
 *  - tune/      configuration auto-tuner
 */

#ifndef DSEARCH_DSEARCH_HH
#define DSEARCH_DSEARCH_HH

#include "core/config.hh"
#include "core/engine.hh"
#include "core/index_generator.hh"
#include "core/stage_times.hh"

#include "fs/corpus.hh"
#include "fs/disk_fs.hh"
#include "fs/file_system.hh"
#include "fs/flaky_fs.hh"
#include "fs/memory_fs.hh"
#include "fs/mutable_memory_fs.hh"
#include "fs/traversal.hh"

#include "text/term_extractor.hh"
#include "text/tokenizer.hh"

#include "index/doc_table.hh"
#include "index/index_backend.hh"
#include "index/index_join.hh"
#include "index/index_snapshot.hh"
#include "index/inverted_index.hh"
#include "index/maintainer.hh"
#include "index/posting_cursor.hh"
#include "index/serialize.hh"
#include "index/shared_index.hh"
#include "index/snapshot_store.hh"

#include "live/live_index.hh"
#include "live/scan_diff.hh"

#include "search/live_searcher.hh"
#include "search/multi_searcher.hh"
#include "search/operators.hh"
#include "search/plan.hh"
#include "search/query.hh"
#include "search/query_server.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"

#include "shard/broker.hh"
#include "shard/shard_planner.hh"

#include "pipeline/barrier.hh"
#include "pipeline/blocking_queue.hh"
#include "pipeline/distribution.hh"
#include "pipeline/thread_pool.hh"

#include "sim/pipeline_sim.hh"
#include "sim/platform.hh"

#include "tune/config_space.hh"
#include "tune/tuner.hh"

#include "util/fault.hh"
#include "util/logging.hh"
#include "util/options.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/timer.hh"

#endif // DSEARCH_DSEARCH_HH
