/**
 * @file
 * Synthetic benchmark corpus generator.
 *
 * The paper's benchmark is a private set of about 51,000 ASCII text
 * files totalling about 869 MB — "many small files and five large text
 * files" extracted from word-processor documents. That corpus is not
 * available, so this module generates a deterministic stand-in with
 * the same statistical shape:
 *
 *  - a configurable file count and total size;
 *  - a handful of large files holding a configurable share of the
 *    bytes, spread evenly through the traversal order;
 *  - log-normally distributed small-file sizes (the classic shape of
 *    document collections);
 *  - natural-language-like text drawn from a Zipf-distributed
 *    vocabulary of pronounceable words, so per-file term duplication
 *    matches what the paper's en-bloc duplicate elimination exploits;
 *  - a directory tree with configurable width, so Stage 1 traversal
 *    does real work.
 *
 * Everything is a pure function of CorpusSpec (including the seed):
 * two runs produce byte-identical corpora on any platform.
 */

#ifndef DSEARCH_FS_CORPUS_HH
#define DSEARCH_FS_CORPUS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fs/memory_fs.hh"

namespace dsearch {

/** Parameters describing a synthetic corpus. */
struct CorpusSpec
{
    /** Number of files, large files included. */
    std::size_t file_count = 6000;

    /** Approximate total size in bytes (met within ~1%). */
    std::uint64_t total_bytes = 48ull << 20;

    /** Number of large files (the paper's corpus has five). */
    std::size_t large_file_count = 5;

    /** Fraction of total bytes held by the large files. */
    double large_file_share = 0.25;

    /** Distinct words available to the text generator. */
    std::size_t vocabulary_size = 40000;

    /** Zipf skew of word frequencies (1.0 = classic Zipf). */
    double zipf_skew = 1.0;

    /** Number of directories in the tree (>= 1). */
    std::size_t directory_count = 128;

    /** Children per directory node in the tree. */
    std::size_t directory_fanout = 8;

    /** Spread of small-file sizes (sigma of the underlying normal). */
    double size_sigma = 1.0;

    /** Master seed; every byte of the corpus derives from it. */
    std::uint64_t seed = 0x5ea4c4;

    /** Virtual root directory the corpus is placed under. */
    std::string root = "/corpus";

    /**
     * The paper's benchmark shape: 51,000 files, 869 MB, five large
     * files. Generating it in memory needs ~1 GB of RAM.
     */
    static CorpusSpec paper();

    /**
     * The paper shape scaled down by @p factor (file count and bytes),
     * used for host-scale benchmarks.
     */
    static CorpusSpec paperScaled(double factor);

    /** A tiny corpus for unit tests (hundreds of files, ~300 KiB). */
    static CorpusSpec tiny(std::uint64_t seed = 1);

    /** Abort via fatal() when the spec is inconsistent. */
    void validate() const;
};

/** What a generation run produced. */
struct CorpusManifest
{
    std::size_t file_count = 0;
    std::uint64_t total_bytes = 0;
    /** Paths of the large files, in index order. */
    std::vector<std::string> large_files;
};

/** Destination for generated files. */
class CorpusWriter
{
  public:
    virtual ~CorpusWriter() = default;

    /** Store one generated file. */
    virtual void addFile(const std::string &path, std::string content)
        = 0;
};

/** CorpusWriter that populates a MemoryFs. */
class MemoryFsWriter : public CorpusWriter
{
  public:
    explicit MemoryFsWriter(MemoryFs &fs) : _fs(fs) {}

    void
    addFile(const std::string &path, std::string content) override
    {
        _fs.addFile(path, std::move(content));
    }

  private:
    MemoryFs &_fs;
};

/**
 * CorpusWriter that materializes files under a host directory, for
 * example runs against the real disk backend.
 */
class DiskWriter : public CorpusWriter
{
  public:
    /** @param host_root Existing or creatable host directory. */
    explicit DiskWriter(std::string host_root);

    void addFile(const std::string &path, std::string content) override;

  private:
    std::string _host_root;
};

/** Deterministic corpus generator; see the file comment. */
class CorpusGenerator
{
  public:
    /** @param spec Validated on construction (fatal on nonsense). */
    explicit CorpusGenerator(CorpusSpec spec);

    /** @return The spec this generator was built from. */
    const CorpusSpec &spec() const { return _spec; }

    /**
     * Generate every file into @p writer.
     *
     * @return Manifest of what was written.
     */
    CorpusManifest generate(CorpusWriter &writer) const;

    /** Generate into a fresh in-memory filesystem. */
    std::unique_ptr<MemoryFs> generateInMemory() const;

    /**
     * The deterministic word for a vocabulary rank: pronounceable,
     * unique per rank, short for frequent ranks (like real language).
     */
    static std::string wordForRank(std::size_t rank);

    /** Virtual directory path of directory index @p dir. */
    std::string directoryPath(std::size_t dir) const;

    /**
     * Per-file target sizes (bytes), index order; exposed for the
     * distribution-strategy benchmarks which need the size skew.
     */
    std::vector<std::uint64_t> fileSizes() const;

  private:
    /** Produce the body of file @p index with target size. */
    std::string makeText(std::size_t index, std::uint64_t target_bytes)
        const;

    /** @return True when @p index is one of the large files. */
    bool isLargeIndex(std::size_t index) const;

    CorpusSpec _spec;
};

} // namespace dsearch

#endif // DSEARCH_FS_CORPUS_HH
