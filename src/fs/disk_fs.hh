/**
 * @file
 * Real-disk filesystem backend.
 *
 * Maps dsearch's '/'-rooted virtual paths onto a host directory via
 * std::filesystem. This is the backend a real desktop-search
 * deployment uses; the examples index actual directories through it.
 */

#ifndef DSEARCH_FS_DISK_FS_HH
#define DSEARCH_FS_DISK_FS_HH

#include <string>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/**
 * Read-only view of a host directory tree.
 *
 * Virtual path "/a/b.txt" resolves to "<root>/a/b.txt". Listings are
 * sorted by name so document IDs are stable across runs.
 */
class DiskFs : public FileSystem
{
  public:
    /**
     * @param root Host directory that backs the virtual root; must
     *             exist (fatal otherwise — user error).
     */
    explicit DiskFs(std::string root);

    /** @return The host root directory. */
    const std::string &root() const { return _root; }

    // FileSystem interface.
    std::vector<DirEntry> list(const std::string &path) const override;
    bool isDirectory(const std::string &path) const override;
    bool isFile(const std::string &path) const override;
    std::uint64_t fileSize(const std::string &path) const override;
    std::uint64_t fileMtime(const std::string &path) const override;
    bool readFile(const std::string &path, std::string &out)
        const override;

  private:
    /** Resolve a virtual path to a host path. */
    std::string resolve(const std::string &path) const;

    std::string _root;
};

} // namespace dsearch

#endif // DSEARCH_FS_DISK_FS_HH
