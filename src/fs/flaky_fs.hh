/**
 * @file
 * Failure-injecting filesystem decorator.
 *
 * Desktop search runs against a live filesystem: files vanish, lose
 * permissions, or fail mid-read while the indexer works. FlakyFs
 * wraps any FileSystem and makes a deterministic subset of files
 * unreadable, so resilience tests can assert exact skip counts and —
 * because the failing set depends only on (path, seed) — that every
 * generator organization skips the *same* files and still produces
 * equivalent indices.
 *
 * Two failure shapes are covered:
 *
 *  - Permanent (default): reads of a failing path always fail — a
 *    deleted file or a revoked permission. Callers must skip.
 *  - Transient (setTransientFailures(n)): reads of a failing path
 *    fail their first n attempts, then succeed — a file busy or
 *    locked mid-write. Callers with bounded retry (the extractor's
 *    read path) recover these without skipping anything.
 */

#ifndef DSEARCH_FS_FLAKY_FS_HH
#define DSEARCH_FS_FLAKY_FS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "fs/file_system.hh"
#include "util/fnv_hash.hh"

namespace dsearch {

/** Read-failure injector; see the file comment. */
class FlakyFs : public FileSystem
{
  public:
    /**
     * @param inner        Decorated filesystem (kept by reference).
     * @param fail_probability Fraction of files whose reads fail.
     * @param seed         Selects which files fail.
     */
    FlakyFs(const FileSystem &inner, double fail_probability,
            std::uint64_t seed = 0xbad)
        : _inner(inner), _fail_probability(fail_probability),
          _seed(seed)
    {
    }

    /** @return True when reads of @p path are set up to fail. */
    bool
    failsOn(const std::string &path) const
    {
        if (_fail_probability <= 0.0)
            return false;
        std::uint64_t h = fnv1a_64(path) ^ _seed;
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < _fail_probability;
    }

    /**
     * Make failures transient: reads of a failing path fail only
     * their first @p attempts tries, then succeed. 0 (the default)
     * restores permanent failures. Per-path attempt counts reset, so
     * the mode can be flipped between build phases.
     */
    void
    setTransientFailures(std::uint64_t attempts)
    {
        std::scoped_lock lock(_mutex);
        _transient_attempts = attempts;
        _attempts.clear();
    }

    /** @return Failed tries per failing path (0 = failures are
     *          permanent). */
    std::uint64_t
    transientFailures() const
    {
        std::scoped_lock lock(_mutex);
        return _transient_attempts;
    }

    /** @return Number of reads failed so far (across threads). */
    std::uint64_t
    failedReads() const
    {
        return _failed.load(std::memory_order_relaxed);
    }

    // FileSystem interface: metadata passes through (the files are
    // visible — they just cannot be read, like a permission change
    // between Stage 1 and Stage 2).
    std::vector<DirEntry>
    list(const std::string &path) const override
    {
        return _inner.list(path);
    }

    bool
    isDirectory(const std::string &path) const override
    {
        return _inner.isDirectory(path);
    }

    bool
    isFile(const std::string &path) const override
    {
        return _inner.isFile(path);
    }

    std::uint64_t
    fileSize(const std::string &path) const override
    {
        return _inner.fileSize(path);
    }

    std::uint64_t
    fileMtime(const std::string &path) const override
    {
        return _inner.fileMtime(path);
    }

    bool
    readFile(const std::string &path, std::string &out) const override
    {
        if (failsOn(path) && !transientExhausted(path)) {
            _failed.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        return _inner.readFile(path, out);
    }

  private:
    /**
     * Count one read attempt against @p path's transient budget.
     *
     * @return True when failures are transient and this path has
     *         already burned through them — the read should now
     *         succeed. Permanent mode always returns false.
     */
    bool
    transientExhausted(const std::string &path) const
    {
        std::scoped_lock lock(_mutex);
        if (_transient_attempts == 0)
            return false; // permanent failures
        std::uint64_t &attempts = _attempts[path];
        if (attempts >= _transient_attempts)
            return true;
        ++attempts;
        return false;
    }

    const FileSystem &_inner;
    double _fail_probability;
    std::uint64_t _seed;
    mutable std::atomic<std::uint64_t> _failed{0};

    // Transient mode state: failing tries allowed per path, and how
    // many each path has consumed. Guarded for concurrent extractors.
    mutable std::mutex _mutex;
    std::uint64_t _transient_attempts = 0;
    mutable std::unordered_map<std::string, std::uint64_t> _attempts;
};

} // namespace dsearch

#endif // DSEARCH_FS_FLAKY_FS_HH
