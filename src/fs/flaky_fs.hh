/**
 * @file
 * Failure-injecting filesystem decorator.
 *
 * Desktop search runs against a live filesystem: files vanish, lose
 * permissions, or fail mid-read while the indexer works. FlakyFs
 * wraps any FileSystem and makes a deterministic subset of files
 * unreadable, so resilience tests can assert exact skip counts and —
 * because the failing set depends only on (path, seed) — that every
 * generator organization skips the *same* files and still produces
 * equivalent indices.
 */

#ifndef DSEARCH_FS_FLAKY_FS_HH
#define DSEARCH_FS_FLAKY_FS_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "fs/file_system.hh"
#include "util/fnv_hash.hh"

namespace dsearch {

/** Read-failure injector; see the file comment. */
class FlakyFs : public FileSystem
{
  public:
    /**
     * @param inner        Decorated filesystem (kept by reference).
     * @param fail_probability Fraction of files whose reads fail.
     * @param seed         Selects which files fail.
     */
    FlakyFs(const FileSystem &inner, double fail_probability,
            std::uint64_t seed = 0xbad)
        : _inner(inner), _fail_probability(fail_probability),
          _seed(seed)
    {
    }

    /** @return True when reads of @p path are set up to fail. */
    bool
    failsOn(const std::string &path) const
    {
        if (_fail_probability <= 0.0)
            return false;
        std::uint64_t h = fnv1a_64(path) ^ _seed;
        double u = static_cast<double>(h >> 11) * 0x1.0p-53;
        return u < _fail_probability;
    }

    /** @return Number of reads failed so far (across threads). */
    std::uint64_t
    failedReads() const
    {
        return _failed.load(std::memory_order_relaxed);
    }

    // FileSystem interface: metadata passes through (the files are
    // visible — they just cannot be read, like a permission change
    // between Stage 1 and Stage 2).
    std::vector<DirEntry>
    list(const std::string &path) const override
    {
        return _inner.list(path);
    }

    bool
    isDirectory(const std::string &path) const override
    {
        return _inner.isDirectory(path);
    }

    bool
    isFile(const std::string &path) const override
    {
        return _inner.isFile(path);
    }

    std::uint64_t
    fileSize(const std::string &path) const override
    {
        return _inner.fileSize(path);
    }

    bool
    readFile(const std::string &path, std::string &out) const override
    {
        if (failsOn(path)) {
            _failed.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        return _inner.readFile(path, out);
    }

  private:
    const FileSystem &_inner;
    double _fail_probability;
    std::uint64_t _seed;
    mutable std::atomic<std::uint64_t> _failed{0};
};

} // namespace dsearch

#endif // DSEARCH_FS_FLAKY_FS_HH
