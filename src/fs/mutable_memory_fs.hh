/**
 * @file
 * Thread-safe mutable in-memory filesystem.
 *
 * MemoryFs is deliberately lock-free and immutable after population —
 * that keeps the build benchmarks honest. The live-index pipeline
 * needs the opposite: a corpus that a writer thread mutates *while*
 * scanner and query threads read it, to model a user's documents
 * changing under a running desktop-search service. MutableMemoryFs
 * provides that: addFile/removeFile are safe against concurrent
 * FileSystem reads, every write bumps a logical mtime clock (so the
 * live/scan_diff change feed sees same-size rewrites), and listings
 * stay deterministic (lexicographic) so DocId assignment is stable.
 *
 * The implementation is a flat ordered map of absolute file paths —
 * directories are implicit (a directory exists iff some file lives
 * under it), which keeps removal trivial and makes the whole
 * structure one shared_mutex away from thread safety. list() derives
 * directory entries with an ordered prefix scan. This favours
 * correctness under churn over raw read speed; steady-state
 * benchmarks should keep using MemoryFs.
 */

#ifndef DSEARCH_FS_MUTABLE_MEMORY_FS_HH
#define DSEARCH_FS_MUTABLE_MEMORY_FS_HH

#include <cstdint>
#include <map>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/** Concurrently mutable in-memory filesystem; see the file comment. */
class MutableMemoryFs : public FileSystem
{
  public:
    MutableMemoryFs() = default;

    MutableMemoryFs(const MutableMemoryFs &) = delete;
    MutableMemoryFs &operator=(const MutableMemoryFs &) = delete;

    /**
     * Create or replace a file. Parent directories spring into
     * existence implicitly. Safe against concurrent reads.
     *
     * @param path    Absolute '/'-separated path ("/a/b.txt").
     * @param content File body (moved in).
     */
    void addFile(const std::string &path, std::string content);

    /**
     * Remove a file. No-op when @p path is not a file. Directories
     * left empty vanish implicitly.
     *
     * @return True when a file was removed.
     */
    bool removeFile(const std::string &path);

    /** @return Number of regular files stored. */
    std::size_t fileCount() const;

    /** @return Value of the logical write clock (writes so far). */
    std::uint64_t clock() const;

    // FileSystem interface.
    std::vector<DirEntry> list(const std::string &path) const override;
    bool isDirectory(const std::string &path) const override;
    bool isFile(const std::string &path) const override;
    std::uint64_t fileSize(const std::string &path) const override;
    std::uint64_t fileMtime(const std::string &path) const override;
    bool readFile(const std::string &path, std::string &out)
        const override;

  private:
    struct File
    {
        std::string content;
        std::uint64_t mtime = 0;
    };

    /** Normalize to a leading-'/' path with no trailing '/'. */
    static std::string normalize(const std::string &path);

    /** Shared-lock helper: directory test on the normalized path. */
    bool isDirectoryLocked(const std::string &norm) const;

    mutable std::shared_mutex _mutex;
    std::map<std::string, File> _files; ///< Keyed by normalized path.
    std::uint64_t _clock = 0;           ///< Logical mtime source.
};

} // namespace dsearch

#endif // DSEARCH_FS_MUTABLE_MEMORY_FS_HH
