/**
 * @file
 * Storage abstraction for the index generator.
 *
 * The paper's generator reads a real directory tree; the reproduction
 * also needs a deterministic in-memory corpus for tests, benchmarks
 * and the platform simulator. Both storage backends implement this
 * interface, so Stage 1 (traversal) and Stage 2 (term extraction) are
 * storage agnostic.
 *
 * Implementations must support concurrent read-only use: the parallel
 * generator reads files from many extractor threads at once.
 */

#ifndef DSEARCH_FS_FILE_SYSTEM_HH
#define DSEARCH_FS_FILE_SYSTEM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dsearch {

/** Document identifier, assigned during Stage 1 traversal. */
using DocId = std::uint32_t;

/** Sentinel for "no document". */
inline constexpr DocId invalid_doc = static_cast<DocId>(-1);

/** One entry of a directory listing. */
struct DirEntry
{
    std::string name;    ///< Leaf name, no separators.
    bool is_dir = false; ///< True for subdirectories.
};

/**
 * Abstract read-only filesystem.
 *
 * Paths are '/'-separated and absolute within the filesystem (the
 * disk implementation maps them onto a host root directory).
 */
class FileSystem
{
  public:
    virtual ~FileSystem() = default;

    /**
     * List a directory.
     *
     * Entries are returned in a deterministic (lexicographic) order so
     * document IDs are stable across runs.
     *
     * @param path Directory to list.
     * @return Entries; empty when the path is missing or not a
     *         directory.
     */
    virtual std::vector<DirEntry> list(const std::string &path) const
        = 0;

    /** @return True when @p path names an existing directory. */
    virtual bool isDirectory(const std::string &path) const = 0;

    /** @return True when @p path names an existing regular file. */
    virtual bool isFile(const std::string &path) const = 0;

    /**
     * @return Size of a regular file in bytes; 0 when missing.
     */
    virtual std::uint64_t fileSize(const std::string &path) const = 0;

    /**
     * Modification stamp of a regular file; 0 when missing or when
     * the backend tracks none (the default). The only contract is
     * monotonicity per path: a later modification yields a larger
     * stamp. Disk backends report host mtime; in-memory backends a
     * logical write counter. The live-index change feed
     * (live/scan_diff.hh) compares stamps between re-scans,
     * ugrep-indexer style, to catch same-size rewrites that
     * fileSize() alone would miss.
     */
    virtual std::uint64_t
    fileMtime(const std::string &path) const
    {
        (void)path;
        return 0;
    }

    /**
     * Read an entire file.
     *
     * @param path File to read.
     * @param out  Receives the content (replaced, not appended).
     * @return True on success; false when the file is missing or
     *         unreadable (the generator skips such files with a
     *         warning, matching desktop-search behaviour on files that
     *         vanish mid-indexing).
     */
    virtual bool readFile(const std::string &path, std::string &out)
        const = 0;
};

/** Join two '/'-separated path fragments. */
inline std::string
joinPath(const std::string &dir, const std::string &leaf)
{
    if (dir.empty() || dir == "/")
        return "/" + leaf;
    return dir + "/" + leaf;
}

} // namespace dsearch

#endif // DSEARCH_FS_FILE_SYSTEM_HH
