#include "fs/traversal.hh"

#include "util/logging.hh"

namespace dsearch {

namespace {

void
walk(const FileSystem &fs, const std::string &dir,
     const std::function<void(const std::string &, std::uint64_t)>
         &visit)
{
    for (const DirEntry &entry : fs.list(dir)) {
        std::string path = joinPath(dir, entry.name);
        if (entry.is_dir)
            walk(fs, path, visit);
        else
            visit(path, fs.fileSize(path));
    }
}

} // namespace

void
traverseFiles(const FileSystem &fs, const std::string &root,
              const std::function<void(const std::string &,
                                       std::uint64_t)> &visit)
{
    if (fs.isFile(root)) {
        visit(root, fs.fileSize(root));
        return;
    }
    if (!fs.isDirectory(root)) {
        warn("traverseFiles: root '" + root + "' does not exist");
        return;
    }
    walk(fs, root, visit);
}

FileList
generateFilenames(const FileSystem &fs, const std::string &root)
{
    FileList files;
    traverseFiles(fs, root,
                  [&files](const std::string &path, std::uint64_t size) {
                      FileEntry entry;
                      entry.doc = static_cast<DocId>(files.size());
                      entry.path = path;
                      entry.size = size;
                      files.push_back(std::move(entry));
                  });
    return files;
}

} // namespace dsearch
