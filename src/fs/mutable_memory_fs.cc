#include "fs/mutable_memory_fs.hh"

#include <mutex>

#include "util/logging.hh"

namespace dsearch {

std::string
MutableMemoryFs::normalize(const std::string &path)
{
    std::string norm;
    norm.reserve(path.size() + 1);
    for (char c : path) {
        if (c == '/' && !norm.empty() && norm.back() == '/')
            continue;
        norm.push_back(c);
    }
    if (norm.empty() || norm.front() != '/')
        norm.insert(norm.begin(), '/');
    while (norm.size() > 1 && norm.back() == '/')
        norm.pop_back();
    return norm;
}

void
MutableMemoryFs::addFile(const std::string &path, std::string content)
{
    std::string norm = normalize(path);
    if (norm == "/")
        panic("MutableMemoryFs::addFile: empty path");
    std::unique_lock lock(_mutex);
    File &file = _files[norm];
    file.content = std::move(content);
    file.mtime = ++_clock;
}

bool
MutableMemoryFs::removeFile(const std::string &path)
{
    std::string norm = normalize(path);
    std::unique_lock lock(_mutex);
    return _files.erase(norm) > 0;
}

std::size_t
MutableMemoryFs::fileCount() const
{
    std::shared_lock lock(_mutex);
    return _files.size();
}

std::uint64_t
MutableMemoryFs::clock() const
{
    std::shared_lock lock(_mutex);
    return _clock;
}

bool
MutableMemoryFs::isDirectoryLocked(const std::string &norm) const
{
    if (norm == "/")
        return true;
    // A directory exists iff some file path extends it past a '/'.
    std::string prefix = norm + "/";
    auto it = _files.lower_bound(prefix);
    return it != _files.end()
        && it->first.compare(0, prefix.size(), prefix) == 0;
}

std::vector<DirEntry>
MutableMemoryFs::list(const std::string &path) const
{
    std::vector<DirEntry> entries;
    std::string norm = normalize(path);
    std::string prefix = norm == "/" ? "/" : norm + "/";

    std::shared_lock lock(_mutex);
    // Files are kept sorted, so one ordered scan over the prefix range
    // yields both files (exact children) and implied subdirectories
    // (longer paths under the prefix) in lexicographic order. Each
    // subdirectory appears as a run of consecutive keys; skip to the
    // end of the run after emitting it once.
    auto it = _files.lower_bound(prefix);
    while (it != _files.end()
           && it->first.compare(0, prefix.size(), prefix) == 0) {
        std::string_view rest(it->first);
        rest.remove_prefix(prefix.size());
        std::size_t slash = rest.find('/');
        if (slash == std::string_view::npos) {
            entries.push_back(DirEntry{std::string(rest), false});
            ++it;
        } else {
            std::string name(rest.substr(0, slash));
            entries.push_back(DirEntry{name, true});
            // Skip past every key inside this subdirectory: they all
            // start with prefix+name+"/", and '0' is '/'+1, so
            // prefix+name+"0" upper-bounds the run.
            it = _files.lower_bound(prefix + name + "0");
        }
    }
    return entries;
}

bool
MutableMemoryFs::isDirectory(const std::string &path) const
{
    std::string norm = normalize(path);
    std::shared_lock lock(_mutex);
    return isDirectoryLocked(norm);
}

bool
MutableMemoryFs::isFile(const std::string &path) const
{
    std::string norm = normalize(path);
    std::shared_lock lock(_mutex);
    return _files.count(norm) > 0;
}

std::uint64_t
MutableMemoryFs::fileSize(const std::string &path) const
{
    std::string norm = normalize(path);
    std::shared_lock lock(_mutex);
    auto it = _files.find(norm);
    return it == _files.end() ? 0 : it->second.content.size();
}

std::uint64_t
MutableMemoryFs::fileMtime(const std::string &path) const
{
    std::string norm = normalize(path);
    std::shared_lock lock(_mutex);
    auto it = _files.find(norm);
    return it == _files.end() ? 0 : it->second.mtime;
}

bool
MutableMemoryFs::readFile(const std::string &path, std::string &out)
    const
{
    std::string norm = normalize(path);
    std::shared_lock lock(_mutex);
    auto it = _files.find(norm);
    if (it == _files.end())
        return false;
    out = it->second.content;
    return true;
}

} // namespace dsearch
