/**
 * @file
 * In-memory filesystem.
 *
 * Serves the synthetic benchmark corpus without touching the disk, so
 * host benchmarks measure the indexing pipeline rather than the build
 * machine's storage stack, and unit tests stay hermetic. After
 * population it is immutable and safe for concurrent reads.
 */

#ifndef DSEARCH_FS_MEMORY_FS_HH
#define DSEARCH_FS_MEMORY_FS_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/**
 * Tree-structured in-memory filesystem.
 *
 * Mutation (addFile/mkdirs) is not thread safe; do all population
 * before handing the filesystem to the parallel generator.
 */
class MemoryFs : public FileSystem
{
  public:
    MemoryFs();
    ~MemoryFs() override;

    MemoryFs(const MemoryFs &) = delete;
    MemoryFs &operator=(const MemoryFs &) = delete;

    /**
     * Create a file, making parent directories as needed.
     *
     * Replaces any existing file at @p path.
     *
     * @param path    Absolute '/'-separated path.
     * @param content File body (moved in).
     */
    void addFile(const std::string &path, std::string content);

    /** Create a directory chain (no-op for existing directories). */
    void mkdirs(const std::string &path);

    /** @return Number of regular files stored. */
    std::size_t fileCount() const { return _file_count; }

    /** @return Total bytes across all files. */
    std::uint64_t totalBytes() const { return _total_bytes; }

    // FileSystem interface.
    std::vector<DirEntry> list(const std::string &path) const override;
    bool isDirectory(const std::string &path) const override;
    bool isFile(const std::string &path) const override;
    std::uint64_t fileSize(const std::string &path) const override;
    std::uint64_t fileMtime(const std::string &path) const override;
    bool readFile(const std::string &path, std::string &out)
        const override;

  private:
    struct Node;

    /** @return Node at @p path, or nullptr. */
    const Node *lookup(const std::string &path) const;

    /** @return Directory node at @p path, creating missing parents. */
    Node *makeDirs(const std::string &path);

    std::unique_ptr<Node> _root;
    std::size_t _file_count = 0;
    std::uint64_t _total_bytes = 0;
    std::uint64_t _clock = 0; ///< Logical mtime, bumped per addFile.
};

} // namespace dsearch

#endif // DSEARCH_FS_MEMORY_FS_HH
