#include "fs/corpus.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/zipf.hh"

namespace dsearch {

CorpusSpec
CorpusSpec::paper()
{
    CorpusSpec spec;
    spec.file_count = 51000;
    spec.total_bytes = 869ull << 20;
    spec.large_file_count = 5;
    spec.large_file_share = 0.30;
    spec.vocabulary_size = 120000;
    spec.zipf_skew = 1.0;
    spec.directory_count = 1200;
    spec.directory_fanout = 12;
    return spec;
}

CorpusSpec
CorpusSpec::paperScaled(double factor)
{
    if (factor <= 0.0 || factor > 1.0)
        fatal("CorpusSpec::paperScaled: factor must be in (0, 1]");
    CorpusSpec spec = paper();
    spec.file_count = std::max<std::size_t>(
        spec.large_file_count + 1,
        static_cast<std::size_t>(
            static_cast<double>(spec.file_count) * factor));
    spec.total_bytes = std::max<std::uint64_t>(
        1 << 20,
        static_cast<std::uint64_t>(
            static_cast<double>(spec.total_bytes) * factor));
    spec.directory_count = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                static_cast<double>(spec.directory_count) * factor));
    spec.vocabulary_size = std::max<std::size_t>(
        5000, static_cast<std::size_t>(
                  static_cast<double>(spec.vocabulary_size) * factor));
    return spec;
}

CorpusSpec
CorpusSpec::tiny(std::uint64_t seed)
{
    CorpusSpec spec;
    spec.file_count = 240;
    spec.total_bytes = 320u << 10;
    spec.large_file_count = 2;
    spec.large_file_share = 0.25;
    spec.vocabulary_size = 2000;
    spec.directory_count = 12;
    spec.directory_fanout = 4;
    spec.seed = seed;
    return spec;
}

void
CorpusSpec::validate() const
{
    if (file_count == 0)
        fatal("CorpusSpec: file_count must be >= 1");
    if (large_file_count >= file_count)
        fatal("CorpusSpec: need more files than large files");
    if (large_file_share < 0.0 || large_file_share >= 1.0)
        fatal("CorpusSpec: large_file_share must be in [0, 1)");
    if (large_file_count == 0 && large_file_share > 0.0)
        fatal("CorpusSpec: large_file_share > 0 needs large files");
    if (vocabulary_size == 0)
        fatal("CorpusSpec: vocabulary_size must be >= 1");
    if (directory_count == 0 || directory_fanout == 0)
        fatal("CorpusSpec: directory tree must be non-empty");
    if (zipf_skew < 0.0)
        fatal("CorpusSpec: zipf_skew must be >= 0");
    if (root.empty() || root.front() != '/')
        fatal("CorpusSpec: root must be an absolute virtual path");
}

DiskWriter::DiskWriter(std::string host_root)
    : _host_root(std::move(host_root))
{
    std::error_code ec;
    std::filesystem::create_directories(_host_root, ec);
    if (ec)
        fatal("DiskWriter: cannot create '" + _host_root + "': "
              + ec.message());
}

void
DiskWriter::addFile(const std::string &path, std::string content)
{
    std::filesystem::path host = _host_root + path;
    std::error_code ec;
    std::filesystem::create_directories(host.parent_path(), ec);
    if (ec)
        fatal("DiskWriter: cannot create directories for '"
              + host.string() + "': " + ec.message());
    std::ofstream out(host, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("DiskWriter: cannot open '" + host.string() + "'");
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    if (!out)
        fatal("DiskWriter: short write to '" + host.string() + "'");
}

CorpusGenerator::CorpusGenerator(CorpusSpec spec) : _spec(std::move(spec))
{
    _spec.validate();
}

std::string
CorpusGenerator::wordForRank(std::size_t rank)
{
    // Bijective numeration over consonant-vowel syllables: words are
    // pronounceable, unique per rank, and short for frequent ranks.
    static constexpr char consonants[] = "bcdfghjklmnprstvz";
    static constexpr char vowels[] = "aeiou";
    constexpr std::size_t n_cons = sizeof(consonants) - 1;
    constexpr std::size_t n_vow = sizeof(vowels) - 1;
    constexpr std::size_t base = n_cons * n_vow;

    std::string word;
    std::size_t n = rank + 1;
    while (n > 0) {
        n -= 1;
        std::size_t syllable = n % base;
        word.insert(word.begin(), vowels[syllable % n_vow]);
        word.insert(word.begin(), consonants[syllable / n_vow]);
        n /= base;
    }
    return word;
}

std::string
CorpusGenerator::directoryPath(std::size_t dir) const
{
    if (dir == 0)
        return _spec.root;
    std::size_t parent = (dir - 1) / _spec.directory_fanout;
    char name[32];
    std::snprintf(name, sizeof(name), "d%04zu", dir);
    return joinPath(directoryPath(parent), name);
}

bool
CorpusGenerator::isLargeIndex(std::size_t index) const
{
    // Large files sit at evenly spaced interior positions so every
    // round-robin shard sees at most a few of them.
    for (std::size_t j = 0; j < _spec.large_file_count; ++j) {
        std::size_t pos =
            (j + 1) * _spec.file_count / (_spec.large_file_count + 1);
        if (index == pos)
            return true;
    }
    return false;
}

std::vector<std::uint64_t>
CorpusGenerator::fileSizes() const
{
    const std::size_t n = _spec.file_count;
    const std::size_t n_large = _spec.large_file_count;
    const double large_total =
        static_cast<double>(_spec.total_bytes) * _spec.large_file_share;
    const double small_total =
        static_cast<double>(_spec.total_bytes) - large_total;
    const std::size_t n_small = n - n_large;

    // Log-normal small-file sizes, then a deterministic rescale so the
    // sum hits the target.
    Rng rng(_spec.seed ^ 0x51e5u);
    std::vector<double> raw(n, 0.0);
    double raw_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (isLargeIndex(i))
            continue;
        // Box-Muller standard normal.
        double u1 = rng.nextDouble();
        double u2 = rng.nextDouble();
        while (u1 <= 0.0)
            u1 = rng.nextDouble();
        double z = std::sqrt(-2.0 * std::log(u1))
                   * std::cos(6.28318530717958648 * u2);
        raw[i] = std::exp(_spec.size_sigma * z);
        raw_sum += raw[i];
    }

    std::vector<std::uint64_t> sizes(n, 0);
    const double scale = raw_sum > 0.0 ? small_total / raw_sum : 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        if (isLargeIndex(i)) {
            sizes[i] = static_cast<std::uint64_t>(
                large_total / static_cast<double>(n_large));
        } else {
            // Clamp so every file holds at least a few terms.
            sizes[i] = std::max<std::uint64_t>(
                64, static_cast<std::uint64_t>(raw[i] * scale));
        }
    }
    (void)n_small;
    return sizes;
}

std::string
CorpusGenerator::makeText(std::size_t index,
                          std::uint64_t target_bytes) const
{
    // Per-file generator stream: file content is independent of the
    // order files are generated in.
    Rng rng(_spec.seed ^ (0x9e3779b97f4a7c15ull * (index + 1)));
    ZipfDistribution zipf(_spec.vocabulary_size, _spec.zipf_skew);

    std::string text;
    text.reserve(target_bytes + 16);
    std::size_t words_on_line = 0;
    while (text.size() < target_bytes) {
        if (rng.bernoulli(0.02)) {
            // Occasional numeric token; desktop documents contain
            // dates, versions and page numbers.
            char num[16];
            std::snprintf(num, sizeof(num), "%llu",
                          static_cast<unsigned long long>(
                              rng.uniform(0, 9999)));
            text += num;
        } else {
            text += wordForRank(zipf.sample(rng));
        }
        if (++words_on_line >= 12) {
            text += '\n';
            words_on_line = 0;
        } else {
            text += ' ';
        }
    }
    if (text.empty() || text.back() != '\n')
        text += '\n';
    return text;
}

CorpusManifest
CorpusGenerator::generate(CorpusWriter &writer) const
{
    CorpusManifest manifest;
    std::vector<std::uint64_t> sizes = fileSizes();

    std::size_t large_seen = 0;
    for (std::size_t i = 0; i < _spec.file_count; ++i) {
        std::uint64_t dir_state = _spec.seed + 0xd1c7u + i;
        std::size_t dir = static_cast<std::size_t>(
            splitMix64(dir_state) % _spec.directory_count);

        char name[32];
        bool large = isLargeIndex(i);
        if (large)
            std::snprintf(name, sizeof(name), "large%02zu.txt",
                          large_seen++);
        else
            std::snprintf(name, sizeof(name), "doc%06zu.txt", i);

        std::string path = joinPath(directoryPath(dir), name);
        std::string content = makeText(i, sizes[i]);
        manifest.total_bytes += content.size();
        ++manifest.file_count;
        if (large)
            manifest.large_files.push_back(path);
        writer.addFile(path, std::move(content));
    }
    return manifest;
}

std::unique_ptr<MemoryFs>
CorpusGenerator::generateInMemory() const
{
    auto fs = std::make_unique<MemoryFs>();
    MemoryFsWriter writer(*fs);
    generate(writer);
    return fs;
}

} // namespace dsearch
