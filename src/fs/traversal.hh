/**
 * @file
 * Stage 1 of the index generator: filename generation.
 *
 * The paper measured Stage 1 at 2-5% of total runtime and therefore
 * runs it on a single thread to completion, producing the full set of
 * filenames in main memory before term extraction starts (running it
 * concurrently cost a pair of lock operations per filename and was
 * "highly inefficient"). This module implements that single-threaded
 * traversal; the concurrent variant used by ablation E6 lives in the
 * core generator where the queue machinery is available.
 */

#ifndef DSEARCH_FS_TRAVERSAL_HH
#define DSEARCH_FS_TRAVERSAL_HH

#include <functional>
#include <string>
#include <vector>

#include "fs/file_system.hh"

namespace dsearch {

/** One file discovered by Stage 1. */
struct FileEntry
{
    DocId doc = invalid_doc;  ///< Assigned in traversal order.
    std::string path;         ///< Virtual absolute path.
    std::uint64_t size = 0;   ///< Size in bytes at traversal time.
};

/** The complete Stage 1 output. */
using FileList = std::vector<FileEntry>;

/**
 * Depth-first traversal of every regular file under @p root.
 *
 * Directories are visited in the deterministic order produced by
 * FileSystem::list(). Unreadable directories are skipped (the backend
 * warns).
 *
 * @param fs    Filesystem to walk.
 * @param root  Directory (or single file) to start from.
 * @param visit Called once per regular file with (path, size).
 */
void traverseFiles(const FileSystem &fs, const std::string &root,
                   const std::function<void(const std::string &,
                                            std::uint64_t)> &visit);

/**
 * Stage 1: generate the filename list with document IDs assigned in
 * traversal order.
 *
 * @param fs   Filesystem to walk.
 * @param root Directory to index.
 * @return All files under @p root; empty when the root is missing.
 */
FileList generateFilenames(const FileSystem &fs,
                           const std::string &root);

} // namespace dsearch

#endif // DSEARCH_FS_TRAVERSAL_HH
