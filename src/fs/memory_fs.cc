#include "fs/memory_fs.hh"

#include "util/logging.hh"
#include "util/string_util.hh"

namespace dsearch {

/**
 * Filesystem node: either a directory (children ordered by name for
 * deterministic listings) or a regular file with inline content.
 */
struct MemoryFs::Node
{
    bool is_dir = true;
    std::string content;
    std::uint64_t mtime = 0;
    std::map<std::string, std::unique_ptr<Node>> children;
};

MemoryFs::MemoryFs() : _root(std::make_unique<Node>()) {}

MemoryFs::~MemoryFs() = default;

const MemoryFs::Node *
MemoryFs::lookup(const std::string &path) const
{
    const Node *node = _root.get();
    for (const std::string &part : split(path, '/')) {
        if (!node->is_dir)
            return nullptr;
        auto it = node->children.find(part);
        if (it == node->children.end())
            return nullptr;
        node = it->second.get();
    }
    return node;
}

MemoryFs::Node *
MemoryFs::makeDirs(const std::string &path)
{
    Node *node = _root.get();
    for (const std::string &part : split(path, '/')) {
        if (!node->is_dir)
            panic("MemoryFs: file in the middle of path '" + path + "'");
        auto it = node->children.find(part);
        if (it == node->children.end()) {
            it = node->children
                     .emplace(part, std::make_unique<Node>())
                     .first;
        }
        node = it->second.get();
    }
    if (!node->is_dir)
        panic("MemoryFs: '" + path + "' exists as a file");
    return node;
}

void
MemoryFs::addFile(const std::string &path, std::string content)
{
    std::vector<std::string> parts = split(path, '/');
    if (parts.empty())
        panic("MemoryFs::addFile: empty path");
    std::string leaf = parts.back();
    std::string dir = "/";
    for (std::size_t i = 0; i + 1 < parts.size(); ++i)
        dir = joinPath(dir, parts[i]);

    Node *parent = makeDirs(dir);
    auto it = parent->children.find(leaf);
    if (it != parent->children.end()) {
        if (it->second->is_dir)
            panic("MemoryFs: '" + path + "' exists as a directory");
        _total_bytes -= it->second->content.size();
        --_file_count;
    } else {
        it = parent->children.emplace(leaf, std::make_unique<Node>())
                 .first;
    }
    Node *file = it->second.get();
    file->is_dir = false;
    _total_bytes += content.size();
    file->content = std::move(content);
    file->mtime = ++_clock;
    ++_file_count;
}

void
MemoryFs::mkdirs(const std::string &path)
{
    makeDirs(path);
}

std::vector<DirEntry>
MemoryFs::list(const std::string &path) const
{
    std::vector<DirEntry> entries;
    const Node *node = lookup(path);
    if (node == nullptr || !node->is_dir)
        return entries;
    entries.reserve(node->children.size());
    for (const auto &[name, child] : node->children)
        entries.push_back(DirEntry{name, child->is_dir});
    return entries;
}

bool
MemoryFs::isDirectory(const std::string &path) const
{
    const Node *node = lookup(path);
    return node != nullptr && node->is_dir;
}

bool
MemoryFs::isFile(const std::string &path) const
{
    const Node *node = lookup(path);
    return node != nullptr && !node->is_dir;
}

std::uint64_t
MemoryFs::fileSize(const std::string &path) const
{
    const Node *node = lookup(path);
    if (node == nullptr || node->is_dir)
        return 0;
    return node->content.size();
}

std::uint64_t
MemoryFs::fileMtime(const std::string &path) const
{
    const Node *node = lookup(path);
    if (node == nullptr || node->is_dir)
        return 0;
    return node->mtime;
}

bool
MemoryFs::readFile(const std::string &path, std::string &out) const
{
    const Node *node = lookup(path);
    if (node == nullptr || node->is_dir)
        return false;
    out = node->content;
    return true;
}

} // namespace dsearch
