#include "fs/disk_fs.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {

namespace stdfs = std::filesystem;

DiskFs::DiskFs(std::string root) : _root(std::move(root))
{
    std::error_code ec;
    if (!stdfs::is_directory(_root, ec))
        fatal("DiskFs: '" + _root + "' is not a directory");
    // Normalize away a trailing separator.
    while (_root.size() > 1 && _root.back() == '/')
        _root.pop_back();
}

std::string
DiskFs::resolve(const std::string &path) const
{
    if (path.empty() || path == "/")
        return _root;
    if (path.front() == '/')
        return _root + path;
    return _root + "/" + path;
}

std::vector<DirEntry>
DiskFs::list(const std::string &path) const
{
    std::vector<DirEntry> entries;
    std::error_code ec;
    stdfs::directory_iterator it(resolve(path), ec);
    if (ec) {
        warn("DiskFs: cannot list '" + path + "': " + ec.message());
        return entries;
    }
    for (const stdfs::directory_entry &de : it) {
        DirEntry entry;
        entry.name = de.path().filename().string();
        entry.is_dir = de.is_directory(ec) && !ec;
        // Only regular files and directories take part in indexing;
        // sockets, fifos and devices are skipped.
        if (entry.is_dir || (de.is_regular_file(ec) && !ec))
            entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const DirEntry &a, const DirEntry &b) {
                  return a.name < b.name;
              });
    return entries;
}

bool
DiskFs::isDirectory(const std::string &path) const
{
    std::error_code ec;
    return stdfs::is_directory(resolve(path), ec) && !ec;
}

bool
DiskFs::isFile(const std::string &path) const
{
    std::error_code ec;
    return stdfs::is_regular_file(resolve(path), ec) && !ec;
}

std::uint64_t
DiskFs::fileSize(const std::string &path) const
{
    std::error_code ec;
    std::uintmax_t size = stdfs::file_size(resolve(path), ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

std::uint64_t
DiskFs::fileMtime(const std::string &path) const
{
    std::error_code ec;
    stdfs::file_time_type t =
        stdfs::last_write_time(resolve(path), ec);
    if (ec)
        return 0;
    auto ticks = t.time_since_epoch().count();
    // Host epochs can predate the clock epoch; the scan diff only
    // compares stamps for equality/order, so clamp instead of wrap.
    return ticks <= 0 ? 1 : static_cast<std::uint64_t>(ticks);
}

bool
DiskFs::readFile(const std::string &path, std::string &out) const
{
    // Injectable I/O failure (util/fault.hh): a live filesystem loses
    // files and permissions mid-run; tests arm this to prove callers
    // skip or retry instead of crashing.
    if (faultFires("disk_fs.read"))
        return false;
    std::ifstream in(resolve(path), std::ios::binary);
    if (!in)
        return false;
    in.seekg(0, std::ios::end);
    std::streampos size = in.tellg();
    if (size < 0)
        return false;
    out.resize(static_cast<std::size_t>(size));
    in.seekg(0, std::ios::beg);
    in.read(out.data(), size);
    return static_cast<bool>(in) || size == 0;
}

} // namespace dsearch
