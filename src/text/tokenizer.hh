/**
 * @file
 * ASCII term scanner (the core of Stage 2).
 *
 * The paper indexes plain ASCII text ("handling complex word processor
 * formats directly in the term extractor would have been too
 * distracting"), so terms are maximal runs of letters and digits,
 * case-folded to lower case. The scanner is allocation-free: callers
 * receive a string_view into an internal scratch buffer that is only
 * valid for the duration of the callback.
 */

#ifndef DSEARCH_TEXT_TOKENIZER_HH
#define DSEARCH_TEXT_TOKENIZER_HH

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/string_util.hh"

namespace dsearch {

/** Tokenizer behaviour knobs. */
struct TokenizerOptions
{
    /** Tokens shorter than this are dropped. */
    std::size_t min_length = 1;

    /** Tokens longer than this are truncated (guards the index
     *  against pathological inputs such as base64 blobs). */
    std::size_t max_length = 64;

    /** Fold ASCII upper case to lower case. */
    bool fold_case = true;

    /** Treat digits as term characters (else they split terms). */
    bool include_digits = true;
};

/**
 * Splits text into terms.
 *
 * Thread safety: each thread must use its own Tokenizer instance (the
 * scratch buffer is per-instance state).
 */
class Tokenizer
{
  public:
    explicit Tokenizer(TokenizerOptions opts = {}) : _opts(opts) {}

    /** @return The options this tokenizer was built with. */
    const TokenizerOptions &options() const { return _opts; }

    /**
     * Invoke @p fn once per term in @p text.
     *
     * The string_view argument points into an internal buffer and is
     * invalidated by the next token; copy it if you keep it.
     */
    template <typename Fn>
    void
    forEachToken(std::string_view text, Fn &&fn)
    {
        std::size_t i = 0;
        const std::size_t n = text.size();
        while (i < n) {
            // Skip separator bytes.
            while (i < n && !isTermChar(text[i]))
                ++i;
            std::size_t start = i;
            while (i < n && isTermChar(text[i]))
                ++i;
            std::size_t len = i - start;
            if (len < _opts.min_length)
                continue;
            if (len > _opts.max_length)
                len = _opts.max_length;
            if (_opts.fold_case) {
                _scratch.assign(text.data() + start, len);
                for (char &c : _scratch)
                    c = toLowerAscii(c);
                fn(std::string_view(_scratch));
            } else {
                fn(text.substr(start, len));
            }
        }
    }

    /** Collect all terms as owned strings (convenience for tests). */
    std::vector<std::string> tokens(std::string_view text);

  private:
    bool
    isTermChar(char c) const
    {
        return isAsciiAlpha(c)
               || (_opts.include_digits && isAsciiDigit(c));
    }

    TokenizerOptions _opts;
    std::string _scratch;
};

} // namespace dsearch

#endif // DSEARCH_TEXT_TOKENIZER_HH
