#include "text/tokenizer.hh"

namespace dsearch {

std::vector<std::string>
Tokenizer::tokens(std::string_view text)
{
    std::vector<std::string> out;
    forEachToken(text, [&out](std::string_view term) {
        out.emplace_back(term);
    });
    return out;
}

} // namespace dsearch
