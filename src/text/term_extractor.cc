#include "text/term_extractor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dsearch {

namespace {

/** Dedup table load limit: grow at 1/2 occupancy. */
constexpr std::size_t dedupInitialSize = 256;

} // namespace

std::vector<std::string>
TermBlock::termStrings() const
{
    std::vector<std::string> out;
    out.reserve(spans.size());
    for (std::size_t i = 0; i < spans.size(); ++i)
        out.emplace_back(term(i));
    return out;
}

TermExtractor::TermExtractor(const FileSystem &fs, TokenizerOptions opts)
    : _fs(fs), _tokenizer(opts)
{
}

void
TermExtractor::noteReadError(const FileEntry &file)
{
    ++_stats.read_errors;
    // The concatenation is deliberately outside the hot path: build
    // the message only when a sink will actually see it.
    if (wouldLog(LogLevel::Warn)) {
        warn("TermExtractor: cannot read '" + file.path
             + "', skipping");
    }
}

bool
TermExtractor::readWithRetry(const FileEntry &file)
{
    // The retry loop only runs after a failure, so successful reads —
    // the entire hot path — cost nothing extra.
    if (_fs.readFile(file.path, _content))
        return true;
    for (std::size_t attempt = 0; attempt < _read_retries; ++attempt) {
        ++_stats.read_retries;
        if (_fs.readFile(file.path, _content))
            return true;
    }
    noteReadError(file);
    return false;
}

bool
TermExtractor::extract(const FileEntry &file, TermBlock &block)
{
    block.doc = file.doc;
    block.clear();

    if (!readWithRetry(file))
        return false;

    // Seed the table from the previous file's unique-term count:
    // corpora with uniformly large files then skip the early rehash
    // ladder entirely (grow-at-1/2-occupancy needs 2x headroom). The
    // table never shrinks — a following small file just reuses it.
    std::size_t want = dedupInitialSize;
    while (want < _last_unique * 2)
        want <<= 1;
    if (_dedup.size() < want)
        _dedup.assign(want, 0);
    else
        std::fill(_dedup.begin(), _dedup.end(), 0);
    std::size_t mask = _dedup.size() - 1;

    _tokenizer.forEachToken(_content, [&](std::string_view term) {
        ++_stats.tokens;
        const std::uint64_t hash = fnv1a_64(term);

        // Probe the block in place: hashes from the spans, bytes from
        // the arena. No std::string is ever materialized here.
        std::size_t pos = hash & mask;
        while (_dedup[pos] != 0) {
            const std::uint32_t idx = _dedup[pos] - 1;
            if (block.spans[idx].hash == hash
                && block.term(idx) == term) {
                return; // duplicate within this file
            }
            pos = (pos + 1) & mask;
        }

        // First sight: the only copy in the pipeline.
        block.addTerm(term, hash);
        _dedup[pos] = static_cast<std::uint32_t>(block.spans.size());

        // Grow at 1/2 occupancy, re-placing span indices by their
        // stored hashes (terms are never re-hashed).
        if (block.spans.size() * 2 > _dedup.size()) {
            std::vector<std::uint32_t> bigger(_dedup.size() * 2, 0);
            std::size_t big_mask = bigger.size() - 1;
            for (std::uint32_t entry = 1;
                 entry <= block.spans.size(); ++entry) {
                std::size_t p = block.spans[entry - 1].hash & big_mask;
                while (bigger[p] != 0)
                    p = (p + 1) & big_mask;
                bigger[p] = entry;
            }
            _dedup = std::move(bigger);
            mask = big_mask;
        }
    });

    ++_stats.files;
    _stats.bytes += _content.size();
    _stats.unique_terms += block.termCount();
    _last_unique = block.termCount();
    return true;
}

bool
TermExtractor::extractOccurrences(const FileEntry &file,
                                  std::vector<std::string> &terms)
{
    terms.clear();
    if (!readWithRetry(file))
        return false;
    _tokenizer.forEachToken(_content,
                            [this, &terms](std::string_view term) {
                                ++_stats.tokens;
                                terms.emplace_back(term);
                            });
    ++_stats.files;
    _stats.bytes += _content.size();
    return true;
}

} // namespace dsearch
