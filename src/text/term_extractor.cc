#include "text/term_extractor.hh"

#include "util/logging.hh"

namespace dsearch {

TermExtractor::TermExtractor(const FileSystem &fs, TokenizerOptions opts)
    : _fs(fs), _tokenizer(opts)
{
}

bool
TermExtractor::extract(const FileEntry &file, TermBlock &block)
{
    block.doc = file.doc;
    block.terms.clear();

    if (!_fs.readFile(file.path, _content)) {
        ++_stats.read_errors;
        warn("TermExtractor: cannot read '" + file.path
             + "', skipping");
        return false;
    }

    _seen.clear();
    _tokenizer.forEachToken(_content, [this, &block](
                                          std::string_view term) {
        ++_stats.tokens;
        std::string owned(term);
        if (_seen.insert(owned))
            block.terms.push_back(std::move(owned));
    });

    ++_stats.files;
    _stats.bytes += _content.size();
    _stats.unique_terms += block.terms.size();
    return true;
}

bool
TermExtractor::extractOccurrences(const FileEntry &file,
                                  std::vector<std::string> &terms)
{
    terms.clear();
    if (!_fs.readFile(file.path, _content)) {
        ++_stats.read_errors;
        warn("TermExtractor: cannot read '" + file.path
             + "', skipping");
        return false;
    }
    _tokenizer.forEachToken(_content,
                            [this, &terms](std::string_view term) {
                                ++_stats.tokens;
                                terms.emplace_back(term);
                            });
    ++_stats.files;
    _stats.bytes += _content.size();
    return true;
}

} // namespace dsearch
