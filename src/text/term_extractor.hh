/**
 * @file
 * Stage 2: term extraction.
 *
 * A TermExtractor reads one file, tokenizes it and produces its set of
 * unique terms as a TermBlock. Duplicate elimination happens here, in
 * a private hash table, so Stage 3 receives each (term, file) pair
 * exactly once and large chunks of data move between the stages — the
 * paper's key design decision (§3): it removes the index's linear
 * duplicate scan and cuts buffering and locking operations.
 *
 * TermBlock is a flat arena: one contiguous char buffer plus
 * offset/length spans, each span carrying the term's precomputed
 * FNV-1a hash. A block therefore moves through the BlockingQueue as
 * two buffer moves instead of one move per term, and Stage 3 (and the
 * Join Forces step) reuse the hashes instead of hashing every term
 * again. Deduplication probes the arena in place — the only per-term
 * copy in the entire pipeline is the first-sight append to the arena.
 *
 * The immediate mode (extractOccurrences) keeps every occurrence; it
 * exists to measure the alternative the paper rejected (ablation E7).
 *
 * Thread safety: one TermExtractor per extractor thread; instances
 * reuse internal buffers across files.
 */

#ifndef DSEARCH_TEXT_TERM_EXTRACTOR_HH
#define DSEARCH_TEXT_TERM_EXTRACTOR_HH

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "fs/file_system.hh"
#include "fs/traversal.hh"
#include "text/tokenizer.hh"
#include "util/fnv_hash.hh"
#include "util/logging.hh"

namespace dsearch {

/** One term's location inside a TermBlock arena, plus its hash. */
struct TermSpan
{
    std::uint32_t offset = 0; ///< Byte offset into the arena.
    std::uint32_t length = 0; ///< Term length in bytes.
    std::uint64_t hash = 0;   ///< fnv1a_64 of the term bytes.
};

/**
 * The unit of data passed from Stage 2 to Stage 3: one file's unique
 * terms, en bloc, in a flat arena layout (see the file comment).
 */
struct TermBlock
{
    DocId doc = invalid_doc;

    std::string arena;           ///< All term bytes, back to back.
    std::vector<TermSpan> spans; ///< Unique, unordered.

    /** @return Number of terms in the block. */
    std::size_t termCount() const { return spans.size(); }

    /** @return True when the block holds no terms. */
    bool empty() const { return spans.empty(); }

    /** Drop all terms, keeping the allocated buffers. */
    void
    clear()
    {
        arena.clear();
        spans.clear();
    }

    /** @return Term @p i as a view into the arena. */
    std::string_view
    term(std::size_t i) const
    {
        const TermSpan &s = spans[i];
        return std::string_view(arena).substr(s.offset, s.length);
    }

    /** @return The precomputed hash of term @p i. */
    std::uint64_t hashAt(std::size_t i) const { return spans[i].hash; }

    /** Append a term whose hash the caller already computed. */
    void
    addTerm(std::string_view term, std::uint64_t hash)
    {
        // Spans address the arena with 32-bit offsets; a single file
        // would need >= 4 GiB of term bytes to overflow, but fail
        // loudly rather than corrupt spans if one ever does.
        if (arena.size() + term.size()
            > std::numeric_limits<std::uint32_t>::max()) {
            panic("TermBlock: arena exceeds 4 GiB");
        }
        spans.push_back(
            TermSpan{static_cast<std::uint32_t>(arena.size()),
                     static_cast<std::uint32_t>(term.size()), hash});
        arena.append(term.data(), term.size());
    }

    /** Append a term, hashing it here. */
    void addTerm(std::string_view term) { addTerm(term, fnv1a_64(term)); }

    /** Owned copies of all terms (tests and tools, not hot paths). */
    std::vector<std::string> termStrings() const;
};

/** Counters accumulated by one extractor. */
struct ExtractorStats
{
    std::uint64_t files = 0;        ///< Files successfully processed.
    std::uint64_t bytes = 0;        ///< Bytes read.
    std::uint64_t tokens = 0;       ///< Token occurrences seen.
    std::uint64_t unique_terms = 0; ///< Tokens surviving deduplication.
    std::uint64_t read_errors = 0;  ///< Files skipped as unreadable.
    std::uint64_t read_retries = 0; ///< Re-read attempts after failures.

    /** Merge another extractor's counters into this one. */
    void
    add(const ExtractorStats &other)
    {
        files += other.files;
        bytes += other.bytes;
        tokens += other.tokens;
        unique_terms += other.unique_terms;
        read_errors += other.read_errors;
        read_retries += other.read_retries;
    }
};

/** Per-thread Stage 2 worker; see the file comment. */
class TermExtractor
{
  public:
    /**
     * @param fs   Filesystem to read from.
     * @param opts Tokenizer configuration.
     */
    explicit TermExtractor(const FileSystem &fs,
                           TokenizerOptions opts = {});

    /**
     * En-bloc extraction: read the file and produce its unique terms.
     *
     * @param file  File entry from Stage 1.
     * @param block Receives doc id and unique terms (reused; cleared
     *              first).
     * @return False when the file could not be read (counted and
     *         warned; the caller skips the file).
     */
    bool extract(const FileEntry &file, TermBlock &block);

    /**
     * Immediate-mode extraction: every occurrence, duplicates
     * included, in document order (ablation E7).
     */
    bool extractOccurrences(const FileEntry &file,
                            std::vector<std::string> &terms);

    /** @return Counters for this extractor. */
    const ExtractorStats &stats() const { return _stats; }

    /**
     * Re-read attempts after a failed read before the file is skipped
     * (default 2). Transient failures — a file locked mid-write on a
     * live filesystem (FlakyFs's transient mode in tests) — recover
     * here; permanent ones cost @p retries extra reads and are then
     * skipped as before. 0 disables retrying.
     */
    void setReadRetries(std::size_t retries) { _read_retries = retries; }

  private:
    /** Record an unreadable file; message built only when emitted. */
    void noteReadError(const FileEntry &file);

    /**
     * Read @p file into _content, retrying up to _read_retries times.
     * Failure (all attempts exhausted) is counted and warned.
     */
    bool readWithRetry(const FileEntry &file);

    const FileSystem &_fs;
    Tokenizer _tokenizer;
    ExtractorStats _stats;
    std::size_t _read_retries = 2;
    std::string _content; ///< Reused read buffer.

    /**
     * Reused per-file dedup table: open addressing over span indices
     * (+1; 0 = empty) into the block under construction. Probes read
     * the hash from the span and the bytes from the arena, so the
     * table itself stores no term data and survives arena growth.
     * Its capacity for the next file is seeded from _last_unique,
     * the previous file's unique-term count.
     */
    std::vector<std::uint32_t> _dedup;
    std::size_t _last_unique = 0;
};

} // namespace dsearch

#endif // DSEARCH_TEXT_TERM_EXTRACTOR_HH
