/**
 * @file
 * Stage 2: term extraction.
 *
 * A TermExtractor reads one file, tokenizes it and produces its set of
 * unique terms as a TermBlock. Duplicate elimination happens here, in
 * a private hash set, so Stage 3 receives each (term, file) pair
 * exactly once and large chunks of data move between the stages — the
 * paper's key design decision (§3): it removes the index's linear
 * duplicate scan and cuts buffering and locking operations.
 *
 * The immediate mode (extractOccurrences) keeps every occurrence; it
 * exists to measure the alternative the paper rejected (ablation E7).
 *
 * Thread safety: one TermExtractor per extractor thread; instances
 * reuse internal buffers across files.
 */

#ifndef DSEARCH_TEXT_TERM_EXTRACTOR_HH
#define DSEARCH_TEXT_TERM_EXTRACTOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "fs/file_system.hh"
#include "fs/traversal.hh"
#include "text/tokenizer.hh"
#include "util/hash_set.hh"

namespace dsearch {

/**
 * The unit of data passed from Stage 2 to Stage 3: one file's unique
 * terms, en bloc.
 */
struct TermBlock
{
    DocId doc = invalid_doc;
    std::vector<std::string> terms; ///< Unique, unordered.
};

/** Counters accumulated by one extractor. */
struct ExtractorStats
{
    std::uint64_t files = 0;        ///< Files successfully processed.
    std::uint64_t bytes = 0;        ///< Bytes read.
    std::uint64_t tokens = 0;       ///< Token occurrences seen.
    std::uint64_t unique_terms = 0; ///< Tokens surviving deduplication.
    std::uint64_t read_errors = 0;  ///< Files skipped as unreadable.

    /** Merge another extractor's counters into this one. */
    void
    add(const ExtractorStats &other)
    {
        files += other.files;
        bytes += other.bytes;
        tokens += other.tokens;
        unique_terms += other.unique_terms;
        read_errors += other.read_errors;
    }
};

/** Per-thread Stage 2 worker; see the file comment. */
class TermExtractor
{
  public:
    /**
     * @param fs   Filesystem to read from.
     * @param opts Tokenizer configuration.
     */
    explicit TermExtractor(const FileSystem &fs,
                           TokenizerOptions opts = {});

    /**
     * En-bloc extraction: read the file and produce its unique terms.
     *
     * @param file  File entry from Stage 1.
     * @param block Receives doc id and unique terms (reused; cleared
     *              first).
     * @return False when the file could not be read (counted and
     *         warned; the caller skips the file).
     */
    bool extract(const FileEntry &file, TermBlock &block);

    /**
     * Immediate-mode extraction: every occurrence, duplicates
     * included, in document order (ablation E7).
     */
    bool extractOccurrences(const FileEntry &file,
                            std::vector<std::string> &terms);

    /** @return Counters for this extractor. */
    const ExtractorStats &stats() const { return _stats; }

  private:
    const FileSystem &_fs;
    Tokenizer _tokenizer;
    ExtractorStats _stats;
    std::string _content;        ///< Reused read buffer.
    HashSet<std::string> _seen;  ///< Reused per-file dedup set.
};

} // namespace dsearch

#endif // DSEARCH_TEXT_TERM_EXTRACTOR_HH
