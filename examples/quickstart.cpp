/**
 * @file
 * Quickstart: generate a small corpus, build the index in parallel
 * with the "Join Forces" organization, and answer a few queries.
 *
 * Everything runs in memory and finishes in well under a second:
 *
 *     ./quickstart
 */

#include <iostream>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "search/searcher.hh"
#include "util/string_util.hh"

int
main()
{
    using namespace dsearch;

    // 1. A deterministic synthetic corpus on an in-memory filesystem
    //    (use DiskFs to index a real directory instead).
    CorpusSpec spec = CorpusSpec::tiny(/*seed=*/2010);
    auto fs = CorpusGenerator(spec).generateInMemory();
    std::cout << "corpus: " << fs->fileCount() << " files, "
              << formatBytes(fs->totalBytes()) << "\n";

    // 2. Build the inverted index: Implementation 2 of the paper —
    //    3 extractors, 2 private index replicas, joined by 1 thread.
    Config cfg = Config::replicatedJoin(/*x=*/3, /*y=*/2, /*z=*/1);
    IndexGenerator generator(*fs, "/", cfg);
    BuildResult result = generator.build();
    std::cout << "built " << result.config.describe() << " in "
              << formatDuration(result.times.total) << ": "
              << result.primary().termCount() << " terms, "
              << result.primary().postingCount() << " postings\n";

    // 3. Query it.
    Searcher searcher(result.primary(), result.docs.docCount());
    for (const char *text : {"ba", "ba AND be", "bi OR bo",
                             "ba AND NOT be"}) {
        Query query = Query::parse(text);
        DocSet hits = searcher.run(query);
        std::cout << "query " << query.toString() << " -> "
                  << hits.size() << " files";
        if (!hits.empty())
            std::cout << " (first: " << result.docs.path(hits[0])
                      << ")";
        std::cout << "\n";
    }
    return 0;
}
