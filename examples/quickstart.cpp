/**
 * @file
 * Quickstart: generate a small corpus, build the index in parallel
 * with the "Join Forces" organization through the Engine facade, and
 * answer a few queries from the sealed snapshot.
 *
 * Everything runs in memory and finishes in well under a second:
 *
 *     ./quickstart
 */

#include <iostream>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "search/searcher.hh"
#include "util/string_util.hh"

int
main()
{
    using namespace dsearch;

    // 1. A deterministic synthetic corpus on an in-memory filesystem
    //    (use DiskFs to index a real directory instead).
    CorpusSpec spec = CorpusSpec::tiny(/*seed=*/2010);
    auto fs = CorpusGenerator(spec).generateInMemory();
    std::cout << "corpus: " << fs->fileCount() << " files, "
              << formatBytes(fs->totalBytes()) << "\n";

    // 2. Build the index: Implementation 2 of the paper — 3
    //    extractors, 2 private index replicas, joined by 1 thread —
    //    sealed into an immutable snapshot.
    Engine::Result built =
        Engine::open(*fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(/*x=*/3, /*y=*/2, /*z=*/1)
            .build();
    std::cout << "built " << built.config.describe() << " in "
              << formatDuration(built.times.total) << ": "
              << built.snapshot.termCount() << " terms, "
              << built.snapshot.postingCount() << " postings\n";

    // 3. Query it.
    Searcher searcher(built.snapshot, built.docs.docCount());
    for (const char *text : {"ba", "ba AND be", "bi OR bo",
                             "ba AND NOT be"}) {
        Query query = Query::parse(text);
        DocSet hits = searcher.run(query);
        std::cout << "query " << query.toString() << " -> "
                  << hits.size() << " files";
        if (!hits.empty())
            std::cout << " (first: " << built.docs.path(hits[0])
                      << ")";
        std::cout << "\n";
    }
    return 0;
}
