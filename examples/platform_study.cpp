/**
 * @file
 * platform_study — the paper's core experiment as an interactive
 * tool: pick a (simulated) platform, sweep the three implementations
 * over the configuration space, and print the resulting table plus a
 * bottleneck analysis for the winning configurations.
 *
 *   ./platform_study                     # all three paper platforms
 *   ./platform_study --platform oct      # one platform
 *   ./platform_study --scale 0.25        # smaller corpus, faster
 *   ./platform_study --max-x 16          # wider sweep
 */

#include <iostream>
#include <vector>

#include "fs/corpus.hh"
#include "sim/pipeline_sim.hh"
#include "tune/tuner.hh"
#include "util/options.hh"
#include "util/stats.hh"
#include "util/string_util.hh"
#include "util/table.hh"

namespace {

using namespace dsearch;

void
studyPlatform(const PlatformSpec &platform, const WorkloadModel &model,
              unsigned max_x, unsigned max_y)
{
    PipelineSim sim(platform, model);
    double seq = sim.run(Config::sequential()).total_sec;

    Table table("Platform study — " + platform.name);
    table.setColumns({"implementation", "best config", "time (s)",
                      "speed-up", "disk busy", "cpu busy",
                      "lock wait"});
    table.addRow({"Sequential", "-", formatDouble(seq, 1), "-", "-",
                  "-", "-"});
    table.addSeparator();

    for (Implementation impl :
         {Implementation::SharedLocked, Implementation::ReplicatedJoin,
          Implementation::ReplicatedNoJoin}) {
        ConfigSpace space = ConfigSpace::paperTable(
            impl, max_x, max_y,
            impl == Implementation::ReplicatedJoin ? 2 : 0);
        SimCostEvaluator evaluator(sim, 5, 0.01);
        TuneResult best = ExhaustiveTuner().tune(evaluator, space);

        SimResult detail = sim.run(best.best);
        table.addRow({name(impl), best.best.tupleString(),
                      formatDouble(best.best_sec, 1),
                      formatDouble(speedup(seq, best.best_sec), 2),
                      formatDuration(detail.disk_busy_sec),
                      formatDuration(detail.cpu_busy_sec),
                      formatDuration(detail.lock_wait_sec)});
    }
    table.render(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsearch;

    OptionParser options(
        "platform_study",
        "sweep generator configurations on simulated platforms");
    options.addString("platform",
                      "quad | oct | many | all (default all)", "all");
    options.addDouble("scale", "corpus scale factor vs the paper's "
                               "51k files / 869 MB", 1.0);
    options.addInt("max-x", "max extractor threads to sweep", 10);
    options.addInt("max-y", "max updater threads to sweep", 6);
    options.addInt("coarsen", "workload coarsening factor", 6);
    options.parse(argc, argv);

    CorpusSpec spec =
        options.doubleValue("scale") >= 1.0
            ? CorpusSpec::paper()
            : CorpusSpec::paperScaled(options.doubleValue("scale"));
    WorkloadModel model = WorkloadModel::fromCorpusSpec(spec);
    model.coarsen(
        static_cast<std::size_t>(options.intValue("coarsen")));
    std::cout << "workload: " << model.fileCount() << " files, "
              << formatBytes(model.totalBytes()) << ", "
              << model.totalTerms() << " unique postings\n\n";

    std::vector<PlatformSpec> platforms;
    const std::string which = options.stringValue("platform");
    if (which == "quad" || which == "all")
        platforms.push_back(PlatformSpec::quadCore2010());
    if (which == "oct" || which == "all")
        platforms.push_back(PlatformSpec::octCore2010());
    if (which == "many" || which == "all")
        platforms.push_back(PlatformSpec::manyCore2010());
    if (platforms.empty())
        fatal("unknown --platform '" + which
              + "' (quad | oct | many | all)");

    const auto max_x =
        static_cast<unsigned>(options.intValue("max-x"));
    const auto max_y =
        static_cast<unsigned>(options.intValue("max-y"));
    for (const PlatformSpec &platform : platforms)
        studyPlatform(platform, model, max_x, max_y);
    return 0;
}
