/**
 * @file
 * desktop_search — a complete small desktop-search tool on the
 * dsearch public API, indexing a real directory from disk.
 *
 * Modes (see --help):
 *
 *   # index a directory and save the index
 *   ./desktop_search --root /path/to/docs --save index.dsx
 *
 *   # load a saved index and query it
 *   ./desktop_search --load index.dsx --query "report AND 2024"
 *
 *   # one-shot: index and query without saving
 *   ./desktop_search --root /path/to/docs --query "revenue"
 *
 * With no arguments it demonstrates itself on a generated corpus in
 * a temporary directory.
 */

#include <filesystem>
#include <iostream>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "fs/disk_fs.hh"
#include "index/serialize.hh"
#include "search/ranked.hh"
#include "search/searcher.hh"
#include "util/options.hh"
#include "util/string_util.hh"

namespace {

using namespace dsearch;

/** Build an index over a host directory with the given thread count. */
Engine::Result
buildFromDisk(const std::string &root, unsigned threads)
{
    DiskFs fs(root);
    Engine::Result built =
        Engine::open(fs, "/")
            .organization(Implementation::ReplicatedJoin)
            .threads(threads, std::max(1u, threads / 2), 1)
            .build();
    std::cout << "indexed " << built.docs.docCount() << " files ("
              << formatBytes(built.extraction.bytes) << ") in "
              << formatDuration(built.times.total) << " using "
              << built.config.describe() << "\n";
    if (built.extraction.read_errors > 0)
        std::cout << "skipped " << built.extraction.read_errors
                  << " unreadable files\n";
    return built;
}

void
runQuery(const IndexSnapshot &snapshot, const DocTable &docs,
         const std::string &text, std::size_t limit, bool ranked)
{
    Query query = Query::parse(text);
    if (!query.valid()) {
        std::cout << "bad query: " << query.error() << "\n";
        return;
    }
    if (ranked) {
        RankedSearcher searcher(snapshot, docs);
        auto hits = searcher.topK(query, limit);
        std::cout << query.toString() << " -> top " << hits.size()
                  << " files (ranked)\n";
        for (const ScoredHit &hit : hits)
            std::cout << "  " << formatDouble(hit.score, 3) << "  "
                      << docs.path(hit.doc) << "\n";
        return;
    }
    Searcher searcher(snapshot, docs.docCount());
    DocSet hits = searcher.run(query);
    std::cout << query.toString() << " -> " << hits.size()
              << " files\n";
    for (std::size_t i = 0; i < hits.size() && i < limit; ++i)
        std::cout << "  " << docs.path(hits[i]) << "\n";
    if (hits.size() > limit)
        std::cout << "  ... and " << hits.size() - limit << " more\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsearch;

    OptionParser options("desktop_search",
                         "index a directory and search it");
    options.addString("root", "directory to index", "");
    options.addString("save", "write the index to this file", "");
    options.addString("load", "read a previously saved index", "");
    options.addString("query", "boolean query to run", "");
    options.addInt("threads", "extractor threads", 4);
    options.addInt("limit", "max hits to print", 10);
    options.addFlag("ranked",
                    "rank hits (rare terms first, short files "
                    "preferred) instead of listing all matches");
    options.parse(argc, argv);

    const std::string root = options.stringValue("root");
    const std::string save = options.stringValue("save");
    const std::string load = options.stringValue("load");
    const std::string query = options.stringValue("query");
    const auto limit =
        static_cast<std::size_t>(options.intValue("limit"));
    const auto threads =
        static_cast<unsigned>(options.intValue("threads"));
    const bool ranked = options.flag("ranked");

    if (!load.empty()) {
        IndexSnapshot snapshot;
        DocTable docs;
        if (!loadSnapshotFile(snapshot, docs, load))
            fatal("cannot load index from '" + load + "'");
        std::cout << "loaded " << snapshot.termCount()
                  << " terms over " << docs.docCount() << " files\n";
        if (!query.empty())
            runQuery(snapshot, docs, query, limit, ranked);
        return 0;
    }

    if (!root.empty()) {
        Engine::Result built = buildFromDisk(root, threads);
        if (!save.empty()) {
            if (!saveSnapshotFile(built.snapshot, built.docs, save))
                fatal("cannot save index to '" + save + "'");
            std::cout << "saved index to " << save << "\n";
        }
        if (!query.empty())
            runQuery(built.snapshot, built.docs, query, limit,
                     ranked);
        return 0;
    }

    // Demo mode: materialize a corpus in a temp directory and search.
    namespace stdfs = std::filesystem;
    stdfs::path demo_root =
        stdfs::temp_directory_path()
        / ("dsearch_demo_" + std::to_string(::getpid()));
    std::cout << "no --root given; demonstrating on a generated "
                 "corpus in "
              << demo_root << "\n";
    CorpusSpec spec = CorpusSpec::tiny(7);
    DiskWriter writer(demo_root.string());
    CorpusGenerator(spec).generate(writer);

    Engine::Result built = buildFromDisk(demo_root.string(), threads);
    runQuery(built.snapshot, built.docs, "ba AND be", limit, false);
    runQuery(built.snapshot, built.docs, "bi OR bo", 5, true);
    stdfs::remove_all(demo_root);
    return 0;
}
