/**
 * @file
 * incremental — keeping the index alive while the filesystem changes.
 *
 * The paper builds its index in one batch; a deployed desktop search
 * must follow file creations, edits and deletions without a full
 * rebuild. This example builds an index in parallel, hands it to an
 * IndexMaintainer, applies a change stream, and shows that queries
 * track the filesystem state — including NOT queries over the alive
 * universe.
 *
 *     ./incremental
 */

#include <iostream>

#include "core/index_generator.hh"
#include "fs/memory_fs.hh"
#include "index/maintainer.hh"
#include "search/searcher.hh"

namespace {

using namespace dsearch;

void
show(const IndexMaintainer &maintainer, const std::string &text)
{
    // Seal the current maintenance state for querying. A deployment
    // would snapshot once per update batch, not per query.
    Searcher searcher(maintainer.snapshot(), maintainer.aliveDocs());
    DocSet hits = searcher.run(Query::parse(text));
    std::cout << "  " << text << " -> ";
    for (std::size_t i = 0; i < hits.size(); ++i)
        std::cout << (i > 0 ? ", " : "")
                  << maintainer.docs().path(hits[i]);
    if (hits.empty())
        std::cout << "(nothing)";
    std::cout << "\n";
}

} // namespace

int
main()
{
    using namespace dsearch;

    MemoryFs fs;
    fs.addFile("/notes/groceries.txt", "apples bananas coffee");
    fs.addFile("/notes/plan.txt", "quarterly plan coffee budget");
    fs.addFile("/notes/todo.txt", "fix bug write report");

    // Batch build (Implementation 2), then switch to maintenance.
    // Maintenance mutates, so this is the one place that uses the
    // generator's mutable BuildResult instead of Engine's sealed
    // snapshot; queries below still go through snapshots.
    IndexGenerator generator(fs, "/notes",
                             Config::replicatedJoin(2, 1, 1));
    BuildResult result = generator.build();
    IndexMaintainer maintainer(std::move(result.indices.front()),
                               std::move(result.docs));

    std::cout << "initial state (" << maintainer.aliveCount()
              << " files):\n";
    show(maintainer, "coffee");
    show(maintainer, "report");

    std::cout << "\n+ new file /notes/journal.txt\n";
    fs.addFile("/notes/journal.txt", "coffee tasting report");
    maintainer.addDocument(fs, "/notes/journal.txt");
    show(maintainer, "coffee");
    show(maintainer, "coffee AND report");

    std::cout << "\n~ edit /notes/plan.txt (coffee removed)\n";
    fs.addFile("/notes/plan.txt", "quarterly plan tea budget");
    maintainer.refreshDocument(fs, 1);
    show(maintainer, "coffee");
    show(maintainer, "tea");

    std::cout << "\n- delete /notes/groceries.txt\n";
    maintainer.removeDocument(0);
    show(maintainer, "coffee");
    show(maintainer, "NOT coffee");

    std::size_t erased = maintainer.vacuum();
    std::cout << "\nvacuum erased " << erased
              << " emptied terms; index now holds "
              << maintainer.index().termCount() << " terms over "
              << maintainer.aliveCount() << " live files\n";
    return 0;
}
