/**
 * @file
 * autotune — step 6 of the paper's recommended process: "Use an
 * auto-tuner to speed up exploring the design space."
 *
 * Compares the three search strategies (exhaustive, random, hill
 * climbing) on the same tuning problem and shows how many evaluations
 * each needs to find (or approach) the best configuration. The cost
 * oracle is either the platform simulator (default; reproduces the
 * paper's setting) or the real generator on an in-memory corpus
 * (--real).
 *
 *   ./autotune
 *   ./autotune --platform many --impl 3
 *   ./autotune --real --scale 0.03
 */

#include <iostream>
#include <memory>

#include "core/index_generator.hh"
#include "fs/corpus.hh"
#include "tune/tuner.hh"
#include "util/options.hh"
#include "util/string_util.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace dsearch;

    OptionParser options("autotune",
                         "compare configuration-search strategies");
    options.addString("platform", "quad | oct | many", "oct");
    options.addInt("impl", "implementation to tune (1, 2 or 3)", 3);
    options.addFlag("real",
                    "tune the real generator instead of the simulator");
    options.addDouble("scale", "corpus scale for --real", 0.03);
    options.addInt("max-x", "max extractor threads", 10);
    options.addInt("max-y", "max updater threads", 6);
    options.parse(argc, argv);

    Implementation impl;
    switch (options.intValue("impl")) {
      case 1:
        impl = Implementation::SharedLocked;
        break;
      case 2:
        impl = Implementation::ReplicatedJoin;
        break;
      case 3:
        impl = Implementation::ReplicatedNoJoin;
        break;
      default:
        fatal("--impl must be 1, 2 or 3");
    }

    ConfigSpace space = ConfigSpace::paperTable(
        impl, static_cast<unsigned>(options.intValue("max-x")),
        static_cast<unsigned>(options.intValue("max-y")),
        impl == Implementation::ReplicatedJoin ? 2 : 0);

    // Assemble the cost oracle.
    std::unique_ptr<MemoryFs> fs;
    std::unique_ptr<PipelineSim> sim;
    auto new_evaluator = [&]() -> std::unique_ptr<CostEvaluator> {
        if (options.flag("real")) {
            if (!fs) {
                fs = CorpusGenerator(CorpusSpec::paperScaled(
                                         options.doubleValue("scale")))
                         .generateInMemory();
                std::cout << "real oracle: "
                          << formatBytes(fs->totalBytes())
                          << " in-memory corpus\n";
            }
            return std::make_unique<RealCostEvaluator>(*fs, "/", 3);
        }
        if (!sim) {
            const std::string which = options.stringValue("platform");
            PlatformSpec platform =
                which == "quad"  ? PlatformSpec::quadCore2010()
                : which == "many" ? PlatformSpec::manyCore2010()
                                  : PlatformSpec::octCore2010();
            WorkloadModel model =
                WorkloadModel::fromCorpusSpec(CorpusSpec::paper());
            model.coarsen(6);
            sim = std::make_unique<PipelineSim>(platform, model);
            std::cout << "simulated oracle: " << platform.name
                      << "\n";
        }
        return std::make_unique<SimCostEvaluator>(*sim, 5, 0.01);
    };

    std::cout << "tuning " << name(impl) << " over " << space.size()
              << " configurations\n\n";

    Table table("Auto-tuner strategy comparison");
    table.setColumns({"strategy", "best config", "best time (s)",
                      "evaluations"});

    {
        auto evaluator = new_evaluator();
        TuneResult r = ExhaustiveTuner().tune(*evaluator, space);
        table.addRow({"exhaustive", r.best.tupleString(),
                      formatDouble(r.best_sec, 2),
                      std::to_string(r.evaluations)});
    }
    {
        auto evaluator = new_evaluator();
        std::size_t budget = std::max<std::size_t>(
            8, space.size() / 4);
        TuneResult r =
            RandomTuner(budget).tune(*evaluator, space);
        table.addRow({"random (1/4 budget)", r.best.tupleString(),
                      formatDouble(r.best_sec, 2),
                      std::to_string(r.evaluations)});
    }
    {
        auto evaluator = new_evaluator();
        TuneResult r =
            HillClimbTuner(3, 64).tune(*evaluator, space);
        table.addRow({"hill climb (3 restarts)",
                      r.best.tupleString(),
                      formatDouble(r.best_sec, 2),
                      std::to_string(r.evaluations)});
    }

    table.render(std::cout);
    std::cout << "Hill climbing typically reaches the exhaustive "
                 "optimum with a fraction of\nthe evaluations — the "
                 "reason the paper recommends an auto-tuner for "
                 "this\ndesign space.\n";
    return 0;
}
