/**
 * @file
 * Sharded serving-tier demo: document-partition a corpus into N
 * shards, stand a Broker in front of them, fire a Zipf-distributed
 * query burst, and print the per-shard and broker stats tables.
 *
 *     ./shard_broker            # 4 shards, demo burst
 *     ./shard_broker 8          # 8 shards
 *
 * Everything runs in-process on an in-memory synthetic corpus; each
 * shard's QueryServer stands in for one node of the scatter-gather
 * architecture in the distributed-web-search related work.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "fs/corpus.hh"
#include "shard/broker.hh"
#include "shard/shard_planner.hh"
#include "util/rng.hh"
#include "util/string_util.hh"
#include "util/table.hh"
#include "util/zipf.hh"

int
main(int argc, char **argv)
{
    using namespace dsearch;

    std::size_t shards = 4;
    if (argc > 1)
        shards = std::max(1, std::atoi(argv[1]));

    // 1. Build + partition: one global traversal names every
    //    document, then each shard indexes its own slice.
    auto fs = CorpusGenerator(CorpusSpec::tiny(/*seed=*/2010))
                  .generateInMemory();
    std::cout << "corpus: " << fs->fileCount() << " files, "
              << formatBytes(fs->totalBytes()) << "\n";

    ShardPlanOptions plan;
    plan.shards = shards;
    plan.placement = ShardPlacement::HashByPath;
    Broker broker(ShardPlanner::build(*fs, "/", plan));
    std::cout << "serving " << broker.docCount() << " docs across "
              << broker.shardCount() << " shards\n\n";

    // 2. A Zipf-distributed burst: popular queries dominate, the way
    //    real query logs do. Terms come from the corpus vocabulary
    //    (rank 0 is the most common word).
    std::vector<Query> queries;
    for (std::size_t rank = 0; rank < 12; ++rank) {
        const std::string a = CorpusGenerator::wordForRank(rank);
        const std::string b = CorpusGenerator::wordForRank(rank + 7);
        queries.push_back(Query::parse(a));
        queries.push_back(Query::parse(a + " AND " + b));
        queries.push_back(Query::parse(a + " OR " + b));
    }
    ZipfDistribution popularity(queries.size(), /*s=*/1.0);
    Rng rng(4242);

    const int burst = 2000;
    std::vector<std::future<BrokerResponse>> inflight;
    inflight.reserve(burst);
    for (int i = 0; i < burst; ++i) {
        const Query &query = queries[popularity.sample(rng)];
        if (i % 4 == 0)
            inflight.push_back(broker.submitRanked(query, 5));
        else
            inflight.push_back(broker.submit(query));
    }
    std::size_t answered = 0;
    for (auto &future : inflight)
        if (future.get().ok)
            ++answered;

    // 3. The rollup: broker end-to-end latencies are exact, the
    //    per-shard view is N LatencyHistograms merged (counter adds,
    //    no sample concatenation).
    BrokerStats stats = broker.stats();
    std::cout << "burst: " << answered << "/" << burst
              << " answered at " << formatDouble(stats.qps, 0)
              << " QPS\n\n";

    Table per_shard("Per-shard serving stats");
    per_shard.setColumns({"shard", "docs", "completed", "shed",
                          "timed out", "p50", "p99"});
    for (std::size_t s = 0; s < broker.shardCount(); ++s) {
        const ServerStats &shard = stats.shards[s];
        per_shard.addRow(
            {std::to_string(s),
             std::to_string(broker.shardServer(s).docCount()),
             std::to_string(shard.completed),
             std::to_string(shard.shed),
             std::to_string(shard.timed_out),
             formatDuration(shard.latency.p50),
             formatDuration(shard.latency.p99)});
    }
    per_shard.render(std::cout);
    std::cout << "\n";

    Table rollup("Broker rollup");
    rollup.setColumns({"metric", "value"});
    rollup.addRow({"completed", std::to_string(stats.completed)});
    rollup.addRow({"partial", std::to_string(stats.partial)});
    rollup.addRow({"rejected", std::to_string(stats.rejected)});
    rollup.addRow({"QPS", formatDouble(stats.qps, 0)});
    rollup.addRow({"end-to-end p50",
                   formatDuration(stats.latency.p50)});
    rollup.addRow({"end-to-end p99",
                   formatDuration(stats.latency.p99)});
    rollup.addRow({"shard-level p50 (merged hist)",
                   formatDuration(stats.shard_latency.p50)});
    rollup.addRow({"shard-level p99 (merged hist)",
                   formatDuration(stats.shard_latency.p99)});
    rollup.render(std::cout);
    return 0;
}
