/**
 * @file
 * Search-server demo: build an index, stand up a QueryServer, push a
 * burst of multi-client traffic through it, then (when stdin is
 * interactive or queries are passed as arguments) answer queries.
 *
 *     ./search_server                     # demo traffic + stdin loop
 *     ./search_server "ba AND be" "zu"    # serve the given queries
 *
 * Everything runs on an in-memory synthetic corpus; swap in DiskFs
 * to serve a real directory.
 */

#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/corpus.hh"
#include "search/query_server.hh"
#include "util/string_util.hh"

namespace {

using namespace dsearch;

/** Answer one query string and print a short result line. */
void
serveOne(QueryServer &server, const std::string &text)
{
    Query query = Query::parse(text);
    QueryResponse ranked =
        server.submitRanked(query, 3).get();
    if (!ranked.ok) {
        std::cout << "  !! " << ranked.error << "\n";
        return;
    }
    QueryResponse boolean = server.submit(query).get();
    std::cout << "  " << query.toString() << " -> "
              << boolean.hits.size() << " files in "
              << formatDuration(boolean.latency_sec) << "\n";
    for (const ScoredHit &hit : ranked.ranked)
        std::cout << "    " << server.docs().path(hit.doc)
                  << "  (score " << formatDouble(hit.score, 3)
                  << ")\n";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace dsearch;

    // 1. Build: corpus -> Engine -> sealed snapshot, handed straight
    //    to the server (which owns it from here on).
    auto fs = CorpusGenerator(CorpusSpec::tiny(/*seed=*/2010))
                  .generateInMemory();
    std::cout << "corpus: " << fs->fileCount() << " files, "
              << formatBytes(fs->totalBytes()) << "\n";

    QueryServer server(Engine::open(*fs, "/")
                           .organization(Implementation::ReplicatedJoin)
                           .threads(3, 2, 1)
                           .build());
    std::cout << "serving " << server.docCount() << " docs on "
              << server.workerCount() << " workers\n\n";

    // 2. A burst of concurrent demo traffic: four closed-loop
    //    clients, mixed boolean and ranked queries.
    const char *mix[] = {"ba", "ba AND be", "bi OR bo",
                         "ba AND NOT be"};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c) {
        clients.emplace_back([&server, &mix, c] {
            for (int i = 0; i < 100; ++i) {
                const char *text = mix[(c + i) % 4];
                if (i % 3 == 0)
                    server.submitRanked(Query::parse(text), 3).get();
                else
                    server.submit(Query::parse(text)).get();
            }
        });
    }
    for (std::thread &t : clients)
        t.join();

    ServerStats stats = server.stats();
    std::cout << "demo burst: " << stats.completed << " queries at "
              << formatDouble(stats.qps, 0) << " QPS — p50 "
              << formatDuration(stats.latency.p50) << ", p95 "
              << formatDuration(stats.latency.p95) << ", p99 "
              << formatDuration(stats.latency.p99) << "\n\n";

    // 3. Caller-provided queries, or an interactive loop when stdin
    //    is a terminal (EOF / "quit" ends it).
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            serveOne(server, argv[i]);
        return 0;
    }
    std::cout << "enter queries (quit to exit):\n";
    std::string line;
    while (std::cout << "> " && std::getline(std::cin, line)) {
        if (line == "quit" || line == "exit")
            break;
        if (!line.empty())
            serveOne(server, line);
    }
    return 0;
}
