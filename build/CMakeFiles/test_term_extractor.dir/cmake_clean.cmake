file(REMOVE_RECURSE
  "CMakeFiles/test_term_extractor.dir/tests/test_term_extractor.cc.o"
  "CMakeFiles/test_term_extractor.dir/tests/test_term_extractor.cc.o.d"
  "test_term_extractor"
  "test_term_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_term_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
