# Empty dependencies file for test_term_extractor.
# This may be replaced when dependencies are built.
