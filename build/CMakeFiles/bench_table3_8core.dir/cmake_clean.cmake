file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_8core.dir/bench/bench_table3_8core.cc.o"
  "CMakeFiles/bench_table3_8core.dir/bench/bench_table3_8core.cc.o.d"
  "bench_table3_8core"
  "bench_table3_8core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_8core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
