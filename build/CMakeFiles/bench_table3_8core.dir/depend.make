# Empty dependencies file for bench_table3_8core.
# This may be replaced when dependencies are built.
