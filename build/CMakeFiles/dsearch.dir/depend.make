# Empty dependencies file for dsearch.
# This may be replaced when dependencies are built.
