file(REMOVE_RECURSE
  "libdsearch.a"
)
