
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config.cc" "CMakeFiles/dsearch.dir/src/core/config.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/core/config.cc.o.d"
  "/root/repo/src/core/index_generator.cc" "CMakeFiles/dsearch.dir/src/core/index_generator.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/core/index_generator.cc.o.d"
  "/root/repo/src/fs/corpus.cc" "CMakeFiles/dsearch.dir/src/fs/corpus.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/fs/corpus.cc.o.d"
  "/root/repo/src/fs/disk_fs.cc" "CMakeFiles/dsearch.dir/src/fs/disk_fs.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/fs/disk_fs.cc.o.d"
  "/root/repo/src/fs/memory_fs.cc" "CMakeFiles/dsearch.dir/src/fs/memory_fs.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/fs/memory_fs.cc.o.d"
  "/root/repo/src/fs/traversal.cc" "CMakeFiles/dsearch.dir/src/fs/traversal.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/fs/traversal.cc.o.d"
  "/root/repo/src/index/doc_table.cc" "CMakeFiles/dsearch.dir/src/index/doc_table.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/doc_table.cc.o.d"
  "/root/repo/src/index/index_join.cc" "CMakeFiles/dsearch.dir/src/index/index_join.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/index_join.cc.o.d"
  "/root/repo/src/index/inverted_index.cc" "CMakeFiles/dsearch.dir/src/index/inverted_index.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/inverted_index.cc.o.d"
  "/root/repo/src/index/maintainer.cc" "CMakeFiles/dsearch.dir/src/index/maintainer.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/maintainer.cc.o.d"
  "/root/repo/src/index/serialize.cc" "CMakeFiles/dsearch.dir/src/index/serialize.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/serialize.cc.o.d"
  "/root/repo/src/index/shared_index.cc" "CMakeFiles/dsearch.dir/src/index/shared_index.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/index/shared_index.cc.o.d"
  "/root/repo/src/pipeline/distribution.cc" "CMakeFiles/dsearch.dir/src/pipeline/distribution.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/pipeline/distribution.cc.o.d"
  "/root/repo/src/pipeline/thread_pool.cc" "CMakeFiles/dsearch.dir/src/pipeline/thread_pool.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/pipeline/thread_pool.cc.o.d"
  "/root/repo/src/search/multi_searcher.cc" "CMakeFiles/dsearch.dir/src/search/multi_searcher.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/search/multi_searcher.cc.o.d"
  "/root/repo/src/search/query.cc" "CMakeFiles/dsearch.dir/src/search/query.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/search/query.cc.o.d"
  "/root/repo/src/search/ranked.cc" "CMakeFiles/dsearch.dir/src/search/ranked.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/search/ranked.cc.o.d"
  "/root/repo/src/search/searcher.cc" "CMakeFiles/dsearch.dir/src/search/searcher.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/search/searcher.cc.o.d"
  "/root/repo/src/sim/disk_model.cc" "CMakeFiles/dsearch.dir/src/sim/disk_model.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/sim/disk_model.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/dsearch.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/pipeline_sim.cc" "CMakeFiles/dsearch.dir/src/sim/pipeline_sim.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/sim/pipeline_sim.cc.o.d"
  "/root/repo/src/sim/platform.cc" "CMakeFiles/dsearch.dir/src/sim/platform.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/sim/platform.cc.o.d"
  "/root/repo/src/sim/resource.cc" "CMakeFiles/dsearch.dir/src/sim/resource.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/sim/resource.cc.o.d"
  "/root/repo/src/text/term_extractor.cc" "CMakeFiles/dsearch.dir/src/text/term_extractor.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/text/term_extractor.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "CMakeFiles/dsearch.dir/src/text/tokenizer.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/text/tokenizer.cc.o.d"
  "/root/repo/src/tune/config_space.cc" "CMakeFiles/dsearch.dir/src/tune/config_space.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/tune/config_space.cc.o.d"
  "/root/repo/src/tune/tuner.cc" "CMakeFiles/dsearch.dir/src/tune/tuner.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/tune/tuner.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/dsearch.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/options.cc" "CMakeFiles/dsearch.dir/src/util/options.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/util/options.cc.o.d"
  "/root/repo/src/util/stats.cc" "CMakeFiles/dsearch.dir/src/util/stats.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/util/stats.cc.o.d"
  "/root/repo/src/util/string_util.cc" "CMakeFiles/dsearch.dir/src/util/string_util.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/util/string_util.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/dsearch.dir/src/util/table.cc.o" "gcc" "CMakeFiles/dsearch.dir/src/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
