file(REMOVE_RECURSE
  "CMakeFiles/test_traversal.dir/tests/test_traversal.cc.o"
  "CMakeFiles/test_traversal.dir/tests/test_traversal.cc.o.d"
  "test_traversal"
  "test_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
