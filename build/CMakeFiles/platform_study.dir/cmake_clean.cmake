file(REMOVE_RECURSE
  "CMakeFiles/platform_study.dir/examples/platform_study.cpp.o"
  "CMakeFiles/platform_study.dir/examples/platform_study.cpp.o.d"
  "platform_study"
  "platform_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
