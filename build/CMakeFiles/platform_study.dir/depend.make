# Empty dependencies file for platform_study.
# This may be replaced when dependencies are built.
