# Empty dependencies file for test_maintainer.
# This may be replaced when dependencies are built.
