file(REMOVE_RECURSE
  "CMakeFiles/test_maintainer.dir/tests/test_maintainer.cc.o"
  "CMakeFiles/test_maintainer.dir/tests/test_maintainer.cc.o.d"
  "test_maintainer"
  "test_maintainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_maintainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
