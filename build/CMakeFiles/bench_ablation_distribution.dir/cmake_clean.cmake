file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_distribution.dir/bench/bench_ablation_distribution.cc.o"
  "CMakeFiles/bench_ablation_distribution.dir/bench/bench_ablation_distribution.cc.o.d"
  "bench_ablation_distribution"
  "bench_ablation_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
