# Empty dependencies file for bench_ablation_distribution.
# This may be replaced when dependencies are built.
