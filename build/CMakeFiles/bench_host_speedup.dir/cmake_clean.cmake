file(REMOVE_RECURSE
  "CMakeFiles/bench_host_speedup.dir/bench/bench_host_speedup.cc.o"
  "CMakeFiles/bench_host_speedup.dir/bench/bench_host_speedup.cc.o.d"
  "bench_host_speedup"
  "bench_host_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
