# Empty dependencies file for bench_host_speedup.
# This may be replaced when dependencies are built.
