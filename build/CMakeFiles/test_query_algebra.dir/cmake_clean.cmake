file(REMOVE_RECURSE
  "CMakeFiles/test_query_algebra.dir/tests/test_query_algebra.cc.o"
  "CMakeFiles/test_query_algebra.dir/tests/test_query_algebra.cc.o.d"
  "test_query_algebra"
  "test_query_algebra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
