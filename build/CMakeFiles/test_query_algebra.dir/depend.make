# Empty dependencies file for test_query_algebra.
# This may be replaced when dependencies are built.
