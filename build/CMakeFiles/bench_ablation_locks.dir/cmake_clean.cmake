file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_locks.dir/bench/bench_ablation_locks.cc.o"
  "CMakeFiles/bench_ablation_locks.dir/bench/bench_ablation_locks.cc.o.d"
  "bench_ablation_locks"
  "bench_ablation_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
