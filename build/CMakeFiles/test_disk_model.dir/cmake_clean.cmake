file(REMOVE_RECURSE
  "CMakeFiles/test_disk_model.dir/tests/test_disk_model.cc.o"
  "CMakeFiles/test_disk_model.dir/tests/test_disk_model.cc.o.d"
  "test_disk_model"
  "test_disk_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
