# Empty dependencies file for test_disk_model.
# This may be replaced when dependencies are built.
