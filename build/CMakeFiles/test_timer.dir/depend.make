# Empty dependencies file for test_timer.
# This may be replaced when dependencies are built.
