file(REMOVE_RECURSE
  "CMakeFiles/test_timer.dir/tests/test_timer.cc.o"
  "CMakeFiles/test_timer.dir/tests/test_timer.cc.o.d"
  "test_timer"
  "test_timer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
