file(REMOVE_RECURSE
  "CMakeFiles/test_zipf.dir/tests/test_zipf.cc.o"
  "CMakeFiles/test_zipf.dir/tests/test_zipf.cc.o.d"
  "test_zipf"
  "test_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
