file(REMOVE_RECURSE
  "CMakeFiles/test_multi_searcher.dir/tests/test_multi_searcher.cc.o"
  "CMakeFiles/test_multi_searcher.dir/tests/test_multi_searcher.cc.o.d"
  "test_multi_searcher"
  "test_multi_searcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_searcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
