# Empty dependencies file for test_multi_searcher.
# This may be replaced when dependencies are built.
