# Empty dependencies file for incremental.
# This may be replaced when dependencies are built.
