file(REMOVE_RECURSE
  "CMakeFiles/incremental.dir/examples/incremental.cpp.o"
  "CMakeFiles/incremental.dir/examples/incremental.cpp.o.d"
  "incremental"
  "incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
