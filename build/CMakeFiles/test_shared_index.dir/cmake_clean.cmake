file(REMOVE_RECURSE
  "CMakeFiles/test_shared_index.dir/tests/test_shared_index.cc.o"
  "CMakeFiles/test_shared_index.dir/tests/test_shared_index.cc.o.d"
  "test_shared_index"
  "test_shared_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shared_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
