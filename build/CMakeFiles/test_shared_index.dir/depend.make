# Empty dependencies file for test_shared_index.
# This may be replaced when dependencies are built.
