file(REMOVE_RECURSE
  "CMakeFiles/test_flaky_fs.dir/tests/test_flaky_fs.cc.o"
  "CMakeFiles/test_flaky_fs.dir/tests/test_flaky_fs.cc.o.d"
  "test_flaky_fs"
  "test_flaky_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flaky_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
