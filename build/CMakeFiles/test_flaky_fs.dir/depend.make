# Empty dependencies file for test_flaky_fs.
# This may be replaced when dependencies are built.
