file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_4core.dir/bench/bench_table2_4core.cc.o"
  "CMakeFiles/bench_table2_4core.dir/bench/bench_table2_4core.cc.o.d"
  "bench_table2_4core"
  "bench_table2_4core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_4core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
