# Empty dependencies file for bench_table2_4core.
# This may be replaced when dependencies are built.
