file(REMOVE_RECURSE
  "CMakeFiles/test_tokenizer.dir/tests/test_tokenizer.cc.o"
  "CMakeFiles/test_tokenizer.dir/tests/test_tokenizer.cc.o.d"
  "test_tokenizer"
  "test_tokenizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tokenizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
