file(REMOVE_RECURSE
  "CMakeFiles/test_memory_fs.dir/tests/test_memory_fs.cc.o"
  "CMakeFiles/test_memory_fs.dir/tests/test_memory_fs.cc.o.d"
  "test_memory_fs"
  "test_memory_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memory_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
