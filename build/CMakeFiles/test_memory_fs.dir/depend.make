# Empty dependencies file for test_memory_fs.
# This may be replaced when dependencies are built.
