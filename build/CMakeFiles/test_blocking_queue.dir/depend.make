# Empty dependencies file for test_blocking_queue.
# This may be replaced when dependencies are built.
