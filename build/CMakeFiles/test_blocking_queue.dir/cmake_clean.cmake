file(REMOVE_RECURSE
  "CMakeFiles/test_blocking_queue.dir/tests/test_blocking_queue.cc.o"
  "CMakeFiles/test_blocking_queue.dir/tests/test_blocking_queue.cc.o.d"
  "test_blocking_queue"
  "test_blocking_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blocking_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
