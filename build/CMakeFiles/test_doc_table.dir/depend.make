# Empty dependencies file for test_doc_table.
# This may be replaced when dependencies are built.
