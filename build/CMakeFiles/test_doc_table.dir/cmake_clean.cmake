file(REMOVE_RECURSE
  "CMakeFiles/test_doc_table.dir/tests/test_doc_table.cc.o"
  "CMakeFiles/test_doc_table.dir/tests/test_doc_table.cc.o.d"
  "test_doc_table"
  "test_doc_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_doc_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
