file(REMOVE_RECURSE
  "CMakeFiles/desktop_search.dir/examples/desktop_search.cpp.o"
  "CMakeFiles/desktop_search.dir/examples/desktop_search.cpp.o.d"
  "desktop_search"
  "desktop_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desktop_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
