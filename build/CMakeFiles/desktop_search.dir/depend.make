# Empty dependencies file for desktop_search.
# This may be replaced when dependencies are built.
