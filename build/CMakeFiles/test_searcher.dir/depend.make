# Empty dependencies file for test_searcher.
# This may be replaced when dependencies are built.
