file(REMOVE_RECURSE
  "CMakeFiles/test_searcher.dir/tests/test_searcher.cc.o"
  "CMakeFiles/test_searcher.dir/tests/test_searcher.cc.o.d"
  "test_searcher"
  "test_searcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_searcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
