file(REMOVE_RECURSE
  "CMakeFiles/test_index_generator.dir/tests/test_index_generator.cc.o"
  "CMakeFiles/test_index_generator.dir/tests/test_index_generator.cc.o.d"
  "test_index_generator"
  "test_index_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
