# Empty dependencies file for test_index_generator.
# This may be replaced when dependencies are built.
