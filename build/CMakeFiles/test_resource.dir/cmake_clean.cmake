file(REMOVE_RECURSE
  "CMakeFiles/test_resource.dir/tests/test_resource.cc.o"
  "CMakeFiles/test_resource.dir/tests/test_resource.cc.o.d"
  "test_resource"
  "test_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
