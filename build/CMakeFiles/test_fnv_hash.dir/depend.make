# Empty dependencies file for test_fnv_hash.
# This may be replaced when dependencies are built.
