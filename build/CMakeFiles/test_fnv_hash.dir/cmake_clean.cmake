file(REMOVE_RECURSE
  "CMakeFiles/test_fnv_hash.dir/tests/test_fnv_hash.cc.o"
  "CMakeFiles/test_fnv_hash.dir/tests/test_fnv_hash.cc.o.d"
  "test_fnv_hash"
  "test_fnv_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fnv_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
