# Empty dependencies file for test_disk_fs.
# This may be replaced when dependencies are built.
