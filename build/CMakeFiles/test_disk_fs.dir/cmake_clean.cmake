file(REMOVE_RECURSE
  "CMakeFiles/test_disk_fs.dir/tests/test_disk_fs.cc.o"
  "CMakeFiles/test_disk_fs.dir/tests/test_disk_fs.cc.o.d"
  "test_disk_fs"
  "test_disk_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
