# Empty dependencies file for test_inverted_index.
# This may be replaced when dependencies are built.
