file(REMOVE_RECURSE
  "CMakeFiles/test_inverted_index.dir/tests/test_inverted_index.cc.o"
  "CMakeFiles/test_inverted_index.dir/tests/test_inverted_index.cc.o.d"
  "test_inverted_index"
  "test_inverted_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inverted_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
