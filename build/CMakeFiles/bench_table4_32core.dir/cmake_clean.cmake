file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_32core.dir/bench/bench_table4_32core.cc.o"
  "CMakeFiles/bench_table4_32core.dir/bench/bench_table4_32core.cc.o.d"
  "bench_table4_32core"
  "bench_table4_32core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_32core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
