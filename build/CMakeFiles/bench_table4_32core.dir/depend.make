# Empty dependencies file for bench_table4_32core.
# This may be replaced when dependencies are built.
