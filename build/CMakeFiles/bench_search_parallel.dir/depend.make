# Empty dependencies file for bench_search_parallel.
# This may be replaced when dependencies are built.
