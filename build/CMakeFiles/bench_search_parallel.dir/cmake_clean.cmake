file(REMOVE_RECURSE
  "CMakeFiles/bench_search_parallel.dir/bench/bench_search_parallel.cc.o"
  "CMakeFiles/bench_search_parallel.dir/bench/bench_search_parallel.cc.o.d"
  "bench_search_parallel"
  "bench_search_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_search_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
