# Empty dependencies file for bench_ablation_stage1.
# This may be replaced when dependencies are built.
