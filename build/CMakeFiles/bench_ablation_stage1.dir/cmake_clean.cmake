file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_stage1.dir/bench/bench_ablation_stage1.cc.o"
  "CMakeFiles/bench_ablation_stage1.dir/bench/bench_ablation_stage1.cc.o.d"
  "bench_ablation_stage1"
  "bench_ablation_stage1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_stage1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
