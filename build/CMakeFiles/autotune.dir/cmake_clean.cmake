file(REMOVE_RECURSE
  "CMakeFiles/autotune.dir/examples/autotune.cpp.o"
  "CMakeFiles/autotune.dir/examples/autotune.cpp.o.d"
  "autotune"
  "autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
