# Empty dependencies file for test_ranked.
# This may be replaced when dependencies are built.
