file(REMOVE_RECURSE
  "CMakeFiles/test_ranked.dir/tests/test_ranked.cc.o"
  "CMakeFiles/test_ranked.dir/tests/test_ranked.cc.o.d"
  "test_ranked"
  "test_ranked.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ranked.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
