file(REMOVE_RECURSE
  "CMakeFiles/test_index_join.dir/tests/test_index_join.cc.o"
  "CMakeFiles/test_index_join.dir/tests/test_index_join.cc.o.d"
  "test_index_join"
  "test_index_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
