# Empty dependencies file for test_index_join.
# This may be replaced when dependencies are built.
