# Empty dependencies file for test_hash_set.
# This may be replaced when dependencies are built.
