file(REMOVE_RECURSE
  "CMakeFiles/test_hash_set.dir/tests/test_hash_set.cc.o"
  "CMakeFiles/test_hash_set.dir/tests/test_hash_set.cc.o.d"
  "test_hash_set"
  "test_hash_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
