/**
 * @file
 * Unit tests for the Zipf sampler (util/zipf.hh).
 */

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hh"
#include "util/zipf.hh"

namespace dsearch {
namespace {

TEST(Zipf, ProbabilitiesSumToOne)
{
    ZipfDistribution zipf(1000, 1.0);
    double sum = 0.0;
    for (std::size_t r = 0; r < zipf.size(); ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ProbabilityMonotoneDecreasing)
{
    ZipfDistribution zipf(500, 1.2);
    for (std::size_t r = 1; r < zipf.size(); ++r)
        EXPECT_LE(zipf.probability(r), zipf.probability(r - 1) + 1e-12);
}

TEST(Zipf, ClassicRatioBetweenRanks)
{
    // With s = 1, p(0)/p(1) = 2.
    ZipfDistribution zipf(100, 1.0);
    EXPECT_NEAR(zipf.probability(0) / zipf.probability(1), 2.0, 1e-9);
}

TEST(Zipf, ZeroSkewIsUniform)
{
    ZipfDistribution zipf(50, 0.0);
    for (std::size_t r = 0; r < zipf.size(); ++r)
        EXPECT_NEAR(zipf.probability(r), 1.0 / 50.0, 1e-12);
}

TEST(Zipf, OutOfRangeProbabilityIsZero)
{
    ZipfDistribution zipf(10, 1.0);
    EXPECT_EQ(zipf.probability(10), 0.0);
    EXPECT_EQ(zipf.probability(1000), 0.0);
}

TEST(Zipf, SingleRank)
{
    ZipfDistribution zipf(1, 1.0);
    EXPECT_NEAR(zipf.probability(0), 1.0, 1e-12);
    Rng rng(1);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, SamplesWithinRange)
{
    ZipfDistribution zipf(200, 1.0);
    Rng rng(5);
    for (int i = 0; i < 5000; ++i)
        ASSERT_LT(zipf.sample(rng), 200u);
}

TEST(Zipf, SampleFrequenciesMatchProbabilities)
{
    const std::size_t n = 20;
    ZipfDistribution zipf(n, 1.0);
    Rng rng(9);
    std::vector<int> counts(n, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t r = 0; r < n; ++r) {
        double expected = zipf.probability(r) * draws;
        // 5-sigma-ish binomial tolerance.
        double tolerance = 5.0 * std::sqrt(expected) + 5.0;
        EXPECT_NEAR(counts[r], expected, tolerance)
            << "rank " << r;
    }
}

TEST(Zipf, DeterministicAcrossInstances)
{
    ZipfDistribution a(100, 1.0), b(100, 1.0);
    Rng ra(3), rb(3);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.sample(ra), b.sample(rb));
}

} // namespace
} // namespace dsearch
