/**
 * @file
 * Unit tests for boolean query evaluation (search/searcher.hh).
 */

#include <gtest/gtest.h>

#include "search/searcher.hh"
#include "util/rng.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

/**
 * Fixture index over 6 documents:
 *   0: cat dog        3: cat
 *   1: cat fish       4: dog fish
 *   2: dog            5: (empty)
 */
class SearcherTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _index.addBlock(block(0, {"cat", "dog"}));
        _index.addBlock(block(1, {"cat", "fish"}));
        _index.addBlock(block(2, {"dog"}));
        _index.addBlock(block(3, {"cat"}));
        _index.addBlock(block(4, {"dog", "fish"}));
        _snapshot = IndexSnapshot::seal(std::move(_index));
        _searcher = std::make_unique<Searcher>(_snapshot, 6);
    }

    DocSet
    run(const std::string &text)
    {
        Query query = Query::parse(text);
        EXPECT_TRUE(query.valid()) << text << ": " << query.error();
        return _searcher->run(query);
    }

    InvertedIndex _index;
    IndexSnapshot _snapshot;
    std::unique_ptr<Searcher> _searcher;
};

TEST_F(SearcherTest, SingleTerm)
{
    EXPECT_EQ(run("cat"), (DocSet{0, 1, 3}));
    EXPECT_EQ(run("dog"), (DocSet{0, 2, 4}));
    EXPECT_EQ(run("fish"), (DocSet{1, 4}));
}

TEST_F(SearcherTest, UnknownTermIsEmpty)
{
    EXPECT_TRUE(run("unicorn").empty());
}

TEST_F(SearcherTest, AndIntersects)
{
    EXPECT_EQ(run("cat AND dog"), (DocSet{0}));
    EXPECT_EQ(run("cat dog"), (DocSet{0}));
    EXPECT_EQ(run("dog AND fish"), (DocSet{4}));
    EXPECT_TRUE(run("cat AND dog AND fish").empty());
}

TEST_F(SearcherTest, OrUnites)
{
    EXPECT_EQ(run("cat OR dog"), (DocSet{0, 1, 2, 3, 4}));
    EXPECT_EQ(run("fish OR unicorn"), (DocSet{1, 4}));
}

TEST_F(SearcherTest, NotComplements)
{
    EXPECT_EQ(run("NOT cat"), (DocSet{2, 4, 5}));
    EXPECT_EQ(run("NOT unicorn"), (DocSet{0, 1, 2, 3, 4, 5}));
}

TEST_F(SearcherTest, AndNotCombination)
{
    EXPECT_EQ(run("dog AND NOT cat"), (DocSet{2, 4}));
    EXPECT_EQ(run("cat AND NOT fish"), (DocSet{0, 3}));
}

TEST_F(SearcherTest, PrecedenceAndParentheses)
{
    // cat AND fish = {1}; dog alone adds {0,2,4}.
    EXPECT_EQ(run("cat fish OR dog"), (DocSet{0, 1, 2, 4}));
    // cat AND (fish OR dog) = {0, 1}.
    EXPECT_EQ(run("cat (fish OR dog)"), (DocSet{0, 1}));
}

TEST_F(SearcherTest, DoubleNegationIsIdentity)
{
    EXPECT_EQ(run("NOT NOT cat"), run("cat"));
}

TEST_F(SearcherTest, InvalidQueryYieldsEmpty)
{
    Query bad = Query::parse("(unclosed");
    ASSERT_FALSE(bad.valid());
    EXPECT_TRUE(_searcher->run(bad).empty());
}

TEST_F(SearcherTest, ResultsAreSortedAndUnique)
{
    DocSet docs = run("cat OR dog OR fish");
    for (std::size_t i = 1; i < docs.size(); ++i)
        EXPECT_LT(docs[i - 1], docs[i]);
}

TEST(SearcherSetOps, IntersectUnionSubtract)
{
    DocSet a{1, 3, 5, 7};
    DocSet b{3, 4, 5};
    EXPECT_EQ(intersectSets(a, b), (DocSet{3, 5}));
    EXPECT_EQ(uniteSets(a, b), (DocSet{1, 3, 4, 5, 7}));
    EXPECT_EQ(subtractSets(a, b), (DocSet{1, 7}));
    EXPECT_EQ(intersectSets(a, {}), DocSet{});
    EXPECT_EQ(uniteSets({}, b), b);
    EXPECT_EQ(subtractSets({}, b), DocSet{});
}

TEST(SearcherSetOps, UnsortedPostingListsAreNormalized)
{
    // The index stores postings in insertion order; sealing sorts
    // them, so cursors walk canonical lists.
    InvertedIndex index;
    index.addBlock(block(5, {"t"}));
    index.addBlock(block(2, {"t"}));
    index.addBlock(block(9, {"t"}));
    Searcher searcher(IndexSnapshot::seal(std::move(index)), 10);
    EXPECT_EQ(searcher.run(Query::parse("t")), (DocSet{2, 5, 9}));
}

TEST(SearcherEmptyDoc, MatchesEmptyDocumentPredicate)
{
    EXPECT_FALSE(matchesEmptyDocument(Query::parse("a").root()));
    EXPECT_TRUE(matchesEmptyDocument(Query::parse("NOT a").root()));
    EXPECT_FALSE(
        matchesEmptyDocument(Query::parse("a AND NOT b").root()));
    EXPECT_TRUE(
        matchesEmptyDocument(Query::parse("NOT a OR b").root()));
    EXPECT_TRUE(matchesEmptyDocument(
        Query::parse("NOT a AND NOT b").root()));
    EXPECT_FALSE(matchesEmptyDocument(
        Query::parse("NOT NOT a").root()));
}

TEST(SearcherIntersect, RandomizedTermCursorsMatchSetFold)
{
    // The bulk SIMD AND path (intersectTermCursors) must agree with
    // folding intersectSets over fully materialized lists, across
    // random multi-term indexes of mixed densities.
    Rng rng(20260810);
    for (int round = 0; round < 40; ++round) {
        const std::size_t nterms = 2 + rng.nextU64() % 3;
        const DocId ndocs =
            64 + static_cast<DocId>(rng.nextU64() % 700);
        InvertedIndex index;
        std::vector<std::string> terms;
        for (std::size_t t = 0; t < nterms; ++t)
            terms.push_back("t" + std::to_string(t));
        TermBlock b;
        for (DocId doc = 0; doc < ndocs; ++doc) {
            b.clear();
            b.doc = doc;
            for (std::size_t t = 0; t < nterms; ++t) {
                // Term t matches with density ~1/(t+2).
                if (rng.nextU64() % (t + 2) == 0)
                    b.addTerm(terms[t]);
            }
            if (!b.empty())
                index.addBlock(b);
        }
        IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));

        DocSet expected;
        bool first = true;
        std::vector<PostingCursor> cursors;
        for (const std::string &term : terms) {
            PostingCursor cursor = snapshot.cursor(term);
            DocSet docs = cursor.toDocSet();
            expected = first ? docs : intersectSets(expected, docs);
            first = false;
            cursors.push_back(snapshot.cursor(term));
        }
        EXPECT_EQ(intersectTermCursors(std::move(cursors)), expected)
            << "round " << round;
    }
}

TEST(SearcherUniverse, EmptyIndexNotQuery)
{
    Searcher searcher(IndexSnapshot(), 3);
    EXPECT_EQ(searcher.run(Query::parse("NOT anything")),
              (DocSet{0, 1, 2}));
    EXPECT_TRUE(searcher.run(Query::parse("anything")).empty());
}

TEST(SearcherUniverse, ZeroDocuments)
{
    Searcher searcher(IndexSnapshot(), 0);
    EXPECT_TRUE(searcher.run(Query::parse("NOT x")).empty());
}

} // namespace
} // namespace dsearch
