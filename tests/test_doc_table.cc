/**
 * @file
 * Unit tests for the document table (index/doc_table.hh).
 */

#include <gtest/gtest.h>

#include "index/doc_table.hh"

namespace dsearch {
namespace {

TEST(DocTable, StartsEmpty)
{
    DocTable table;
    EXPECT_EQ(table.docCount(), 0u);
    EXPECT_FALSE(table.contains(0));
}

TEST(DocTable, AddAssignsDenseIds)
{
    DocTable table;
    EXPECT_EQ(table.add("/a", 10), 0u);
    EXPECT_EQ(table.add("/b", 20), 1u);
    EXPECT_EQ(table.add("/c", 30), 2u);
    EXPECT_EQ(table.docCount(), 3u);
}

TEST(DocTable, LookupByDocId)
{
    DocTable table;
    table.add("/path/x.txt", 123);
    EXPECT_EQ(table.path(0), "/path/x.txt");
    EXPECT_EQ(table.sizeBytes(0), 123u);
    EXPECT_TRUE(table.contains(0));
    EXPECT_FALSE(table.contains(1));
}

TEST(DocTable, FromFileList)
{
    FileList files;
    for (int i = 0; i < 5; ++i) {
        FileEntry entry;
        entry.doc = static_cast<DocId>(i);
        entry.path = "/f" + std::to_string(i);
        entry.size = i * 100;
        files.push_back(std::move(entry));
    }
    DocTable table = DocTable::fromFileList(files);
    EXPECT_EQ(table.docCount(), 5u);
    EXPECT_EQ(table.path(3), "/f3");
    EXPECT_EQ(table.sizeBytes(4), 400u);
}

TEST(DocTableDeath, NonDenseFileListPanics)
{
    FileList files;
    FileEntry entry;
    entry.doc = 7; // should be 0
    entry.path = "/x";
    files.push_back(entry);
    EXPECT_DEATH(DocTable::fromFileList(files), "non-dense");
}

TEST(DocTableDeath, OutOfRangeLookupPanics)
{
    DocTable table;
    table.add("/a", 1);
    EXPECT_DEATH((void)table.path(1), "out of range");
    EXPECT_DEATH((void)table.sizeBytes(9), "out of range");
}

} // namespace
} // namespace dsearch
