/**
 * @file
 * End-to-end tests for the live incremental pipeline
 * (live/live_index.hh): change visibility through runCycle(),
 * compaction equivalence, crash recovery at every injected stage
 * (kill-mid-merge, kill-mid-publish, kill-mid-save), degraded mode,
 * bootstrap reconciliation, and hot-swap consistency under
 * concurrent queries + background threads (the check_tsan_live_index
 * centerpiece).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "fs/mutable_memory_fs.hh"
#include "live/live_index.hh"
#include "search/query_server.hh"
#include "util/fault.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

namespace stdfs = std::filesystem;

/** Boolean query through the serving path; panics on rejection. */
DocSet
ask(QueryServer &server, const std::string &text)
{
    QueryResponse response =
        server.submit(Query::parse(text)).get();
    EXPECT_TRUE(response.ok) << response.error;
    return response.hits;
}

/** Ranked query through the serving path. */
std::vector<ScoredHit>
askRanked(QueryServer &server, const std::string &text, std::size_t k)
{
    QueryResponse response =
        server.submitRanked(Query::parse(text), k).get();
    EXPECT_TRUE(response.ok) << response.error;
    return response.ranked;
}

/** Resolve boolean hits to paths via the serving DocTable. */
std::vector<std::string>
askPaths(QueryServer &server, const std::string &text)
{
    std::shared_ptr<const ServingState> state = server.serving();
    std::vector<std::string> paths;
    for (DocId doc : ask(server, text))
        paths.push_back(state->docs.path(doc));
    return paths;
}

class LiveIndexTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        disarmAllFaults();
        setLogLevel(LogLevel::Silent);
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        _dir = ::testing::TempDir() + "dsearch_live_" + info->name();
        std::error_code ec;
        stdfs::remove_all(_dir, ec);

        _fs.addFile("/docs/a.txt", "apple pie");
        _fs.addFile("/docs/b.txt", "apple cherry");
        _fs.addFile("/docs/c.txt", "banana");
    }

    void
    TearDown() override
    {
        disarmAllFaults();
        std::error_code ec;
        stdfs::remove_all(_dir, ec);
    }

    /** Build the base, adopt it into server + live. */
    std::unique_ptr<LiveIndex>
    makeLive(QueryServer &server, SnapshotStore *store,
             LiveIndexOptions options = {})
    {
        auto live = std::make_unique<LiveIndex>(
            _fs, "/", server, store, options);
        live->adopt(Engine::open(_fs, "/").build());
        return live;
    }

    MutableMemoryFs _fs;
    std::string _dir;
};

TEST_F(LiveIndexTest, AdoptServesTheBaseBuild)
{
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    auto live = makeLive(server, nullptr);

    EXPECT_EQ(ask(server, "apple").size(), 2u);
    EXPECT_EQ(askPaths(server, "banana"),
              (std::vector<std::string>{"/docs/c.txt"}));
    EXPECT_EQ(askRanked(server, "apple OR banana", 5).size(), 3u);
    EXPECT_EQ(live->stats().doc_count, 3u);
}

TEST_F(LiveIndexTest, CycleMakesChangesVisible)
{
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    auto live = makeLive(server, nullptr);

    // Create.
    _fs.addFile("/docs/d.txt", "durian apple");
    EXPECT_TRUE(live->runCycle());
    EXPECT_EQ(ask(server, "durian").size(), 1u);
    EXPECT_EQ(ask(server, "apple").size(), 3u);

    // Modify (same size as the original to exercise mtime detection).
    _fs.addFile("/docs/c.txt", "cocoa!");
    EXPECT_TRUE(live->runCycle());
    EXPECT_TRUE(ask(server, "banana").empty());
    EXPECT_EQ(askPaths(server, "cocoa"),
              (std::vector<std::string>{"/docs/c.txt"}));

    // Delete; the doc vanishes from positive AND negative queries.
    _fs.removeFile("/docs/a.txt");
    EXPECT_TRUE(live->runCycle());
    EXPECT_EQ(ask(server, "pie").size(), 0u);
    DocSet everything = ask(server, "NOT zzzznothing");
    EXPECT_EQ(everything.size(), 3u); // b, c-new, d

    // Idle cycle: no change, no publish.
    LiveStats before = live->stats();
    EXPECT_FALSE(live->runCycle());
    EXPECT_EQ(live->stats().publishes, before.publishes);

    EXPECT_GE(live->stats().deltas_built, 2u);
    EXPECT_EQ(live->stats().tombstones, 2u); // old c + deleted a
}

TEST_F(LiveIndexTest, CompactionPreservesAnswersAndPersists)
{
    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    auto live = makeLive(server, &store);
    std::uint64_t adopted_gen = live->stats().generation;
    EXPECT_GT(adopted_gen, 0u);

    _fs.addFile("/docs/d.txt", "durian");
    _fs.addFile("/docs/e.txt", "elderberry apple");
    EXPECT_TRUE(live->runCycle());
    _fs.removeFile("/docs/c.txt");
    EXPECT_TRUE(live->runCycle());

    DocSet apple_before = ask(server, "apple");
    DocSet not_apple_before = ask(server, "NOT apple");
    auto ranked_before = askRanked(server, "apple OR durian", 10);

    ASSERT_TRUE(live->compactNow());
    LiveStats stats = live->stats();
    EXPECT_EQ(stats.merges, 1u);
    EXPECT_EQ(stats.pending_deltas, 0u);
    EXPECT_FALSE(stats.degraded);
    EXPECT_GT(stats.generation, adopted_gen);

    // Same questions, same answers — compaction must be invisible.
    EXPECT_EQ(ask(server, "apple"), apple_before);
    EXPECT_EQ(ask(server, "NOT apple"), not_apple_before);
    auto ranked_after = askRanked(server, "apple OR durian", 10);
    ASSERT_EQ(ranked_after.size(), ranked_before.size());
    for (std::size_t i = 0; i < ranked_after.size(); ++i)
        EXPECT_EQ(ranked_after[i].doc, ranked_before[i].doc);

    // The compacted generation is on disk and loads.
    IndexSnapshot snapshot;
    DocTable docs;
    EXPECT_EQ(store.load(snapshot, docs), stats.generation);
}

TEST_F(LiveIndexTest, TombstonedDocsStayDeadAfterCompaction)
{
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    auto live = makeLive(server, nullptr);

    _fs.removeFile("/docs/b.txt");
    EXPECT_TRUE(live->runCycle());
    _fs.addFile("/docs/n.txt", "nectarine");
    EXPECT_TRUE(live->runCycle());
    ASSERT_TRUE(live->compactNow());

    EXPECT_EQ(ask(server, "cherry").size(), 0u);
    // The resurrection check: /docs/b.txt's DocId is still in the
    // table but must not surface through NOT after its postings were
    // compacted away.
    for (const std::string &path :
         askPaths(server, "NOT zzzzmissing"))
        EXPECT_NE(path, "/docs/b.txt");
}

TEST_F(LiveIndexTest, KillMidPublishIsRepublishedNextCycle)
{
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    auto live = makeLive(server, nullptr);

    _fs.addFile("/docs/d.txt", "durian");
    {
        ScopedFault fault("live.publish", {.fire_limit = 1});
        EXPECT_TRUE(live->runCycle());
        EXPECT_EQ(fault.fires(), 1u);
    }
    // The delta committed but the swap was skipped: queries still see
    // the old generation.
    EXPECT_EQ(live->stats().skipped_publishes, 1u);
    EXPECT_TRUE(ask(server, "durian").empty());

    // The next cycle — with NO new filesystem changes — notices the
    // pending publish and performs it.
    EXPECT_FALSE(live->runCycle()); // no new mutation...
    EXPECT_EQ(ask(server, "durian").size(), 1u); // ...yet republished
}

TEST_F(LiveIndexTest, MergeRetryThenDegradeThenRecover)
{
    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndexOptions options;
    options.merge_retries = 2;
    options.retry_backoff_sec = 0.0005;
    auto live = makeLive(server, &store, options);

    _fs.addFile("/docs/d.txt", "durian");
    EXPECT_TRUE(live->runCycle());

    // One transient failure: the retry succeeds.
    {
        ScopedFault fault("live.merge", {.fire_limit = 1});
        EXPECT_TRUE(live->compactNow());
    }
    LiveStats stats = live->stats();
    EXPECT_EQ(stats.merges, 1u);
    EXPECT_EQ(stats.merge_failures, 1u);
    EXPECT_FALSE(stats.degraded);

    // Persistent failure: retries exhaust, the pipeline degrades —
    // but serving continues and deltas stay pending.
    _fs.addFile("/docs/e.txt", "elderberry");
    EXPECT_TRUE(live->runCycle());
    {
        ScopedFault fault("live.merge");
        EXPECT_FALSE(live->compactNow());
    }
    stats = live->stats();
    EXPECT_TRUE(stats.degraded);
    EXPECT_FALSE(stats.last_error.empty());
    EXPECT_GE(stats.pending_deltas, 1u);
    EXPECT_EQ(ask(server, "elderberry").size(), 1u); // still serving

    // Fault cleared: the next compaction catches up and the degraded
    // flag lifts.
    EXPECT_TRUE(live->compactNow());
    stats = live->stats();
    EXPECT_FALSE(stats.degraded);
    EXPECT_TRUE(stats.last_error.empty());
    EXPECT_EQ(stats.pending_deltas, 0u);
}

TEST_F(LiveIndexTest, KillMidSaveKeepsServingOldGeneration)
{
    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndexOptions options;
    options.merge_retries = 1;
    auto live = makeLive(server, &store, options);
    std::uint64_t adopted_gen = live->stats().generation;

    _fs.addFile("/docs/d.txt", "durian");
    EXPECT_TRUE(live->runCycle());

    // The save "crashes" mid-write: compaction must count as failed,
    // the in-memory state must be untouched, and the store must still
    // load the adopted generation.
    {
        ScopedFault fault("snapshot_store.crash_mid_write",
                          {.fire_limit = 1});
        EXPECT_FALSE(live->compactNow());
    }
    LiveStats stats = live->stats();
    EXPECT_TRUE(stats.degraded);
    EXPECT_EQ(stats.generation, adopted_gen);
    EXPECT_GE(stats.pending_deltas, 1u);
    EXPECT_EQ(ask(server, "durian").size(), 1u); // deltas still serve

    IndexSnapshot snapshot;
    DocTable docs;
    EXPECT_EQ(store.load(snapshot, docs), adopted_gen);

    // Retry without the fault: full recovery.
    EXPECT_TRUE(live->compactNow());
    EXPECT_GT(live->stats().generation, adopted_gen);
}

TEST_F(LiveIndexTest, BootstrapRecoversAndReconciles)
{
    std::uint64_t saved_gen = 0;
    {
        SnapshotStore store(_dir, {.sync = false});
        QueryServer server(IndexSnapshot{}, DocTable{}, {});
        auto live = makeLive(server, &store);
        _fs.addFile("/docs/d.txt", "durian");
        EXPECT_TRUE(live->runCycle());
        ASSERT_TRUE(live->compactNow());
        saved_gen = live->stats().generation;
        // Process "dies" here; the store survives.
    }

    // Changes while down: one edit, one create, one delete.
    _fs.addFile("/docs/a.txt", "apricot tart");
    _fs.addFile("/docs/e.txt", "elderberry");
    _fs.removeFile("/docs/c.txt");

    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndex live(_fs, "/", server, &store);
    EXPECT_EQ(live.bootstrap(), saved_gen);

    // Recovered base + first-cycle reconciliation, all visible.
    EXPECT_EQ(ask(server, "durian").size(), 1u);   // recovered
    EXPECT_EQ(ask(server, "apricot").size(), 1u);  // edit while down
    EXPECT_EQ(ask(server, "elderberry").size(), 1u); // created
    EXPECT_TRUE(ask(server, "banana").empty());    // deleted
    EXPECT_TRUE(ask(server, "pie").empty());       // old /docs/a.txt
}

TEST_F(LiveIndexTest, BootstrapWithEmptyStoreStartsFresh)
{
    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndex live(_fs, "/", server, &store);
    EXPECT_EQ(live.bootstrap(), 0u);

    // The whole corpus arrives as the first delta.
    EXPECT_EQ(ask(server, "apple").size(), 2u);
    EXPECT_EQ(ask(server, "banana").size(), 1u);
    EXPECT_GE(live.stats().deltas_built, 1u);
}

/**
 * The hot-swap consistency centerpiece: a writer rewrites a PAIR of
 * files with a fresh marker each round (one publish covers both), a
 * query thread hammers boolean + ranked queries for the invariant
 * that every response sees a complete pair — pre-swap or post-swap,
 * never a mix — and background scanner/merger threads do the
 * publishing and compacting. TSan runs this test for the data-race
 * half of the guarantee.
 */
TEST_F(LiveIndexTest, HotSwapNeverTearsUnderConcurrentQueries)
{
    _fs.addFile("/pair/x.txt", "pair round0");
    _fs.addFile("/pair/y.txt", "pair round0");

    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndexOptions options;
    options.scan_interval_sec = 0.001;
    options.merge_threshold = 3;
    auto live = makeLive(server, nullptr, options);
    live->start();

    std::atomic<bool> stop{false};
    std::thread querier([&] {
        while (!stop.load()) {
            // Every alive generation has exactly 2 docs matching
            // "pair": a torn publish (delta without tombstones, or
            // half a pair) would show 1, 3 or 4.
            QueryResponse boolean =
                server.submit(Query::parse("pair")).get();
            ASSERT_TRUE(boolean.ok) << boolean.error;
            EXPECT_EQ(boolean.hits.size(), 2u);

            QueryResponse ranked =
                server.submitRanked(Query::parse("pair"), 10).get();
            ASSERT_TRUE(ranked.ok) << ranked.error;
            EXPECT_EQ(ranked.ranked.size(), 2u);
        }
    });

    for (int round = 1; round <= 30; ++round) {
        std::string body = "pair round" + std::to_string(round);
        _fs.addFile("/pair/x.txt", body);
        _fs.addFile("/pair/y.txt", body);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    stop.store(true);
    querier.join();
    live->stop();

    // Settle: a final synchronous cycle + compaction, then the last
    // round must be what serves.
    live->runCycle();
    live->compactNow();
    EXPECT_EQ(ask(server, "round30").size(), 2u);
    LiveStats stats = live->stats();
    EXPECT_GT(stats.scans, 0u);
    EXPECT_GT(stats.publishes, 0u);
    EXPECT_GT(server.stats().swaps, 1u);
}

/** Background threads + store + faults firing probabilistically:
 *  the pipeline must neither crash nor wedge, and must converge once
 *  faults clear. */
TEST_F(LiveIndexTest, BackgroundThreadsSurviveFaultStorm)
{
    SnapshotStore store(_dir, {.sync = false});
    QueryServer server(IndexSnapshot{}, DocTable{}, {});
    LiveIndexOptions options;
    options.scan_interval_sec = 0.001;
    options.merge_threshold = 2;
    options.merge_retries = 2;
    options.retry_backoff_sec = 0.0005;
    auto live = makeLive(server, &store, options);
    live->start();

    armFault("live.scan", {.probability = 0.2, .seed = 7});
    armFault("live.merge", {.probability = 0.3, .seed = 11});
    armFault("live.publish", {.probability = 0.2, .seed = 13});

    for (int round = 0; round < 20; ++round) {
        _fs.addFile("/churn/f" + std::to_string(round % 5) + ".txt",
                    "storm round" + std::to_string(round));
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    disarmAllFaults();
    live->stop();

    // Converge synchronously and verify the end state is exact.
    live->runCycle();
    live->runCycle(); // republish if the last publish was skipped
    live->compactNow();
    EXPECT_EQ(ask(server, "storm").size(), 5u);
    EXPECT_EQ(ask(server, "round19").size(), 1u);
    EXPECT_FALSE(live->stats().degraded);
}

} // namespace
} // namespace dsearch
