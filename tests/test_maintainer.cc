/**
 * @file
 * Unit tests for incremental index maintenance
 * (index/maintainer.hh).
 */

#include <gtest/gtest.h>

#include "core/index_generator.hh"
#include "fs/memory_fs.hh"
#include "index/maintainer.hh"
#include "search/searcher.hh"
#include "util/logging.hh"

namespace dsearch {
namespace {

/** Builds an initial 3-file index owned by a maintainer. */
class MaintainerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _fs.addFile("/a.txt", "apple banana");
        _fs.addFile("/b.txt", "banana cherry");
        _fs.addFile("/c.txt", "cherry date");
        IndexGenerator generator(_fs, "/", Config::sequential());
        BuildResult result = generator.build();
        _maintainer = std::make_unique<IndexMaintainer>(
            std::move(result.indices.front()),
            std::move(result.docs));
    }

    DocSet
    search(const std::string &text)
    {
        Searcher searcher(_maintainer->snapshot(),
                          _maintainer->aliveDocs());
        return searcher.run(Query::parse(text));
    }

    MemoryFs _fs;
    std::unique_ptr<IndexMaintainer> _maintainer;
};

TEST_F(MaintainerTest, StartsWithEverythingAlive)
{
    EXPECT_EQ(_maintainer->aliveCount(), 3u);
    EXPECT_TRUE(_maintainer->alive(0));
    EXPECT_TRUE(_maintainer->alive(2));
    EXPECT_FALSE(_maintainer->alive(3));
    EXPECT_EQ(_maintainer->aliveDocs(), (std::vector<DocId>{0, 1, 2}));
}

TEST_F(MaintainerTest, AddDocumentIndexesNewFile)
{
    _fs.addFile("/d.txt", "date elderberry");
    DocId doc = _maintainer->addDocument(_fs, "/d.txt");
    ASSERT_EQ(doc, 3u);
    EXPECT_EQ(_maintainer->aliveCount(), 4u);
    EXPECT_EQ(_maintainer->docs().path(doc), "/d.txt");
    EXPECT_EQ(search("elderberry"), (DocSet{3}));
    EXPECT_EQ(search("date"), (DocSet{2, 3}));
}

TEST_F(MaintainerTest, AddUnreadableFileChangesNothing)
{
    setLogLevel(LogLevel::Silent);
    DocId doc = _maintainer->addDocument(_fs, "/missing.txt");
    setLogLevel(LogLevel::Info);
    EXPECT_EQ(doc, invalid_doc);
    EXPECT_EQ(_maintainer->aliveCount(), 3u);
    EXPECT_EQ(_maintainer->docs().docCount(), 3u);
}

TEST_F(MaintainerTest, RemoveDocumentDropsItsPostings)
{
    ASSERT_TRUE(_maintainer->removeDocument(1));
    EXPECT_FALSE(_maintainer->alive(1));
    EXPECT_EQ(_maintainer->aliveCount(), 2u);
    EXPECT_EQ(search("banana"), (DocSet{0}));
    EXPECT_TRUE(search("banana AND cherry").empty());
    // NOT queries use the alive universe: doc 1 must not reappear.
    EXPECT_EQ(search("NOT apple"), (DocSet{2}));
}

TEST_F(MaintainerTest, RemoveTwiceFails)
{
    EXPECT_TRUE(_maintainer->removeDocument(1));
    EXPECT_FALSE(_maintainer->removeDocument(1));
    EXPECT_FALSE(_maintainer->removeDocument(99));
}

TEST_F(MaintainerTest, RefreshPicksUpNewContent)
{
    _fs.addFile("/b.txt", "banana fig"); // replaces the old body
    ASSERT_TRUE(_maintainer->refreshDocument(_fs, 1));
    EXPECT_EQ(search("fig"), (DocSet{1}));
    EXPECT_TRUE(search("cherry AND banana").empty());
    EXPECT_EQ(search("cherry"), (DocSet{2}));
    EXPECT_EQ(_maintainer->aliveCount(), 3u);
}

TEST_F(MaintainerTest, RefreshOfVanishedFileBecomesRemoval)
{
    // Simulate deletion by pointing the maintainer at a fresh FS
    // without /b.txt.
    MemoryFs bare;
    bare.addFile("/a.txt", "apple banana");
    setLogLevel(LogLevel::Silent);
    EXPECT_FALSE(_maintainer->refreshDocument(bare, 1));
    setLogLevel(LogLevel::Info);
    EXPECT_FALSE(_maintainer->alive(1));
    EXPECT_EQ(search("banana"), (DocSet{0}));
}

TEST_F(MaintainerTest, DocIdsNeverReused)
{
    _maintainer->removeDocument(2);
    _fs.addFile("/new.txt", "fresh");
    DocId doc = _maintainer->addDocument(_fs, "/new.txt");
    EXPECT_EQ(doc, 3u); // not the freed 2
    EXPECT_EQ(_maintainer->docs().path(2), "/c.txt"); // history kept
}

TEST_F(MaintainerTest, VacuumErasesEmptiedTerms)
{
    std::size_t before = _maintainer->index().termCount();
    _maintainer->removeDocument(0); // apple's only doc
    EXPECT_EQ(_maintainer->index().termCount(), before);
    std::size_t erased = _maintainer->vacuum();
    EXPECT_GE(erased, 1u); // at least "apple"
    EXPECT_EQ(_maintainer->index().postings("apple"), nullptr);
    // banana survives (doc 1 still has it).
    EXPECT_NE(_maintainer->index().postings("banana"), nullptr);
}

TEST_F(MaintainerTest, RemoveAllThenSearchEmpty)
{
    for (DocId doc = 0; doc < 3; ++doc)
        _maintainer->removeDocument(doc);
    EXPECT_EQ(_maintainer->aliveCount(), 0u);
    EXPECT_TRUE(search("banana").empty());
    EXPECT_TRUE(search("NOT banana").empty()); // empty universe
    EXPECT_EQ(_maintainer->index().postingCount(), 0u);
}

TEST_F(MaintainerTest, EquivalentToFreshRebuild)
{
    // A sequence of updates must leave the index equal to building
    // from the final filesystem state (modulo dead doc ids).
    _fs.addFile("/d.txt", "elderberry");
    _maintainer->addDocument(_fs, "/d.txt");
    _fs.addFile("/a.txt", "apricot banana");
    _maintainer->refreshDocument(_fs, 0);
    _maintainer->removeDocument(2);
    _maintainer->vacuum();

    // Rebuild from scratch over the same content minus /c.txt.
    MemoryFs fresh;
    fresh.addFile("/a.txt", "apricot banana");
    fresh.addFile("/b.txt", "banana cherry");
    fresh.addFile("/d.txt", "elderberry");
    IndexGenerator generator(fresh, "/", Config::sequential());
    BuildResult rebuilt = generator.build();
    Searcher fresh_search(rebuilt.sealIndices(),
                          rebuilt.docs.docCount());

    // Compare by query answers mapped through paths.
    for (const char *text :
         {"banana", "apricot", "cherry", "elderberry",
          "banana AND cherry", "NOT banana"}) {
        Query q = Query::parse(text);
        std::vector<std::string> maintained_paths;
        for (DocId doc : search(text))
            maintained_paths.push_back(_maintainer->docs().path(doc));
        std::vector<std::string> rebuilt_paths;
        for (DocId doc : fresh_search.run(q))
            rebuilt_paths.push_back(rebuilt.docs.path(doc));
        std::sort(maintained_paths.begin(), maintained_paths.end());
        std::sort(rebuilt_paths.begin(), rebuilt_paths.end());
        EXPECT_EQ(maintained_paths, rebuilt_paths) << text;
    }
}

TEST(MaintainerUniverse, SearcherRejectsBadUniverse)
{
    EXPECT_DEATH(Searcher(IndexSnapshot(), DocSet{3, 1, 2}),
                 "sorted");
    EXPECT_DEATH(Searcher(IndexSnapshot(), DocSet{1, 1}),
                 "duplicate");
}

} // namespace
} // namespace dsearch
