/**
 * @file
 * Unit tests for the snapshot read API: PostingCursor semantics
 * (index/posting_cursor.hh) and IndexSnapshot sealing/segment access
 * (index/index_snapshot.hh).
 */

#include <gtest/gtest.h>

#include "index/index_snapshot.hh"
#include "index/posting_cursor.hh"

namespace dsearch {
namespace {

TermBlock
block(DocId doc, std::vector<std::string> terms)
{
    TermBlock b;
    b.doc = doc;
    for (const std::string &term : terms)
        b.addTerm(term);
    return b;
}

TEST(PostingCursor, DefaultIsExhaustedAndEmpty)
{
    PostingCursor cursor;
    EXPECT_FALSE(cursor.valid());
    EXPECT_EQ(cursor.count(), 0u);
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_FALSE(cursor.seekGE(0));
    EXPECT_TRUE(cursor.toDocSet().empty());
}

TEST(PostingCursor, ForwardIteration)
{
    const DocId docs[] = {1, 4, 9};
    PostingCursor cursor(docs, 3);
    std::vector<DocId> seen;
    for (; cursor.valid(); cursor.next())
        seen.push_back(cursor.doc());
    EXPECT_EQ(seen, (std::vector<DocId>{1, 4, 9}));
    EXPECT_EQ(cursor.remaining(), 0u);
    EXPECT_EQ(cursor.count(), 3u); // count is total, not remaining
}

TEST(PostingCursor, SeekGE)
{
    const DocId docs[] = {2, 5, 8, 20, 21, 40};
    PostingCursor cursor(docs, 6);

    ASSERT_TRUE(cursor.seekGE(5)); // exact hit
    EXPECT_EQ(cursor.doc(), 5u);
    ASSERT_TRUE(cursor.seekGE(5)); // no-op on current
    EXPECT_EQ(cursor.doc(), 5u);
    ASSERT_TRUE(cursor.seekGE(9)); // between values
    EXPECT_EQ(cursor.doc(), 20u);
    ASSERT_TRUE(cursor.seekGE(1)); // backwards target: no-op
    EXPECT_EQ(cursor.doc(), 20u);
    ASSERT_TRUE(cursor.seekGE(40)); // last element
    EXPECT_EQ(cursor.doc(), 40u);
    EXPECT_FALSE(cursor.seekGE(41)); // past end exhausts
    EXPECT_FALSE(cursor.valid());
    EXPECT_FALSE(cursor.seekGE(0)); // stays exhausted
}

TEST(PostingCursor, SeekGEOnLongListGallops)
{
    std::vector<DocId> docs(10000);
    for (std::size_t d = 0; d < docs.size(); ++d)
        docs[d] = static_cast<DocId>(3 * d);
    PostingCursor cursor(docs.data(), docs.size());
    ASSERT_TRUE(cursor.seekGE(14998)); // 3*4999=14997 < 14998
    EXPECT_EQ(cursor.doc(), 15000u);
    ASSERT_TRUE(cursor.seekGE(29997));
    EXPECT_EQ(cursor.doc(), 29997u);
    EXPECT_EQ(cursor.remaining(), 1u);
}

TEST(PostingCursor, ToDocSetDrainsFromCurrentPosition)
{
    const DocId docs[] = {1, 2, 3, 4};
    PostingCursor cursor(docs, 4);
    cursor.next();
    EXPECT_EQ(cursor.toDocSet(), (std::vector<DocId>{2, 3, 4}));
    EXPECT_FALSE(cursor.valid());
}

TEST(IndexSnapshot, SealSortsPostingsForCursors)
{
    InvertedIndex index;
    index.addBlock(block(7, {"t"}));
    index.addBlock(block(2, {"t"}));
    index.addBlock(block(5, {"t"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));

    EXPECT_TRUE(snapshot.unified());
    EXPECT_EQ(snapshot.segmentCount(), 1u);
    PostingCursor cursor = snapshot.cursor("t");
    EXPECT_EQ(cursor.count(), 3u);
    EXPECT_EQ(cursor.toDocSet(), (std::vector<DocId>{2, 5, 7}));
}

TEST(IndexSnapshot, UnknownTermAndEmptySnapshot)
{
    IndexSnapshot empty;
    EXPECT_TRUE(empty.unified());
    EXPECT_TRUE(empty.empty());
    EXPECT_EQ(empty.termCount(), 0u);
    EXPECT_FALSE(empty.cursor("anything").valid());

    InvertedIndex index;
    index.addBlock(block(0, {"known"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(index));
    EXPECT_FALSE(snapshot.cursor("unknown").valid());
    EXPECT_EQ(snapshot.cursor("unknown").count(), 0u);
}

TEST(IndexSnapshot, ReplicaSetSealsToSegments)
{
    std::vector<InvertedIndex> replicas(3);
    replicas[0].addBlock(block(0, {"a", "shared"}));
    replicas[2].addBlock(block(1, {"b", "shared"}));
    // replicas[1] stays empty but keeps its position.
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(replicas));

    EXPECT_FALSE(snapshot.unified());
    ASSERT_EQ(snapshot.segmentCount(), 3u);
    EXPECT_EQ(snapshot.segment(0).cursor("shared").toDocSet(),
              (std::vector<DocId>{0}));
    EXPECT_TRUE(snapshot.segment(1).empty());
    EXPECT_EQ(snapshot.segment(2).cursor("shared").toDocSet(),
              (std::vector<DocId>{1}));
    EXPECT_FALSE(snapshot.empty());
}

TEST(IndexSnapshot, CopiesShareSegmentsAndOutliveSource)
{
    IndexSnapshot copy;
    {
        InvertedIndex index;
        index.addBlock(block(3, {"alive"}));
        IndexSnapshot original =
            IndexSnapshot::seal(std::move(index));
        copy = original;
    } // original destroyed
    EXPECT_EQ(copy.cursor("alive").toDocSet(),
              (std::vector<DocId>{3}));
}

TEST(IndexSnapshotDeath, UnifiedAccessOnMultiSegmentPanics)
{
    std::vector<InvertedIndex> replicas(2);
    replicas[0].addBlock(block(0, {"a"}));
    replicas[1].addBlock(block(1, {"b"}));
    IndexSnapshot snapshot = IndexSnapshot::seal(std::move(replicas));
    EXPECT_DEATH(snapshot.cursor("a"), "multi-segment");
    EXPECT_DEATH(snapshot.segment(5), "out of range");
}

} // namespace
} // namespace dsearch
